/**
 * @file
 * Stat-parity differential test: the typed-counter statistics plumbing
 * must be observationally identical to the seed's string-keyed StatSet
 * mutation. For every workload x RF organization we render every stat the
 * simulator produces — per-run deltas and the raw per-SM sets — to a
 * canonical text form and compare it byte-for-byte against golden files
 * captured from the seed implementation.
 *
 * Regenerate the goldens (e.g. when intentionally adding a new stat) with
 *   PILOTRF_REGEN_GOLDEN=1 ./stat_parity_test
 * and commit the diff under tests/golden/stat_parity/.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

namespace
{

struct Variant
{
    const char *label;
    SimConfig cfg;
};

/** The RF organizations under test: all five RfKinds plus a cache-enabled
 *  pipeline variant, shrunk to two SMs to keep the runtime modest. */
std::vector<Variant>
variants()
{
    const auto withKind = [](RfKind k) {
        SimConfig c;
        c.numSms = 2;
        c.rfKind = k;
        return c;
    };
    SimConfig rfc = withKind(RfKind::Rfc);
    rfc.policy = SchedulerPolicy::TwoLevel; // exercise deactivation flushes
    SimConfig l1l2 = withKind(RfKind::MrfStv);
    l1l2.l1Enable = true;
    l1l2.l2Enable = true; // exercise the SM's l1.*/l2.* counters
    return {{"mrf_stv", withKind(RfKind::MrfStv)},
            {"mrf_ntv", withKind(RfKind::MrfNtv)},
            {"partitioned", withKind(RfKind::Partitioned)},
            {"rfc_tl", rfc},
            {"drowsy", withKind(RfKind::Drowsy)},
            {"mrf_stv_l1l2", l1l2}};
}

/** Full-precision rendering: differences far below StatSet::dump's
 *  six-digit default must still fail the comparison. */
void
renderStats(std::ostream &os, const char *title, const StatSet &s)
{
    os << "--- " << title << " ---\n";
    for (const auto &[k, v] : s.raw()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os << k << " = " << buf << "\n";
    }
}

std::string
renderWorkload(const std::string &name, bool cycleSkip,
               unsigned numWorkers = 1, bool traced = false,
               ShardSchedule schedule = ShardSchedule::Dynamic)
{
    const auto &wl = workloads::workload(name);
    std::ostringstream os;
    for (const auto &v : variants()) {
        SimConfig cfg = v.cfg;
        cfg.enableCycleSkip = cycleSkip;
        cfg.numWorkers = numWorkers;
        cfg.shardSchedule = schedule;
        Gpu gpu(cfg, {.enableTraceHub = traced});
        // The sink's output is discarded: tracing must not perturb the
        // statistics (observer effect), even under the sharded engine's
        // buffered emission, so the traced render must still match the
        // untraced goldens byte-for-byte.
        std::ostringstream discard;
        if (traced)
            gpu.traceHub().addSink(
                std::make_unique<obs::JsonlTraceSink>(discard));
        const RunResult run = gpu.run(wl.view());

        os << "=== " << name << " / " << v.label << " ===\n";
        renderStats(os, "run.rfStats", run.rfStats);
        renderStats(os, "run.simStats", run.simStats);
        // Raw (non-delta) sets as the reporting layer reads them, merged
        // over SMs: zero-valued keys that exist in the seed must keep
        // existing, so key sets are compared too, not only values.
        StatSet rawRf, rawSim;
        for (unsigned i = 0; i < gpu.numSms(); ++i) {
            rawRf.merge(gpu.smStats(i).rf().stats());
            rawSim.merge(gpu.smStats(i).stats());
        }
        renderStats(os, "raw.rf", rawRf);
        renderStats(os, "raw.sim", rawSim);
    }
    return os.str();
}

std::string
goldenPath(std::string name)
{
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return std::string(PILOTRF_SOURCE_DIR) + "/tests/golden/stat_parity/" +
           name + ".txt";
}

} // namespace

class StatParity : public ::testing::TestWithParam<const char *>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

namespace
{

/** Assert `actual` equals `golden` byte-for-byte, reporting only the
 *  first differing line rather than the whole multi-KB blob. */
void
expectMatchesGolden(const std::string &golden, const std::string &actual,
                    const char *mode)
{
    if (actual == golden) {
        SUCCEED();
        return;
    }
    std::istringstream a(actual), g(golden);
    std::string la, lg;
    unsigned line = 0;
    while (true) {
        const bool ha = bool(std::getline(a, la));
        const bool hg = bool(std::getline(g, lg));
        ++line;
        if (!ha && !hg)
            break;
        ASSERT_EQ(lg, la)
            << "first difference at line " << line << " (" << mode << ")";
    }
}

} // namespace

TEST_P(StatParity, MatchesSeedStats)
{
    const std::string path = goldenPath(GetParam());
    // The event-horizon fast-forward must be architecturally invisible:
    // both the skipping and the single-stepping simulator must reproduce
    // the seed goldens byte-for-byte.
    const std::string withSkip = renderWorkload(GetParam(), true);

    if (std::getenv("PILOTRF_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << withSkip;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with PILOTRF_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    expectMatchesGolden(golden.str(), withSkip, "cycle skip on");
    const std::string noSkip = renderWorkload(GetParam(), false);
    expectMatchesGolden(golden.str(), noSkip, "cycle skip off");
    // The sharded epoch-barrier engine must reproduce the serial seed
    // goldens byte-for-byte too (variants run 2 SMs, so 2 workers puts
    // one SM on each shard). The l1l2 variant shards as well — the
    // shared L2 no longer forces lockstep — so this render also covers
    // the deferred-request barrier replay against unmodified goldens.
    const std::string sharded = renderWorkload(GetParam(), true, 2);
    expectMatchesGolden(golden.str(), sharded, "sharded, 2 workers");
    // And once more with a trace sink attached: buffered per-SM emission
    // and the barrier-time merge must leave every statistic untouched.
    const std::string traced = renderWorkload(GetParam(), true, 2, true);
    expectMatchesGolden(golden.str(), traced, "sharded, 2 workers, traced");
    // The shard-schedule knob is pure mechanism: the renders above ran
    // the default dynamic ticket queue, so pin the static assignment
    // against the same unmodified goldens.
    const std::string staticSched =
        renderWorkload(GetParam(), true, 2, false, ShardSchedule::Static);
    expectMatchesGolden(golden.str(), staticSched,
                        "sharded, 2 workers, static schedule");
}

namespace
{

/** Configs that steer the shared-L2 hit/miss balance to its extremes.
 *  A 1 KB L1 forces nearly every global access through to the L2;
 *  hit-heavy then gives the L2 room for the whole working set while
 *  miss-heavy shrinks it below one SM's footprint and adds the DRAM
 *  stage, so both the L2 LRU state and the partition-queue contention
 *  are golden-locked. */
SimConfig
l2ParityConfig(bool missHeavy)
{
    SimConfig cfg;
    cfg.numSms = 2;
    cfg.l1Enable = true;
    cfg.l1SizeKb = 1;
    cfg.l2Enable = true;
    if (missHeavy) {
        cfg.l2SizeKb = 8;
        cfg.l2Assoc = 2;
        cfg.dramEnable = true;
    }
    return cfg;
}

std::string
renderL2Parity(bool missHeavy, bool cycleSkip, unsigned numWorkers)
{
    SimConfig cfg = l2ParityConfig(missHeavy);
    cfg.enableCycleSkip = cycleSkip;
    cfg.numWorkers = numWorkers;
    // Workloads chosen for real reuse through the hierarchy: MUM and
    // stencil re-walk lines evicted from the 1 KB L1 (>90% L2 hits under
    // the hit-heavy geometry), while BFS and sad thrash the 8 KB
    // miss-heavy L2 with scattered adjacency traffic.
    const char *const hitWls[] = {"MUM", "stencil"};
    const char *const missWls[] = {"BFS", "sad"};
    std::ostringstream os;
    for (const char *name : missHeavy ? missWls : hitWls) {
        Gpu gpu(cfg);
        const RunResult run = gpu.run(workloads::workload(name).view());
        os << "=== " << name << " / "
           << (missHeavy ? "l2_miss_heavy" : "l2_hit_heavy") << " ===\n";
        renderStats(os, "run.rfStats", run.rfStats);
        renderStats(os, "run.simStats", run.simStats);
        StatSet rawRf, rawSim;
        for (unsigned i = 0; i < gpu.numSms(); ++i) {
            rawRf.merge(gpu.smStats(i).rf().stats());
            rawSim.merge(gpu.smStats(i).stats());
        }
        renderStats(os, "raw.rf", rawRf);
        renderStats(os, "raw.sim", rawSim);
    }
    return os.str();
}

} // namespace

class L2StatParity : public ::testing::TestWithParam<bool>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(L2StatParity, AllEnginesMatchGolden)
{
    // Two L2-specific goldens (hit-heavy and miss-heavy + DRAM) rendered
    // in four modes — lockstep and sharded, cycle skip on and off — so
    // the shared-L2 path has byte-locked stats of its own, not only the
    // coverage it inherits from the mrf_stv_l1l2 variant above.
    const bool missHeavy = GetParam();
    const std::string path =
        std::string(PILOTRF_SOURCE_DIR) + "/tests/golden/stat_parity/" +
        (missHeavy ? "l2_miss_heavy" : "l2_hit_heavy") + ".txt";
    const std::string lockstepSkip = renderL2Parity(missHeavy, true, 1);

    if (std::getenv("PILOTRF_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << lockstepSkip;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with PILOTRF_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    expectMatchesGolden(golden.str(), lockstepSkip, "lockstep, skip on");
    expectMatchesGolden(golden.str(), renderL2Parity(missHeavy, false, 1),
                        "lockstep, skip off");
    expectMatchesGolden(golden.str(), renderL2Parity(missHeavy, true, 2),
                        "sharded, skip on");
    expectMatchesGolden(golden.str(), renderL2Parity(missHeavy, false, 2),
                        "sharded, skip off");
}

INSTANTIATE_TEST_SUITE_P(HitAndMissHeavy, L2StatParity,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "miss_heavy" : "hit_heavy";
                         });

INSTANTIATE_TEST_SUITE_P(AllWorkloads, StatParity,
                         ::testing::Values("BFS", "btree", "hotspot", "nw",
                                           "stencil", "backprop", "sad",
                                           "srad", "MUM", "kmeans",
                                           "lavaMD", "mri-q", "NN",
                                           "sgemm", "CP", "LIB", "WP"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (auto &c : s)
                                 if (c == '-')
                                     c = '_';
                             return s;
                         });
