/**
 * @file
 * Kernel IR tests: builder structure, validation, and the compiler-based
 * static profiler.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "isa/static_profiler.hh"

using namespace pilotrf;
using namespace pilotrf::isa;

TEST(Instruction, ExecClassMapping)
{
    Instruction in;
    in.op = Opcode::FFma;
    EXPECT_EQ(in.execClass(), ExecClass::Sp);
    in.op = Opcode::Rsq;
    EXPECT_EQ(in.execClass(), ExecClass::Sfu);
    in.op = Opcode::Ldg;
    EXPECT_EQ(in.execClass(), ExecClass::Mem);
    in.op = Opcode::Bra;
    EXPECT_EQ(in.execClass(), ExecClass::Ctrl);
    in.op = Opcode::Bar;
    EXPECT_EQ(in.execClass(), ExecClass::Ctrl);
}

TEST(Instruction, Predicates)
{
    Instruction in;
    in.op = Opcode::Ldg;
    in.space = MemSpace::Global;
    EXPECT_TRUE(in.isMem());
    EXPECT_TRUE(in.isLoad());
    EXPECT_TRUE(in.isGlobal());
    in.op = Opcode::Stg;
    EXPECT_FALSE(in.isLoad());
    in.op = Opcode::Bra;
    in.branch = BranchKind::LoopUniform;
    EXPECT_TRUE(in.isBackedge());
    in.branch = BranchKind::Divergent;
    EXPECT_FALSE(in.isBackedge());
}

TEST(Instruction, Disassembly)
{
    Instruction in;
    in.op = Opcode::FFma;
    in.numDsts = 1;
    in.dsts[0] = 3;
    in.numSrcs = 2;
    in.srcs[0] = 1;
    in.srcs[1] = 2;
    EXPECT_EQ(in.toString(), "ffma r3,r1,r2");
}

TEST(KernelBuilder, StraightLine)
{
    KernelBuilder b("k", 8, 64, 2);
    b.op(Opcode::Mov, 0, {1}).op(Opcode::IAdd, 2, {0, 1});
    Kernel k = b.build();
    ASSERT_EQ(k.length(), 3u); // + exit
    EXPECT_EQ(k.at(0).op, Opcode::Mov);
    EXPECT_EQ(k.at(2).op, Opcode::Exit);
    EXPECT_EQ(k.warpsPerCta(), 2u);
}

TEST(KernelBuilder, LoopBackedge)
{
    KernelBuilder b("k", 8, 32, 1);
    b.op(Opcode::Mov, 0, {1});
    b.beginLoop(5);
    b.op(Opcode::IAdd, 2, {2});
    b.endLoop();
    Kernel k = b.build();
    // mov, iadd, bra, exit
    ASSERT_EQ(k.length(), 4u);
    const auto &bra = k.at(2);
    EXPECT_EQ(bra.op, Opcode::Bra);
    EXPECT_EQ(bra.branch, BranchKind::LoopUniform);
    EXPECT_EQ(bra.target, 1u);     // loop body start
    EXPECT_EQ(bra.reconverge, 3u); // fallthrough
    EXPECT_EQ(bra.tripBase, 5u);
}

TEST(KernelBuilder, DivergentLoopFlag)
{
    KernelBuilder b("k", 4, 32, 1);
    b.beginLoop(3, 4, true);
    b.op(Opcode::IAdd, 0, {0});
    b.endLoop();
    Kernel k = b.build();
    EXPECT_EQ(k.at(1).branch, BranchKind::LoopDivergent);
    EXPECT_EQ(k.at(1).tripSpread, 4u);
}

TEST(KernelBuilder, IfRegionPatched)
{
    KernelBuilder b("k", 4, 32, 1);
    b.beginIf(0.25);
    b.op(Opcode::IAdd, 0, {0});
    b.op(Opcode::IAdd, 1, {1});
    b.endIf();
    b.op(Opcode::Mov, 2, {0});
    Kernel k = b.build();
    const auto &bra = k.at(0);
    EXPECT_EQ(bra.branch, BranchKind::Divergent);
    EXPECT_EQ(bra.target, 3u);
    EXPECT_EQ(bra.reconverge, 3u);
    EXPECT_NEAR(bra.takenFrac, 0.75f, 1e-6); // taken = skip the body
}

TEST(KernelBuilder, NestedRegions)
{
    KernelBuilder b("k", 8, 32, 1);
    b.beginLoop(2);
    b.beginIf(0.5);
    b.beginLoop(3);
    b.op(Opcode::IAdd, 0, {0});
    b.endLoop();
    b.endIf();
    b.endLoop();
    Kernel k = b.build();
    k.validate(); // structural sanity
    EXPECT_GE(k.length(), 5u);
}

TEST(KernelBuilder, MemoryOps)
{
    KernelBuilder b("k", 8, 32, 1);
    b.load(0, 1, MemSpace::Global, 8);
    b.store(1, 0, MemSpace::Shared, 2);
    Kernel k = b.build();
    EXPECT_EQ(k.at(0).op, Opcode::Ldg);
    EXPECT_EQ(k.at(0).transactions, 8u);
    EXPECT_EQ(k.at(1).op, Opcode::Sts);
    EXPECT_EQ(k.at(1).numSrcs, 2u);
}

TEST(KernelBuilder, BarrierAndExit)
{
    KernelBuilder b("k", 4, 64, 1);
    b.barrier();
    Kernel k = b.build();
    EXPECT_TRUE(k.at(0).isBarrier());
    EXPECT_TRUE(k.at(1).isExit());
}

TEST(KernelValidate, RejectsOutOfRangeRegister)
{
    KernelBuilder b("k", 4, 32, 1);
    b.op(Opcode::Mov, 3, {2});
    Kernel good = b.build();
    good.validate();

    KernelBuilder b2("k2", 4, 32, 1);
    b2.op(Opcode::Mov, 3, {2});
    Kernel k2 = b2.build();
    // Manually corrupt via a copy with smaller register budget.
    Kernel bad("bad", 2, 32, 1, {k2.code().begin(), k2.code().end()});
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(KernelValidate, RejectsMissingExit)
{
    std::vector<Instruction> code(1);
    code[0].op = Opcode::Mov;
    Kernel k("k", 4, 32, 1, code);
    EXPECT_EXIT(k.validate(), ::testing::ExitedWithCode(1),
                "does not end with exit");
}

TEST(KernelValidate, RejectsEmptyGrid)
{
    std::vector<Instruction> code(1);
    code[0].op = Opcode::Exit;
    Kernel k("k", 4, 32, 0, code);
    EXPECT_EXIT(k.validate(), ::testing::ExitedWithCode(1), "empty grid");
}

TEST(KernelBuilder, WarpsPerCtaRoundsUp)
{
    KernelBuilder b("k", 4, 61, 1);
    Kernel k = b.build();
    EXPECT_EQ(k.warpsPerCta(), 2u);
}

TEST(StaticProfiler, CountsOccurrences)
{
    KernelBuilder b("k", 8, 32, 1);
    b.op(Opcode::FFma, 0, {1, 2, 0}); // r0 x2, r1, r2
    b.op(Opcode::IAdd, 1, {0});       // r1, r0
    Kernel k = b.build();
    StaticProfile p(k);
    EXPECT_EQ(p.count(0), 3u);
    EXPECT_EQ(p.count(1), 2u);
    EXPECT_EQ(p.count(2), 1u);
    EXPECT_EQ(p.count(7), 0u);
}

TEST(StaticProfiler, TopRegistersOrderAndTies)
{
    std::vector<std::uint64_t> counts = {5, 9, 9, 1};
    const auto top = rankRegisters(counts, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], 1); // tie broken toward the lower id
    EXPECT_EQ(top[1], 2);
    EXPECT_EQ(top[2], 0);
}

TEST(StaticProfiler, TopTruncates)
{
    std::vector<std::uint64_t> counts = {1, 2};
    EXPECT_EQ(rankRegisters(counts, 8).size(), 2u);
}

TEST(StaticProfiler, LoopBodyNotWeighted)
{
    // Static analysis cannot see trip counts: one occurrence in a
    // 100-trip loop counts once.
    KernelBuilder b("k", 8, 32, 1);
    b.op(Opcode::Mov, 0, {1});
    b.op(Opcode::Mov, 0, {1});
    b.beginLoop(100);
    b.op(Opcode::IAdd, 2, {3});
    b.endLoop();
    StaticProfile p(b.build());
    EXPECT_GT(p.count(0), p.count(2));
}
