/**
 * @file
 * Unit and property tests for the 7nm FinFET device model, the inverter
 * delay model (Fig. 1) and its calibration to Table III.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/finfet.hh"
#include "circuit/inverter_chain.hh"

using namespace pilotrf::circuit;

class FinFetTest : public ::testing::Test
{
  protected:
    const TechParams &tech = finfet7();
    FinFet dev{tech};
};

TEST_F(FinFetTest, OnCurrentStvMatchesTableIII)
{
    EXPECT_NEAR(dev.onCurrentPerUm(vddStv, BackGate::Enabled), 2.372e-3,
                0.05e-3);
}

TEST_F(FinFetTest, OnCurrentNtvMatchesTableIII)
{
    EXPECT_NEAR(dev.onCurrentPerUm(vddNtv, BackGate::Enabled), 7.505e-4,
                0.4e-4);
}

TEST_F(FinFetTest, OnCurrentBackGateOffMatchesTableIII)
{
    EXPECT_NEAR(dev.onCurrentPerUm(vddStv, BackGate::Disabled), 2.427e-4,
                0.15e-4);
}

TEST_F(FinFetTest, BackGateDisabledRaisesVth)
{
    EXPECT_GT(dev.vth(BackGate::Disabled), dev.vth(BackGate::Enabled));
    EXPECT_NEAR(dev.vth(BackGate::Disabled) - dev.vth(BackGate::Enabled),
                tech.deltaVthBackGate, 1e-12);
}

TEST_F(FinFetTest, BackGateDisabledHalvesGateCap)
{
    EXPECT_DOUBLE_EQ(dev.gateCap(BackGate::Disabled),
                     dev.gateCap(BackGate::Enabled) / 2.0);
}

TEST_F(FinFetTest, CurrentMonotoneInVgs)
{
    double prev = 0.0;
    for (double vgs = 0.05; vgs <= 0.7; vgs += 0.05) {
        const double i = dev.current(vgs, 0.3, BackGate::Enabled);
        EXPECT_GT(i, prev);
        prev = i;
    }
}

TEST_F(FinFetTest, CurrentMonotoneInVds)
{
    double prev = -1.0;
    for (double vds = 0.01; vds <= 0.6; vds += 0.02) {
        const double i = dev.current(0.45, vds, BackGate::Enabled);
        EXPECT_GT(i, prev);
        prev = i;
    }
}

TEST_F(FinFetTest, ZeroVdsZeroCurrent)
{
    EXPECT_DOUBLE_EQ(dev.current(0.45, 0.0, BackGate::Enabled), 0.0);
    EXPECT_DOUBLE_EQ(dev.current(0.45, -0.1, BackGate::Enabled), 0.0);
}

TEST_F(FinFetTest, WidthScalesWithFins)
{
    FinFet wide(tech, 3);
    EXPECT_NEAR(wide.current(0.45, 0.45, BackGate::Enabled),
                3.0 * dev.current(0.45, 0.45, BackGate::Enabled), 1e-9);
    EXPECT_DOUBLE_EQ(wide.widthUm(), 3 * tech.finWidthUm);
}

TEST_F(FinFetTest, SubthresholdConductionIsExponential)
{
    // Exponential conduction well below threshold: one decade of current
    // per aSlope*ln(10)/betaI of gate voltage (the overdrive exponent
    // multiplies the subthreshold slope).
    const double i1 = dev.current(0.10, 0.3, BackGate::Enabled);
    const double step = tech.aSlope * std::log(10.0) / tech.betaI;
    const double i2 = dev.current(0.10 + step, 0.3, BackGate::Enabled);
    EXPECT_NEAR(i2 / i1, 10.0, 1.5);
}

TEST_F(FinFetTest, LeakageGrowsWithVdd)
{
    EXPECT_GT(dev.leakage(0.45, BackGate::Enabled),
              dev.leakage(0.30, BackGate::Enabled));
}

TEST_F(FinFetTest, LeakagePowerRatioMatchesTableIv)
{
    // P(NTV)/P(STV) per cell ~ 0.45 (drives the SRF leakage of Table IV).
    const double r =
        dev.leakage(vddNtv, BackGate::Enabled) * vddNtv /
        (dev.leakage(vddStv, BackGate::Enabled) * vddStv);
    EXPECT_NEAR(r, 0.453, 0.02);
}

TEST_F(FinFetTest, BackGateOffCutsLeakage)
{
    EXPECT_LT(dev.leakage(0.45, BackGate::Disabled),
              dev.leakage(0.45, BackGate::Enabled));
}

TEST_F(FinFetTest, VthVariationShiftsCurrent)
{
    FinFet slow(tech, 1, +0.05);
    FinFet fast(tech, 1, -0.05);
    const double nom = dev.current(0.3, 0.3, BackGate::Enabled);
    EXPECT_LT(slow.current(0.3, 0.3, BackGate::Enabled), nom);
    EXPECT_GT(fast.current(0.3, 0.3, BackGate::Enabled), nom);
}

// ---------------------------------------------------------------------------

TEST(InverterChain, NtvToStvRatioIsAboutThree)
{
    const auto &tech = finfet7();
    const double r =
        chainDelay(tech, vddNtv) / chainDelay(tech, vddStv);
    EXPECT_NEAR(r, 3.0, 0.25);
}

TEST(InverterChain, DelayMonotoneDecreasingInVdd)
{
    const auto &tech = finfet7();
    double prev = 1e9;
    for (double v = 0.2; v <= 0.6; v += 0.02) {
        const double d = chainDelay(tech, v);
        EXPECT_LT(d, prev);
        prev = d;
    }
}

TEST(InverterChain, SubthresholdExplodes)
{
    // Fig. 1: below Vth the delay grows by orders of magnitude.
    const auto &tech = finfet7();
    EXPECT_GT(chainDelay(tech, 0.18) / chainDelay(tech, vddStv), 20.0);
}

TEST(InverterChain, LinearInStages)
{
    const auto &tech = finfet7();
    EXPECT_NEAR(chainDelay(tech, 0.45, 80), 2 * chainDelay(tech, 0.45, 40),
                1e-15);
}

TEST(InverterChain, FanoutScalesDelay)
{
    const auto &tech = finfet7();
    EXPECT_GT(inverterDelay(tech, 0.45, 8.0), inverterDelay(tech, 0.45, 4.0));
}

TEST(InverterChain, BackGateOffIsSlower)
{
    const auto &tech = finfet7();
    EXPECT_GT(inverterDelay(tech, 0.45, 4.0, BackGate::Disabled),
              inverterDelay(tech, 0.45, 4.0, BackGate::Enabled));
}

TEST(InverterChain, Fig1SweepCoversRange)
{
    const auto pts = fig1Sweep(finfet7());
    ASSERT_GE(pts.size(), 10u);
    EXPECT_NEAR(pts.front().vdd, 0.20, 1e-9);
    EXPECT_GE(pts.back().vdd, 0.59);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].vdd, pts[i - 1].vdd);
        EXPECT_LT(pts[i].delaySec, pts[i - 1].delaySec);
    }
}

// Parameterized property sweep: current continuity across the threshold.
class CurrentContinuity : public ::testing::TestWithParam<double>
{
};

TEST_P(CurrentContinuity, NoJumpAroundVth)
{
    const auto &tech = finfet7();
    FinFet dev(tech);
    const double v = GetParam();
    const double i1 = dev.current(v, 0.3, BackGate::Enabled);
    const double i2 = dev.current(v + 0.005, 0.3, BackGate::Enabled);
    EXPECT_LT(i2 / i1, 1.35); // smooth: <35% change per 5 mV
}

INSTANTIATE_TEST_SUITE_P(AroundThreshold, CurrentContinuity,
                         ::testing::Values(0.18, 0.20, 0.22, 0.23, 0.24,
                                           0.26, 0.30, 0.35, 0.40, 0.45));
