/**
 * @file
 * Warp scheduler tests: GTO ordering, LRR rotation, two-level pool
 * transitions and RFC activation callbacks.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

namespace
{
struct Harness
{
    SimConfig cfg;
    std::vector<std::pair<WarpId, bool>> events;
    std::unique_ptr<Scheduler> sched;

    explicit Harness(SchedulerPolicy pol, unsigned pool = 4,
                     unsigned schedulers = 2, unsigned warps = 16)
    {
        cfg.policy = pol;
        cfg.tlActiveWarps = pool;
        cfg.schedulers = schedulers;
        cfg.warpsPerSm = warps;
        sched = std::make_unique<Scheduler>(
            cfg, [this](WarpId w, bool a) { events.push_back({w, a}); });
    }
};
} // namespace

TEST(GtoScheduler, OldestFirstThenGreedy)
{
    Harness h(SchedulerPolicy::Gto);
    // Launch order: 4 (age 0), 0 (age 1), 2 (age 2) on scheduler 0.
    h.sched->onWarpLaunched(4, 0);
    h.sched->onWarpLaunched(0, 1);
    h.sched->onWarpLaunched(2, 2);
    std::vector<WarpId> cand;
    h.sched->candidates(0, cand);
    ASSERT_EQ(cand.size(), 3u);
    EXPECT_EQ(cand[0], 4); // oldest first
    EXPECT_EQ(cand[1], 0);
    h.sched->noteIssue(0, 2);
    h.sched->candidates(0, cand);
    EXPECT_EQ(cand[0], 2); // greedy first now
    EXPECT_EQ(cand[1], 4);
}

TEST(GtoScheduler, FinishedWarpRemoved)
{
    Harness h(SchedulerPolicy::Gto);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(2, 1);
    h.sched->noteIssue(0, 0);
    h.sched->onWarpFinished(0);
    std::vector<WarpId> cand;
    h.sched->candidates(0, cand);
    ASSERT_EQ(cand.size(), 1u);
    EXPECT_EQ(cand[0], 2);
}

TEST(GtoScheduler, SchedulerPartition)
{
    Harness h(SchedulerPolicy::Gto);
    for (WarpId w = 0; w < 8; ++w)
        h.sched->onWarpLaunched(w, w);
    std::vector<WarpId> cand;
    h.sched->candidates(1, cand);
    for (WarpId w : cand)
        EXPECT_EQ(w % 2, 1u);
}

TEST(GtoScheduler, AlwaysEligible)
{
    Harness h(SchedulerPolicy::Gto);
    h.sched->onWarpLaunched(0, 0);
    EXPECT_TRUE(h.sched->eligible(0));
    EXPECT_TRUE(h.sched->eligible(5));
}

TEST(LrrScheduler, RotatesAfterIssue)
{
    Harness h(SchedulerPolicy::Lrr);
    for (WarpId w : {0, 2, 4, 6})
        h.sched->onWarpLaunched(w, w);
    std::vector<WarpId> cand;
    h.sched->noteIssue(0, 2);
    h.sched->candidates(0, cand);
    ASSERT_EQ(cand.size(), 4u);
    EXPECT_EQ(cand[0], 4); // starts after the last issued warp
    EXPECT_EQ(cand[3], 2);
}

TEST(TwoLevel, PoolFillsInLaunchOrder)
{
    Harness h(SchedulerPolicy::TwoLevel, 2);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(2, 1);
    h.sched->onWarpLaunched(4, 2);
    EXPECT_TRUE(h.sched->eligible(0));
    EXPECT_TRUE(h.sched->eligible(2));
    EXPECT_FALSE(h.sched->eligible(4)); // pool full
    ASSERT_EQ(h.events.size(), 2u);
    EXPECT_EQ(h.events[0], std::make_pair(WarpId(0), true));
}

TEST(TwoLevel, DemotionPromotesNextPending)
{
    Harness h(SchedulerPolicy::TwoLevel, 2);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(2, 1);
    h.sched->onWarpLaunched(4, 2);
    h.events.clear();
    h.sched->onWarpBlocked(0, true); // long-latency demotion
    EXPECT_FALSE(h.sched->eligible(0));
    EXPECT_TRUE(h.sched->eligible(4));
    // Deactivation event for 0 then activation for 4.
    ASSERT_EQ(h.events.size(), 2u);
    EXPECT_EQ(h.events[0], std::make_pair(WarpId(0), false));
    EXPECT_EQ(h.events[1], std::make_pair(WarpId(4), true));
}

TEST(TwoLevel, RequeuedWarpReturnsLater)
{
    Harness h(SchedulerPolicy::TwoLevel, 1);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(2, 1);
    h.sched->onWarpBlocked(0, true);
    EXPECT_TRUE(h.sched->eligible(2));
    h.sched->onWarpBlocked(2, true);
    EXPECT_TRUE(h.sched->eligible(0)); // came back around
}

TEST(TwoLevel, BarrierBlockedNotRequeuedUntilWakeup)
{
    Harness h(SchedulerPolicy::TwoLevel, 1);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpBlocked(0, false); // barrier: no requeue
    EXPECT_FALSE(h.sched->eligible(0));
    h.sched->onWarpWakeup(0);
    EXPECT_TRUE(h.sched->eligible(0));
}

TEST(TwoLevel, FinishedWarpLeavesPool)
{
    Harness h(SchedulerPolicy::TwoLevel, 2);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(2, 1);
    h.sched->onWarpLaunched(4, 2);
    h.sched->onWarpFinished(0);
    EXPECT_FALSE(h.sched->eligible(0));
    EXPECT_TRUE(h.sched->eligible(4)); // backfilled
}

TEST(TwoLevel, CandidatesOnlyFromActivePool)
{
    Harness h(SchedulerPolicy::TwoLevel, 2);
    for (WarpId w = 0; w < 8; w += 2)
        h.sched->onWarpLaunched(w, w);
    std::vector<WarpId> cand;
    h.sched->candidates(0, cand);
    EXPECT_EQ(cand.size(), 2u);
}

TEST(TwoLevel, RotationWithinPool)
{
    Harness h(SchedulerPolicy::TwoLevel, 2, 1);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpLaunched(1, 1);
    std::vector<WarpId> cand;
    h.sched->candidates(0, cand);
    EXPECT_EQ(cand[0], 0);
    h.sched->noteIssue(0, 0);
    h.sched->candidates(0, cand);
    EXPECT_EQ(cand[0], 1); // issued warp rotated to the back
}

TEST(TwoLevel, WakeupOfDeadWarpIgnored)
{
    Harness h(SchedulerPolicy::TwoLevel, 2);
    h.sched->onWarpLaunched(0, 0);
    h.sched->onWarpFinished(0);
    h.sched->onWarpWakeup(0);
    EXPECT_FALSE(h.sched->eligible(0));
}
