/**
 * @file
 * Tests for the extension substrates: the set-associative L1 cache model,
 * the L1-enabled memory path, and the drowsy register-file baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "power/energy_accountant.hh"
#include "regfile/drowsy_rf.hh"
#include "sim/cache.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

// --- cache model -------------------------------------------------------------

TEST(Cache, ColdMissThenHit)
{
    Cache c(16 * 1024, 4);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x107f)); // same 128B line
    EXPECT_FALSE(c.access(0x1080)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(4 * 128, 4); // one set, four ways
    EXPECT_EQ(c.sets(), 1u);
    for (std::uint64_t i = 0; i < 4; ++i)
        c.access(i * 128);
    EXPECT_TRUE(c.access(0));       // refresh line 0
    EXPECT_FALSE(c.access(4 * 128)); // evicts line 1 (LRU)
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1 * 128)); // line 1 gone
}

TEST(Cache, SetIndexing)
{
    Cache c(2 * 128 * 2, 2); // 2 sets x 2 ways
    EXPECT_EQ(c.sets(), 2u);
    // Same set (stride 2 lines), third line evicts.
    c.access(0 * 128);
    c.access(2 * 128);
    c.access(4 * 128);
    EXPECT_FALSE(c.access(0 * 128)); // evicted
    // The other set untouched by those.
    EXPECT_FALSE(c.access(1 * 128)); // cold, but present afterwards
    EXPECT_TRUE(c.access(1 * 128));
}

TEST(Cache, FlushDropsEverything)
{
    Cache c(16 * 1024, 4);
    c.access(0);
    c.flush();
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, HitRate)
{
    Cache c(16 * 1024, 4);
    c.access(0);
    c.access(0);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache(100, 3), "");
}

// --- L1-enabled memory path ----------------------------------------------------

TEST(L1Integration, RepeatedLoadsHitAndSpeedUp)
{
    setQuiet(true);
    isa::KernelBuilder b("l1", 8, 32, 1);
    b.beginLoop(10);
    b.load(1, 0, isa::MemSpace::Global, 1); // same line every iteration
    b.op(isa::Opcode::IAdd, 2, {1});
    b.endLoop();
    auto k = b.build();

    SimConfig off;
    off.numSms = 1;
    off.rfKind = RfKind::MrfStv;
    SimConfig on = off;
    on.l1Enable = true;

    Gpu gOff(off), gOn(on);
    const auto rOff = gOff.run(k);
    const auto rOn = gOn.run(k);
    EXPECT_LT(rOn.totalCycles, rOff.totalCycles);
    EXPECT_DOUBLE_EQ(rOn.simStats.get("l1.misses"), 1.0);
    EXPECT_DOUBLE_EQ(rOn.simStats.get("l1.hits"), 9.0);
}

TEST(L1Integration, SuiteCompletesWithL1)
{
    setQuiet(true);
    SimConfig c;
    c.numSms = 4;
    c.l1Enable = true;
    c.rfKind = RfKind::Partitioned;
    Gpu gpu(c);
    const auto r = gpu.run(workloads::workload("BFS").view());
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.simStats.get("l1.hits") + r.simStats.get("l1.misses"),
              0.0);
}

// --- drowsy RF ----------------------------------------------------------------

TEST(DrowsyRf, WakeupPenaltyOnIdleWarp)
{
    regfile::DrowsyRfConfig cfg;
    cfg.drowsyAfter = 10;
    regfile::DrowsyRf rf(24, cfg, 64);
    isa::KernelBuilder b("d", 8, 32, 1);
    b.op(isa::Opcode::IAdd, 0, {0});
    auto k = b.build();
    rf.kernelLaunch(k);
    rf.cycleHook(0, 0);
    rf.warpStarted(3, 0);
    EXPECT_EQ(rf.access(3, 0, false).latency, 1u); // just woke with start
    for (Cycle c = 1; c <= 20; ++c)
        rf.cycleHook(c, 0);
    EXPECT_TRUE(rf.isDrowsy(3));
    EXPECT_EQ(rf.access(3, 0, false).latency, 2u); // wake penalty
    EXPECT_EQ(rf.access(3, 0, false).latency, 1u); // now awake
    EXPECT_DOUBLE_EQ(rf.stats().get("drowsy.wakeups"), 1.0);
}

TEST(DrowsyRf, AwakeFractionTracksActivity)
{
    regfile::DrowsyRfConfig cfg;
    cfg.drowsyAfter = 5;
    regfile::DrowsyRf rf(24, cfg, 64);
    isa::KernelBuilder b("d", 8, 32, 1);
    b.op(isa::Opcode::IAdd, 0, {0});
    auto k = b.build();
    rf.kernelLaunch(k);
    rf.warpStarted(0, 0);
    for (Cycle c = 0; c < 100; ++c)
        rf.cycleHook(c, 0); // idle the whole time
    EXPECT_LT(rf.awakeFraction(), 0.2);
    EXPECT_GT(rf.awakeFraction(), 0.0);
}

TEST(DrowsyRf, EndToEndSavesLeakageNotDynamic)
{
    setQuiet(true);
    power::EnergyAccountant acct;
    const auto &wl = workloads::workload("BFS"); // memory bound: idle warps
    SimConfig base;
    base.numSms = 4;
    base.rfKind = RfKind::MrfStv;
    SimConfig drowsy = base;
    drowsy.rfKind = RfKind::Drowsy;
    Gpu gb(base), gd(drowsy);
    const auto rb = gb.run(wl.view());
    const auto rd = gd.run(wl.view());
    const auto eb = acct.account(base, rb.rfStats, rb.totalCycles);
    const auto ed = acct.account(drowsy, rd.rfStats, rd.totalCycles);
    // Leakage drops...
    EXPECT_LT(ed.leakagePowerMw, 0.8 * eb.leakagePowerMw);
    // ...but per-access dynamic energy is the full MRF cost.
    EXPECT_NEAR(ed.dynamicPj / rd.rfAccesses(), 14.9, 0.1);
    // Small performance cost from wakeups.
    EXPECT_LT(double(rd.totalCycles) / rb.totalCycles, 1.10);
}

TEST(DrowsyRf, ComparedToPartitionedOnLeakage)
{
    setQuiet(true);
    power::EnergyAccountant acct;
    SimConfig drowsy;
    drowsy.rfKind = RfKind::Drowsy;
    SimConfig part;
    part.rfKind = RfKind::Partitioned;
    // Partitioned leakage is fixed at 39% savings; drowsy depends on
    // activity but cannot beat the floor set by its factor.
    EXPECT_NEAR(acct.leakagePowerMw(part), 20.6, 0.3);
    EXPECT_NEAR(acct.leakagePowerMw(drowsy), 33.8, 0.3); // nominal
}

TEST(L2Integration, L2CatchesL1Evictions)
{
    setQuiet(true);
    // Working set: 64 distinct lines per iteration > 16KB L1 can be
    // thrashed with a tiny L1 but fits the shared L2.
    isa::KernelBuilder b("l2", 8, 32, 1);
    b.beginLoop(6);
    b.load(1, 0, isa::MemSpace::Global, 32); // 32 lines per iteration
    b.load(2, 0, isa::MemSpace::Global, 32);
    b.op(isa::Opcode::IAdd, 3, {1, 2});
    b.endLoop();
    auto k = b.build();

    SimConfig l1only;
    l1only.numSms = 1;
    l1only.l1Enable = true;
    l1only.l1SizeKb = 4; // thrash
    SimConfig both = l1only;
    both.l2Enable = true;

    Gpu g1(l1only), g2(both);
    const auto r1 = g1.run(k);
    const auto r2 = g2.run(k);
    EXPECT_GT(r2.simStats.get("l2.hits"), 0.0);
    EXPECT_LE(r2.totalCycles, r1.totalCycles);
}

TEST(L2Integration, RequiresL1)
{
    SimConfig c;
    c.l2Enable = true;
    c.l1Enable = false;
    EXPECT_DEATH(Gpu gpu(c), "requires the L1");
}

TEST(L2Integration, SuiteCompletesWithFullHierarchy)
{
    setQuiet(true);
    SimConfig c;
    c.numSms = 4;
    c.l1Enable = true;
    c.l2Enable = true;
    c.rfKind = RfKind::Partitioned;
    Gpu gpu(c);
    const auto r = gpu.run(workloads::workload("btree").view());
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.simStats.get("l2.hits") + r.simStats.get("l2.misses"),
              0.0);
}
