/**
 * @file
 * End-to-end SM/GPU integration tests with small hand-counted kernels,
 * plus parameterized full-suite completion sweeps across RF backends and
 * schedulers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "regfile/factory.hh"
#include "sim/epoch.hh"
#include "sim/gpu.hh"
#include "sim/sm.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::sim;
using namespace pilotrf::isa;

namespace
{
SimConfig
smallCfg(RfKind kind = RfKind::MrfStv)
{
    SimConfig c;
    c.numSms = 2;
    c.rfKind = kind;
    return c;
}
} // namespace

class SmGpuTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_F(SmGpuTest, StraightLineInstructionCountExact)
{
    // 4 ALU ops + exit per warp; 3 CTAs x 2 warps = 6 warps.
    KernelBuilder b("s", 8, 64, 3);
    b.op(Opcode::Mov, 0, {1});
    b.op(Opcode::IAdd, 2, {0, 1});
    b.op(Opcode::IAdd, 3, {2, 0});
    b.op(Opcode::FMul, 4, {3, 2});
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    EXPECT_EQ(r.totalInstructions, 6u * 5u);
    EXPECT_GT(r.totalCycles, 0u);
}

TEST_F(SmGpuTest, RegisterAccessCountsExact)
{
    // One warp; mov r0<-r1 reads r1 once and writes r0 once per warp.
    KernelBuilder b("ra", 8, 32, 1);
    b.op(Opcode::Mov, 0, {1});
    b.op(Opcode::IAdd, 2, {0, 1});
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    ASSERT_EQ(r.kernels.size(), 1u);
    const auto &reg = r.kernels[0].regAccess;
    EXPECT_EQ(reg[0], 2u); // write by mov, read by iadd
    EXPECT_EQ(reg[1], 2u); // read twice
    EXPECT_EQ(reg[2], 1u); // written once
    EXPECT_DOUBLE_EQ(r.rfStats.get("access.reads"), 3.0);
    EXPECT_DOUBLE_EQ(r.rfStats.get("access.writes"), 2.0);
}

TEST_F(SmGpuTest, DuplicateSourceReadOnce)
{
    KernelBuilder b("dup", 8, 32, 1);
    b.op(Opcode::FMul, 1, {0, 0});
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    EXPECT_DOUBLE_EQ(r.rfStats.get("access.reads"), 1.0);
}

TEST_F(SmGpuTest, LoopBodyExecutionsScaleInstructions)
{
    const unsigned trips = 9;
    KernelBuilder b("l", 8, 32, 1);
    b.beginLoop(trips);
    b.op(Opcode::IAdd, 0, {0});
    b.endLoop();
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    // body x9 + backedge x9 + exit = 19 per warp.
    EXPECT_EQ(r.totalInstructions, 19u);
}

TEST_F(SmGpuTest, BarrierSynchronizesCta)
{
    KernelBuilder b("bar", 8, 128, 2); // 4 warps per CTA
    b.op(Opcode::IAdd, 0, {0});
    b.barrier();
    b.op(Opcode::IAdd, 1, {1});
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    EXPECT_DOUBLE_EQ(r.simStats.get("barriers.released"), 2.0);
    EXPECT_EQ(r.totalInstructions, 8u * 4u); // 4 instrs x 8 warps
}

TEST_F(SmGpuTest, MultiWaveCtaLaunch)
{
    // 1 SM config, CTAs exceed the concurrent limit -> multiple waves.
    SimConfig c = smallCfg();
    c.numSms = 1;
    c.maxCtasPerSm = 2;
    KernelBuilder b("w", 8, 256, 7);
    b.op(Opcode::IAdd, 0, {0});
    Gpu gpu(c);
    const auto r = gpu.run(b.build());
    EXPECT_DOUBLE_EQ(r.simStats.get("ctas.launched"), 7.0);
    EXPECT_DOUBLE_EQ(r.simStats.get("ctas.completed"), 7.0);
}

TEST_F(SmGpuTest, MemoryInstructionsRoundTrip)
{
    KernelBuilder b("m", 8, 32, 1);
    b.load(1, 0, MemSpace::Global, 4);
    b.op(Opcode::IAdd, 2, {1}); // depends on the load
    b.store(0, 2, MemSpace::Global, 1);
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    EXPECT_EQ(r.totalInstructions, 4u);
    EXPECT_DOUBLE_EQ(r.simStats.get("mem.transactions"), 5.0);
    // The dependent chain must take at least the memory latency.
    EXPECT_GT(r.totalCycles, 230u);
}

TEST_F(SmGpuTest, SharedMemoryFaster)
{
    auto run = [&](MemSpace space) {
        KernelBuilder b("m", 8, 32, 1);
        b.load(1, 0, space, 1);
        b.op(Opcode::IAdd, 2, {1});
        Gpu gpu(smallCfg());
        return gpu.run(b.build()).totalCycles;
    };
    EXPECT_LT(run(MemSpace::Shared), run(MemSpace::Global));
}

TEST_F(SmGpuTest, DivergentIfBothPathsExecute)
{
    KernelBuilder b("d", 8, 32, 1, 3);
    b.beginIf(0.5);
    b.op(Opcode::IAdd, 0, {0});
    b.endIf();
    b.op(Opcode::IAdd, 1, {1});
    Gpu gpu(smallCfg());
    const auto r = gpu.run(b.build());
    // body + join op + branch + exit = 4 warp instructions.
    EXPECT_EQ(r.totalInstructions, 4u);
}

TEST_F(SmGpuTest, NtvRfSlowsExecution)
{
    KernelBuilder b("chain", 8, 256, 4);
    // Long dependent ALU chain: RF latency is on the critical path.
    for (int i = 0; i < 10; ++i)
        b.op(Opcode::IAdd, 1, {1, 2});
    Gpu fast(smallCfg(RfKind::MrfStv));
    Gpu slow(smallCfg(RfKind::MrfNtv));
    auto k = b.build();
    EXPECT_LT(fast.run(k).totalCycles, slow.run(k).totalCycles);
}

TEST_F(SmGpuTest, DeterministicAcrossRuns)
{
    const auto &w = workloads::workload("srad");
    Gpu a(smallCfg(RfKind::Partitioned));
    Gpu b(smallCfg(RfKind::Partitioned));
    EXPECT_EQ(a.run(w.view()).totalCycles, b.run(w.view()).totalCycles);
}

TEST_F(SmGpuTest, MultiKernelSequencing)
{
    const auto &w = workloads::workload("backprop");
    Gpu gpu(smallCfg(RfKind::Partitioned));
    const auto r = gpu.run(w.view());
    ASSERT_EQ(r.kernels.size(), 2u);
    EXPECT_GT(r.kernels[0].cycles, 0u);
    EXPECT_GT(r.kernels[1].cycles, 0u);
    EXPECT_EQ(r.totalCycles, r.kernels[0].cycles + r.kernels[1].cycles);
    // The pilot reprofiles per kernel: disjoint hot sets.
    EXPECT_NE(r.kernels[0].pilotHot, r.kernels[1].pilotHot);
}

TEST_F(SmGpuTest, AccessesConservedAcrossBackends)
{
    // Total RF reads+writes must not depend on the backend.
    KernelBuilder b("c", 12, 64, 4);
    b.op(Opcode::FFma, 4, {5, 6, 4});
    b.op(Opcode::IAdd, 7, {4});
    auto k = b.build();
    double counts[3];
    int i = 0;
    for (auto kind :
         {RfKind::MrfStv, RfKind::Partitioned, RfKind::Rfc}) {
        Gpu gpu(smallCfg(kind));
        const auto r = gpu.run(k);
        counts[i++] = r.rfStats.get("access.reads") +
                      r.rfStats.get("access.writes");
    }
    EXPECT_DOUBLE_EQ(counts[0], counts[1]);
    EXPECT_DOUBLE_EQ(counts[0], counts[2]);
}

TEST_F(SmGpuTest, PartitionedModeCountsSumToAccesses)
{
    const auto &w = workloads::workload("kmeans");
    Gpu gpu(smallCfg(RfKind::Partitioned));
    const auto r = gpu.run(w.view());
    const double modes = r.rfStats.get("access.FRF_high") +
                         r.rfStats.get("access.FRF_low") +
                         r.rfStats.get("access.SRF");
    // The one-off remap traffic is counted against the modes (energy)
    // but is not an architected operand access.
    const double remap = 2.0 * r.rfStats.get("swap.remapMoves");
    EXPECT_DOUBLE_EQ(modes, r.rfAccesses() + remap);
}

TEST_F(SmGpuTest, TopRegistersUnsaturatedAt64Bits)
{
    // The seed clamped counts to 0xffffffff before ranking, so two
    // registers beyond 4G accesses tied and ranked by id. The ranking is
    // 64-bit now.
    KernelResult kr;
    kr.regAccess = {5, 0x1'0000'0000ull, 0x2'0000'0000ull, 7};
    const auto top = kr.topRegisters(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 2u);
    EXPECT_EQ(top[1], 1u);
}

TEST_F(SmGpuTest, AccessFractionIgnoresOutOfRangeRegs)
{
    KernelResult kr;
    kr.regAccess = {1, 3, 0, 4};
    EXPECT_DOUBLE_EQ(kr.accessFraction({1, 3}), 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(kr.accessFraction({RegId(200)}), 0.0);
    EXPECT_DOUBLE_EQ(kr.accessFraction({}), 0.0);
}

TEST_F(SmGpuTest, WatchdogFires)
{
    SimConfig c = smallCfg();
    c.maxCycles = 10; // absurdly small
    KernelBuilder b("wd", 8, 32, 1);
    b.beginLoop(1000);
    b.op(Opcode::IAdd, 0, {0});
    b.endLoop();
    Gpu gpu(c);
    auto k = b.build();
    EXPECT_EXIT(gpu.run(k), ::testing::ExitedWithCode(1), "watchdog");
}

namespace
{

/** Minimal CTA dispenser for driving a single Sm by hand. */
struct StubCtaSource final : CtaSource
{
    explicit StubCtaSource(unsigned total_) : total(total_) {}
    bool next(CtaId &id) override
    {
        if (n >= total)
            return false;
        id = n++;
        return true;
    }
    bool exhausted() const override { return n >= total; }
    unsigned total;
    unsigned n = 0;
};

} // namespace

TEST_F(SmGpuTest, NextEventCycleSoundAndMonotonic)
{
    // Memory-heavy kernel: warps spend long spans stalled on ~230-cycle
    // global loads, so the horizon must repeatedly jump far ahead.
    KernelBuilder b("ev", 8, 64, 3);
    b.load(1, 0, MemSpace::Global, 4);
    b.op(Opcode::IAdd, 2, {1});
    b.store(0, 2, MemSpace::Global, 1);
    const auto k = b.build();

    SimConfig c;
    c.numSms = 1;
    StubCtaSource src(k.numCtas());
    Sm sm(c, SmId(0), regfile::makeRegisterFile(c));
    sm.startKernel(&k, 0, src);

    // Single-step the whole kernel through the sealed stepping API
    // (one-cycle epochs, local skip off), checking the horizon contract
    // at every cycle: nextEventCycle(t) >= t always; after a dead cycle
    // the horizon never moves backwards; and no activity may occur
    // inside a span the horizon promised dead.
    Cycle t = 0, noEventBefore = 0, prevHorizon = 0, maxLead = 0;
    unsigned prevActivity = 1;
    while (!sm.finishedKernel()) {
        ASSERT_LT(t, Cycle(1'000'000)) << "runaway kernel";
        ASSERT_EQ(sm.localCycle(), t);
        const Cycle h = sm.nextEventCycle(t);
        ASSERT_GE(h, t);
        if (prevActivity == 0 && h != kNeverCycle) {
            if (prevHorizon != kNeverCycle) {
                ASSERT_GE(h, prevHorizon)
                    << "horizon moved backwards at cycle " << t;
            }
            noEventBefore = std::max(noEventBefore, h);
            maxLead = std::max(maxLead, h - t);
        }
        EpochContext ctx;
        ctx.epochEnd = t + 1;
        ctx.watchdogLimit = c.maxCycles;
        StepResult r = sm.step(ctx);
        unsigned activity = unsigned(r.activity);
        while (r.stop == StepStop::NeedsCta) {
            activity += sm.resolveLaunch(src);
            r = sm.step(ctx);
            activity += unsigned(r.activity);
        }
        if (r.stop == StepStop::Finished)
            break;
        if (activity != 0) {
            ASSERT_GE(t, noEventBefore)
                << "activity inside a promised-dead span at cycle " << t;
        }
        prevHorizon = h;
        prevActivity = activity;
        ++t;
    }
    // A fully-stalled SM must report a horizon well beyond now + 1: the
    // global-load latency dwarfs the pipeline depth.
    EXPECT_GT(maxLead, 50u);
}

TEST_F(SmGpuTest, CycleSkipArchitecturallyInvisible)
{
    const auto &w = workloads::workload("BFS");
    SimConfig on = smallCfg(RfKind::Partitioned); // skip defaults to on
    SimConfig off = on;
    off.enableCycleSkip = false;
    Gpu a(on), b(off);
    const auto ra = a.run(w.view());
    const auto rb = b.run(w.view());
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.totalInstructions, rb.totalInstructions);
    EXPECT_DOUBLE_EQ(ra.rfAccesses(), rb.rfAccesses());
    // The memory-bound workload must actually exercise the fast-forward.
    EXPECT_GT(a.fastForwardedCycles(), 0u);
    EXPECT_EQ(b.fastForwardedCycles(), 0u);
}

TEST_F(SmGpuTest, ManyCollectorsExerciseMultiWordFreeSet)
{
    // > 64 collectors: the busy-collector bitset spans multiple words,
    // covering the wrap-around and firstClear paths beyond word 0.
    SimConfig on = smallCfg();
    on.collectors = 70;
    SimConfig off = on;
    off.enableCycleSkip = false;
    const auto &w = workloads::workload("hotspot");
    Gpu a(on), b(off);
    const auto ra = a.run(w.view());
    const auto rb = b.run(w.view());
    EXPECT_GT(ra.totalCycles, 0u);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_DOUBLE_EQ(ra.rfAccesses(), rb.rfAccesses());
}

// Parameterized completion sweep: every workload completes under every
// backend/scheduler combination and produces self-consistent stats.
using SweepParam = std::tuple<const char *, RfKind, SchedulerPolicy>;

class SuiteSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(SuiteSweep, CompletesWithConsistentStats)
{
    const auto [name, kind, policy] = GetParam();
    SimConfig c;
    c.numSms = 4; // small but multi-SM
    c.rfKind = kind;
    c.policy = policy;
    Gpu gpu(c);
    const auto r = gpu.run(workloads::workload(name).view());
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_GT(r.rfAccesses(), 0.0);
    double regTotal = 0;
    for (const auto &k : r.kernels)
        for (auto cnt : k.regAccess)
            regTotal += double(cnt);
    EXPECT_DOUBLE_EQ(regTotal, r.rfAccesses());
    EXPECT_DOUBLE_EQ(r.simStats.get("ctas.launched"),
                     r.simStats.get("ctas.completed"));
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByBackend, SuiteSweep,
    ::testing::Combine(
        ::testing::Values("BFS", "hotspot", "nw", "backprop", "sgemm",
                          "CP", "LIB", "WP"),
        ::testing::Values(RfKind::MrfStv, RfKind::MrfNtv,
                          RfKind::Partitioned, RfKind::Rfc),
        ::testing::Values(SchedulerPolicy::Gto, SchedulerPolicy::Lrr,
                          SchedulerPolicy::TwoLevel)),
    [](const auto &info) {
        std::string s = std::string(std::get<0>(info.param)) + "_" +
                        toString(std::get<1>(info.param)) + "_" +
                        toString(std::get<2>(info.param));
        for (auto &ch : s)
            if (ch == '@' || ch == '-')
                ch = '_';
        return s;
    });
