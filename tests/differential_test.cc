/**
 * @file
 * Differential testing: the pipelined SM must execute exactly the same
 * dynamic instruction stream as a purely functional reference built on
 * WarpContext alone. For every workload kernel we compare per-register
 * access counts and total executed instructions between the two — timing
 * must never change *what* executes.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/gpu.hh"
#include "sim/warp_context.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

namespace
{

/** Functional reference: run every warp of the grid to completion and
 *  tally operand accesses and executed instructions. */
struct FunctionalResult
{
    std::vector<std::uint64_t> regAccess =
        std::vector<std::uint64_t>(maxRegsPerThread, 0);
    std::uint64_t instructions = 0;
};

FunctionalResult
runFunctional(const isa::Kernel &k)
{
    FunctionalResult out;
    for (CtaId cta = 0; cta < k.numCtas(); ++cta) {
        unsigned threadsLeft = k.threadsPerCta();
        for (unsigned wic = 0; wic < k.warpsPerCta(); ++wic) {
            const unsigned threads = std::min(threadsLeft, warpSize);
            threadsLeft -= threads;
            WarpContext w;
            w.launch(&k, cta, wic, 0, 0, threads);
            while (!w.done()) {
                const auto &in = w.nextInstr();
                ++out.instructions;
                // Count operand accesses the way the SM does: one read
                // per distinct source register, one write per dest.
                for (unsigned i = 0; i < in.numSrcs; ++i) {
                    bool dup = false;
                    for (unsigned j = 0; j < i; ++j)
                        dup |= in.srcs[j] == in.srcs[i];
                    if (!dup)
                        ++out.regAccess[in.srcs[i]];
                }
                for (unsigned i = 0; i < in.numDsts; ++i)
                    ++out.regAccess[in.dsts[i]];
                w.executeControl(in);
            }
        }
    }
    return out;
}

} // namespace

class Differential : public ::testing::TestWithParam<const char *>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(Differential, PipelineMatchesFunctionalReference)
{
    const auto &wl = workloads::workload(GetParam());

    SimConfig cfg;
    cfg.numSms = 3; // odd SM count: different CTA placement than default
    cfg.rfKind = RfKind::MrfStv;
    Gpu gpu(cfg);
    const auto piped = gpu.run(wl.view());

    FunctionalResult func;
    for (const auto &k : wl.kernels) {
        const auto f = runFunctional(k);
        for (std::size_t i = 0; i < f.regAccess.size(); ++i)
            func.regAccess[i] += f.regAccess[i];
        func.instructions += f.instructions;
    }

    EXPECT_EQ(piped.totalInstructions, func.instructions);
    std::vector<std::uint64_t> pipedReg(maxRegsPerThread, 0);
    for (const auto &k : piped.kernels)
        for (std::size_t i = 0; i < k.regAccess.size(); ++i)
            pipedReg[i] += k.regAccess[i];
    EXPECT_EQ(pipedReg, func.regAccess);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, Differential,
                         ::testing::Values("BFS", "btree", "hotspot", "nw",
                                           "stencil", "backprop", "sad",
                                           "srad", "MUM", "kmeans",
                                           "lavaMD", "mri-q", "NN",
                                           "sgemm", "CP", "LIB", "WP"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (auto &c : s)
                                 if (c == '-')
                                     c = '_';
                             return s;
                         });
