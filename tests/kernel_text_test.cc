/**
 * @file
 * Kernel text format tests: parsing the structured assembly, error
 * reporting, and disassembly round trips.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "isa/kernel_text.hh"
#include "isa/static_profiler.hh"

using namespace pilotrf;
using namespace pilotrf::isa;

TEST(KernelText, ParsesHeader)
{
    const auto k = parseKernel(
        ".kernel foo regs=13 threads=256 ctas=480 seed=7\n"
        "  iadd r1, r2\n");
    EXPECT_EQ(k.name(), "foo");
    EXPECT_EQ(k.regsPerThread(), 13u);
    EXPECT_EQ(k.threadsPerCta(), 256u);
    EXPECT_EQ(k.numCtas(), 480u);
    EXPECT_EQ(k.seed(), 7u);
    ASSERT_EQ(k.length(), 2u); // iadd + implicit exit
    EXPECT_EQ(k.at(0).op, Opcode::IAdd);
    EXPECT_TRUE(k.at(1).isExit());
}

TEST(KernelText, ParsesAluOperands)
{
    const auto k = parseKernel(".kernel f regs=8 threads=32 ctas=1\n"
                               "ffma r5, r4, r6, r5\n");
    const auto &in = k.at(0);
    EXPECT_EQ(in.op, Opcode::FFma);
    EXPECT_EQ(in.numDsts, 1u);
    EXPECT_EQ(in.dsts[0], 5);
    EXPECT_EQ(in.numSrcs, 3u);
    EXPECT_EQ(in.srcs[0], 4);
    EXPECT_EQ(in.srcs[2], 5);
}

TEST(KernelText, ParsesMemory)
{
    const auto k = parseKernel(
        ".kernel f regs=8 threads=32 ctas=1\n"
        "ld.global.t8 r2, [r1]\n"
        "st.shared [r0], r2\n");
    EXPECT_EQ(k.at(0).op, Opcode::Ldg);
    EXPECT_EQ(k.at(0).transactions, 8u);
    EXPECT_EQ(k.at(0).dsts[0], 2);
    EXPECT_EQ(k.at(0).srcs[0], 1);
    EXPECT_EQ(k.at(1).op, Opcode::Sts);
    EXPECT_EQ(k.at(1).srcs[0], 0);
    EXPECT_EQ(k.at(1).srcs[1], 2);
}

TEST(KernelText, ParsesLoop)
{
    const auto k = parseKernel(
        ".kernel f regs=8 threads=32 ctas=1\n"
        "loop 12 spread 4 divergent {\n"
        "  iadd r0, r0\n"
        "}\n");
    const auto &bra = k.at(1);
    EXPECT_EQ(bra.branch, BranchKind::LoopDivergent);
    EXPECT_EQ(bra.tripBase, 12u);
    EXPECT_EQ(bra.tripSpread, 4u);
    EXPECT_EQ(bra.target, 0u);
}

TEST(KernelText, ParsesIfAndBarrier)
{
    const auto k = parseKernel(
        ".kernel f regs=8 threads=64 ctas=1\n"
        "if 0.25 {\n"
        "  fmul r1, r1, r2\n"
        "}\n"
        "bar\n");
    EXPECT_EQ(k.at(0).branch, BranchKind::Divergent);
    EXPECT_NEAR(k.at(0).takenFrac, 0.75f, 1e-6);
    EXPECT_TRUE(k.at(2).isBarrier());
}

TEST(KernelText, ParsesUniformIf)
{
    const auto k = parseKernel(".kernel f regs=8 threads=32 ctas=1\n"
                               "if 0.5 uniform {\n"
                               "  iadd r0, r0\n"
                               "}\n");
    EXPECT_EQ(k.at(0).branch, BranchKind::Uniform);
}

TEST(KernelText, NestedRegions)
{
    const auto k = parseKernel(
        ".kernel f regs=8 threads=32 ctas=2 seed=3\n"
        "loop 3 {\n"
        "  if 0.5 {\n"
        "    loop 2 {\n"
        "      iadd r0, r0\n"
        "    }\n"
        "  }\n"
        "}\n");
    k.validate();
    EXPECT_GE(k.length(), 5u);
}

TEST(KernelText, CommentsIgnored)
{
    const auto k = parseKernel(
        "# a comment line\n"
        ".kernel f regs=8 threads=32 ctas=1  // trailing\n"
        "iadd r0, r0  # also trailing\n");
    EXPECT_EQ(k.length(), 2u);
}

TEST(KernelText, ErrorsAreFatal)
{
    EXPECT_EXIT(parseKernel(""), ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(parseKernel("iadd r0, r1\n"), ::testing::ExitedWithCode(1),
                ".kernel");
    EXPECT_EXIT(parseKernel(".kernel f regs=8 threads=32 ctas=1\n"
                            "bogus r0\n"),
                ::testing::ExitedWithCode(1), "unknown instruction");
    EXPECT_EXIT(parseKernel(".kernel f regs=8 threads=32 ctas=1\n"
                            "loop 3 {\n iadd r0, r0\n"),
                ::testing::ExitedWithCode(1), "unclosed");
    EXPECT_EXIT(parseKernel(".kernel f regs=8 threads=32 ctas=1\n"
                            "iadd r99, r0\n"),
                ::testing::ExitedWithCode(1), "register");
    EXPECT_EXIT(parseKernel(".kernel f threads=32 ctas=1\n"),
                ::testing::ExitedWithCode(1), "regs=");
}

TEST(KernelText, ParsedEqualsBuilt)
{
    // The same kernel built via text and via the builder must be
    // instruction-for-instruction identical.
    const auto parsed = parseKernel(
        ".kernel eq regs=13 threads=256 ctas=480 seed=9\n"
        "iadd r0, r1\n"
        "ld.global.t1 r4, [r0]\n"
        "loop 12 {\n"
        "  ffma r5, r4, r6, r5\n"
        "}\n"
        "st.global.t1 [r0], r5\n");

    KernelBuilder b("eq", 13, 256, 480, 9);
    b.op(Opcode::IAdd, 0, {1});
    b.load(4, 0, MemSpace::Global, 1);
    b.beginLoop(12);
    b.op(Opcode::FFma, 5, {4, 6, 5});
    b.endLoop();
    b.store(0, 5, MemSpace::Global, 1);
    const auto built = b.build();

    EXPECT_EQ(disassemble(parsed), disassemble(built));
}

TEST(KernelText, DisassemblyContainsStructure)
{
    const auto k = parseKernel(".kernel dis regs=8 threads=32 ctas=1\n"
                               "loop 5 spread 2 {\n"
                               "  iadd r0, r0\n"
                               "}\n");
    const auto text = disassemble(k);
    EXPECT_NE(text.find(".kernel dis"), std::string::npos);
    EXPECT_NE(text.find("loop trips=5+2"), std::string::npos);
    EXPECT_NE(text.find("exit"), std::string::npos);
}

TEST(KernelText, StaticProfileOfParsedKernel)
{
    const auto k = parseKernel(".kernel p regs=8 threads=32 ctas=1\n"
                               "ffma r5, r4, r6, r5\n"
                               "iadd r5, r5\n");
    StaticProfile sp(k);
    EXPECT_EQ(sp.count(5), 4u);
    EXPECT_EQ(sp.count(4), 1u);
}
