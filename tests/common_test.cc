/**
 * @file
 * Unit tests for the common library: deterministic hashing, the xoshiro
 * RNG, the stats registry, the typed counter blocks, and the JSON
 * parser.
 */

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/counters.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "common/stats.hh"

using namespace pilotrf;

TEST(Splitmix, Deterministic)
{
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Splitmix, MixesSingleBitChanges)
{
    // Flipping one input bit should flip roughly half the output bits.
    const auto a = splitmix64(0x1234);
    const auto b = splitmix64(0x1235);
    const int bits = __builtin_popcountll(a ^ b);
    EXPECT_GT(bits, 16);
    EXPECT_LT(bits, 48);
}

TEST(HashCoords, OrderSensitive)
{
    EXPECT_NE(hashCoords(1, 2, 3), hashCoords(3, 2, 1));
    EXPECT_NE(hashCoords(1, 2), hashCoords(2, 1));
}

TEST(HashCoords, ArityMatters)
{
    EXPECT_NE(hashCoords(1, 2), hashCoords(1, 2, 0));
}

TEST(HashToUnit, InUnitInterval)
{
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const double u = hashToUnit(splitmix64(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(HashToUnit, RoughlyUniform)
{
    double sum = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i)
        sum += hashToUnit(splitmix64(i));
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(7), c2(8);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, UniformRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(99);
    double sum = 0, sumSq = 0;
    const unsigned n = 50000;
    for (unsigned i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sumSq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng r(5);
    double sum = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i)
        sum += r.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BelowBounds)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const auto v = r.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
    s.add("x", 2.5);
    s.add("x", 1.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 4.0);
    EXPECT_TRUE(s.has("x"));
}

TEST(StatSet, SetOverrides)
{
    StatSet s;
    s.add("x", 10);
    s.set("x", 3);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
}

TEST(StatSet, Merge)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("y", 3);
    b.add("z", 4);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
}

TEST(StatSet, Clear)
{
    StatSet s;
    s.add("x", 1);
    s.clear();
    EXPECT_FALSE(s.has("x"));
}

TEST(StatSet, DumpSorted)
{
    StatSet s;
    s.add("b", 2);
    s.add("a", 1);
    std::ostringstream os;
    s.dump(os);
    const auto text = os.str();
    EXPECT_LT(text.find("a"), text.find("b"));
}

TEST(StatSet, WithPrefix)
{
    StatSet s;
    s.add("access.read", 3);
    s.add("access.write", 4);
    const StatSet p = s.withPrefix("rf.");
    EXPECT_DOUBLE_EQ(p.get("rf.access.read"), 3.0);
    EXPECT_DOUBLE_EQ(p.get("rf.access.write"), 4.0);
    EXPECT_FALSE(p.has("access.read"));
    // The original is untouched.
    EXPECT_TRUE(s.has("access.read"));

    StatSet merged;
    merged.merge(s.withPrefix("rf."));
    merged.merge(s.withPrefix("rf."));
    EXPECT_DOUBLE_EQ(merged.get("rf.access.read"), 6.0);
}

TEST(StatSet, ToJson)
{
    StatSet s;
    s.add("b.count", 2);
    s.add("a.frac", 0.5);
    std::ostringstream os;
    s.toJson(os);
    EXPECT_EQ(os.str(), "{\n  \"a.frac\": 0.5,\n  \"b.count\": 2\n}");

    std::ostringstream empty;
    StatSet().toJson(empty);
    EXPECT_EQ(empty.str(), "{}");
}

TEST(Json, NumberFormatting)
{
    const auto str = [](double v) {
        std::ostringstream os;
        jsonNumber(os, v);
        return os.str();
    };
    EXPECT_EQ(str(0), "0");
    EXPECT_EQ(str(42), "42");
    EXPECT_EQ(str(-7), "-7");
    EXPECT_EQ(str(1e15), "1000000000000000");
    EXPECT_EQ(str(0.5), "0.5");
    // JSON has no inf/nan: a bad divide (e.g. zero-cycle energy rate)
    // must never produce an unparseable report.
    EXPECT_EQ(str(std::nan("")), "null");
    EXPECT_EQ(str(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(str(-std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(str(0.0 / 0.0), "null");
    // Round-trips exactly.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(str(v)), v);
}

TEST(Json, NonFiniteStatsStayValidJson)
{
    StatSet s;
    s.set("good", 2.0);
    s.set("bad", std::numeric_limits<double>::infinity());
    std::ostringstream os;
    s.toJson(os);
    EXPECT_EQ(os.str(), "{\n  \"bad\": null,\n  \"good\": 2\n}");
}

TEST(Json, StringEscaping)
{
    std::ostringstream os;
    jsonString(os, "a\"b\\c\nd");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(CounterBlock, RegisterIncrementValue)
{
    CounterBlock b;
    const auto h1 = b.add("events.a");
    const auto h2 = b.add("events.b");
    EXPECT_NE(h1, h2);
    EXPECT_EQ(b.size(), 2u);
    b.inc(h1);
    b.inc(h1, 4);
    EXPECT_EQ(b.value(h1), 5u);
    EXPECT_EQ(b.value(h2), 0u);
    EXPECT_EQ(b.name(h1), "events.a");
}

TEST(CounterBlock, AddIsIdempotentPerName)
{
    CounterBlock b;
    const auto h1 = b.add("events.a");
    const auto h2 = b.add("events.a");
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(b.size(), 1u);
    b.inc(h1, 2);
    b.inc(h2, 3);
    EXPECT_EQ(b.value(h1), 5u);
}

TEST(CounterBlock, SnapshotOnlyTouchedCounters)
{
    CounterBlock b;
    const auto hot = b.add("hot");
    const auto zero = b.add("zeroDelta");
    b.add("untouched");
    b.inc(hot, 7);
    b.inc(zero, 0); // the seed's add(name, 0) created the key: so do we

    StatSet s;
    b.snapshotInto(s);
    EXPECT_TRUE(s.has("hot"));
    EXPECT_DOUBLE_EQ(s.get("hot"), 7.0);
    EXPECT_TRUE(s.has("zeroDelta"));
    EXPECT_DOUBLE_EQ(s.get("zeroDelta"), 0.0);
    EXPECT_FALSE(s.has("untouched"));
}

TEST(CounterBlock, SnapshotWritesAbsoluteValues)
{
    CounterBlock b;
    const auto hc = b.add("c");
    b.inc(hc, 2);
    StatSet s;
    b.snapshotInto(s);
    b.inc(hc, 3);
    b.snapshotInto(s); // re-snapshot must not double count
    EXPECT_DOUBLE_EQ(s.get("c"), 5.0);
}

TEST(CounterBlock, SetIsAbsolute)
{
    CounterBlock b;
    const auto hc = b.add("c");
    b.inc(hc, 9);
    b.set(hc, 4);
    EXPECT_EQ(b.value(hc), 4u);
    EXPECT_TRUE(b.touched(hc));
}

TEST(CounterBlock, ResetKeepsRegistrations)
{
    CounterBlock b;
    const auto hc = b.add("c");
    b.inc(hc, 6);
    b.reset();
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(b.value(hc), 0u);
    EXPECT_FALSE(b.touched(hc));
    StatSet s;
    b.snapshotInto(s);
    EXPECT_FALSE(s.has("c"));
}

// ---------------------------------------------------------------------
// The JSON parser (common/json.hh) — used to read checkpoint manifests
// back; must round-trip everything our writers emit, bit-exactly.
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndStructure)
{
    JsonValue v;
    ASSERT_TRUE(jsonParse(
        R"({"a": 1, "b": [true, false, null], "c": {"d": "x"}})", v));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.numberOr("a", -1), 1.0);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_EQ(b->array[0].kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_FALSE(b->array[1].boolean);
    EXPECT_EQ(b->array[2].kind, JsonValue::Kind::Null);
    const JsonValue *c = v.find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->stringOr("d", ""), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);
}

TEST(Json, StringEscapesRoundTrip)
{
    // Everything jsonString() can emit must parse back to the original.
    const std::string original = "a\"b\\c\nd\te\rf\x01g";
    std::ostringstream os;
    jsonString(os, original);
    JsonValue v;
    ASSERT_TRUE(jsonParse(os.str(), v));
    EXPECT_EQ(v.kind, JsonValue::Kind::String);
    EXPECT_EQ(v.str, original);

    JsonValue u;
    ASSERT_TRUE(jsonParse(R"("Aé\/")", u));
    EXPECT_EQ(u.str, "A\xc3\xa9/");
}

TEST(Json, NumbersRoundTripBitExactly)
{
    // jsonNumber prints max_digits10 significant digits; strtod must
    // recover the exact double — resume byte-identity depends on it.
    const double values[] = {0.0,    1.0,   -17.0,       0.1,
                             1.0 / 3.0,     6.02214076e23,
                             2966.0, 5e-324, 1.7976931348623157e308};
    for (const double d : values) {
        std::ostringstream os;
        jsonNumber(os, d);
        JsonValue v;
        ASSERT_TRUE(jsonParse(os.str(), v)) << os.str();
        EXPECT_EQ(v.kind, JsonValue::Kind::Number);
        EXPECT_EQ(v.number, d) << os.str();
    }
}

TEST(Json, StatSetToJsonRoundTrips)
{
    StatSet s;
    s.set("access.FRF_high", 12345);
    s.set("rfc.readHit", 0.25);
    s.set("weird \"key\"", -1.5e-7);
    std::ostringstream os;
    s.toJson(os, 2);
    JsonValue v;
    std::string err;
    ASSERT_TRUE(jsonParse(os.str(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.object.size(), s.raw().size());
    for (const auto &[k, val] : s.raw())
        EXPECT_EQ(v.numberOr(k, std::nan("")), val) << k;
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(jsonParse("", v, &err));
    EXPECT_FALSE(jsonParse("{", v, &err));
    EXPECT_FALSE(jsonParse("{\"a\" 1}", v, &err));
    EXPECT_FALSE(jsonParse("[1, 2,]", v, &err));
    EXPECT_FALSE(jsonParse("\"unterminated", v, &err));
    EXPECT_FALSE(jsonParse("tru", v, &err));
    EXPECT_FALSE(jsonParse("{} garbage", v, &err));
    EXPECT_FALSE(err.empty());
}
