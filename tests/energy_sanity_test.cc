/**
 * @file
 * Energy sanity across the whole matrix: for every Table-I workload x RF
 * backend, the `power::EnergyAccountant` report must be finite and
 * non-negative in every component, the component energies must sum to
 * the reported dynamic total, and leakage energy must equal leakage
 * power x runtime. Runs through the experiment runner on all cores.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exp/experiment.hh"
#include "power/energy_accountant.hh"

using namespace pilotrf;

namespace
{

exp::Sweep
allBackendsSweep()
{
    std::vector<exp::ConfigVariant> configs;
    for (auto kind :
         {sim::RfKind::MrfStv, sim::RfKind::MrfNtv, sim::RfKind::Partitioned,
          sim::RfKind::Rfc, sim::RfKind::Drowsy}) {
        sim::SimConfig cfg;
        cfg.rfKind = kind;
        configs.push_back({sim::toString(kind), cfg});
    }
    return exp::Sweep::overSuite("energy_sanity", std::move(configs));
}

} // namespace

TEST(EnergySanity, EveryWorkloadEveryBackend)
{
    setQuiet(true);
    const exp::Sweep sweep = allBackendsSweep();
    const auto res = exp::ExperimentRunner(0).run(sweep);
    ASSERT_EQ(res.summary().ok, res.jobs.size());

    for (const auto &j : res.jobs) {
        SCOPED_TRACE(j.job.workload + " x " + j.job.configLabel);
        const power::EnergyReport &e = j.energy;

        const double components[] = {
            e.dynamicPj,      e.frfPj,     e.srfPj,
            e.mrfPj,          e.rfcPj,     e.overheadPj,
            e.leakagePowerMw, e.leakageUj, e.runSeconds,
        };
        for (const double v : components) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
        }

        // The components partition the dynamic total.
        const double sum =
            e.frfPj + e.srfPj + e.mrfPj + e.rfcPj + e.overheadPj;
        EXPECT_NEAR(e.dynamicPj, sum, 1e-9 * std::max(1.0, e.dynamicPj));

        // Leakage energy is leakage power x runtime (mW*s in uJ), and a
        // non-empty run must burn some dynamic energy and some leakage.
        EXPECT_NEAR(e.leakageUj, e.leakagePowerMw * e.runSeconds * 1e3,
                    1e-9 * std::max(1.0, e.leakageUj));
        EXPECT_GT(j.run.totalInstructions, 0u);
        EXPECT_GT(e.dynamicPj, 0.0);
        EXPECT_GT(e.leakageUj, 0.0);

        // The backend's share lands where the organization says it must.
        if (j.job.configLabel == "Partitioned") {
            EXPECT_GT(e.frfPj + e.srfPj, 0.0);
            EXPECT_EQ(e.rfcPj, 0.0);
        } else if (j.job.configLabel == "RFC") {
            EXPECT_GT(e.rfcPj, 0.0);
        } else {
            // MRF@STV, MRF@NTV, Drowsy: monolithic array only.
            EXPECT_GT(e.mrfPj, 0.0);
            EXPECT_EQ(e.frfPj + e.srfPj + e.rfcPj, 0.0);
        }
    }
}
