/**
 * @file
 * Workload suite tests: Table I geometry, category structure, and the
 * specific register-access facts the paper quotes (backprop's r0 vs r6
 * ratio and per-kernel hot sets, sgemm's static-first-4 vs top-4 gap).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/static_profiler.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::workloads;

namespace
{
sim::RunResult
runOn(const Workload &w, sim::RfKind kind = sim::RfKind::Partitioned)
{
    setQuiet(true);
    sim::SimConfig c;
    c.numSms = 4;
    c.rfKind = kind;
    sim::Gpu gpu(c);
    return gpu.run(w.view());
}
} // namespace

TEST(Workloads, SeventeenWorkloadsRegistered)
{
    EXPECT_EQ(allWorkloads().size(), 17u);
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workload("sgemm").name, "sgemm");
    EXPECT_EXIT(workload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, AllKernelsValidate)
{
    for (const auto &w : allWorkloads())
        for (const auto &k : w.kernels)
            k.validate();
}

struct TableIRow
{
    const char *name;
    unsigned regs, threads, category;
};

class TableIGeometry : public ::testing::TestWithParam<TableIRow>
{
};

TEST_P(TableIGeometry, MatchesPaper)
{
    const auto row = GetParam();
    const auto &w = workload(row.name);
    EXPECT_EQ(w.category, row.category);
    for (const auto &k : w.kernels) {
        EXPECT_EQ(k.regsPerThread(), row.regs);
        EXPECT_EQ(k.threadsPerCta(), row.threads);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableIGeometry,
    ::testing::Values(
        TableIRow{"BFS", 7, 256, 1}, TableIRow{"btree", 15, 508, 1},
        TableIRow{"hotspot", 27, 256, 1}, TableIRow{"nw", 21, 16, 1},
        TableIRow{"stencil", 15, 1024, 1},
        TableIRow{"backprop", 13, 256, 1}, TableIRow{"sad", 29, 61, 1},
        TableIRow{"srad", 12, 256, 1}, TableIRow{"MUM", 15, 256, 1},
        TableIRow{"kmeans", 9, 256, 2}, TableIRow{"lavaMD", 6, 128, 2},
        TableIRow{"mri-q", 12, 512, 2}, TableIRow{"NN", 10, 169, 2},
        TableIRow{"sgemm", 27, 128, 2}, TableIRow{"CP", 12, 128, 2},
        TableIRow{"LIB", 18, 64, 3}, TableIRow{"WP", 8, 64, 3}),
    [](const auto &info) {
        std::string s = info.param.name;
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s;
    });

TEST(Workloads, BackpropR0SixTimesR6)
{
    const auto r = runOn(workload("backprop"));
    const auto &k1 = r.kernels[0].regAccess;
    ASSERT_GT(k1[6], 0u);
    EXPECT_NEAR(double(k1[0]) / double(k1[6]), 6.0, 1.5);
}

TEST(Workloads, BackpropKernelHotSetsDisjoint)
{
    const auto r = runOn(workload("backprop"));
    const auto t1 = r.kernels[0].topRegisters(3);
    const auto t2 = r.kernels[1].topRegisters(3);
    // Sec. II: k1 hot {r0, r8, r9}; k2 hot {r4, r5, r6}.
    EXPECT_EQ(std::set<RegId>(t1.begin(), t1.end()),
              (std::set<RegId>{0, 8, 9}));
    EXPECT_EQ(std::set<RegId>(t2.begin(), t2.end()),
              (std::set<RegId>{4, 5, 6}));
}

TEST(Workloads, CpHotRegisters)
{
    const auto r = runOn(workload("CP"));
    const auto top = r.kernels[0].topRegisters(3);
    EXPECT_EQ(std::set<RegId>(top.begin(), top.end()),
              (std::set<RegId>{1, 9, 10}));
}

TEST(Workloads, SgemmStaticFirstFourVsTopFour)
{
    // Sec. III: static first-4 allocation captures ~25% of sgemm accesses
    // while the actual top-4 capture ~55%.
    const auto r = runOn(workload("sgemm"));
    const auto &k = r.kernels[0];
    const double first4 = k.accessFraction({0, 1, 2, 3});
    const double top4 = k.topNFraction(4);
    EXPECT_NEAR(first4, 0.25, 0.07);
    EXPECT_NEAR(top4, 0.55, 0.10);
    EXPECT_GT(top4, first4 + 0.2);
}

TEST(Workloads, Category2CompilerMisses)
{
    // For Cat-2 workloads the static top-4 covers >10% fewer accesses
    // than the true top-4.
    for (const char *name : {"kmeans", "mri-q", "NN", "sgemm", "CP"}) {
        const auto r = runOn(workload(name));
        const auto &k = r.kernels[0];
        const double comp = k.accessFraction(k.staticHot);
        const double opt = k.topNFraction(4);
        EXPECT_GT(opt - comp, 0.10) << name;
    }
}

TEST(Workloads, Category1CompilerClose)
{
    // For most Cat-1 workloads static profiling is within ~18% of optimal.
    for (const char *name : {"BFS", "btree", "hotspot", "srad", "sad"}) {
        const auto r = runOn(workload(name));
        const auto &k = r.kernels[0];
        const double comp = k.accessFraction(k.staticHot);
        const double opt = k.topNFraction(4);
        EXPECT_LT(opt - comp, 0.18) << name;
    }
}

TEST(Workloads, Category3PilotUnrepresentative)
{
    // WP: compiler beats the pilot by >10% (Fig. 4 Cat-3 structure).
    const auto r = runOn(workload("WP"));
    const auto &k = r.kernels[0];
    EXPECT_GT(k.accessFraction(k.staticHot),
              k.accessFraction(k.pilotHot) + 0.10);
}

TEST(Workloads, PilotMatchesOptimalForCat1And2)
{
    // The pilot-identified set covers nearly as much as the true top-4.
    for (const char *name : {"BFS", "srad", "kmeans", "mri-q", "sgemm"}) {
        const auto r = runOn(workload(name));
        const auto &k = r.kernels[0];
        EXPECT_GT(k.accessFraction(k.pilotHot),
                  k.topNFraction(4) - 0.05)
            << name;
    }
}

TEST(Workloads, TopNFractionsInPaperBand)
{
    // Suite-wide averages near the Fig. 2 numbers (62/72/77%).
    double s3 = 0, s4 = 0, s5 = 0;
    unsigned n = 0;
    for (const auto &w : allWorkloads()) {
        const auto r = runOn(w);
        s3 += r.kernels[0].topNFraction(3);
        s4 += r.kernels[0].topNFraction(4);
        s5 += r.kernels[0].topNFraction(5);
        ++n;
    }
    EXPECT_NEAR(s3 / n, 0.62, 0.08);
    EXPECT_NEAR(s4 / n, 0.72, 0.08);
    EXPECT_NEAR(s5 / n, 0.77, 0.10);
}

TEST(Workloads, AccessRankStableAcrossCtas)
{
    // Sec. III-A: the sorted register rank is the same no matter which
    // warp is the pilot — verify rank stability across two different
    // simulated GPU shapes (different CTA interleavings).
    setQuiet(true);
    for (const char *name : {"srad", "kmeans"}) {
        sim::SimConfig a, b;
        a.numSms = 2;
        b.numSms = 5;
        a.rfKind = b.rfKind = sim::RfKind::MrfStv;
        sim::Gpu ga(a), gb(b);
        const auto ra = ga.run(workload(name).view());
        const auto rb = gb.run(workload(name).view());
        EXPECT_EQ(ra.kernels[0].topRegisters(4),
                  rb.kernels[0].topRegisters(4))
            << name;
    }
}
