/**
 * @file
 * SIMT reconvergence stack tests: uniform and divergent branches, loop
 * peeling, nested divergence and reconvergence pops.
 */

#include <gtest/gtest.h>

#include "sim/simt_stack.hh"

using namespace pilotrf;
using pilotrf::sim::SimtStack;

TEST(SimtStack, InitState)
{
    SimtStack s;
    s.init(fullMask);
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, PartialLaunchMask)
{
    SimtStack s;
    s.init(0x1fffffff); // 29 live lanes
    EXPECT_EQ(s.mask(), 0x1fffffffu);
}

TEST(SimtStack, AdvanceIncrements)
{
    SimtStack s;
    s.init(fullMask);
    s.advance();
    s.advance();
    EXPECT_EQ(s.pc(), 2u);
}

TEST(SimtStack, UniformTaken)
{
    SimtStack s;
    s.init(fullMask);
    s.branch(fullMask, 10, 12);
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.mask(), fullMask);
}

TEST(SimtStack, UniformNotTaken)
{
    SimtStack s;
    s.init(fullMask);
    s.setPc(4);
    s.branch(0, 10, 12);
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergentIfThenReconverge)
{
    // if-skip branch at pc 0: taken lanes jump to the join at pc 3.
    SimtStack s;
    s.init(fullMask);
    const ActiveMask taken = 0x0000ffff;
    s.branch(taken, 3, 3);
    // Taken target == rpc: those lanes wait; body executes with the rest.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask(), ~taken);
    EXPECT_EQ(s.depth(), 2u);
    s.advance(); // pc 2
    s.advance(); // pc 3 == rpc -> pop
    EXPECT_EQ(s.pc(), 3u);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergentBothPaths)
{
    // Branch at pc 0, target 5, rpc 8: both paths pushed, taken first.
    SimtStack s;
    s.init(fullMask);
    const ActiveMask taken = 0xff;
    s.branch(taken, 5, 8);
    EXPECT_EQ(s.depth(), 3u);
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.mask(), taken);
    // Run the taken path to the reconvergence point.
    s.setPc(8);
    // Now the not-taken path runs from pc 1.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask(), ActiveMask(~taken));
    s.setPc(8);
    // Fully reconverged.
    EXPECT_EQ(s.pc(), 8u);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, LoopPeelsLanesUntilEmpty)
{
    // Backedge at pc 3, loop head 1, rpc 4 (fallthrough).
    SimtStack s;
    s.init(fullMask);
    s.setPc(3);
    ActiveMask continuing = 0x0000fffe; // lane 0 exits in iteration 1
    s.branch(continuing, 1, 4);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask(), continuing);
    s.setPc(3);
    // Second iteration: everyone exits.
    s.branch(0, 1, 4);
    EXPECT_EQ(s.pc(), 4u);
    EXPECT_EQ(s.mask(), fullMask); // reconverged with the peeled lane
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.init(fullMask);
    s.branch(0xffff, 10, 20); // outer split
    EXPECT_EQ(s.pc(), 10u);
    s.branch(0xff, 15, 18); // inner split within the taken path
    EXPECT_EQ(s.pc(), 15u);
    EXPECT_EQ(s.mask(), 0xffu);
    s.setPc(18); // inner taken reaches inner rpc
    EXPECT_EQ(s.pc(), 11u);
    EXPECT_EQ(s.mask(), 0xff00u);
    s.setPc(18);
    EXPECT_EQ(s.pc(), 18u);
    EXPECT_EQ(s.mask(), 0xffffu);
    s.setPc(20); // outer taken reaches outer rpc
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask(), 0xffff0000u);
    s.setPc(20);
    EXPECT_EQ(s.mask(), fullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, MaskSubsetEnforced)
{
    SimtStack s;
    s.init(0xff);
    EXPECT_DEATH(s.branch(0x100, 2, 3), "outside active mask");
}
