/**
 * @file
 * The experiment runner's core contract: a parallel sweep is
 * bit-identical to a serial one, per-job seeds are pure functions of the
 * job's names, and the JSON report layer is deterministic.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exp/report.hh"
#include "exp/sweeps.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

namespace
{

class ExpRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** 3 workloads x 2 RfKinds, the fastest Table-I entries. */
    static exp::Sweep smoke() { return exp::namedSweep("smoke"); }
};

TEST_F(ExpRunnerTest, ExpandIsWorkloadMajorAndComplete)
{
    const auto sweep = smoke();
    const auto jobs = exp::ExperimentRunner::expand(sweep);
    ASSERT_EQ(jobs.size(), 6u);
    // workload-major, then config, then seed.
    EXPECT_EQ(jobs[0].workload, "WP");
    EXPECT_EQ(jobs[0].configLabel, "mrf_stv");
    EXPECT_EQ(jobs[1].workload, "WP");
    EXPECT_EQ(jobs[1].configLabel, "partitioned");
    EXPECT_EQ(jobs[4].workload, "CP");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST_F(ExpRunnerTest, JobSeedsAreStableAcrossRuns)
{
    const auto jobs1 = exp::ExperimentRunner::expand(smoke());
    const auto jobs2 = exp::ExperimentRunner::expand(smoke());
    ASSERT_EQ(jobs1.size(), jobs2.size());
    for (std::size_t i = 0; i < jobs1.size(); ++i)
        EXPECT_EQ(jobs1[i].jobSeed, jobs2[i].jobSeed) << "job " << i;

    // The seed is a pure function of (baseSeed, names, seed) — pinned
    // here so any change to the derivation is a deliberate, visible one.
    EXPECT_EQ(exp::deriveJobSeed(0, "WP", "mrf_stv", 0),
              jobs1[0].jobSeed);
    EXPECT_EQ(jobs1[0].jobSeed, 0x86f39dfced2e28dfull);

    // Sensitive to every coordinate.
    EXPECT_NE(exp::deriveJobSeed(0, "WP", "mrf_stv", 1), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(1, "WP", "mrf_stv", 0), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(0, "LIB", "mrf_stv", 0), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(0, "WP", "partitioned", 0),
              jobs1[0].jobSeed);

    // ... and independent of axis position: every pair distinct.
    for (std::size_t i = 0; i < jobs1.size(); ++i)
        for (std::size_t j = i + 1; j < jobs1.size(); ++j)
            EXPECT_NE(jobs1[i].jobSeed, jobs1[j].jobSeed);
}

TEST_F(ExpRunnerTest, FourThreadsMatchSerialBitExactly)
{
    const auto sweep = smoke();
    const auto serial = exp::ExperimentRunner(1).run(sweep);
    const auto parallel = exp::ExperimentRunner(4).run(sweep);

    ASSERT_EQ(serial.jobs.size(), 6u);
    ASSERT_EQ(parallel.jobs.size(), serial.jobs.size());
    EXPECT_EQ(serial.threads, 1u);
    EXPECT_EQ(parallel.threads, 4u);

    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        const auto &s = serial.jobs[i];
        const auto &p = parallel.jobs[i];
        EXPECT_EQ(s.job.workload, p.job.workload);
        EXPECT_EQ(s.job.configLabel, p.job.configLabel);
        EXPECT_EQ(s.run.totalCycles, p.run.totalCycles) << s.job.workload;
        EXPECT_EQ(s.run.totalInstructions, p.run.totalInstructions);
        EXPECT_EQ(s.run.rfStats.raw(), p.run.rfStats.raw());
        EXPECT_EQ(s.run.simStats.raw(), p.run.simStats.raw());
        EXPECT_EQ(s.energy.dynamicPj, p.energy.dynamicPj);
        ASSERT_EQ(s.run.kernels.size(), p.run.kernels.size());
        for (std::size_t k = 0; k < s.run.kernels.size(); ++k) {
            EXPECT_EQ(s.run.kernels[k].cycles, p.run.kernels[k].cycles);
            EXPECT_EQ(s.run.kernels[k].regAccess,
                      p.run.kernels[k].regAccess);
        }
    }

    EXPECT_EQ(serial.mergedStats().raw(), parallel.mergedStats().raw());

    // Timing aside, the reports are byte-identical.
    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    EXPECT_EQ(exp::toJsonString(serial, noTiming),
              exp::toJsonString(parallel, noTiming));
}

TEST_F(ExpRunnerTest, RunnerMatchesDirectGpuAtSeedZero)
{
    // The thin-wrapper contract: a seed-0 job is the exact run the old
    // ad-hoc helpers produced by driving sim::Gpu directly.
    const auto &w = workloads::workload("LIB");
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;

    sim::Gpu gpu(cfg);
    const auto direct = gpu.run(w.kernels);

    exp::Sweep s;
    s.name = "one";
    s.workloads = {"LIB"};
    s.configs = {{"part", cfg}};
    const auto res = exp::ExperimentRunner(2).run(s);

    ASSERT_EQ(res.jobs.size(), 1u);
    EXPECT_EQ(res.jobs[0].run.totalCycles, direct.totalCycles);
    EXPECT_EQ(res.jobs[0].run.totalInstructions, direct.totalInstructions);
    EXPECT_EQ(res.jobs[0].run.rfStats.raw(), direct.rfStats.raw());
    EXPECT_EQ(res.jobs[0].run.simStats.raw(), direct.simStats.raw());
}

TEST_F(ExpRunnerTest, SeedAxisIsDeterministicAndReseedsKernels)
{
    exp::Sweep s;
    s.name = "seeded";
    s.workloads = {"WP"};
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    s.configs = {{"part", cfg}};
    s.seeds = {0, 1, 2};

    const auto a = exp::ExperimentRunner(3).run(s);
    const auto b = exp::ExperimentRunner(1).run(s);
    ASSERT_EQ(a.jobs.size(), 3u);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].run.totalCycles, b.jobs[i].run.totalCycles);
        EXPECT_EQ(a.jobs[i].run.rfStats.raw(), b.jobs[i].run.rfStats.raw());
    }
    // Replicates draw different branch/trip-count streams; the instruction
    // mix should not be identical across all three seeds.
    EXPECT_FALSE(a.jobs[0].run.totalInstructions ==
                     a.jobs[1].run.totalInstructions &&
                 a.jobs[1].run.totalInstructions ==
                     a.jobs[2].run.totalInstructions);
}

TEST_F(ExpRunnerTest, MergedStatsUseHierarchicalPrefixes)
{
    const auto res = exp::ExperimentRunner(4).run(smoke());
    const auto merged = res.mergedStats();
    ASSERT_FALSE(merged.raw().empty());
    double rfSum = 0;
    for (const auto &[k, v] : merged.raw()) {
        EXPECT_TRUE(k.rfind("rf.", 0) == 0 || k.rfind("sim.", 0) == 0)
            << "unprefixed merged key: " << k;
        (void)v;
    }
    for (const auto &j : res.jobs)
        rfSum += j.run.rfStats.get("access.SRF");
    EXPECT_DOUBLE_EQ(merged.get("rf.access.SRF"), rfSum);
}

TEST_F(ExpRunnerTest, NamedSweepsExpand)
{
    for (const auto &name : exp::sweepNames()) {
        const auto sweep = exp::namedSweep(name);
        EXPECT_EQ(sweep.name, name);
        EXPECT_GT(sweep.jobCount(), 0u);
        EXPECT_FALSE(exp::sweepDescription(name).empty());
        // Expansion resolves every workload name against the registry.
        const auto jobs = exp::ExperimentRunner::expand(sweep);
        EXPECT_EQ(jobs.size(), sweep.jobCount());
    }
}

TEST_F(ExpRunnerTest, ReportJsonShape)
{
    const auto res = exp::ExperimentRunner(2).run(smoke());
    const std::string json = exp::toJsonString(res);
    EXPECT_NE(json.find("\"sweep\": \"smoke\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"WP\""), std::string::npos);
    EXPECT_NE(json.find("\"rf.access.SRF\""), std::string::npos);
    EXPECT_NE(json.find("\"dynamicPj\""), std::string::npos);
    EXPECT_NE(json.find("\"wallSeconds\""), std::string::npos);
    EXPECT_NE(json.find("\"merged\""), std::string::npos);

    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    const std::string bare = exp::toJsonString(res, noTiming);
    EXPECT_EQ(bare.find("wallSeconds"), std::string::npos);
    EXPECT_EQ(bare.find("\"threads\""), std::string::npos);
}

} // namespace
