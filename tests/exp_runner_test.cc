/**
 * @file
 * The experiment runner's core contract: a parallel sweep is
 * bit-identical to a serial one, per-job seeds are pure functions of the
 * job's names, and the JSON report layer is deterministic.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweeps.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

namespace
{

/** RAII failure-injection hook registration. */
class ScopedJobHook
{
  public:
    explicit ScopedJobHook(exp::JobHook hook)
    {
        exp::setJobHook(std::move(hook));
    }
    ~ScopedJobHook() { exp::clearJobHook(); }
};

/** A fresh manifest path under the gtest temp dir. */
std::string
manifestPath(const char *tag)
{
    const std::string path = ::testing::TempDir() + "pilotrf_ck_" + tag +
                             ".jsonl";
    std::remove(path.c_str());
    return path;
}

/** Keep the first n lines of the manifest — a simulated mid-sweep kill
 *  (CheckpointWriter flushes per line, so a real kill truncates too). */
void
truncateManifest(const std::string &path, std::size_t n)
{
    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::vector<std::string> lines;
    for (std::string l; std::getline(in, l);)
        lines.push_back(l);
    ASSERT_GT(lines.size(), n);
    in.close();
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < n; ++i)
        out << lines[i] << "\n";
}

bool
isJob(const exp::Job &job, const char *workload, const char *config)
{
    return job.workload == workload && job.configLabel == config;
}

class ExpRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { exp::clearJobHook(); }

    /** 3 workloads x 2 RfKinds, the fastest Table-I entries. */
    static exp::Sweep smoke() { return exp::namedSweep("smoke"); }
};

TEST_F(ExpRunnerTest, ExpandIsWorkloadMajorAndComplete)
{
    const auto sweep = smoke();
    const auto jobs = exp::ExperimentRunner::expand(sweep);
    ASSERT_EQ(jobs.size(), 6u);
    // workload-major, then config, then seed.
    EXPECT_EQ(jobs[0].workload, "WP");
    EXPECT_EQ(jobs[0].configLabel, "mrf_stv");
    EXPECT_EQ(jobs[1].workload, "WP");
    EXPECT_EQ(jobs[1].configLabel, "partitioned");
    EXPECT_EQ(jobs[4].workload, "CP");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST_F(ExpRunnerTest, JobSeedsAreStableAcrossRuns)
{
    const auto jobs1 = exp::ExperimentRunner::expand(smoke());
    const auto jobs2 = exp::ExperimentRunner::expand(smoke());
    ASSERT_EQ(jobs1.size(), jobs2.size());
    for (std::size_t i = 0; i < jobs1.size(); ++i)
        EXPECT_EQ(jobs1[i].jobSeed, jobs2[i].jobSeed) << "job " << i;

    // The seed is a pure function of (baseSeed, names, seed) — pinned
    // here so any change to the derivation is a deliberate, visible one.
    EXPECT_EQ(exp::deriveJobSeed(0, "WP", "mrf_stv", 0),
              jobs1[0].jobSeed);
    EXPECT_EQ(jobs1[0].jobSeed, 0x86f39dfced2e28dfull);

    // Sensitive to every coordinate.
    EXPECT_NE(exp::deriveJobSeed(0, "WP", "mrf_stv", 1), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(1, "WP", "mrf_stv", 0), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(0, "LIB", "mrf_stv", 0), jobs1[0].jobSeed);
    EXPECT_NE(exp::deriveJobSeed(0, "WP", "partitioned", 0),
              jobs1[0].jobSeed);

    // ... and independent of axis position: every pair distinct.
    for (std::size_t i = 0; i < jobs1.size(); ++i)
        for (std::size_t j = i + 1; j < jobs1.size(); ++j)
            EXPECT_NE(jobs1[i].jobSeed, jobs1[j].jobSeed);
}

TEST_F(ExpRunnerTest, FourThreadsMatchSerialBitExactly)
{
    const auto sweep = smoke();
    const auto serial = exp::ExperimentRunner(1).run(sweep);
    const auto parallel = exp::ExperimentRunner(4).run(sweep);

    ASSERT_EQ(serial.jobs.size(), 6u);
    ASSERT_EQ(parallel.jobs.size(), serial.jobs.size());
    EXPECT_EQ(serial.threads, 1u);
    EXPECT_EQ(parallel.threads, 4u);

    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        const auto &s = serial.jobs[i];
        const auto &p = parallel.jobs[i];
        EXPECT_EQ(s.job.workload, p.job.workload);
        EXPECT_EQ(s.job.configLabel, p.job.configLabel);
        EXPECT_EQ(s.run.totalCycles, p.run.totalCycles) << s.job.workload;
        EXPECT_EQ(s.run.totalInstructions, p.run.totalInstructions);
        EXPECT_EQ(s.run.rfStats.raw(), p.run.rfStats.raw());
        EXPECT_EQ(s.run.simStats.raw(), p.run.simStats.raw());
        EXPECT_EQ(s.energy.dynamicPj, p.energy.dynamicPj);
        ASSERT_EQ(s.run.kernels.size(), p.run.kernels.size());
        for (std::size_t k = 0; k < s.run.kernels.size(); ++k) {
            EXPECT_EQ(s.run.kernels[k].cycles, p.run.kernels[k].cycles);
            EXPECT_EQ(s.run.kernels[k].regAccess,
                      p.run.kernels[k].regAccess);
        }
    }

    EXPECT_EQ(serial.mergedStats().raw(), parallel.mergedStats().raw());

    // Timing aside, the reports are byte-identical.
    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    EXPECT_EQ(exp::toJsonString(serial, noTiming),
              exp::toJsonString(parallel, noTiming));
}

TEST_F(ExpRunnerTest, RunnerMatchesDirectGpuAtSeedZero)
{
    // The thin-wrapper contract: a seed-0 job is the exact run the old
    // ad-hoc helpers produced by driving sim::Gpu directly.
    const auto &w = workloads::workload("LIB");
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;

    sim::Gpu gpu(cfg);
    const auto direct = gpu.run(w.view());

    exp::Sweep s;
    s.name = "one";
    s.workloads = {"LIB"};
    s.configs = {{"part", cfg}};
    const auto res = exp::ExperimentRunner(2).run(s);

    ASSERT_EQ(res.jobs.size(), 1u);
    EXPECT_EQ(res.jobs[0].run.totalCycles, direct.totalCycles);
    EXPECT_EQ(res.jobs[0].run.totalInstructions, direct.totalInstructions);
    EXPECT_EQ(res.jobs[0].run.rfStats.raw(), direct.rfStats.raw());
    EXPECT_EQ(res.jobs[0].run.simStats.raw(), direct.simStats.raw());
}

TEST_F(ExpRunnerTest, SeedAxisIsDeterministicAndReseedsKernels)
{
    exp::Sweep s;
    s.name = "seeded";
    s.workloads = {"WP"};
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    s.configs = {{"part", cfg}};
    s.seeds = {0, 1, 2};

    const auto a = exp::ExperimentRunner(3).run(s);
    const auto b = exp::ExperimentRunner(1).run(s);
    ASSERT_EQ(a.jobs.size(), 3u);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].run.totalCycles, b.jobs[i].run.totalCycles);
        EXPECT_EQ(a.jobs[i].run.rfStats.raw(), b.jobs[i].run.rfStats.raw());
    }
    // Replicates draw different branch/trip-count streams; the instruction
    // mix should not be identical across all three seeds.
    EXPECT_FALSE(a.jobs[0].run.totalInstructions ==
                     a.jobs[1].run.totalInstructions &&
                 a.jobs[1].run.totalInstructions ==
                     a.jobs[2].run.totalInstructions);
}

TEST_F(ExpRunnerTest, MergedStatsUseHierarchicalPrefixes)
{
    const auto res = exp::ExperimentRunner(4).run(smoke());
    const auto merged = res.mergedStats();
    ASSERT_FALSE(merged.raw().empty());
    double rfSum = 0;
    for (const auto &[k, v] : merged.raw()) {
        EXPECT_TRUE(k.rfind("rf.", 0) == 0 || k.rfind("sim.", 0) == 0)
            << "unprefixed merged key: " << k;
        (void)v;
    }
    for (const auto &j : res.jobs)
        rfSum += j.run.rfStats.get("access.SRF");
    EXPECT_DOUBLE_EQ(merged.get("rf.access.SRF"), rfSum);
}

TEST_F(ExpRunnerTest, NamedSweepsExpand)
{
    for (const auto &name : exp::sweepNames()) {
        const auto sweep = exp::namedSweep(name);
        EXPECT_EQ(sweep.name, name);
        EXPECT_GT(sweep.jobCount(), 0u);
        EXPECT_FALSE(exp::sweepDescription(name).empty());
        // Expansion resolves every workload name against the registry.
        const auto jobs = exp::ExperimentRunner::expand(sweep);
        EXPECT_EQ(jobs.size(), sweep.jobCount());
    }
}

TEST_F(ExpRunnerTest, ReportJsonShape)
{
    const auto res = exp::ExperimentRunner(2).run(smoke());
    const std::string json = exp::toJsonString(res);
    EXPECT_NE(json.find("\"sweep\": \"smoke\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"WP\""), std::string::npos);
    EXPECT_NE(json.find("\"rf.access.SRF\""), std::string::npos);
    EXPECT_NE(json.find("\"dynamicPj\""), std::string::npos);
    EXPECT_NE(json.find("\"wallSeconds\""), std::string::npos);
    EXPECT_NE(json.find("\"merged\""), std::string::npos);

    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    const std::string bare = exp::toJsonString(res, noTiming);
    EXPECT_EQ(bare.find("wallSeconds"), std::string::npos);
    EXPECT_EQ(bare.find("\"threads\""), std::string::npos);
    EXPECT_EQ(bare.find("\"resumed\""), std::string::npos);
    EXPECT_EQ(bare.find("\"attempts\""), std::string::npos);
    // Status and the outcome summary are part of the deterministic report.
    EXPECT_NE(bare.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(bare.find("\"summary\""), std::string::npos);
    EXPECT_NE(bare.find("\"ok\": 6"), std::string::npos);
}

// ---------------------------------------------------------------------
// Fault tolerance: exception capture, retry accounting, the timeout
// watchdog, checkpoint streaming and --resume byte-identity.
// ---------------------------------------------------------------------

TEST_F(ExpRunnerTest, ThrowingJobLosesOnlyItsOwnResults)
{
    const auto clean = exp::ExperimentRunner(1).run(smoke());

    ScopedJobHook hook([](const exp::Job &job, unsigned,
                          const std::atomic<bool> &) {
        if (isJob(job, "WP", "partitioned"))
            throw std::runtime_error("injected fault");
    });
    const auto res = exp::ExperimentRunner(4).run(smoke());

    ASSERT_EQ(res.jobs.size(), clean.jobs.size());
    const auto sum = res.summary();
    EXPECT_EQ(sum.ok, 5u);
    EXPECT_EQ(sum.failed, 1u);
    EXPECT_EQ(sum.timeout, 0u);
    for (std::size_t i = 0; i < res.jobs.size(); ++i) {
        const auto &j = res.jobs[i];
        if (isJob(j.job, "WP", "partitioned")) {
            EXPECT_EQ(j.status, exp::JobStatus::Failed);
            EXPECT_EQ(j.error, "injected fault");
            EXPECT_EQ(j.statusString(), "failed:injected fault");
            EXPECT_EQ(j.attempts, 1u);
            EXPECT_EQ(j.run.totalCycles, 0u);
        } else {
            // Siblings are bit-identical to an uninjected run.
            EXPECT_EQ(j.status, exp::JobStatus::Ok);
            EXPECT_EQ(j.run.totalCycles, clean.jobs[i].run.totalCycles);
            EXPECT_EQ(j.run.rfStats.raw(), clean.jobs[i].run.rfStats.raw());
        }
    }
    const std::string json = exp::toJsonString(res);
    EXPECT_NE(json.find("\"status\": \"failed:injected fault\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
}

TEST_F(ExpRunnerTest, RetryWithBackoffCountsAttempts)
{
    const auto clean = exp::ExperimentRunner(1).run(smoke());

    // One job fails twice, then succeeds; everything else is clean.
    std::atomic<unsigned> calls{0};
    ScopedJobHook hook([&](const exp::Job &job, unsigned attempt,
                           const std::atomic<bool> &) {
        if (!isJob(job, "CP", "mrf_stv"))
            return;
        ++calls;
        if (attempt <= 2)
            throw std::runtime_error("transient");
    });

    exp::RunnerOptions opts;
    opts.maxRetries = 3;
    opts.retryBackoffMs = 1;
    const auto res = exp::ExperimentRunner(2, opts).run(smoke());

    const auto *j = res.find("CP", "mrf_stv");
    ASSERT_NE(j, nullptr);
    EXPECT_EQ(j->status, exp::JobStatus::Ok);
    EXPECT_EQ(j->attempts, 3u);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(res.summary().ok, res.jobs.size());

    // The flaky job's eventual result matches a clean run exactly.
    const auto *c = clean.find("CP", "mrf_stv");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(j->run.totalCycles, c->run.totalCycles);
    EXPECT_EQ(j->run.rfStats.raw(), c->run.rfStats.raw());
}

TEST_F(ExpRunnerTest, RetriesExhaustedClassifiesFailed)
{
    std::atomic<unsigned> calls{0};
    ScopedJobHook hook([&](const exp::Job &job, unsigned,
                           const std::atomic<bool> &) {
        if (isJob(job, "CP", "mrf_stv")) {
            ++calls;
            throw std::runtime_error("always fails");
        }
    });

    exp::RunnerOptions opts;
    opts.maxRetries = 2;
    opts.retryBackoffMs = 1;
    const auto res = exp::ExperimentRunner(2, opts).run(smoke());

    const auto *j = res.find("CP", "mrf_stv");
    ASSERT_NE(j, nullptr);
    EXPECT_EQ(j->status, exp::JobStatus::Failed);
    EXPECT_EQ(j->attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(res.summary().failed, 1u);
}

TEST_F(ExpRunnerTest, HangingJobTimesOutSiblingsComplete)
{
    const auto clean = exp::ExperimentRunner(1).run(smoke());

    ScopedJobHook hook([](const exp::Job &job, unsigned,
                          const std::atomic<bool> &abandoned) {
        if (!isJob(job, "LIB", "mrf_stv"))
            return;
        // Wedge until the watchdog abandons the attempt, then unwind.
        while (!abandoned.load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw std::runtime_error("unwound after abandonment");
    });

    exp::RunnerOptions opts;
    opts.timeoutSeconds = 0.25;
    const auto res = exp::ExperimentRunner(3, opts).run(smoke());

    const auto sum = res.summary();
    EXPECT_EQ(sum.ok, 5u);
    EXPECT_EQ(sum.timeout, 1u);
    for (std::size_t i = 0; i < res.jobs.size(); ++i) {
        const auto &j = res.jobs[i];
        if (isJob(j.job, "LIB", "mrf_stv")) {
            EXPECT_EQ(j.status, exp::JobStatus::Timeout);
            EXPECT_EQ(j.statusString(), "timeout");
            EXPECT_NE(j.error.find("wall-clock timeout"),
                      std::string::npos);
            EXPECT_EQ(j.attempts, 1u); // timeouts are not retried
        } else {
            EXPECT_EQ(j.status, exp::JobStatus::Ok);
            EXPECT_EQ(j.run.totalCycles, clean.jobs[i].run.totalCycles);
        }
    }
}

TEST_F(ExpRunnerTest, CheckpointStreamsOneValidLinePerJob)
{
    const std::string path = manifestPath("stream");
    exp::RunnerOptions opts;
    opts.checkpointPath = path;
    const auto res = exp::ExperimentRunner(4, opts).run(smoke());

    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::size_t lines = 0;
    for (std::string line; std::getline(in, line); ++lines) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(jsonParse(line, v, &err)) << err;
        EXPECT_TRUE(v.isObject());
        EXPECT_EQ(v.stringOr("sweep", ""), "smoke");
        EXPECT_EQ(v.stringOr("status", ""), "ok");
        EXPECT_FALSE(v.stringOr("key", "").empty());
    }
    EXPECT_EQ(lines, res.jobs.size());

    // Reload: every job present, stats round-trip bit-exactly.
    const auto entries = exp::loadCheckpoint(path, /*mustExist=*/true);
    ASSERT_EQ(entries.size(), res.jobs.size());
    for (const auto &j : res.jobs) {
        const auto it = entries.find(exp::checkpointKey(j.job));
        ASSERT_NE(it, entries.end());
        EXPECT_EQ(it->second.cycles, j.run.totalCycles);
        EXPECT_EQ(it->second.rfStats.raw(), j.run.rfStats.raw());
        EXPECT_EQ(it->second.simStats.raw(), j.run.simStats.raw());
    }
    std::remove(path.c_str());
}

TEST_F(ExpRunnerTest, KillMidSweepThenResumeIsByteIdenticalToCleanRun)
{
    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    const std::string reference =
        exp::toJsonString(exp::ExperimentRunner(1).run(smoke()), noTiming);

    // Full checkpointed run, then keep only the first 3 lines — exactly
    // what a kill after three completed jobs leaves behind.
    const std::string path = manifestPath("resume");
    exp::RunnerOptions opts;
    opts.checkpointPath = path;
    exp::ExperimentRunner(2, opts).run(smoke());
    truncateManifest(path, 3);

    exp::RunnerOptions ropts;
    ropts.checkpointPath = path;
    ropts.resume = true;
    const auto resumed = exp::ExperimentRunner(4, ropts).run(smoke());

    EXPECT_EQ(resumed.summary().ok, 6u);
    EXPECT_EQ(resumed.summary().resumed, 3u);
    EXPECT_EQ(exp::toJsonString(resumed, noTiming), reference);

    // The resumed run backfilled the manifest: all 6 jobs are ok now,
    // so a second resume recomputes nothing.
    const auto again = exp::ExperimentRunner(4, ropts).run(smoke());
    EXPECT_EQ(again.summary().resumed, 6u);
    EXPECT_EQ(exp::toJsonString(again, noTiming), reference);
    std::remove(path.c_str());
}

TEST_F(ExpRunnerTest, ResumeRerunsFailedEntries)
{
    exp::ReportOptions noTiming;
    noTiming.includeTiming = false;
    const std::string reference =
        exp::toJsonString(exp::ExperimentRunner(1).run(smoke()), noTiming);

    // First pass: one job fails and is recorded as failed.
    const std::string path = manifestPath("refail");
    {
        ScopedJobHook hook([](const exp::Job &job, unsigned,
                              const std::atomic<bool> &) {
            if (isJob(job, "WP", "mrf_stv"))
                throw std::runtime_error("flaky environment");
        });
        exp::RunnerOptions opts;
        opts.checkpointPath = path;
        const auto res = exp::ExperimentRunner(2, opts).run(smoke());
        EXPECT_EQ(res.summary().failed, 1u);
    }

    // Resume without the fault: only the failed job reruns, and the
    // merged report matches an uninterrupted clean run byte-for-byte.
    exp::RunnerOptions ropts;
    ropts.checkpointPath = path;
    ropts.resume = true;
    const auto res = exp::ExperimentRunner(2, ropts).run(smoke());
    EXPECT_EQ(res.summary().ok, 6u);
    EXPECT_EQ(res.summary().resumed, 5u);
    const auto *rerun = res.find("WP", "mrf_stv");
    ASSERT_NE(rerun, nullptr);
    EXPECT_FALSE(rerun->resumed);
    EXPECT_EQ(exp::toJsonString(res, noTiming), reference);
    std::remove(path.c_str());
}

} // namespace
