/**
 * @file
 * Trace infrastructure tests: category gating, list parsing, output
 * format, and end-to-end emission from the SM.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"
#include "sim/trace.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override { Trace::disableAll(); }
};

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(Trace::enabled(TraceCat::Issue));
    EXPECT_FALSE(Trace::enabled(TraceCat::Mem));
}

TEST_F(TraceTest, EnableDisable)
{
    Trace::enable(TraceCat::Mem);
    EXPECT_TRUE(Trace::enabled(TraceCat::Mem));
    EXPECT_FALSE(Trace::enabled(TraceCat::Issue));
    Trace::disable(TraceCat::Mem);
    EXPECT_FALSE(Trace::enabled(TraceCat::Mem));
}

TEST_F(TraceTest, EnableFromList)
{
    EXPECT_EQ(Trace::enableFromList("issue, mem,warp"), 3u);
    EXPECT_TRUE(Trace::enabled(TraceCat::Issue));
    EXPECT_TRUE(Trace::enabled(TraceCat::Mem));
    EXPECT_TRUE(Trace::enabled(TraceCat::Warp));
    EXPECT_FALSE(Trace::enabled(TraceCat::Bank));
}

TEST_F(TraceTest, UnknownNamesWarnOnceAndEnableNothing)
{
    setQuiet(false);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(Trace::enableFromList("bogus,also-bogus,issue"), 1u);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unknown trace category 'bogus'"),
              std::string::npos);
    EXPECT_NE(err.find("unknown trace category 'also-bogus'"),
              std::string::npos);
    EXPECT_NE(err.find("known: issue, exec, mem, bank, warp, cta"),
              std::string::npos);
    EXPECT_TRUE(Trace::enabled(TraceCat::Issue));
    EXPECT_FALSE(Trace::enabled(TraceCat::Mem));

    // Warn-once: repeating the same misspelling stays silent.
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(Trace::enableFromList("bogus"), 0u);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    setQuiet(true);
}

TEST_F(TraceTest, LogFormat)
{
    std::ostringstream os;
    Trace::setStream(os);
    Trace::enable(TraceCat::Bank);
    Trace::log(TraceCat::Bank, 42, SmId(3), "grant bank %u", 7u);
    EXPECT_EQ(os.str(), "42: sm3 bank: grant bank 7\n");
}

TEST_F(TraceTest, EndToEndEmission)
{
    setQuiet(true);
    std::ostringstream os;
    Trace::setStream(os);
    Trace::enable(TraceCat::Issue);
    Trace::enable(TraceCat::Warp);
    Trace::enable(TraceCat::Cta);

    isa::KernelBuilder b("t", 8, 32, 1);
    b.op(isa::Opcode::IAdd, 0, {1});
    SimConfig cfg;
    cfg.numSms = 1;
    cfg.rfKind = RfKind::MrfStv;
    Gpu gpu(cfg);
    gpu.run(b.build());

    const std::string out = os.str();
    EXPECT_NE(out.find("launch cta 0"), std::string::npos);
    EXPECT_NE(out.find("launch warp 0"), std::string::npos);
    EXPECT_NE(out.find("iadd r0,r1"), std::string::npos);
    EXPECT_NE(out.find("retire warp 0"), std::string::npos);
}

TEST_F(TraceTest, SilentWhenDisabled)
{
    setQuiet(true);
    std::ostringstream os;
    Trace::setStream(os);
    isa::KernelBuilder b("t", 8, 32, 1);
    b.op(isa::Opcode::IAdd, 0, {1});
    SimConfig cfg;
    cfg.numSms = 1;
    Gpu gpu(cfg);
    gpu.run(b.build());
    EXPECT_TRUE(os.str().empty());
}
