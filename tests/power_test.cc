/**
 * @file
 * Energy accountant tests: arithmetic of the count->pJ conversion and the
 * organization-level leakage figures.
 */

#include <gtest/gtest.h>

#include "power/energy_accountant.hh"

using namespace pilotrf;
using namespace pilotrf::power;

TEST(EnergyAccountant, MonolithicArithmetic)
{
    EnergyAccountant acct;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::MrfStv;
    StatSet s;
    s.add("access.MRF@STV", 100);
    const auto rep = acct.account(cfg, s, 1000);
    EXPECT_NEAR(rep.mrfPj, 100 * 14.9, 1.0);
    EXPECT_NEAR(rep.dynamicPj, rep.mrfPj, 1e-9);
    EXPECT_NEAR(rep.leakagePowerMw, 33.8, 0.2);
}

TEST(EnergyAccountant, PartitionedArithmetic)
{
    EnergyAccountant acct;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    StatSet s;
    s.add("access.FRF_high", 10);
    s.add("access.FRF_low", 10);
    s.add("access.SRF", 10);
    s.add("swap.lookup", 30);
    const auto rep = acct.account(cfg, s, 1000);
    EXPECT_NEAR(rep.frfPj, 10 * 7.65 + 10 * 5.25, 0.2);
    EXPECT_NEAR(rep.srfPj, 10 * 7.03, 0.1);
    EXPECT_GT(rep.overheadPj, 0.0);
    EXPECT_LT(rep.overheadPj, 0.01 * rep.dynamicPj);
    EXPECT_NEAR(rep.leakagePowerMw, 20.6, 0.3); // FRF + SRF
}

TEST(EnergyAccountant, RfcIncludesTagAndFills)
{
    EnergyAccountant acct;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Rfc;
    cfg.policy = sim::SchedulerPolicy::TwoLevel;
    cfg.tlActiveWarps = 8;
    StatSet s;
    s.add("rfc.tag", 100);
    s.add("rfc.readHit", 40);
    s.add("rfc.write", 30);
    s.add("rfc.fill", 10);
    s.add("access.MRF@NTV", 60);
    const auto rep = acct.account(cfg, s, 1000);
    EXPECT_GT(rep.rfcPj, 0.0);
    EXPECT_NEAR(rep.mrfPj, 60 * 7.56, 1.0);
    EXPECT_NEAR(rep.dynamicPj, rep.rfcPj + rep.mrfPj, 1e-6);
}

TEST(EnergyAccountant, LeakageEnergyScalesWithRuntime)
{
    EnergyAccountant acct(900e6);
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::MrfStv;
    StatSet s;
    const auto r1 = acct.account(cfg, s, 900'000'000); // 1 second
    EXPECT_NEAR(r1.runSeconds, 1.0, 1e-9);
    EXPECT_NEAR(r1.leakageUj, 33.8e3, 200.0); // 33.8 mW * 1 s in uJ
    const auto r2 = acct.account(cfg, s, 450'000'000);
    EXPECT_NEAR(r2.leakageUj * 2, r1.leakageUj, 1.0);
}

TEST(EnergyAccountant, PartitionedLeakageSaves39Percent)
{
    EnergyAccountant acct;
    sim::SimConfig part, base;
    part.rfKind = sim::RfKind::Partitioned;
    base.rfKind = sim::RfKind::MrfStv;
    EXPECT_NEAR(1.0 - acct.leakagePowerMw(part) / acct.leakagePowerMw(base),
                0.39, 0.02);
}

TEST(EnergyAccountant, RfcStvBackingLeakage)
{
    EnergyAccountant acct;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Rfc;
    cfg.rfc.mrfMode = rfmodel::RfMode::MrfStv;
    EXPECT_NEAR(acct.leakagePowerMw(cfg), 33.8, 0.3);
    cfg.rfc.mrfMode = rfmodel::RfMode::MrfNtv;
    EXPECT_NEAR(acct.leakagePowerMw(cfg), 15.2, 0.3);
}

TEST(EnergyAccountant, EmptyStatsZeroDynamic)
{
    EnergyAccountant acct;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::MrfStv;
    StatSet s;
    EXPECT_DOUBLE_EQ(acct.account(cfg, s, 100).dynamicPj, 0.0);
}
