/**
 * @file
 * Observability tests: the time-series sampler (delta conservation, ring
 * bounds, gauges), the trace-sink channels (text vs structured, legacy
 * byte-identity through the sink API), the Chrome trace exporter (valid
 * JSON, monotonic per-track timestamps, expected event kinds), and the
 * no-observer-effect guarantee (observed and unobserved runs produce
 * identical statistics).
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"
#include "sim/trace.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

namespace
{

/** A small kernel with enough warps and instructions to exercise the
 *  pipeline, the swap table and the warp lifecycle. */
isa::Kernel
smallKernel()
{
    isa::KernelBuilder b("obs", 12, 64, 4);
    for (unsigned i = 0; i < 6; ++i)
        b.op(isa::Opcode::IAdd, RegId(i % 4), {RegId(i % 8), RegId(4)});
    return b.build();
}

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.numSms = 2;
    cfg.warpsPerSm = 8;
    cfg.rfKind = RfKind::Partitioned;
    return cfg;
}

} // namespace

// --- TimeSeriesSampler ------------------------------------------------------

TEST(TimeSeriesSampler, DeltasSumToFinalCounterValues)
{
    CounterBlock ctrs;
    const auto hA = ctrs.add("a");
    const auto hB = ctrs.add("b");

    obs::TimeSeriesSampler ts(10);
    ts.addBlock("x.", &ctrs);

    for (Cycle c = 1; c <= 95; ++c) {
        ctrs.inc(hA);
        if (c % 3 == 0)
            ctrs.inc(hB, 2);
        ts.tick(c);
    }
    ts.finish(95);

    EXPECT_EQ(ts.droppedSamples(), 0u);
    EXPECT_EQ(ts.sampleCount(), 10u); // 9 full periods + the partial tail
    EXPECT_EQ(ts.columnSum("x.a"), ctrs.value(hA));
    EXPECT_EQ(ts.columnSum("x.b"), ctrs.value(hB));
    EXPECT_EQ(ts.columnSum("x.a"), 95u);
}

TEST(TimeSeriesSampler, RingDropsOldestAndCountsThem)
{
    CounterBlock ctrs;
    const auto h = ctrs.add("n");
    obs::TimeSeriesSampler ts(1, /*capacity=*/4);
    ts.addBlock("", &ctrs);
    for (Cycle c = 1; c <= 10; ++c) {
        ctrs.inc(h);
        ts.tick(c);
    }
    EXPECT_EQ(ts.sampleCount(), 4u);
    EXPECT_EQ(ts.droppedSamples(), 6u);
    // Only the last 4 one-per-cycle deltas are retained.
    EXPECT_EQ(ts.columnSum("n"), 4u);
}

TEST(TimeSeriesSampler, GaugesSampleInstantaneousValues)
{
    std::uint64_t level = 0;
    obs::TimeSeriesSampler ts(5);
    ts.addGauge("level", [&] { return level; });
    for (Cycle c = 1; c <= 10; ++c) {
        level = c;
        ts.tick(c);
    }
    // Two samples, at cycles 5 and 10: gauge values 5 and 10 (not deltas).
    EXPECT_EQ(ts.sampleCount(), 2u);
    EXPECT_EQ(ts.columnSum("level"), 15u);
}

TEST(TimeSeriesSampler, WriteJsonIsParseable)
{
    CounterBlock ctrs;
    const auto h = ctrs.add("events");
    obs::TimeSeriesSampler ts(2);
    ts.addBlock("sm.", &ctrs);
    for (Cycle c = 1; c <= 7; ++c) {
        ctrs.inc(h);
        ts.tick(c);
    }
    ts.finish(7);

    std::ostringstream os;
    std::vector<const obs::TimeSeriesSampler *> sms{&ts};
    obs::writeTimeSeriesJson(os, sms);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(os.str(), doc, &error)) << error;
    const JsonValue *arr = doc.find("sms");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->array.size(), 1u);
    const JsonValue &sm0 = arr->array[0];
    EXPECT_EQ(sm0.numberOr("period", 0), 2.0);
    EXPECT_EQ(sm0.numberOr("samples", 0), 4.0);
    const JsonValue *series = sm0.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_NE(series->find("sm.events"), nullptr);
}

// --- Trace hub channels -----------------------------------------------------

TEST(TraceHub, StructuredEventsNeverReachTextSinks)
{
    obs::TraceHub hub;
    std::ostringstream text;
    hub.addSink(std::make_unique<obs::TextTraceSink>(text));
    EXPECT_FALSE(hub.wantsStructured());

    obs::TraceEvent ev;
    ev.cycle = 7;
    ev.sm = 1;
    ev.categoryName = "swap";
    ev.kind = obs::EventKind::Instant;
    ev.name = "swap.map";
    hub.dispatchStructured(ev);
    EXPECT_TRUE(text.str().empty());

    ev.text = "hello";
    ev.categoryName = "bank";
    hub.dispatch(ev);
    EXPECT_EQ(text.str(), "7: sm1 bank: hello\n");
}

TEST(TraceHub, CategoryMaskGatesTextChannel)
{
    obs::TraceHub hub;
    hub.addSink(std::make_unique<obs::TextTraceSink>(std::cerr));
    EXPECT_TRUE(hub.textEnabled(unsigned(TraceCat::Issue)));
    hub.setCategoryMask(1ull << unsigned(TraceCat::Warp));
    EXPECT_TRUE(hub.textEnabled(unsigned(TraceCat::Warp)));
    EXPECT_FALSE(hub.textEnabled(unsigned(TraceCat::Issue)));
}

TEST(TraceHub, LegacyTextOutputIsByteIdenticalThroughSinkApi)
{
    setQuiet(true);
    const isa::Kernel k = smallKernel();
    const SimConfig cfg = smallConfig();
    const std::uint64_t mask = (1ull << unsigned(TraceCat::Issue)) |
                               (1ull << unsigned(TraceCat::Warp)) |
                               (1ull << unsigned(TraceCat::Cta)) |
                               (1ull << unsigned(TraceCat::Mem));

    // Reference: the legacy global-stream path.
    std::ostringstream legacy;
    Trace::setStream(legacy);
    Trace::enable(TraceCat::Issue);
    Trace::enable(TraceCat::Warp);
    Trace::enable(TraceCat::Cta);
    Trace::enable(TraceCat::Mem);
    {
        Gpu gpu(cfg);
        gpu.run(k);
    }
    Trace::disableAll();
    Trace::setStream(std::cerr);

    // Same run through a per-GPU hub with a TextTraceSink.
    std::ostringstream local;
    {
        Gpu gpu(cfg, {.enableTraceHub = true});
        gpu.traceHub().addSink(std::make_unique<obs::TextTraceSink>(local));
        gpu.traceHub().setCategoryMask(mask);
        gpu.run(k);
    }

    EXPECT_FALSE(legacy.str().empty());
    EXPECT_EQ(legacy.str(), local.str());
}

// --- Chrome trace exporter --------------------------------------------------

namespace
{

JsonValue
chromeTraceFor(const SimConfig &cfg, const isa::Kernel &k,
               std::string *raw = nullptr)
{
    std::ostringstream os;
    {
        Gpu gpu(cfg, {.enableTraceHub = true});
        gpu.traceHub().addSink(std::make_unique<obs::ChromeTraceSink>(os));
        gpu.run(k);
    }
    if (raw)
        *raw = os.str();
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(jsonParse(os.str(), doc, &error)) << error;
    return doc;
}

} // namespace

TEST(ChromeTrace, ProducesValidJsonWithExpectedEventKinds)
{
    const JsonValue doc = chromeTraceFor(smallConfig(), smallKernel());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.stringOr("displayTimeUnit", ""), "ms");
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool sawWarpBegin = false, sawWarpEnd = false, sawSwap = false,
         sawBackgate = false, sawMeta = false;
    for (const JsonValue &ev : events->array) {
        const std::string ph = ev.stringOr("ph", "");
        const std::string cat = ev.stringOr("cat", "");
        if (ph == "M")
            sawMeta = true;
        if (ph == "B" && cat == "warp")
            sawWarpBegin = true;
        if (ph == "E" && cat == "warp")
            sawWarpEnd = true;
        if (ph == "i" && cat == "swap")
            sawSwap = true;
        if (ph == "C" && ev.stringOr("name", "") == "frf.backgate")
            sawBackgate = true;
    }
    EXPECT_TRUE(sawMeta);
    EXPECT_TRUE(sawWarpBegin);
    EXPECT_TRUE(sawWarpEnd);
    EXPECT_TRUE(sawSwap);
    EXPECT_TRUE(sawBackgate);
}

TEST(ChromeTrace, TimestampsMonotonicPerTrack)
{
    const JsonValue doc = chromeTraceFor(smallConfig(), smallKernel());
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // ts must never decrease within one (pid, tid) track.
    std::vector<std::pair<std::pair<double, double>, double>> lastTs;
    std::size_t timed = 0;
    for (const JsonValue &ev : events->array) {
        if (ev.stringOr("ph", "") == "M")
            continue; // metadata carries no timestamp
        const std::pair<double, double> track{ev.numberOr("pid", -1),
                                              ev.numberOr("tid", -1)};
        const double ts = ev.numberOr("ts", -1);
        ASSERT_GE(ts, 0.0);
        ++timed;
        bool found = false;
        for (auto &[key, prev] : lastTs) {
            if (key == track) {
                EXPECT_LE(prev, ts) << "track sm" << track.first << "/w"
                                    << track.second;
                prev = ts;
                found = true;
                break;
            }
        }
        if (!found)
            lastTs.push_back({track, ts});
    }
    EXPECT_GT(timed, 0u);
    EXPECT_GT(lastTs.size(), 1u); // more than one track in the trace
}

TEST(ChromeTrace, FileSinkReportsUnopenablePath)
{
    std::string error;
    const auto sink =
        obs::ChromeTraceSink::toFile("/nonexistent-dir/x.json", &error);
    EXPECT_EQ(sink, nullptr);
    EXPECT_FALSE(error.empty());
}

// --- Shard-safe emission ----------------------------------------------------

namespace
{

/** Every observable byte stream one traced run produces. */
struct TracedOutputs
{
    std::string legacy; ///< global Trace text stream (PILOTRF_TRACE path)
    std::string text;   ///< per-GPU hub TextTraceSink
    std::string jsonl;  ///< per-GPU hub JsonlTraceSink (both channels)
    std::string chrome; ///< per-GPU hub ChromeTraceSink (structured)
    std::string timeseries; ///< per-SM time-series JSON document
};

/** Run the kernel with everything observable attached at the given
 *  worker count and collect the raw output bytes. */
TracedOutputs
tracedRun(const SimConfig &base, const isa::Kernel &k, unsigned workers,
          bool memCat = false)
{
    setQuiet(true);
    SimConfig cfg = base;
    cfg.numWorkers = workers;

    std::ostringstream legacy, text, jsonl, chrome, ts;
    Trace::setStream(legacy);
    Trace::enable(TraceCat::Warp);
    Trace::enable(TraceCat::Cta);
    if (memCat)
        Trace::enable(TraceCat::Mem);
    {
        Gpu gpu(cfg, {.timeSeriesPeriod = 16, .enableTraceHub = true});
        gpu.traceHub().addSink(std::make_unique<obs::TextTraceSink>(text));
        gpu.traceHub().addSink(std::make_unique<obs::JsonlTraceSink>(jsonl));
        gpu.traceHub().addSink(
            std::make_unique<obs::ChromeTraceSink>(chrome));
        if (workers > 1)
            EXPECT_EQ(gpu.engineUsed(), Engine::Sharded) << workers;
        gpu.run(k);
        gpu.writeTimeSeries(ts);
    }
    Trace::disableAll();
    Trace::setStream(std::cerr);
    return {legacy.str(), text.str(), jsonl.str(), chrome.str(), ts.str()};
}

} // namespace

TEST(ShardSafeEmission, TraceBytesIdenticalAcrossWorkerCounts)
{
    // Enough SMs that 2 workers genuinely shard the array; 7 clamps to
    // the SM count and exercises a one-SM-per-shard split.
    SimConfig cfg = smallConfig();
    cfg.numSms = 5;
    isa::KernelBuilder b("shardtrace", 12, 64, 10);
    for (unsigned i = 0; i < 8; ++i)
        b.op(isa::Opcode::IAdd, RegId(i % 5), {RegId(i % 7), RegId(3)});
    b.op(isa::Opcode::Ldg, RegId(5), {RegId(0)});
    const isa::Kernel k = b.build();

    const TracedOutputs ref = tracedRun(cfg, k, 1);
    EXPECT_FALSE(ref.legacy.empty());
    EXPECT_FALSE(ref.text.empty());
    EXPECT_FALSE(ref.jsonl.empty());
    EXPECT_FALSE(ref.chrome.empty());

    for (const unsigned workers : {2u, 7u}) {
        const TracedOutputs got = tracedRun(cfg, k, workers);
        EXPECT_EQ(ref.legacy, got.legacy) << "workers=" << workers;
        EXPECT_EQ(ref.text, got.text) << "workers=" << workers;
        EXPECT_EQ(ref.jsonl, got.jsonl) << "workers=" << workers;
        EXPECT_EQ(ref.chrome, got.chrome) << "workers=" << workers;
        EXPECT_EQ(ref.timeseries, got.timeseries)
            << "workers=" << workers;
    }
}

TEST(ShardSafeEmission, L2RunBytesIdenticalAcrossWorkerCounts)
{
    // The shared L2 on the sharded engine defers requests to the
    // orchestrator's merge replay, which back-fills two things this
    // test pins byte-for-byte against the serial engine: the `mem`
    // trace lines (reserved as placeholder slots at dispatch, filled
    // with the replay-computed finish cycle before the epoch barrier's
    // trace merge) and the time-series samples the l2.hits/l2.misses
    // increments are retro-credited into
    // (TimeSeriesSampler::retroCredit — a 16-cycle period against the
    // 121-cycle NeedsMem lookahead bound puts samples between a
    // request and its replay in both orders, so mis-credited deltas
    // cannot hide).
    SimConfig cfg = smallConfig();
    cfg.numSms = 5;
    cfg.l1Enable = true;
    cfg.l1SizeKb = 1; // thrash: loop reuse misses through to the L2
    cfg.l2Enable = true;
    cfg.l2SizeKb = 8;
    cfg.l2Assoc = 2;
    cfg.dramEnable = true;
    isa::KernelBuilder b("shardl2", 12, 64, 10);
    b.beginLoop(6, 4);
    b.load(RegId(5), RegId(0), isa::MemSpace::Global, 8);
    b.op(isa::Opcode::IAdd, RegId(1), {RegId(5)});
    b.load(RegId(6), RegId(1), isa::MemSpace::Global, 6);
    b.endLoop();
    const isa::Kernel k = b.build();

    const TracedOutputs ref = tracedRun(cfg, k, 1, /*memCat=*/true);
    // The serial run must actually emit mem lines with finish cycles —
    // otherwise the deferred-slot path is not under test.
    EXPECT_NE(ref.legacy.find("finish@"), std::string::npos);
    for (const unsigned workers : {2u, 7u}) {
        const TracedOutputs got = tracedRun(cfg, k, workers, true);
        EXPECT_EQ(ref.legacy, got.legacy) << "workers=" << workers;
        EXPECT_EQ(ref.text, got.text) << "workers=" << workers;
        EXPECT_EQ(ref.jsonl, got.jsonl) << "workers=" << workers;
        EXPECT_EQ(ref.chrome, got.chrome) << "workers=" << workers;
        EXPECT_EQ(ref.timeseries, got.timeseries)
            << "workers=" << workers;
    }
}

TEST(ShardSafeEmission, BufferedModeDrainsEverythingByRunEnd)
{
    SimConfig cfg = smallConfig();
    cfg.numSms = 4;
    cfg.numWorkers = 4;
    std::ostringstream jsonl;
    Gpu gpu(cfg, {.enableTraceHub = true});
    ASSERT_EQ(gpu.engineUsed(), Engine::Sharded);
    gpu.traceHub().addSink(std::make_unique<obs::JsonlTraceSink>(jsonl));
    gpu.run(smallKernel());
    EXPECT_FALSE(jsonl.str().empty());
    // After run() every SM buffer must be drained and back in immediate
    // mode — a leftover entry would leak into the next kernel's output.
    for (unsigned i = 0; i < gpu.numSms(); ++i) {
        EXPECT_EQ(gpu.smStats(i).traceBuffer().pendingEvents(), 0u) << i;
        EXPECT_FALSE(gpu.smStats(i).traceBuffer().isBuffered()) << i;
    }
}

// --- No observer effect -----------------------------------------------------

TEST(ObserverEffect, ObservedRunStatsMatchUnobservedRun)
{
    const isa::Kernel k = smallKernel();
    const SimConfig cfg = smallConfig();

    RunResult plain;
    {
        Gpu gpu(cfg);
        plain = gpu.run(k);
    }

    std::ostringstream chrome, jsonl;
    RunResult observed;
    Gpu gpu(cfg, {.timeSeriesPeriod = 25, .enableTraceHub = true});
    gpu.traceHub().addSink(std::make_unique<obs::ChromeTraceSink>(chrome));
    gpu.traceHub().addSink(std::make_unique<obs::JsonlTraceSink>(jsonl));
    observed = gpu.run(k);

    EXPECT_EQ(plain.totalCycles, observed.totalCycles);
    EXPECT_EQ(plain.totalInstructions, observed.totalInstructions);
    EXPECT_EQ(plain.rfStats.raw(), observed.rfStats.raw());
    EXPECT_EQ(plain.simStats.raw(), observed.simStats.raw());
    EXPECT_FALSE(chrome.str().empty());
    EXPECT_FALSE(jsonl.str().empty());
}

TEST(ObserverEffect, SamplerColumnsSumToRunCounters)
{
    const isa::Kernel k = smallKernel();
    SimConfig cfg = smallConfig();
    cfg.numSms = 1;

    Gpu gpu(cfg, {.timeSeriesPeriod = 10});
    const RunResult res = gpu.run(k);
    ASSERT_TRUE(gpu.timeSeriesEnabled());

    const obs::TimeSeriesSampler *ts = gpu.smStats(0).timeSeries();
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->droppedSamples(), 0u);

    // Delta conservation against the SM's and the backend's counters.
    const CounterBlock &sim = gpu.smStats(0).counters();
    for (std::size_t i = 0; i < sim.size(); ++i)
        EXPECT_EQ(ts->columnSum("sim." + sim.name(CounterBlock::Handle(i))),
                  sim.value(CounterBlock::Handle(i)))
            << sim.name(CounterBlock::Handle(i));
    const CounterBlock &rf = gpu.smStats(0).rf().counters();
    for (std::size_t i = 0; i < rf.size(); ++i)
        EXPECT_EQ(ts->columnSum("rf." + rf.name(CounterBlock::Handle(i))),
                  rf.value(CounterBlock::Handle(i)))
            << rf.name(CounterBlock::Handle(i));

    EXPECT_EQ(ts->columnSum("sim.instructions.issued"),
              std::uint64_t(res.simStats.get("instructions.issued")));
}
