/**
 * @file
 * Worker-count invariance of the sharded epoch-barrier engine.
 *
 * The redesigned stepping API promises that SimConfig::numWorkers is
 * pure mechanism: for ANY workload, the merged statistics, per-SM stat
 * sets and cycle counts are byte-identical whether the SMs are stepped
 * by the serial lockstep engine (1 worker) or sharded across a pool
 * (N workers, including N > numSms). This test drives that promise with
 * randomized multi-kernel workloads — mixed SP/SFU/memory bodies,
 * divergent loops, per-CTA trip spread so the SMs drift out of phase,
 * and an epoch-spanning latency-bound tail — rendered to a canonical
 * string at numWorkers in {1, 2, 7} and compared byte-for-byte.
 *
 * Also the torn-epoch regression: more workers than SMs (7 workers, 2
 * SMs) must clamp to one SM per shard and still reproduce the serial
 * results exactly, even though every kernel ends mid-epoch.
 *
 * The shared-L2 cases repeat the sweep with the GPU-wide L2 (and the
 * DRAM stage) live: the L2's hit/miss stream depends on the
 * cycle-interleaved cross-SM access order, so they lock down the
 * deferred request FIFOs, the (cycle, smId) merge replay and the
 * NeedsMem lookahead bound — including an engagement probe asserting
 * the L2 no longer downgrades the engine to lockstep.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

namespace
{

/** Deterministic xorshift64* PRNG: identical streams on every platform
 *  (std::rand would tie the test to the libc). */
struct Rng
{
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed * 2 + 1) {}
    std::uint64_t next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }
    /** Uniform in [lo, hi], inclusive. */
    unsigned range(unsigned lo, unsigned hi)
    {
        return lo + unsigned(next() % (std::uint64_t(hi) - lo + 1));
    }
    bool coin() { return next() & 1; }
};

/** A randomized multi-kernel workload. Every choice flows from the
 *  seed, so a failure reproduces from the seed alone. */
std::vector<isa::Kernel>
randomKernels(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::Kernel> kernels;
    const unsigned numKernels = rng.range(2, 3);
    for (unsigned ki = 0; ki < numKernels; ++ki) {
        const unsigned regs = rng.range(6, 24);
        const unsigned threads = 32 * rng.range(1, 4);
        const unsigned ctas = rng.range(3, 12);
        const auto reg = [&] { return RegId(rng.range(0, regs - 1)); };
        isa::KernelBuilder b("rand" + std::to_string(seed) + "_k" +
                                 std::to_string(ki),
                             regs, threads, ctas, seed ^ (ki * 0x9e3779b9));
        b.beginLoop(rng.range(4, 24), rng.range(0, 32), rng.coin());
        const unsigned body = rng.range(2, 6);
        for (unsigned i = 0; i < body; ++i) {
            switch (rng.next() % 6) {
            case 0: b.op(isa::Opcode::IAdd, reg(), {reg()}); break;
            case 1: b.op(isa::Opcode::FFma, reg(), {reg(), reg()}); break;
            case 2: b.op(isa::Opcode::Rsq, reg(), {reg()}); break;
            case 3:
                b.load(reg(), reg(),
                       rng.coin() ? isa::MemSpace::Global
                                  : isa::MemSpace::Shared,
                       rng.range(1, 4));
                break;
            case 4: b.store(reg(), reg(), isa::MemSpace::Global, 1); break;
            case 5:
                b.beginIf(0.5);
                b.op(isa::Opcode::IMul, reg(), {reg()});
                b.endIf();
                break;
            }
        }
        b.endLoop();
        if (rng.coin())
            b.barrier();
        b.op(isa::Opcode::FAdd, reg(), {reg()});
        kernels.push_back(b.build());
    }
    // Epoch-spanning latency-bound tail: a dependent global-load chain
    // with per-CTA trip spread runs tens of thousands of cycles — well
    // past the sharded engine's traced-run epoch (2^14 cycles) — with
    // the SMs fully dephased, so epoch boundaries land mid-flight on
    // every shard.
    isa::KernelBuilder tail("rand" + std::to_string(seed) + "_tail", 8, 32,
                            rng.range(6, 12), seed);
    tail.beginLoop(64, 48);
    tail.load(1, 1, isa::MemSpace::Global, 1);
    tail.op(isa::Opcode::IAdd, 2, {1});
    tail.endLoop();
    kernels.push_back(tail.build());
    return kernels;
}

/** Everything observable about a run, rendered canonically: run totals,
 *  merged stat sets, per-kernel results and every per-SM raw stat set
 *  (so a divergence localized to one SM cannot cancel in the merge).
 *  With traced=true a full complement of trace sinks rides along and
 *  their bytes join the dump, so the comparison also covers the sharded
 *  engine's buffered emission path end to end. */
std::string
render(SimConfig cfg, const std::vector<isa::Kernel> &kernels,
       unsigned workers, bool traced = false)
{
    cfg.numWorkers = workers;
    Gpu gpu(cfg, {.enableTraceHub = traced});
    std::ostringstream text, jsonl, chrome;
    if (traced) {
        gpu.traceHub().addSink(std::make_unique<obs::TextTraceSink>(text));
        gpu.traceHub().addSink(
            std::make_unique<obs::JsonlTraceSink>(jsonl));
        gpu.traceHub().addSink(
            std::make_unique<obs::ChromeTraceSink>(chrome));
    }
    const RunResult run = gpu.run({"determinism", kernels});
    std::ostringstream os;
    os << "label " << run.label << "\n";
    os << "totalCycles " << run.totalCycles << "\n";
    os << "totalInstructions " << run.totalInstructions << "\n";
    os << "rfStats ";
    run.rfStats.toJson(os);
    os << "\nsimStats ";
    run.simStats.toJson(os);
    os << "\n";
    for (const KernelResult &k : run.kernels) {
        os << "kernel " << k.name << " cycles " << k.cycles
           << " instructions " << k.instructions << " pilotFinish "
           << k.pilotFinishCycle << "\n";
        os << "  regAccess";
        for (const std::uint64_t a : k.regAccess)
            os << " " << a;
        os << "\n  pilotHot";
        for (const RegId r : k.pilotHot)
            os << " " << unsigned(r);
        os << "\n";
    }
    for (unsigned i = 0; i < gpu.numSms(); ++i) {
        os << "sm" << i << ".rf ";
        gpu.smStats(i).rf().stats().toJson(os);
        os << "\nsm" << i << ".sim ";
        gpu.smStats(i).stats().toJson(os);
        os << "\n";
    }
    if (traced)
        os << "text\n"
           << text.str() << "jsonl\n"
           << jsonl.str() << "chrome\n"
           << chrome.str() << "\n";
    return os.str();
}

/** Cache-enabled config for the shared-L2 determinism cases: a tiny L1
 *  pushes refill traffic through to the GPU-wide L2, whose hit/miss
 *  stream depends on the cycle-interleaved cross-SM access order — the
 *  exact order the sharded engine must reconstruct at epoch barriers.
 *  `thrash` additionally shrinks the L2 below the working set and turns
 *  on the DRAM stage, so replay order decides line evictions AND
 *  partition-queue contention. */
SimConfig
l2Config(bool thrash = false)
{
    SimConfig cfg;
    cfg.numSms = 4;
    cfg.l1Enable = true;
    cfg.l1SizeKb = 1; // small: most loads miss through to the L2
    cfg.l2Enable = true;
    if (thrash) {
        cfg.l2SizeKb = 8;
        cfg.l2Assoc = 2;
        cfg.dramEnable = true;
    }
    return cfg;
}

class ShardDeterminism : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

} // namespace

TEST_P(ShardDeterminism, WorkerCountIsObservationallyInvisible)
{
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    SimConfig cfg;
    cfg.numSms = 4;
    const std::string serial = render(cfg, kernels, 1);
    EXPECT_EQ(serial, render(cfg, kernels, 2)) << "seed " << GetParam();
    EXPECT_EQ(serial, render(cfg, kernels, 7)) << "seed " << GetParam();
}

TEST_P(ShardDeterminism, TracedRunBytesAreWorkerCountInvariant)
{
    // Same invariance with every trace sink attached: the sharded
    // engine must buffer per SM and merge-replay at barriers such that
    // the text, JSONL and Chrome byte streams match the serial engine
    // exactly (the traced render() appends them to the dump).
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    SimConfig cfg;
    cfg.numSms = 4;
    const std::string serial = render(cfg, kernels, 1, /*traced=*/true);
    EXPECT_NE(serial.find("\"ph\""), std::string::npos); // chrome events
    EXPECT_EQ(serial, render(cfg, kernels, 2, true)) << "seed "
                                                     << GetParam();
    EXPECT_EQ(serial, render(cfg, kernels, 7, true)) << "seed "
                                                     << GetParam();
}

TEST_P(ShardDeterminism, TornEpochsWithMoreWorkersThanSms)
{
    // 7 requested workers against 2 SMs: the pool clamps to one SM per
    // shard, every kernel finishes mid-epoch, and the per-kernel end
    // cycles must still match the serial engine exactly.
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    SimConfig cfg;
    cfg.numSms = 2;
    EXPECT_EQ(render(cfg, kernels, 1), render(cfg, kernels, 7))
        << "seed " << GetParam();
}

TEST_P(ShardDeterminism, SharedL2IsWorkerCountInvariant)
{
    // Full canonical dump (run totals, merged and per-SM stat sets —
    // including l1.*/l2.* hit and miss counters) with the shared L2
    // live. The deferred request FIFOs and the barrier-time (cycle,
    // smId) replay must reproduce the serial engine's interleaved L2
    // access stream exactly at any worker count.
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    const SimConfig cfg = l2Config();
    const std::string serial = render(cfg, kernels, 1);
    EXPECT_NE(serial.find("l2."), std::string::npos); // L2 really live
    EXPECT_EQ(serial, render(cfg, kernels, 2)) << "seed " << GetParam();
    EXPECT_EQ(serial, render(cfg, kernels, 7)) << "seed " << GetParam();
}

TEST_P(ShardDeterminism, ThrashingL2WithDramIsWorkerCountInvariant)
{
    // Divergent random workloads against an L2 far smaller than the
    // working set: nearly every access evicts a line some other SM will
    // re-miss, and the DRAM partition queues serialize the refills — so
    // any replay-order error shows up as both a hit/miss delta and a
    // finish-cycle delta.
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    const SimConfig cfg = l2Config(/*thrash=*/true);
    const std::string serial = render(cfg, kernels, 1);
    EXPECT_EQ(serial, render(cfg, kernels, 2)) << "seed " << GetParam();
    EXPECT_EQ(serial, render(cfg, kernels, 7)) << "seed " << GetParam();
}

TEST_P(ShardDeterminism, TracedL2RunBytesAreWorkerCountInvariant)
{
    // The Mem trace line for an L2 miss carries the computed finish
    // cycle, which a sharded run only knows at the barrier: the SM
    // reserves a placeholder slot at dispatch and the replay fills it,
    // so the merged text/JSONL/Chrome streams must still match the
    // serial bytes exactly.
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    const SimConfig cfg = l2Config(/*thrash=*/true);
    const std::string serial = render(cfg, kernels, 1, /*traced=*/true);
    EXPECT_EQ(serial, render(cfg, kernels, 2, true)) << "seed "
                                                     << GetParam();
    EXPECT_EQ(serial, render(cfg, kernels, 7, true)) << "seed "
                                                     << GetParam();
}

TEST_P(ShardDeterminism, ScheduleIsObservationallyInvisible)
{
    // SimConfig::shardSchedule is a pure wall-clock knob: with the
    // thrashing L2 + DRAM live and every trace sink attached, the full
    // canonical dump must match the serial engine byte for byte under
    // BOTH schedules at 2 and 7 workers. (The other cases in this suite
    // exercise the default dynamic schedule; this one pins each policy
    // explicitly, so a future default flip cannot silently drop
    // coverage of either claim path.)
    const std::vector<isa::Kernel> kernels = randomKernels(GetParam());
    const SimConfig base = l2Config(/*thrash=*/true);
    const std::string serial = render(base, kernels, 1, /*traced=*/true);
    for (const ShardSchedule schedule :
         {ShardSchedule::Static, ShardSchedule::Dynamic}) {
        SimConfig cfg = base;
        cfg.shardSchedule = schedule;
        EXPECT_EQ(serial, render(cfg, kernels, 2, true))
            << toString(schedule) << " seed " << GetParam();
        EXPECT_EQ(serial, render(cfg, kernels, 7, true))
            << toString(schedule) << " seed " << GetParam();
    }
}

TEST(ShardDeterminism, TornEpochsWithL2UnderBothSchedules)
{
    // The 7-workers-on-2-SMs clamp with the NeedsMem lookahead bound,
    // pinned per schedule: the dynamic ticket queue must shut down
    // cleanly when a round has a single runnable SM (one wake, one
    // claim, exhausted queue), and static must tolerate rounds where
    // most shards own nothing runnable.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(3);
    SimConfig cfg = l2Config(/*thrash=*/true);
    cfg.numSms = 2;
    const std::string serial = render(cfg, kernels, 1);
    for (const ShardSchedule schedule :
         {ShardSchedule::Static, ShardSchedule::Dynamic}) {
        cfg.shardSchedule = schedule;
        EXPECT_EQ(serial, render(cfg, kernels, 7)) << toString(schedule);
    }
}

TEST(ShardDeterminism, ScheduleKnobAndTelemetry)
{
    // scheduleUsed() reports the effective policy (GpuOptions override
    // beats SimConfig), static never steals, and the two schedules step
    // the same total number of SM slices — the round structure is
    // simulation-determined, only the worker assignment differs.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(5);
    SimConfig cfg;
    cfg.numSms = 4;
    cfg.numWorkers = 2;
    cfg.shardSchedule = ShardSchedule::Static;

    Gpu staticGpu(cfg);
    EXPECT_EQ(staticGpu.scheduleUsed(), ShardSchedule::Static);
    staticGpu.run({"sched_static", kernels});
    const SchedTelemetry &st = staticGpu.schedTelemetry();
    ASSERT_GE(st.workers.size(), 2u);
    EXPECT_GT(st.epochs, 0u);
    std::uint64_t staticStepped = 0;
    for (const WorkerTelemetry &w : st.workers) {
        staticStepped += w.smsStepped;
        EXPECT_EQ(w.smsStolen, 0u); // static: shard i never leaves worker i
        EXPECT_EQ(w.stealNs, 0u);
    }
    EXPECT_GT(staticStepped, 0u);

    GpuOptions opts;
    opts.shardSchedule = ShardSchedule::Dynamic; // overrides the config
    Gpu dynGpu(cfg, opts);
    EXPECT_EQ(dynGpu.scheduleUsed(), ShardSchedule::Dynamic);
    dynGpu.run({"sched_dynamic", kernels});
    EXPECT_GT(dynGpu.schedTelemetry().epochs, 0u);
    std::uint64_t dynStepped = 0;
    for (const WorkerTelemetry &w : dynGpu.schedTelemetry().workers)
        dynStepped += w.smsStepped;
    EXPECT_EQ(dynStepped, staticStepped);
}

TEST(ShardDeterminism, TornEpochsWithL2AndMoreWorkersThanSms)
{
    // The NeedsMem lookahead bound (minResponseLatency + 1 cycles past
    // the oldest unreplayed request) with 7 workers against 2 SMs:
    // thousands of replay rounds, every kernel ending mid-epoch, one SM
    // per shard — the canonical dump must still match the serial engine
    // byte for byte.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(3);
    SimConfig cfg = l2Config(/*thrash=*/true);
    cfg.numSms = 2;
    EXPECT_EQ(render(cfg, kernels, 1), render(cfg, kernels, 7));
}

TEST(ShardDeterminism, ShardedEngineEngagesWithL2Enabled)
{
    // The shared L2 used to force a silent downgrade to lockstep; now
    // it must ride the sharded engine (deferred FIFOs + barrier
    // replay) with per-SM fast-forward still live.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(7);
    SimConfig cfg = l2Config();
    cfg.numWorkers = 2;
    Gpu gpu(cfg);
    EXPECT_EQ(gpu.engineUsed(), Engine::Sharded);
    gpu.run({"engage_l2", kernels});
    EXPECT_EQ(gpu.skippedCycles(), 0u);
    EXPECT_GT(gpu.fastForwardedCycles(), 0u);
}

TEST(ShardDeterminism, ShardedEngineActuallyEngages)
{
    // Guard against silently testing lockstep against itself: a sharded
    // run must fast-forward per-SM while leaving the lockstep engine's
    // global skip counter untouched.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(7);
    SimConfig cfg;
    cfg.numSms = 4;
    cfg.numWorkers = 2;
    Gpu gpu(cfg);
    gpu.run({"engage", kernels});
    EXPECT_EQ(gpu.skippedCycles(), 0u);
    EXPECT_GT(gpu.fastForwardedCycles(), 0u);
}

TEST(ShardDeterminism, RfKindsMatchUnderSharding)
{
    // The per-SM skip must stay invisible for every RF backend, not
    // just the default partitioned design.
    setQuiet(true);
    const std::vector<isa::Kernel> kernels = randomKernels(11);
    for (const RfKind kind : {RfKind::MrfStv, RfKind::Partitioned,
                              RfKind::Rfc, RfKind::Drowsy}) {
        SimConfig cfg;
        cfg.numSms = 3;
        cfg.rfKind = kind;
        EXPECT_EQ(render(cfg, kernels, 1), render(cfg, kernels, 3))
            << toString(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, ShardDeterminism,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 1234u,
                                           0xdeadbeefu));
