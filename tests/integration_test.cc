/**
 * @file
 * Whole-system integration tests asserting the paper's headline results
 * hold in the reproduction, within bands:
 *   - partitioned RF saves ~54% dynamic energy and 39% leakage with small
 *     performance overhead;
 *   - the all-NTV MRF saves less dynamic energy than the partitioned
 *     design and costs more performance;
 *   - the hybrid-profiled FRF serves ~62% of accesses;
 *   - the adaptive FRF spends a meaningful share of FRF accesses in the
 *     low-power mode without hurting performance.
 *
 * These run a representative subset of the suite (for test runtime) on
 * the full 15-SM configuration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/energy_accountant.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

namespace
{
const std::vector<std::string> subset = {"BFS",    "hotspot", "backprop",
                                         "srad",   "kmeans",  "mri-q",
                                         "sgemm",  "MUM"};

struct SuiteResult
{
    double cycles = 0;
    double dynamicPj = 0;
    double frfShare = 0;
    double frfLowShare = 0;
    unsigned n = 0;
};

SuiteResult
runSuite(const sim::SimConfig &cfg)
{
    setQuiet(true);
    power::EnergyAccountant acct;
    SuiteResult out;
    for (const auto &name : subset) {
        sim::Gpu gpu(cfg);
        const auto r = gpu.run(workloads::workload(name).view());
        out.cycles += double(r.totalCycles);
        out.dynamicPj +=
            acct.account(cfg, r.rfStats, r.totalCycles).dynamicPj;
        const double hi = r.rfStats.get("access.FRF_high");
        const double lo = r.rfStats.get("access.FRF_low");
        const double srf = r.rfStats.get("access.SRF");
        if (hi + lo + srf > 0) {
            out.frfShare += (hi + lo) / (hi + lo + srf);
            out.frfLowShare += lo / std::max(1.0, hi + lo);
        }
        ++out.n;
    }
    return out;
}

const SuiteResult &
baseline()
{
    static const SuiteResult r = [] {
        sim::SimConfig c;
        c.rfKind = sim::RfKind::MrfStv;
        return runSuite(c);
    }();
    return r;
}

const SuiteResult &
partitioned()
{
    static const SuiteResult r = [] {
        sim::SimConfig c;
        c.rfKind = sim::RfKind::Partitioned;
        return runSuite(c);
    }();
    return r;
}

const SuiteResult &
ntv()
{
    static const SuiteResult r = [] {
        sim::SimConfig c;
        c.rfKind = sim::RfKind::MrfNtv;
        return runSuite(c);
    }();
    return r;
}
} // namespace

TEST(Headline, DynamicEnergySavingNearPaper)
{
    const double ratio = partitioned().dynamicPj / baseline().dynamicPj;
    // Paper: 54% saving (ratio 0.46).
    EXPECT_GT(1 - ratio, 0.40);
    EXPECT_LT(1 - ratio, 0.62);
}

TEST(Headline, PartitionedBeatsAllNtvOnEnergy)
{
    // Paper: monolithic NTV saves 47% < partitioned 54%.
    EXPECT_LT(partitioned().dynamicPj, ntv().dynamicPj);
}

TEST(Headline, PerformanceOverheadSmall)
{
    const double ov = partitioned().cycles / baseline().cycles - 1.0;
    EXPECT_LT(ov, 0.05); // paper: <2% suite average; band for the subset
    EXPECT_GT(ov, -0.03);
}

TEST(Headline, NtvCostsMorePerformanceThanPartitioned)
{
    const double ovNtv = ntv().cycles / baseline().cycles - 1.0;
    const double ovPart = partitioned().cycles / baseline().cycles - 1.0;
    EXPECT_GT(ovNtv, ovPart);
    EXPECT_GT(ovNtv, 0.01); // paper: 7.1%
}

TEST(Headline, FrfServesMostAccesses)
{
    // Paper Fig. 10: 62% of accesses reach the FRF.
    const double share = partitioned().frfShare / partitioned().n;
    EXPECT_GT(share, 0.50);
    EXPECT_LT(share, 0.85);
}

TEST(Headline, AdaptiveFrfEngagesWithoutHurting)
{
    const double lowShare =
        partitioned().frfLowShare / partitioned().n;
    EXPECT_GT(lowShare, 0.05); // low mode actually used
    sim::SimConfig noAdapt;
    noAdapt.rfKind = sim::RfKind::Partitioned;
    noAdapt.prf.adaptiveFrf = false;
    const auto r = runSuite(noAdapt);
    // Adaptive may cost a little performance but within a tight band.
    EXPECT_LT(partitioned().cycles / r.cycles, 1.04);
    // ...and must reduce dynamic energy.
    EXPECT_LT(partitioned().dynamicPj, r.dynamicPj);
}

TEST(Headline, SrfLatencySensitivityOrdering)
{
    setQuiet(true);
    double prev = 0.0;
    for (unsigned lat : {3u, 5u}) {
        sim::SimConfig c;
        c.rfKind = sim::RfKind::Partitioned;
        c.prf.srfLatency = lat;
        const auto r = runSuite(c);
        if (prev > 0) {
            EXPECT_GT(r.cycles, prev * 0.995); // 5-cycle no faster
        }
        prev = r.cycles;
    }
}

TEST(Headline, LeakageSaving39Percent)
{
    power::EnergyAccountant acct;
    sim::SimConfig part, base;
    part.rfKind = sim::RfKind::Partitioned;
    base.rfKind = sim::RfKind::MrfStv;
    EXPECT_NEAR(
        1 - acct.leakagePowerMw(part) / acct.leakagePowerMw(base), 0.39,
        0.02);
}
