/**
 * @file
 * The sweep-service contract: content-addressed job identity, the
 * strict request schema, the ResultStore's persistence/eviction/
 * invalidation behaviour, single-flight dedup under concurrent
 * clients, and the wire protocol — anchored throughout on the repo's
 * byte-identity guarantee: a cache- or daemon-served report equals a
 * cold batch run, byte for byte, once timing fields are off.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/version.hh"
#include "exp/checkpoint.hh"
#include "exp/job_key.hh"
#include "exp/report.hh"
#include "exp/sweep_request.hh"
#include "exp/sweeps.hh"
#include "svc/net.hh"
#include "svc/result_store.hh"
#include "svc/sweep_service.hh"

using namespace pilotrf;

namespace
{

/** A fresh file path under the gtest temp dir. */
std::string
tmpPath(const char *tag)
{
    const std::string path =
        ::testing::TempDir() + "pilotrf_svc_" + tag + ".jsonl";
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::size_t
lineCount(const std::string &path)
{
    std::ifstream is(path);
    std::size_t n = 0;
    for (std::string l; std::getline(is, l);)
        ++n;
    return n;
}

/** RAII execution-counting hook: how many times each cell really ran. */
class ScopedCountingHook
{
  public:
    ScopedCountingHook()
    {
        exp::setJobHook([this](const exp::Job &job, unsigned,
                               const std::atomic<bool> &) {
            std::lock_guard<std::mutex> lock(mu);
            ++counts[exp::checkpointKey(job)];
        });
    }
    ~ScopedCountingHook() { exp::clearJobHook(); }

    std::map<std::string, unsigned> snapshot()
    {
        std::lock_guard<std::mutex> lock(mu);
        return counts;
    }

  private:
    std::mutex mu;
    std::map<std::string, unsigned> counts;
};

/** The two-job request most tests use: smoke's configs, one workload. */
exp::SweepRequest
tinyRequest()
{
    exp::SweepRequest req;
    req.sweep = "smoke";
    req.workloads = {"WP"};
    req.includeTiming = false;
    return req;
}

/** The batch-mode reference bytes for a request: expand and run on the
 *  plain ExperimentRunner, render with the request's options. */
std::string
batchReference(const exp::SweepRequest &req)
{
    const exp::ExperimentRunner runner(2);
    return exp::toJsonString(runner.run(req.toSweep()),
                             req.reportOptions());
}

class SvcTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { exp::clearJobHook(); }
};

// ---------------------------------------------------------------------
// JobKey: content-addressed identity.
// ---------------------------------------------------------------------

TEST_F(SvcTest, ConfigHashIsStableAndContentSensitive)
{
    const sim::SimConfig base;
    const exp::ConfigHash h1 = exp::canonicalConfigHash(base);
    const exp::ConfigHash h2 = exp::canonicalConfigHash(base);
    EXPECT_EQ(h1, h2) << "equal configs must hash equal";
    EXPECT_EQ(h1.hex().size(), 32u);
    EXPECT_EQ(h1.hex(), h2.hex());

    sim::SimConfig other = base;
    other.numSms += 1;
    EXPECT_NE(exp::canonicalConfigHash(other), h1)
        << "a changed field must change the hash";
}

TEST_F(SvcTest, JobKeyIsLabelBlindButSeedAndConfigSensitive)
{
    exp::Job a;
    a.workload = "WP";
    a.configLabel = "base";
    a.seed = 0;

    exp::Job b = a;
    b.configLabel = "baseline"; // same contents, different label
    EXPECT_EQ(exp::jobKey(a), exp::jobKey(b));
    EXPECT_EQ(exp::jobKey(a).str(), exp::jobKey(b).str());
    EXPECT_NE(exp::legacyJobKey(a), exp::legacyJobKey(b));

    exp::Job c = a;
    c.seed = 1;
    EXPECT_NE(exp::jobKey(c), exp::jobKey(a));

    exp::Job d = a;
    d.cfg.numSms += 1;
    EXPECT_NE(exp::jobKey(d), exp::jobKey(a));

    // The canonical string format everything keys on.
    const std::string s = exp::jobKey(a).str();
    EXPECT_EQ(s, "WP|cfg:" + exp::canonicalConfigHash(a.cfg).hex() + "|0");
    EXPECT_EQ(exp::checkpointKey(a), s);
    EXPECT_EQ(exp::legacyJobKey(a), "WP|base|0");
}

// ---------------------------------------------------------------------
// Checkpoint migration: legacy manifests still resume.
// ---------------------------------------------------------------------

TEST_F(SvcTest, LegacyKeyedManifestStillResumes)
{
    const auto req = tinyRequest();
    const exp::Sweep sweep = req.toSweep();
    const std::string path = tmpPath("legacy");

    exp::RunnerOptions ropts;
    ropts.checkpointPath = path;
    const exp::ExperimentRunner writerRun(1, ropts);
    const std::string fresh =
        exp::toJsonString(writerRun.run(sweep), req.reportOptions());

    // Rewrite the manifest as a pre-PR-9 simulator would have written
    // it: label-based keys instead of content-addressed ones.
    std::string text = slurp(path);
    for (const auto &job : exp::ExperimentRunner::expand(sweep)) {
        const std::string modern = "\"key\":\"" + exp::checkpointKey(job);
        const std::string legacy = "\"key\":\"" + exp::legacyJobKey(job);
        const auto pos = text.find(modern);
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, modern.size(), legacy);
    }
    std::ofstream(path, std::ios::trunc) << text;

    exp::RunnerOptions r2;
    r2.checkpointPath = path;
    r2.resume = true;
    const exp::ExperimentRunner resumeRun(1, r2);
    const exp::SweepResult res = resumeRun.run(sweep);
    EXPECT_EQ(res.summary().resumed, res.jobs.size())
        << "every job should be served from the legacy-keyed manifest";
    EXPECT_EQ(exp::toJsonString(res, req.reportOptions()), fresh);
}

// ---------------------------------------------------------------------
// SweepRequest: strict schema, round trip, lowering.
// ---------------------------------------------------------------------

TEST_F(SvcTest, SweepRequestRoundTripsThroughJson)
{
    exp::SweepRequest req;
    req.sweep = "smoke";
    req.workloads = {"WP", "LIB"};
    req.config = sim::SimConfig{};
    req.config->numSms = 4;
    req.configLabel = "tiny";
    req.seeds = 3;
    req.baseSeed = 42;
    req.workers = 2;
    req.includeTiming = false;
    req.includeKernels = false;

    const exp::SweepRequest back =
        exp::SweepRequest::fromJsonText(req.jsonText());
    EXPECT_EQ(back.sweep, req.sweep);
    EXPECT_EQ(back.workloads, req.workloads);
    ASSERT_TRUE(back.config.has_value());
    EXPECT_EQ(back.config->numSms, 4u);
    EXPECT_EQ(back.configLabel, "tiny");
    EXPECT_EQ(back.seeds, 3u);
    EXPECT_EQ(back.baseSeed, 42u);
    EXPECT_EQ(back.workers, 2u);
    EXPECT_FALSE(back.includeTiming);
    EXPECT_FALSE(back.includeKernels);
    EXPECT_EQ(back.jsonText(), req.jsonText());
}

TEST_F(SvcTest, SweepRequestRejectsBadDocuments)
{
    // A typo must never silently run the wrong thing.
    EXPECT_THROW(exp::SweepRequest::fromJsonText("{\"sweeep\": \"smoke\"}"),
                 std::runtime_error);
    EXPECT_THROW(exp::SweepRequest::fromJsonText("{\"seeds\": \"three\"}"),
                 std::runtime_error);
    EXPECT_THROW(exp::SweepRequest::fromJsonText("{\"seeds\": 0}"),
                 std::runtime_error);
    EXPECT_THROW(exp::SweepRequest::fromJsonText("{\"sweep\": \"nope\"}"),
                 std::runtime_error);
    EXPECT_THROW(
        exp::SweepRequest::fromJsonText("{\"workloads\": [\"nope\"]}"),
        std::runtime_error);
    EXPECT_THROW(exp::SweepRequest::fromJsonText("not json"),
                 std::runtime_error);
    // And a partial document overrides only what it names.
    const auto req = exp::SweepRequest::fromJsonText("{\"seeds\": 2}");
    EXPECT_EQ(req.sweep, "smoke");
    EXPECT_EQ(req.seeds, 2u);
    EXPECT_TRUE(req.includeTiming);
}

TEST_F(SvcTest, SweepRequestLowersToTheSweepItDenotes)
{
    exp::SweepRequest req;
    req.sweep = "smoke";
    req.workloads = {"LIB"};
    req.config = sim::SimConfig{};
    req.configLabel = "mine";
    req.seeds = 2;
    req.baseSeed = 7;

    const exp::Sweep sweep = req.toSweep();
    ASSERT_EQ(sweep.workloads, std::vector<std::string>{"LIB"});
    ASSERT_EQ(sweep.configs.size(), 1u);
    EXPECT_EQ(sweep.configs[0].label, "mine");
    ASSERT_EQ(sweep.seeds, (std::vector<std::uint64_t>{0, 1}));
    EXPECT_EQ(sweep.baseSeed, 7u);

    // Without overrides the named sweep comes through untouched.
    const exp::Sweep plain = exp::SweepRequest{}.toSweep();
    const exp::Sweep named = exp::namedSweep("smoke");
    EXPECT_EQ(plain.workloads, named.workloads);
    EXPECT_EQ(plain.configs.size(), named.configs.size());
}

// ---------------------------------------------------------------------
// The fingerprint.
// ---------------------------------------------------------------------

TEST_F(SvcTest, FingerprintMatchesTheVersionConstants)
{
    // Pinned on purpose: changing the fingerprint invalidates every
    // cache, so it must be a visible, deliberate act.
    const std::string want = "pilotrf-" + std::to_string(kVersionMajor) +
                             "." + std::to_string(kVersionMinor) +
                             "+stats" + std::to_string(kStatSchemaRev);
    EXPECT_EQ(versionString(), want);
}

TEST_F(SvcTest, ReportEmbedsFingerprintOnlyWithTiming)
{
    const exp::ExperimentRunner runner(1);
    const exp::SweepResult res = runner.run(tinyRequest().toSweep());
    exp::ReportOptions timed;
    timed.includeTiming = true;
    exp::ReportOptions untimed;
    untimed.includeTiming = false;
    const std::string marker = "\"version\": \"" + versionString() + "\"";
    EXPECT_NE(exp::toJsonString(res, timed).find(marker),
              std::string::npos);
    EXPECT_EQ(exp::toJsonString(res, untimed).find(marker),
              std::string::npos);
}

// ---------------------------------------------------------------------
// ResultStore: persistence, eviction, invalidation.
// ---------------------------------------------------------------------

/** Real ok results to feed the store (one per smoke/WP-ish cell). */
std::vector<exp::JobResult>
someResults(std::size_t n)
{
    exp::SweepRequest req;
    req.sweep = "smoke";
    const auto jobs = exp::ExperimentRunner::expand(req.toSweep());
    EXPECT_LE(n, jobs.size());
    const exp::ExperimentRunner runner(1);
    std::vector<exp::JobResult> out;
    for (std::size_t i = 0; i < n && i < jobs.size(); ++i)
        out.push_back(runner.runJobGuarded(jobs[i]));
    return out;
}

TEST_F(SvcTest, ResultStorePersistsAcrossReopen)
{
    const std::string path = tmpPath("persist");
    const auto results = someResults(2);
    const std::string k0 = exp::checkpointKey(results[0].job);
    const std::string k1 = exp::checkpointKey(results[1].job);

    {
        svc::ResultStore store(path, "fpA");
        EXPECT_EQ(store.size(), 0u);
        store.put(k0, results[0]);
        store.put(k1, results[1]);
        EXPECT_EQ(store.size(), 2u);
        ASSERT_TRUE(store.get(k0).has_value());
        EXPECT_FALSE(store.get("missing").has_value());
        const auto c = store.counters();
        EXPECT_EQ(c.puts, 2u);
        EXPECT_EQ(c.hits, 1u);
        EXPECT_EQ(c.misses, 1u);
    }

    // A restarted daemon sees the same cells.
    svc::ResultStore store(path, "fpA");
    EXPECT_EQ(store.size(), 2u);
    const auto entry = store.get(k1);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->cycles, results[1].run.totalCycles);
    EXPECT_EQ(entry->fingerprint, "fpA");
    EXPECT_EQ(store.counters().invalidated, 0u);
}

TEST_F(SvcTest, ResultStoreInvalidatesOnFingerprintChange)
{
    const std::string path = tmpPath("invalidate");
    const auto results = someResults(2);
    {
        svc::ResultStore store(path, "fpA");
        for (const auto &r : results)
            store.put(exp::checkpointKey(r.job), r);
    }
    // The simulator changed in a stat-affecting way: every cached cell
    // is stale, dropped, and physically compacted away.
    svc::ResultStore store(path, "fpB");
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.counters().invalidated, 2u);
    EXPECT_EQ(lineCount(path), 0u);
}

TEST_F(SvcTest, ResultStoreEvictsLeastRecentlyUsed)
{
    const std::string path = tmpPath("evict");
    const auto results = someResults(3);
    std::vector<std::string> keys;
    for (const auto &r : results)
        keys.push_back(exp::checkpointKey(r.job));

    svc::ResultStore store(path, "fpA", 2);
    store.put(keys[0], results[0]);
    store.put(keys[1], results[1]);
    ASSERT_TRUE(store.get(keys[0]).has_value()); // refresh: 1 is now LRU
    store.put(keys[2], results[2]);              // evicts 1, not 0
    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.contains(keys[0]));
    EXPECT_FALSE(store.contains(keys[1]));
    EXPECT_TRUE(store.contains(keys[2]));
    EXPECT_EQ(store.counters().evictions, 1u);
    // Compaction is amortized: the evicted line stays in the file until
    // enough dead lines accumulate; an explicit compact() rewrites the
    // file down to exactly the live entries.
    EXPECT_EQ(lineCount(path), 3u);
    store.compact();
    EXPECT_EQ(lineCount(path), 2u) << "compact() must drop dead lines";
}

TEST_F(SvcTest, ResultStoreRefusesNonOkResults)
{
    const auto results = someResults(1);
    exp::JobResult bad = results[0];
    bad.status = exp::JobStatus::Failed;
    bad.error = "injected";
    svc::ResultStore store("", "fpA");
    store.put(exp::checkpointKey(bad.job), bad);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.counters().puts, 0u);
}

// ---------------------------------------------------------------------
// SweepService: cache correctness and the byte-identity guarantee.
// ---------------------------------------------------------------------

TEST_F(SvcTest, SecondRequestIsServedEntirelyFromTheStore)
{
    const auto req = tinyRequest();
    const std::string reference = batchReference(req);

    svc::ServiceOptions sopts;
    sopts.threads = 2;
    svc::SweepService service(sopts);

    svc::RequestStats s1;
    const std::string first = service.report(req, {}, &s1);
    EXPECT_EQ(s1.jobs, 2u);
    EXPECT_EQ(s1.simulated, 2u);
    EXPECT_EQ(s1.cacheHits, 0u);
    EXPECT_EQ(s1.ok, 2u);
    EXPECT_EQ(first, reference)
        << "a daemon-served report must match batch mode byte-for-byte";

    svc::RequestStats s2;
    const std::string second = service.report(req, {}, &s2);
    EXPECT_EQ(s2.cacheHits, 2u);
    EXPECT_EQ(s2.simulated, 0u) << "an identical request must not "
                                   "simulate anything";
    EXPECT_EQ(second, first);
    EXPECT_EQ(service.store().counters().puts, 2u);
}

TEST_F(SvcTest, CacheIsSharedAcrossRelabelledConfigs)
{
    // Same config contents under a different label: content-addressed
    // keys serve it from cache; only presentation differs.
    auto req = tinyRequest();
    req.config = exp::namedSweep("smoke").configs[0].cfg;
    req.configLabel = "first";

    svc::SweepService service({});
    svc::RequestStats s1, s2;
    service.report(req, {}, &s1);
    EXPECT_EQ(s1.simulated, 1u); // one workload x one config variant

    req.configLabel = "renamed";
    const std::string second = service.report(req, {}, &s2);
    EXPECT_EQ(s2.simulated, 0u);
    EXPECT_EQ(s2.cacheHits, 1u);
    EXPECT_NE(second.find("\"renamed\""), std::string::npos)
        << "the report must present this request's label";
}

TEST_F(SvcTest, StatusStreamReportsSourcesAndSummary)
{
    const auto req = tinyRequest();
    svc::SweepService service({});
    std::vector<std::string> lines;
    service.report(req, [&](const std::string &l) { lines.push_back(l); });
    ASSERT_EQ(lines.size(), 3u); // 2 jobs + summary
    EXPECT_NE(lines[0].find("\"source\":\"run\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"type\":\"summary\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"simulated\":2"), std::string::npos);

    lines.clear();
    service.report(req, [&](const std::string &l) { lines.push_back(l); });
    EXPECT_NE(lines[0].find("\"source\":\"cache\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"cacheHits\":2"), std::string::npos);
}

TEST_F(SvcTest, ConcurrentClientsSimulateEachCellExactlyOnce)
{
    // The soak: 8 clients hammer the same 6-cell sweep concurrently.
    // Single-flight means every unique cell executes exactly once
    // across ALL of them, and everyone gets byte-identical reports.
    exp::SweepRequest req;
    req.sweep = "smoke";
    req.includeTiming = false;
    const std::string reference = batchReference(req);

    ScopedCountingHook hook;
    svc::ServiceOptions sopts;
    sopts.threads = 3;
    svc::SweepService service(sopts);

    constexpr unsigned kClients = 8;
    std::vector<std::string> reports(kClients);
    std::vector<svc::RequestStats> stats(kClients);
    {
        std::vector<std::jthread> clients;
        for (unsigned i = 0; i < kClients; ++i) {
            clients.emplace_back([&, i] {
                reports[i] = service.report(req, {}, &stats[i]);
            });
        }
    }

    const auto counts = hook.snapshot();
    EXPECT_EQ(counts.size(), 6u) << "every unique cell executed";
    for (const auto &[key, n] : counts)
        EXPECT_EQ(n, 1u) << key << " simulated more than once";

    std::size_t simulated = 0, served = 0;
    for (unsigned i = 0; i < kClients; ++i) {
        EXPECT_EQ(stats[i].jobs, 6u);
        EXPECT_EQ(stats[i].ok, 6u);
        EXPECT_EQ(reports[i], reference)
            << "client " << i << " diverged from the batch reference";
        simulated += stats[i].simulated;
        served += stats[i].cacheHits + stats[i].joined;
    }
    EXPECT_EQ(simulated, 6u);
    EXPECT_EQ(served, kClients * 6u - 6u);
}

TEST_F(SvcTest, RestartedServiceServesFromDisk)
{
    const auto req = tinyRequest();
    const std::string path = tmpPath("daemon_restart");
    svc::ServiceOptions sopts;
    sopts.storePath = path;
    std::string first;
    {
        svc::SweepService service(sopts);
        first = service.report(req);
    }
    // A new daemon process over the same store file: all hits.
    svc::SweepService service(sopts);
    svc::RequestStats rs;
    EXPECT_EQ(service.report(req, {}, &rs), first);
    EXPECT_EQ(rs.cacheHits, 2u);
    EXPECT_EQ(rs.simulated, 0u);
}

// ---------------------------------------------------------------------
// The wire protocol.
// ---------------------------------------------------------------------

TEST_F(SvcTest, SocketRoundTripAndErrorReply)
{
    const std::string sock = ::testing::TempDir() + "pilotrf_svc_test.sock";
    std::remove(sock.c_str());
    const auto req = tinyRequest();
    const std::string reference = batchReference(req);

    svc::SweepService service({});
    std::jthread daemon(
        [&] { svc::serve(sock, service, /*maxConns=*/3); });

    // The daemon binds asynchronously; retry until it listens.
    std::ostringstream report, status;
    int rc = -1;
    for (int tries = 0; tries < 100; ++tries) {
        report.str("");
        status.str("");
        rc = svc::runClient(sock, req.jsonText(), report, status);
        if (rc != ECONNREFUSED && rc != ENOENT)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_EQ(rc, 0);
    EXPECT_EQ(report.str(), reference);
    EXPECT_NE(status.str().find("\"type\":\"summary\""), std::string::npos);

    // A malformed request draws "#error" (rc 3), not a dead daemon.
    std::ostringstream r2, s2;
    EXPECT_EQ(svc::runClient(sock, "{\"sweep\": \"nope\"}", r2, s2), 3);

    // The daemon survived: a third request still gets a report, served
    // from its in-memory cache this time.
    std::ostringstream r3, s3;
    ASSERT_EQ(svc::runClient(sock, req.jsonText(), r3, s3), 0);
    EXPECT_EQ(r3.str(), reference);
    EXPECT_NE(s3.str().find("\"cacheHits\":2"), std::string::npos);
}

} // namespace
