/**
 * @file
 * WorkerPool pass protocol: every index runs exactly once per pass, a
 * pass may involve fewer workers than the pool holds (the partial-wake
 * fast path), and the pool survives thousands of back-to-back passes of
 * alternating width without losing a ticket to a stale claim — the
 * regression mode of the quiescence bug, where a worker's final
 * exhausted fetch-add could land on the *next* pass's freshly reset
 * counter and re-run a destroyed context.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/worker_pool.hh"

using namespace pilotrf::sim;

TEST(WorkerPool, RunsEveryIndexExactlyOnce)
{
    WorkerPool pool(4);
    std::vector<std::atomic<unsigned>> hits(257);
    for (auto &h : hits)
        h.store(0);
    pool.run(unsigned(hits.size()),
             [&](unsigned i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(WorkerPool, SingleWorkerPoolRunsAllTasks)
{
    WorkerPool pool(1);
    std::atomic<unsigned> sum{0};
    pool.run(100, [&](unsigned i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkerPool, FewerTasksThanWorkers)
{
    // A one-task pass on a wide pool: only a subset of workers is
    // woken, the rest sleep through the pass, and the next full-width
    // pass must still reach every worker.
    WorkerPool pool(8);
    for (unsigned round = 0; round < 50; ++round) {
        std::atomic<unsigned> one{0};
        pool.run(1, [&](unsigned i) {
            EXPECT_EQ(i, 0u);
            one.fetch_add(1);
        });
        EXPECT_EQ(one.load(), 1u);

        std::atomic<unsigned> many{0};
        pool.run(16, [&](unsigned) { many.fetch_add(1); });
        EXPECT_EQ(many.load(), 16u);
    }
}

TEST(WorkerPool, ZeroTaskPassCompletes)
{
    WorkerPool pool(4);
    pool.run(0, [&](unsigned) { FAIL() << "no index should run"; });
    std::atomic<unsigned> n{0};
    pool.run(4, [&](unsigned) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 4u);
}

TEST(WorkerPool, UnevenTaskDurationsLoseNothing)
{
    // The atomic claim counter load-balances: one long task must not
    // stall the others, and every index still runs exactly once.
    WorkerPool pool(4);
    std::vector<std::atomic<unsigned>> hits(32);
    for (auto &h : hits)
        h.store(0);
    pool.run(unsigned(hits.size()), [&](unsigned i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(WorkerPool, ManyAlternatingPassesStaleClaimStress)
{
    // Back-to-back passes of alternating width with no think time
    // between them: the orchestrator resets the claim counter for pass
    // N+1 while pass N's last participant may still be inside its final
    // (exhausted) fetch-add. Quiescence tracking must keep that stale
    // claim from ever stealing a ticket — a lost ticket shows up as a
    // wrong per-pass sum or a hang (caught by the test timeout).
    WorkerPool pool(7);
    for (unsigned pass = 0; pass < 3000; ++pass) {
        const unsigned n = 1 + pass % 13;
        std::atomic<std::uint64_t> sum{0};
        pool.run(n, [&](unsigned i) { sum.fetch_add(i + 1); });
        EXPECT_EQ(sum.load(), std::uint64_t(n) * (n + 1) / 2)
            << "pass " << pass << " width " << n;
    }
}
