/**
 * @file
 * Configuration-as-data tests: every enum's parse function is the exact
 * inverse of its toString (exhaustively, including the out-of-range
 * sentinel), SimConfig survives a JSON round trip with every field set
 * away from its default, partial documents override only what they name,
 * and every malformed input — unknown key, nested unknown key, mistyped
 * value, unknown enum name, negative integer, broken JSON — throws
 * instead of silently falling back to a default.
 */

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "regfile/partitioned_rf.hh"
#include "rfmodel/rf_specs.hh"
#include "sim/sim_config.hh"
#include "sim/trace.hh"

using namespace pilotrf;
using namespace pilotrf::sim;

// --- enum round trips -------------------------------------------------------

TEST(EnumRoundTrip, RfKind)
{
    for (unsigned i = 0; i < numRfKinds; ++i) {
        const auto k = RfKind(i);
        const auto back = parseRfKind(toString(k));
        ASSERT_TRUE(back.has_value()) << toString(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_STREQ(toString(RfKind(numRfKinds)), "?");
    EXPECT_FALSE(parseRfKind("bogus").has_value());
    EXPECT_FALSE(parseRfKind("?").has_value());
    EXPECT_FALSE(parseRfKind("").has_value());
}

TEST(EnumRoundTrip, SchedulerPolicy)
{
    for (unsigned i = 0; i < numSchedulerPolicies; ++i) {
        const auto p = SchedulerPolicy(i);
        const auto back = parseSchedulerPolicy(toString(p));
        ASSERT_TRUE(back.has_value()) << toString(p);
        EXPECT_EQ(*back, p);
    }
    EXPECT_STREQ(toString(SchedulerPolicy(numSchedulerPolicies)), "?");
    EXPECT_FALSE(parseSchedulerPolicy("bogus").has_value());
}

TEST(EnumRoundTrip, ShardSchedule)
{
    for (unsigned i = 0; i < numShardSchedules; ++i) {
        const auto s = ShardSchedule(i);
        const auto back = parseShardSchedule(toString(s));
        ASSERT_TRUE(back.has_value()) << toString(s);
        EXPECT_EQ(*back, s);
    }
    EXPECT_STREQ(toString(ShardSchedule(numShardSchedules)), "?");
    EXPECT_FALSE(parseShardSchedule("bogus").has_value());
    // Names are lowercase on the wire, like every other enum knob.
    EXPECT_FALSE(parseShardSchedule("Static").has_value());
}

TEST(EnumRoundTrip, Profiling)
{
    for (unsigned i = 0; i < regfile::numProfilings; ++i) {
        const auto p = regfile::Profiling(i);
        const auto back = regfile::parseProfiling(regfile::toString(p));
        ASSERT_TRUE(back.has_value()) << regfile::toString(p);
        EXPECT_EQ(*back, p);
    }
    EXPECT_STREQ(regfile::toString(regfile::Profiling(regfile::numProfilings)),
                 "?");
    EXPECT_FALSE(regfile::parseProfiling("bogus").has_value());
}

TEST(EnumRoundTrip, RfMode)
{
    for (unsigned i = 0; i < rfmodel::numRfModes; ++i) {
        const auto m = rfmodel::RfMode(i);
        const auto back = rfmodel::parseRfMode(rfmodel::toString(m));
        ASSERT_TRUE(back.has_value()) << rfmodel::toString(m);
        EXPECT_EQ(*back, m);
    }
    EXPECT_STREQ(rfmodel::toString(rfmodel::RfMode(rfmodel::numRfModes)),
                 "?");
    EXPECT_FALSE(rfmodel::parseRfMode("bogus").has_value());
}

TEST(EnumRoundTrip, TraceCat)
{
    for (unsigned i = 0; i < unsigned(TraceCat::NumCats); ++i) {
        const auto c = TraceCat(i);
        const auto back = parseTraceCat(toString(c));
        ASSERT_TRUE(back.has_value()) << toString(c);
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(parseTraceCat("bogus").has_value());
}

// --- SimConfig JSON ---------------------------------------------------------

namespace
{

/** A config with every field moved off its default. */
SimConfig
everyFieldNonDefault()
{
    SimConfig c;
    c.numSms = 3;
    c.warpsPerSm = 16;
    c.schedulers = 2;
    c.issuePerScheduler = 1;
    c.rfBanks = 12;
    c.collectors = 8;
    c.maxCtasPerSm = 4;
    c.threadRegsPerSm = 32768;
    c.policy = SchedulerPolicy::TwoLevel;
    c.tlActiveWarps = 6;
    c.spLatency = 11;
    c.sfuLatency = 22;
    c.spWidth = 4;
    c.sfuWidth = 1;
    c.memWidth = 2;
    c.maxInflightPerWarp = 3;
    c.writeForwarding = false;
    c.sharedLatency = 30;
    c.globalLatency = 300;
    c.maxOutstandingMem = 16;
    c.l1Enable = true;
    c.l1SizeKb = 32;
    c.l1Assoc = 8;
    c.l1HitLatency = 20;
    c.l2Enable = true;
    c.l2SizeKb = 2048;
    c.l2Assoc = 16;
    c.l2HitLatency = 90;
    c.dramEnable = true;
    c.dramLatency = 77;
    c.dramPartitions = 4;
    c.dramServiceCycles = 3;
    c.rfKind = RfKind::Rfc;
    c.prf.frfRegs = 6;
    c.prf.profiling = regfile::Profiling::Oracle;
    c.prf.adaptiveFrf = false;
    c.prf.epochLength = 75;
    c.prf.issueThreshold = 50;
    c.prf.frfHighLatency = 2;
    c.prf.frfLowLatency = 3;
    c.prf.srfLatency = 5;
    c.prf.countRemapTraffic = false;
    c.prf.swapTableExtraCycle = true;
    c.rfc.regsPerWarp = 8;
    c.rfc.mrfMode = rfmodel::RfMode::MrfStv;
    c.rfc.mrfLatency = 4;
    c.rfc.rfcLatency = 2;
    c.rfc.readPorts = 3;
    c.rfc.writePorts = 2;
    c.rfc.rfcBanks = 2;
    c.rfc.allocOnReadMiss = false;
    c.drowsy.drowsyAfter = 64;
    c.drowsy.wakeLatency = 2;
    c.drowsy.drowsyLeakFactor = 0.5;
    c.mrfLatencyOverride = 7;
    c.enableCycleSkip = false;
    c.numWorkers = 4;
    c.shardSchedule = ShardSchedule::Static;
    c.maxCycles = 12345678;
    return c;
}

void
expectEqual(const SimConfig &a, const SimConfig &b)
{
    // Field-by-field via the canonical serialization: declaration-order
    // text equality is value equality for every field.
    EXPECT_EQ(a.jsonText(), b.jsonText());
}

} // namespace

TEST(SimConfigJson, DefaultsRoundTrip)
{
    const SimConfig def;
    expectEqual(def, SimConfig::fromJsonText(def.jsonText()));
}

TEST(SimConfigJson, EveryFieldRoundTrips)
{
    const SimConfig cfg = everyFieldNonDefault();
    const SimConfig back = SimConfig::fromJsonText(cfg.jsonText());
    expectEqual(cfg, back);

    // The serialization really moved every scalar: it must differ from
    // the default document on every line that carries a value.
    const SimConfig def;
    std::istringstream a(cfg.jsonText()), b(def.jsonText());
    std::string la, lb;
    while (std::getline(a, la) && std::getline(b, lb)) {
        if (la.find(':') == std::string::npos)
            continue; // structural lines ({, }, nested headers)
        if (la.find('{') != std::string::npos)
            continue;
        EXPECT_NE(la, lb) << "field not exercised by the round-trip test";
    }
}

TEST(SimConfigJson, OutputIsValidJson)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(everyFieldNonDefault().jsonText(), doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.numberOr("numSms", 0), 3.0);
    EXPECT_EQ(doc.stringOr("rfKind", ""), toString(RfKind::Rfc));
    const JsonValue *prf = doc.find("prf");
    ASSERT_NE(prf, nullptr);
    ASSERT_TRUE(prf->isObject());
    EXPECT_EQ(prf->stringOr("profiling", ""),
              regfile::toString(regfile::Profiling::Oracle));
}

TEST(SimConfigJson, PartialDocumentKeepsDefaults)
{
    const SimConfig c = SimConfig::fromJsonText(
        R"({"numSms": 1, "prf": {"frfRegs": 8}})");
    const SimConfig def;
    EXPECT_EQ(c.numSms, 1u);
    EXPECT_EQ(c.prf.frfRegs, 8u);
    // Everything unnamed stays at its default.
    EXPECT_EQ(c.warpsPerSm, def.warpsPerSm);
    EXPECT_EQ(c.rfKind, def.rfKind);
    EXPECT_EQ(c.prf.epochLength, def.prf.epochLength);
    EXPECT_EQ(c.rfc.regsPerWarp, def.rfc.regsPerWarp);
}

TEST(SimConfigJson, EmptyObjectIsTheDefaultConfig)
{
    expectEqual(SimConfig{}, SimConfig::fromJsonText("{}"));
}

namespace
{

/** The what() of the runtime_error fromJsonText(text) throws. */
std::string
errorFor(const std::string &text)
{
    try {
        (void)SimConfig::fromJsonText(text);
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(SimConfigJson, StrictErrors)
{
    // Unknown top-level key.
    EXPECT_NE(errorFor(R"({"numSmz": 4})").find("unknown key 'numSmz'"),
              std::string::npos);
    // Unknown nested key names its path.
    EXPECT_NE(
        errorFor(R"({"prf": {"frfRegz": 4}})").find("'prf.frfRegz'"),
        std::string::npos);
    EXPECT_NE(errorFor(R"({"rfc": {"bogus": 1}})").find("'rfc.bogus'"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"drowsy": {"bogus": 1}})").find("'drowsy.bogus'"),
              std::string::npos);
    // Mistyped values.
    EXPECT_NE(errorFor(R"({"numSms": "four"})").find("must be a number"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"l1Enable": 1})").find("must be a boolean"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"rfKind": 2})").find("must be a string"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"prf": 3})").find("'prf' must be an object"),
              std::string::npos);
    // Unknown enum names.
    EXPECT_NE(errorFor(R"({"rfKind": "Bogus"})").find("unknown name 'Bogus'"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"policy": "fifo"})").find("unknown name 'fifo'"),
              std::string::npos);
    // Negative / fractional integers.
    EXPECT_NE(errorFor(R"({"numSms": -1})").find("non-negative integer"),
              std::string::npos);
    EXPECT_NE(errorFor(R"({"numSms": 1.5})").find("non-negative integer"),
              std::string::npos);
    // Malformed JSON and non-object documents.
    EXPECT_NE(errorFor("{").find("parse error"), std::string::npos);
    EXPECT_NE(errorFor("[1, 2]").find("must be an object"),
              std::string::npos);
}

TEST(SimConfigJson, ThrowsAreRuntimeErrors)
{
    EXPECT_THROW((void)SimConfig::fromJsonText(R"({"x": 1})"),
                 std::runtime_error);
    EXPECT_THROW((void)SimConfig::fromJsonText("not json"),
                 std::runtime_error);
}
