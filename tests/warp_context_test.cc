/**
 * @file
 * Warp context tests: scoreboard hazards, deterministic branch/loop
 * evaluation, and control-flow execution.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sim/warp_context.hh"

using namespace pilotrf;
using namespace pilotrf::sim;
using namespace pilotrf::isa;

namespace
{
Kernel
loopKernel(unsigned trips, unsigned spread, bool divergent)
{
    KernelBuilder b("loop", 8, 64, 4, 1234);
    b.op(Opcode::Mov, 0, {1});
    b.beginLoop(trips, spread, divergent);
    b.op(Opcode::IAdd, 2, {2});
    b.endLoop();
    return b.build();
}

WarpContext
makeWarp(const Kernel &k, CtaId cta = 0, unsigned wInCta = 0,
         unsigned threads = 32)
{
    WarpContext w;
    w.launch(&k, cta, wInCta, 0, 0, threads);
    return w;
}
} // namespace

TEST(WarpContext, LaunchState)
{
    auto k = loopKernel(2, 0, false);
    auto w = makeWarp(k);
    EXPECT_TRUE(w.valid());
    EXPECT_FALSE(w.done());
    EXPECT_EQ(w.pc(), 0u);
    EXPECT_EQ(w.activeMask(), fullMask);
    EXPECT_EQ(w.inflight(), 0u);
}

TEST(WarpContext, PartialWarpMask)
{
    auto k = loopKernel(2, 0, false);
    auto w = makeWarp(k, 0, 1, 29);
    EXPECT_EQ(w.activeMask(), 0x1fffffffu);
}

TEST(WarpContext, ScoreboardRawBlocks)
{
    auto k = loopKernel(2, 0, false);
    auto w = makeWarp(k);
    Instruction wr;
    wr.op = Opcode::Mov;
    wr.numDsts = 1;
    wr.dsts[0] = 3;
    Instruction rd;
    rd.op = Opcode::IAdd;
    rd.numDsts = 1;
    rd.dsts[0] = 4;
    rd.numSrcs = 1;
    rd.srcs[0] = 3;

    EXPECT_TRUE(w.scoreboardReady(wr));
    w.scoreboardIssue(wr);
    EXPECT_FALSE(w.scoreboardReady(rd)); // RAW on r3
    EXPECT_FALSE(w.scoreboardReady(wr)); // WAW on r3
    w.releaseWrite(3);
    EXPECT_TRUE(w.scoreboardReady(rd));
}

TEST(WarpContext, ScoreboardWarBlocks)
{
    auto k = loopKernel(2, 0, false);
    auto w = makeWarp(k);
    Instruction rd;
    rd.op = Opcode::Mov;
    rd.numDsts = 1;
    rd.dsts[0] = 5;
    rd.numSrcs = 1;
    rd.srcs[0] = 6;
    Instruction wr6;
    wr6.op = Opcode::Mov;
    wr6.numDsts = 1;
    wr6.dsts[0] = 6;

    w.scoreboardIssue(rd);
    w.releaseWrite(5);
    EXPECT_FALSE(w.scoreboardReady(wr6)); // WAR: r6 still being read
    w.releaseRead(6);
    EXPECT_TRUE(w.scoreboardReady(wr6));
}

TEST(WarpContext, InflightCounting)
{
    auto k = loopKernel(2, 0, false);
    auto w = makeWarp(k);
    w.addInflight();
    w.addInflight();
    EXPECT_EQ(w.inflight(), 2u);
    w.removeInflight();
    EXPECT_EQ(w.inflight(), 1u);
}

TEST(WarpContext, UniformLoopRunsExactTripCount)
{
    const unsigned trips = 7;
    auto k = loopKernel(trips, 0, false);
    auto w = makeWarp(k);
    unsigned bodyExecutions = 0;
    while (!w.done()) {
        const auto &in = w.nextInstr();
        if (w.pc() == 1)
            ++bodyExecutions;
        w.executeControl(in);
    }
    EXPECT_EQ(bodyExecutions, trips);
}

TEST(WarpContext, LoopTripsDeterministicPerCoordinates)
{
    auto k = loopKernel(4, 8, false);
    auto runTrips = [&](CtaId cta, unsigned wic) {
        auto w = makeWarp(k, cta, wic);
        unsigned body = 0;
        while (!w.done()) {
            if (w.pc() == 1)
                ++body;
            w.executeControl(w.nextInstr());
        }
        return body;
    };
    EXPECT_EQ(runTrips(3, 1), runTrips(3, 1)); // reproducible
}

TEST(WarpContext, DivergentLoopMasksShrinkAndReconverge)
{
    auto k = loopKernel(3, 6, true);
    auto w = makeWarp(k);
    bool sawPartialMask = false;
    while (!w.done()) {
        if (w.pc() == 1 && w.activeMask() != fullMask)
            sawPartialMask = true;
        w.executeControl(w.nextInstr());
        if (w.pc() == 3) { // after the loop: must be reconverged
            EXPECT_EQ(w.activeMask(), fullMask);
        }
    }
    EXPECT_TRUE(sawPartialMask);
}

TEST(WarpContext, DivergentIfSplitsByFraction)
{
    KernelBuilder b("iff", 4, 32, 4, 77);
    b.beginIf(0.5);
    b.op(Opcode::IAdd, 0, {0});
    b.endIf();
    auto k = b.build();
    // Count lanes executing the body across several warps.
    unsigned bodyLanes = 0;
    for (unsigned wic = 0; wic < 8; ++wic) {
        auto w = makeWarp(k, wic / 2, wic % 2);
        while (!w.done()) {
            if (w.pc() == 1)
                bodyLanes += __builtin_popcount(w.activeMask());
            w.executeControl(w.nextInstr());
        }
    }
    EXPECT_NEAR(bodyLanes / (8.0 * 32.0), 0.5, 0.15);
}

TEST(WarpContext, UniformBranchWholeWarpDecision)
{
    KernelBuilder b("u", 4, 32, 4, 99);
    b.beginIfUniform(0.5);
    b.op(Opcode::IAdd, 0, {0});
    b.endIf();
    auto k = b.build();
    for (unsigned wic = 0; wic < 8; ++wic) {
        auto w = makeWarp(k, wic, 0);
        while (!w.done()) {
            if (w.pc() == 1) {
                EXPECT_EQ(w.activeMask(), fullMask); // all or nothing
            }
            w.executeControl(w.nextInstr());
        }
    }
}

TEST(WarpContext, NestedLoopsReenterCorrectly)
{
    KernelBuilder b("nest", 4, 32, 1, 5);
    b.beginLoop(3);
    b.beginLoop(2);
    b.op(Opcode::IAdd, 0, {0});
    b.endLoop();
    b.endLoop();
    auto k = b.build();
    auto w = makeWarp(k);
    unsigned body = 0;
    while (!w.done()) {
        if (w.pc() == 1)
            ++body;
        w.executeControl(w.nextInstr());
    }
    EXPECT_EQ(body, 6u); // 3 x 2
}

TEST(WarpContext, ExitFinishesWarp)
{
    KernelBuilder b("e", 4, 32, 1);
    auto k = b.build(); // just exit
    auto w = makeWarp(k);
    EXPECT_TRUE(w.executeControl(w.nextInstr()));
    EXPECT_TRUE(w.done());
}

TEST(WarpContext, BarrierAdvancesAndFlagsHandledExternally)
{
    KernelBuilder b("bar", 4, 64, 1);
    b.barrier();
    auto k = b.build();
    auto w = makeWarp(k);
    EXPECT_FALSE(w.executeControl(w.nextInstr()));
    EXPECT_EQ(w.pc(), 1u);
    w.setBarrier(true);
    EXPECT_TRUE(w.atBarrier());
    w.setBarrier(false);
    EXPECT_FALSE(w.atBarrier());
}
