/**
 * @file
 * Property-based fuzzing: generate random structured kernels (nested
 * loops, divergent/uniform ifs, barriers, memory ops) from a seeded
 * generator and check that
 *   (a) the full pipelined GPU executes exactly the dynamic instruction
 *       stream of the purely functional reference, and
 *   (b) the run is deterministic, and
 *   (c) with a randomized cache hierarchy (L1 size, L2 geometry, hit
 *       latency, DRAM stage), the sharded engine's stats are
 *       byte-identical to lockstep and the L1/L2 hit+miss counters
 *       conserve (every L1 miss is exactly one L2 access),
 * for every generated program and every RF backend (all five RfKinds,
 * plus the partitioned RF with the adaptive back-gate FRF disabled).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"
#include "sim/warp_context.hh"

using namespace pilotrf;
using namespace pilotrf::sim;
using namespace pilotrf::isa;

namespace
{

/** Emit a random block of code, recursing into loops/ifs. */
void
emitBlock(KernelBuilder &b, Rng &rng, unsigned regs, unsigned depth,
          unsigned &budget)
{
    const unsigned ops = 2 + unsigned(rng.below(5));
    for (unsigned i = 0; i < ops && budget > 0; ++i) {
        --budget;
        const auto r = [&] { return RegId(rng.below(regs)); };
        switch (rng.below(depth < 3 ? 8 : 5)) {
          case 0:
            b.op(Opcode::Mov, r(), {r()});
            break;
          case 1:
            b.op(Opcode::FFma, r(), {r(), r(), r()});
            break;
          case 2:
            b.op(Opcode::IAdd, r(), {r(), r()});
            break;
          case 3:
            b.load(r(), r(),
                   rng.below(2) ? MemSpace::Global : MemSpace::Shared,
                   1 + unsigned(rng.below(8)));
            break;
          case 4:
            b.store(r(), r(), MemSpace::Global, 1 + unsigned(rng.below(4)));
            break;
          case 5: { // loop
            b.beginLoop(1 + unsigned(rng.below(4)),
                        unsigned(rng.below(4)), rng.below(2) == 0);
            emitBlock(b, rng, regs, depth + 1, budget);
            b.endLoop();
            break;
          }
          case 6: { // if
            b.beginIf(rng.uniform(0.1, 0.9), rng.below(2) == 0);
            emitBlock(b, rng, regs, depth + 1, budget);
            b.endIf();
            break;
          }
          case 7:
            if (depth == 0)
                b.barrier(); // only at top level: always convergent
            else
                b.op(Opcode::FMul, r(), {r(), r()});
            break;
        }
    }
}

Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    const unsigned regs = 4 + unsigned(rng.below(20));
    const unsigned threads = 32 * (1 + unsigned(rng.below(4)));
    const unsigned ctas = 1 + unsigned(rng.below(6));
    KernelBuilder b("fuzz", regs, threads, ctas, seed);
    unsigned budget = 24;
    emitBlock(b, rng, regs, 0, budget);
    return b.build();
}

/** Functional execution: dynamic instruction count + operand accesses. */
std::pair<std::uint64_t, std::vector<std::uint64_t>>
functionalRun(const Kernel &k)
{
    std::uint64_t instrs = 0;
    std::vector<std::uint64_t> reg(maxRegsPerThread, 0);
    for (CtaId cta = 0; cta < k.numCtas(); ++cta) {
        unsigned threadsLeft = k.threadsPerCta();
        for (unsigned wic = 0; wic < k.warpsPerCta(); ++wic) {
            const unsigned threads = std::min(threadsLeft, warpSize);
            threadsLeft -= threads;
            WarpContext w;
            w.launch(&k, cta, wic, 0, 0, threads);
            while (!w.done()) {
                const auto &in = w.nextInstr();
                ++instrs;
                for (unsigned i = 0; i < in.numSrcs; ++i) {
                    bool dup = false;
                    for (unsigned j = 0; j < i; ++j)
                        dup |= in.srcs[j] == in.srcs[i];
                    if (!dup)
                        ++reg[in.srcs[i]];
                }
                for (unsigned i = 0; i < in.numDsts; ++i)
                    ++reg[in.dsts[i]];
                w.executeControl(in);
            }
        }
    }
    return {instrs, reg};
}

} // namespace

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

/** Every RF organization under test, including the Drowsy baseline and
 *  both FRF flavours (the adaptive back-gate FRF and fixed-high). */
std::vector<std::pair<std::string, SimConfig>>
allBackends()
{
    std::vector<std::pair<std::string, SimConfig>> backends;
    for (auto kind : {RfKind::MrfStv, RfKind::MrfNtv, RfKind::Partitioned,
                      RfKind::Rfc, RfKind::Drowsy}) {
        SimConfig cfg;
        cfg.numSms = 2;
        cfg.rfKind = kind;
        backends.emplace_back(toString(kind), cfg);
    }
    SimConfig fixedHigh;
    fixedHigh.numSms = 2;
    fixedHigh.rfKind = RfKind::Partitioned;
    fixedHigh.prf.adaptiveFrf = false; // default partitioned is adaptive
    backends.emplace_back("partitioned_fixed_high", fixedHigh);
    return backends;
}

TEST_P(FuzzDifferential, PipelineMatchesFunctionalOnEveryBackend)
{
    const auto k = randomKernel(GetParam());
    k.validate();
    const auto [instrs, reg] = functionalRun(k);

    for (const auto &[name, cfg] : allBackends()) {
        Gpu gpu(cfg);
        const auto r = gpu.run(k);
        EXPECT_EQ(r.totalInstructions, instrs)
            << "seed " << GetParam() << " backend " << name;
        // Access-count conservation: whatever banking, caching, swapping
        // or drowsy wakeup the backend does, each architected register is
        // accessed exactly as often as the functional reference says.
        std::vector<std::uint64_t> piped(maxRegsPerThread, 0);
        for (std::size_t i = 0; i < r.kernels[0].regAccess.size(); ++i)
            piped[i] = r.kernels[0].regAccess[i];
        EXPECT_EQ(piped, reg)
            << "seed " << GetParam() << " backend " << name;
    }
}

namespace
{

/** Canonical full-run dump: totals, merged deltas and every per-SM raw
 *  stat set, so an engine divergence localized to one SM cannot cancel
 *  in the merge. */
std::string
renderRun(Gpu &gpu, const RunResult &r)
{
    std::ostringstream os;
    os << r.totalCycles << " " << r.totalInstructions << "\n";
    r.rfStats.toJson(os);
    os << "\n";
    r.simStats.toJson(os);
    os << "\n";
    for (unsigned i = 0; i < gpu.numSms(); ++i) {
        gpu.smStats(i).rf().stats().toJson(os);
        os << "\n";
        gpu.smStats(i).stats().toJson(os);
        os << "\n";
    }
    return os.str();
}

} // namespace

TEST_P(FuzzDifferential, ShardedMatchesLockstepWithRandomizedL2)
{
    // Randomized cache-hierarchy fuzzing of the sharded engine: every
    // L2 geometry — from one that swallows the working set to one that
    // thrashes line-by-line, with and without the DRAM stage — must
    // produce byte-identical stats whether the shared L2 is accessed
    // inline (lockstep) or through the deferred request FIFOs replayed
    // at epoch barriers (sharded), for every RF backend.
    const auto k = randomKernel(GetParam());
    Rng rng(GetParam() ^ 0x12f00d5eedull);
    SimConfig base;
    base.numSms = 2;
    base.l1Enable = true;
    base.l1SizeKb = rng.below(2) ? 1 : 16;
    base.l2Enable = rng.below(4) != 0; // mostly on; off still must shard
    const unsigned sizes[] = {8, 64, 256, 1024};
    base.l2SizeKb = sizes[rng.below(4)];
    base.l2Assoc = 1u << rng.below(4);
    base.l2HitLatency = 20 + unsigned(rng.below(181)); // [20, 200]
    base.dramEnable = base.l2Enable && rng.below(2) == 0;

    for (auto kind : {RfKind::MrfStv, RfKind::MrfNtv, RfKind::Partitioned,
                      RfKind::Rfc, RfKind::Drowsy}) {
        SimConfig cfg = base;
        cfg.rfKind = kind;
        cfg.numWorkers = 1;
        Gpu lockstep(cfg);
        const RunResult lr = lockstep.run(k);
        cfg.numWorkers = 2;
        Gpu sharded(cfg);
        const RunResult sr = sharded.run(k);
        EXPECT_EQ(renderRun(lockstep, lr), renderRun(sharded, sr))
            << "seed " << GetParam() << " backend " << toString(kind);

        // Hierarchy conservation, on both engines: every L1 miss makes
        // exactly one L2 access, so the hit/miss counters must sum.
        for (Gpu *gpu : {&lockstep, &sharded}) {
            StatSet sim;
            for (unsigned i = 0; i < gpu->numSms(); ++i)
                sim.merge(gpu->smStats(i).stats());
            if (cfg.l2Enable)
                EXPECT_EQ(sim.get("l1.misses"),
                          sim.get("l2.hits") + sim.get("l2.misses"))
                    << "seed " << GetParam() << " backend "
                    << toString(kind);
            else
                EXPECT_EQ(sim.get("l2.hits") + sim.get("l2.misses"), 0.0)
                    << "seed " << GetParam() << " backend "
                    << toString(kind);
        }
    }
}

TEST_P(FuzzDifferential, DeterministicRepeat)
{
    const auto k = randomKernel(GetParam());
    for (auto kind : {RfKind::Partitioned, RfKind::Drowsy}) {
        SimConfig cfg;
        cfg.numSms = 2;
        cfg.rfKind = kind;
        Gpu a(cfg), b(cfg);
        EXPECT_EQ(a.run(k).totalCycles, b.run(k).totalCycles)
            << toString(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<std::uint64_t>(1, 26));
