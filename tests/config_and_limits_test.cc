/**
 * @file
 * Configuration and structural-limit tests: occupancy calculation,
 * config descriptions, result helpers, and SM behaviour under extreme
 * resource limits (single collector, single-entry memory queue, one
 * bank, narrow issue).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;
using namespace pilotrf::sim;
using namespace pilotrf::isa;

// --- occupancy -----------------------------------------------------------

TEST(Occupancy, WarpLimited)
{
    SimConfig c;
    // 32-warp CTAs: 64/32 = 2 CTAs by warps.
    EXPECT_EQ(c.ctasPerSm(8, 1024, 32), 2u);
}

TEST(Occupancy, RegisterLimited)
{
    SimConfig c;
    // 63 regs x 512 threads = 32256 regs/CTA; 65536/32256 = 2.
    EXPECT_EQ(c.ctasPerSm(63, 512, 16), 2u);
}

TEST(Occupancy, SlotLimited)
{
    SimConfig c;
    // Tiny CTAs: capped by maxCtasPerSm.
    EXPECT_EQ(c.ctasPerSm(8, 16, 1), c.maxCtasPerSm);
}

TEST(Occupancy, AtLeastOne)
{
    SimConfig c;
    EXPECT_GE(c.ctasPerSm(63, 1024, 32), 1u);
}

TEST(Occupancy, TableIIGeometries)
{
    SimConfig c;
    EXPECT_EQ(c.ctasPerSm(13, 256, 8), 8u);  // backprop: warp limited
    EXPECT_EQ(c.ctasPerSm(27, 256, 8), 8u);  // hotspot: warp limited
    EXPECT_EQ(c.ctasPerSm(15, 1024, 32), 2u); // stencil
}

// --- config descriptions ---------------------------------------------------

TEST(ConfigDescribe, MentionsSalientKnobs)
{
    SimConfig c;
    c.rfKind = RfKind::Partitioned;
    c.policy = SchedulerPolicy::TwoLevel;
    const auto s = c.describe();
    EXPECT_NE(s.find("Partitioned"), std::string::npos);
    EXPECT_NE(s.find("TL"), std::string::npos);
    EXPECT_NE(s.find("hybrid"), std::string::npos);
    EXPECT_NE(s.find("active=8"), std::string::npos);
}

TEST(ConfigDescribe, Names)
{
    EXPECT_STREQ(toString(SchedulerPolicy::Gto), "GTO");
    EXPECT_STREQ(toString(SchedulerPolicy::Lrr), "LRR");
    EXPECT_STREQ(toString(RfKind::Drowsy), "Drowsy");
}

// --- result helpers ---------------------------------------------------------

TEST(KernelResultHelpers, FractionsAndTops)
{
    KernelResult kr;
    kr.regAccess = {10, 0, 30, 60};
    EXPECT_DOUBLE_EQ(kr.accessFraction({3}), 0.6);
    EXPECT_DOUBLE_EQ(kr.accessFraction({3, 2}), 0.9);
    EXPECT_DOUBLE_EQ(kr.accessFraction({}), 0.0);
    const auto top2 = kr.topRegisters(2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0], 3);
    EXPECT_EQ(top2[1], 2);
    EXPECT_DOUBLE_EQ(kr.topNFraction(1), 0.6);
}

TEST(KernelResultHelpers, EmptyAccesses)
{
    KernelResult kr;
    kr.regAccess.assign(8, 0);
    EXPECT_DOUBLE_EQ(kr.topNFraction(3), 0.0);
}

// --- structural limits -------------------------------------------------------

namespace
{
Kernel
busyKernel()
{
    KernelBuilder b("busy", 12, 128, 6, 11);
    b.load(1, 0, MemSpace::Global, 4);
    b.beginLoop(6);
    b.op(Opcode::FFma, 2, {1, 3, 2});
    b.op(Opcode::IAdd, 4, {2, 1});
    b.op(Opcode::FMul, 5, {4, 2});
    b.endLoop();
    b.store(0, 5, MemSpace::Global, 2);
    return b.build();
}

std::uint64_t
cyclesWith(const std::function<void(SimConfig &)> &tweak)
{
    setQuiet(true);
    SimConfig c;
    c.numSms = 2;
    c.rfKind = RfKind::MrfStv;
    tweak(c);
    Gpu gpu(c);
    const auto r = gpu.run(busyKernel());
    EXPECT_EQ(r.simStats.get("ctas.launched"), 6.0);
    return r.totalCycles;
}
} // namespace

TEST(StructuralLimits, SingleCollectorStillCompletes)
{
    const auto slow = cyclesWith([](SimConfig &c) { c.collectors = 1; });
    const auto fast = cyclesWith([](SimConfig &) {});
    EXPECT_GT(slow, fast); // severe structural bottleneck costs time
}

TEST(StructuralLimits, SingleOutstandingMemory)
{
    const auto slow =
        cyclesWith([](SimConfig &c) { c.maxOutstandingMem = 1; });
    const auto fast = cyclesWith([](SimConfig &) {});
    EXPECT_GE(slow, fast);
}

TEST(StructuralLimits, SingleBank)
{
    const auto slow = cyclesWith([](SimConfig &c) { c.rfBanks = 1; });
    const auto fast = cyclesWith([](SimConfig &) {});
    EXPECT_GT(slow, fast);
}

TEST(StructuralLimits, SingleSchedulerSingleIssue)
{
    const auto slow = cyclesWith([](SimConfig &c) {
        c.schedulers = 1;
        c.issuePerScheduler = 1;
    });
    const auto fast = cyclesWith([](SimConfig &) {});
    EXPECT_GT(slow, fast);
}

TEST(StructuralLimits, InflightLimitOne)
{
    const auto slow =
        cyclesWith([](SimConfig &c) { c.maxInflightPerWarp = 1; });
    const auto fast = cyclesWith([](SimConfig &) {});
    EXPECT_GE(slow, fast);
}

TEST(StructuralLimits, PartialWarpCtaCompletes)
{
    setQuiet(true);
    // 61-thread CTAs: the second warp runs with 29 live lanes.
    KernelBuilder b("partial", 8, 61, 4, 2);
    b.op(Opcode::IAdd, 0, {1});
    b.barrier();
    b.op(Opcode::IAdd, 2, {0});
    SimConfig c;
    c.numSms = 1;
    Gpu gpu(c);
    const auto r = gpu.run(b.build());
    // 4 CTAs x 2 warps x 4 instructions (incl. barrier + exit).
    EXPECT_EQ(r.totalInstructions, 4u * 2u * 4u);
}

TEST(StructuralLimits, SrfLatencySweepMonotonicOnChain)
{
    // A purely dependent chain on a cold (SRF) register exposes the SRF
    // latency directly.
    setQuiet(true);
    std::uint64_t prev = 0;
    for (unsigned lat : {3u, 4u, 5u}) {
        KernelBuilder b("chain", 12, 32, 1, 1);
        for (int i = 0; i < 12; ++i)
            b.op(Opcode::IAdd, 10, {10, 11}); // r10/r11 stay in the SRF
        SimConfig c;
        c.numSms = 1;
        c.rfKind = RfKind::Partitioned;
        c.prf.profiling = regfile::Profiling::Static;
        c.prf.adaptiveFrf = false;
        c.prf.srfLatency = lat;
        Gpu gpu(c);
        const auto r = gpu.run(b.build());
        if (prev)
            EXPECT_GT(r.totalCycles, prev);
        prev = r.totalCycles;
    }
}
