/**
 * @file
 * SRAM cell model tests: VTC properties, butterfly SNM calibration to
 * Table III, cell-type comparisons and Monte-Carlo yield analysis.
 */

#include <gtest/gtest.h>

#include "circuit/monte_carlo.hh"
#include "circuit/sram.hh"

using namespace pilotrf::circuit;

namespace
{
const TechParams &tech = finfet7();
}

TEST(Vtc, MonotoneDecreasing)
{
    const auto cell = defaultCellParams(SramCellType::T8);
    Vtc vtc(cell, tech, vddStv, BackGate::Enabled, false);
    double prev = vtc.eval(0.0);
    for (double v = 0.01; v <= vddStv; v += 0.01) {
        const double out = vtc.eval(v);
        EXPECT_LE(out, prev + 1e-9);
        prev = out;
    }
}

TEST(Vtc, RailsAtEndpoints)
{
    const auto cell = defaultCellParams(SramCellType::T8);
    Vtc vtc(cell, tech, vddStv, BackGate::Enabled, false);
    EXPECT_GT(vtc.eval(0.0), 0.9 * vddStv);
    EXPECT_LT(vtc.eval(vddStv), 0.1 * vddStv);
}

TEST(Vtc, ReadDisturbRaisesLowOutput)
{
    const auto cell = defaultCellParams(SramCellType::T6);
    Vtc hold(cell, tech, vddStv, BackGate::Enabled, false);
    Vtc read(cell, tech, vddStv, BackGate::Enabled, true);
    // With the input high, the disturbed cell's low node sits above the
    // undisturbed one (the classic read-upset bump).
    EXPECT_GT(read.eval(vddStv), hold.eval(vddStv));
}

TEST(Snm, Tbl3HoldSnmStv)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_NEAR(snm(p8, tech, vddStv, SnmMode::Hold), 0.144, 0.015);
}

TEST(Snm, Tbl3HoldSnmNtv)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_NEAR(snm(p8, tech, vddNtv, SnmMode::Hold), 0.092, 0.015);
}

TEST(Snm, Tbl3BackGateOff)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_NEAR(snm(p8, tech, vddStv, SnmMode::Hold, BackGate::Disabled),
                0.096, 0.015);
}

TEST(Snm, SixTReadSnmMatchesSecIVA)
{
    const auto p6 = defaultCellParams(SramCellType::T6);
    EXPECT_NEAR(snm(p6, tech, vddStv, SnmMode::Read), 0.088, 0.012);
}

TEST(Snm, EightTReadEqualsHold)
{
    // The 8T read port is decoupled: read SNM == hold SNM.
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_DOUBLE_EQ(snm(p8, tech, vddStv, SnmMode::Read),
                     snm(p8, tech, vddStv, SnmMode::Hold));
}

TEST(Snm, SixTReadWorseThanHold)
{
    const auto p6 = defaultCellParams(SramCellType::T6);
    EXPECT_LT(snm(p6, tech, vddStv, SnmMode::Read),
              snm(p6, tech, vddStv, SnmMode::Hold));
}

TEST(Snm, EightTBeatsUpsizedSixTAtSmallerArea)
{
    // The Sec. IV-A conclusion: the compact 8T cell beats the upsized 6T.
    const auto p6 = defaultCellParams(SramCellType::T6);
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_GT(snm(p8, tech, vddStv, SnmMode::Read),
              snm(p6, tech, vddStv, SnmMode::Read));
    EXPECT_LT(p8.areaUm2, p6.areaUm2);
}

TEST(Snm, VariationDegradesWorstLobe)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    const double nominal = snm(p8, tech, vddStv, SnmMode::Hold);
    CellVariation var{+0.03, -0.03, 0.0, -0.03, +0.03, 0.0};
    EXPECT_LT(snm(p8, tech, vddStv, SnmMode::Hold, BackGate::Enabled, var),
              nominal);
}

TEST(Snm, SymmetricCellHasEqualLobes)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    Vtc inv(p8, tech, vddStv, BackGate::Enabled, false);
    EXPECT_NEAR(lobeSnm(inv, inv), lobeSnm(inv, inv), 1e-12);
}

// SNM positivity and scale across cells and voltages.
class SnmSweep : public ::testing::TestWithParam<
                     std::tuple<SramCellType, double>>
{
};

TEST_P(SnmSweep, PositiveAndBelowHalfVdd)
{
    const auto [type, vdd] = GetParam();
    const auto cell = defaultCellParams(type);
    for (auto mode : {SnmMode::Hold, SnmMode::Read}) {
        const double s = snm(cell, tech, vdd, mode);
        EXPECT_GT(s, 0.0);
        EXPECT_LT(s, vdd / 2.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CellsByVoltage, SnmSweep,
    ::testing::Combine(::testing::Values(SramCellType::T6, SramCellType::T8,
                                         SramCellType::T9,
                                         SramCellType::T10),
                       ::testing::Values(0.30, 0.35, 0.45)));

TEST(MonteCarlo, DeterministicPerSeed)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    const auto a = monteCarloSnm(p8, tech, vddStv, SnmMode::Hold,
                                 BackGate::Enabled, 0.04, 40, 7);
    const auto b = monteCarloSnm(p8, tech, vddStv, SnmMode::Hold,
                                 BackGate::Enabled, 0.04, 40, 7);
    EXPECT_DOUBLE_EQ(a.meanSnm, b.meanSnm);
    EXPECT_DOUBLE_EQ(a.yield, b.yield);
}

TEST(MonteCarlo, MeanNearNominal)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    const double nominal = snm(p8, tech, vddStv, SnmMode::Hold);
    const auto y = monteCarloSnm(p8, tech, vddStv, SnmMode::Hold,
                                 BackGate::Enabled, 0.04, 60, 11);
    // Variation only hurts the min over the two lobes.
    EXPECT_LT(y.meanSnm, nominal + 1e-9);
    EXPECT_GT(y.meanSnm, 0.6 * nominal);
}

TEST(MonteCarlo, NtvYieldWorseThanStvFor6T)
{
    const auto p6 = defaultCellParams(SramCellType::T6);
    const auto stv = monteCarloSnm(p6, tech, vddStv, SnmMode::Read,
                                   BackGate::Enabled, 0.05, 60, 21);
    const auto ntv = monteCarloSnm(p6, tech, vddNtv, SnmMode::Read,
                                   BackGate::Enabled, 0.05, 60, 21);
    EXPECT_LE(ntv.yield, stv.yield);
}

TEST(MonteCarlo, YieldBoundsAndStats)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    const auto y = monteCarloSnm(p8, tech, vddNtv, SnmMode::Hold,
                                 BackGate::Enabled, 0.04, 50, 3);
    EXPECT_GE(y.yield, 0.0);
    EXPECT_LE(y.yield, 1.0);
    EXPECT_LE(y.minSnm, y.meanSnm);
    EXPECT_GE(y.stdSnm, 0.0);
    EXPECT_EQ(y.samples, 50u);
}

TEST(CellParams, AreaOrdering)
{
    // 8T is the most compact; the upsized 6T and the taller 9T/10T cost
    // more area.
    const double a6 = defaultCellParams(SramCellType::T6).areaUm2;
    const double a8 = defaultCellParams(SramCellType::T8).areaUm2;
    const double a9 = defaultCellParams(SramCellType::T9).areaUm2;
    const double a10 = defaultCellParams(SramCellType::T10).areaUm2;
    EXPECT_LT(a8, a6);
    EXPECT_LT(a8, a9);
    EXPECT_LT(a9, a10);
}

TEST(CellParams, ReadDecoupling)
{
    EXPECT_FALSE(defaultCellParams(SramCellType::T6).readDecoupled);
    EXPECT_TRUE(defaultCellParams(SramCellType::T8).readDecoupled);
    EXPECT_TRUE(defaultCellParams(SramCellType::T9).readDecoupled);
    EXPECT_TRUE(defaultCellParams(SramCellType::T10).readDecoupled);
}

TEST(CellParams, ToStringNames)
{
    EXPECT_STREQ(toString(SramCellType::T6), "6T");
    EXPECT_STREQ(toString(SramCellType::T8), "8T");
    EXPECT_STREQ(toString(SramCellType::T9), "9T");
    EXPECT_STREQ(toString(SramCellType::T10), "10T");
}

TEST(WriteMargin, EightTWritableAtBothVoltages)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_GT(writeMargin(p8, tech, vddStv), 0.0);
    EXPECT_GT(writeMargin(p8, tech, vddNtv), 0.0);
}

TEST(WriteMargin, DegradesAtNtv)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_LT(writeMargin(p8, tech, vddNtv),
              writeMargin(p8, tech, vddStv));
}

TEST(WriteMargin, ReadUpsizedSixTNeedsWriteAssist)
{
    // The classic 6T tension: upsizing for read stability (2-fin pull
    // downs against a 1-fin access) leaves the cell statically
    // unwritable without assist techniques — one more reason the paper's
    // 8T choice wins.
    const auto p6 = defaultCellParams(SramCellType::T6);
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_LT(writeMargin(p6, tech, vddStv),
              writeMargin(p8, tech, vddStv));
    EXPECT_LT(writeMargin(p6, tech, vddStv), 0.0);
}

TEST(WriteMargin, StrongerAccessImprovesWriteability)
{
    auto weak = defaultCellParams(SramCellType::T8);
    auto strong = weak;
    strong.accessFins = 2;
    EXPECT_GT(writeMargin(strong, tech, vddStv),
              writeMargin(weak, tech, vddStv));
}

TEST(WriteMargin, SlowAccessDeviceHurts)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    CellVariation var{};
    var[2] = +0.05; // slow access transistor
    EXPECT_LT(writeMargin(p8, tech, vddStv, BackGate::Enabled, var),
              writeMargin(p8, tech, vddStv));
}

TEST(WriteMargin, BackGateOffStillWritable)
{
    const auto p8 = defaultCellParams(SramCellType::T8);
    EXPECT_GT(writeMargin(p8, tech, vddStv, BackGate::Disabled), 0.0);
}
