/**
 * @file
 * FinCACTI-lite model tests: Table IV calibration, scaling laws, cycle
 * assignment, RFC anchors and the swapping-table RTL numbers.
 */

#include <gtest/gtest.h>

#include "rfmodel/array_model.hh"
#include "rfmodel/rf_specs.hh"
#include "rfmodel/rfc_model.hh"
#include "rfmodel/swap_table_rtl.hh"

using namespace pilotrf;
using namespace pilotrf::rfmodel;
using pilotrf::circuit::vddNtv;
using pilotrf::circuit::vddStv;

namespace
{
ArrayConfig
kb(double sizeKb)
{
    return ArrayConfig{sizeKb * 1024.0};
}
} // namespace

TEST(ArrayModel, MrfAccessEnergyMatchesTableIv)
{
    EXPECT_NEAR(ArrayModel(kb(256)).accessEnergyPj(), 14.9, 0.05);
}

TEST(ArrayModel, FrfAccessEnergyMatchesTableIv)
{
    auto cfg = kb(32);
    cfg.backGated = true;
    cfg.flavor = CellFlavor::Fast;
    ArrayModel frf(cfg);
    EXPECT_NEAR(frf.accessEnergyPj(false), 7.65, 0.05);
    EXPECT_NEAR(frf.accessEnergyPj(true), 5.25, 0.05);
}

TEST(ArrayModel, SrfAccessEnergyMatchesTableIv)
{
    auto cfg = kb(224);
    cfg.vdd = vddNtv;
    EXPECT_NEAR(ArrayModel(cfg).accessEnergyPj(), 7.03, 0.05);
}

TEST(ArrayModel, LeakageMatchesTableIv)
{
    EXPECT_NEAR(ArrayModel(kb(256)).leakagePowerMw(), 33.8, 0.2);
    auto srf = kb(224);
    srf.vdd = vddNtv;
    EXPECT_NEAR(ArrayModel(srf).leakagePowerMw(), 13.4, 0.3);
    auto frf = kb(32);
    frf.backGated = true;
    frf.flavor = CellFlavor::Fast;
    EXPECT_NEAR(ArrayModel(frf).leakagePowerMw(), 7.28, 0.1);
}

TEST(ArrayModel, AccessCycles)
{
    auto frf = kb(32);
    frf.backGated = true;
    ArrayModel f(frf);
    EXPECT_EQ(f.accessCycles(false), 1u);
    EXPECT_EQ(f.accessCycles(true), 2u);
    auto srf = kb(224);
    srf.vdd = vddNtv;
    EXPECT_EQ(ArrayModel(srf).accessCycles(), 3u);
    EXPECT_EQ(ArrayModel(kb(256)).accessCycles(), 1u);
    auto ntv = kb(256);
    ntv.vdd = vddNtv;
    EXPECT_EQ(ArrayModel(ntv).accessCycles(), 3u);
}

TEST(ArrayModel, EnergyMonotoneInSize)
{
    double prev = 0;
    for (double s : {8.0, 32.0, 64.0, 128.0, 256.0}) {
        const double e = ArrayModel(kb(s)).accessEnergyPj();
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(ArrayModel, EnergyMonotoneInVoltage)
{
    auto c = kb(64);
    c.vdd = 0.30;
    const double eLow = ArrayModel(c).accessEnergyPj();
    c.vdd = 0.45;
    EXPECT_GT(ArrayModel(c).accessEnergyPj(), eLow);
}

TEST(ArrayModel, PortScalingGrowsEnergyAndArea)
{
    auto c = kb(32);
    const double e1 = ArrayModel(c).accessEnergyPj();
    const double a1 = ArrayModel(c).areaMm2();
    c.readPorts = 8;
    c.writePorts = 4;
    EXPECT_GT(ArrayModel(c).accessEnergyPj(), e1);
    EXPECT_GT(ArrayModel(c).areaMm2(), 4 * a1);
}

TEST(ArrayModel, MoreBanksFewerRowsLessBitlineEnergy)
{
    auto c = kb(256);
    c.banks = 48;
    EXPECT_LT(ArrayModel(c).accessEnergyPj(),
              ArrayModel(kb(256)).accessEnergyPj());
}

TEST(ArrayModel, AreaMatchesSecVA)
{
    EXPECT_NEAR(ArrayModel(kb(256)).areaMm2(), 0.2, 0.005);
}

TEST(ArrayModel, FastCellsLeakMore)
{
    auto c = kb(32);
    const double slow = ArrayModel(c).leakagePowerMw();
    c.flavor = CellFlavor::Fast;
    EXPECT_NEAR(ArrayModel(c).leakagePowerMw() / slow, 1.723, 0.01);
}

TEST(ArrayModel, LowPowerModeRequiresBackGate)
{
    ArrayModel m(kb(32));
    EXPECT_DEATH((void)m.accessEnergyPj(true), "back-gate");
}

TEST(ArrayModel, WordWidthScalesEnergy)
{
    auto narrow = kb(32);
    narrow.wordBits = 512;
    EXPECT_LT(ArrayModel(narrow).accessEnergyPj(),
              ArrayModel(kb(32)).accessEnergyPj());
}

TEST(RfSpecs, TableIvRows)
{
    RfSpecs s;
    const auto rows = s.tableIv();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].mode, RfMode::FrfLow);
    EXPECT_EQ(rows[3].mode, RfMode::MrfStv);
    EXPECT_NEAR(rows[0].accessEnergyPj, 5.25, 0.05);
    EXPECT_NEAR(rows[1].accessEnergyPj, 7.65, 0.05);
    EXPECT_NEAR(rows[2].accessEnergyPj, 7.03, 0.05);
    EXPECT_NEAR(rows[3].accessEnergyPj, 14.9, 0.05);
}

TEST(RfSpecs, AreaOverheadBelowTenPercent)
{
    RfSpecs s;
    const double overhead =
        s.proposedAreaMm2() / s.baselineAreaMm2() - 1.0;
    EXPECT_GT(overhead, 0.0);
    EXPECT_LT(overhead, 0.10);
    EXPECT_NEAR(s.proposedAreaMm2(), 0.214, 0.004);
}

TEST(RfSpecs, LeakageSavingIs39Percent)
{
    RfSpecs s;
    const double part = s.spec(RfMode::FrfHigh).leakagePowerMw +
                        s.spec(RfMode::Srf).leakagePowerMw;
    const double base = s.spec(RfMode::MrfStv).leakagePowerMw;
    EXPECT_NEAR(1.0 - part / base, 0.39, 0.02);
}

TEST(RfSpecs, ModeNames)
{
    EXPECT_STREQ(toString(RfMode::FrfLow), "FRF_low");
    EXPECT_STREQ(toString(RfMode::Srf), "SRF");
    EXPECT_STREQ(toString(RfMode::MrfNtv), "MRF@NTV");
}

TEST(RfcModel, BaseAnchorPoint37)
{
    RfcModel m({6, 8, 2, 1, 1});
    EXPECT_NEAR(m.accessEnergyPj() / 14.9, 0.37, 0.01);
    EXPECT_NEAR(m.sizeKb(), 6.0, 1e-9);
}

TEST(RfcModel, WidePortAnchor3x)
{
    RfcModel m({6, 8, 8, 4, 1});
    EXPECT_NEAR(m.accessEnergyPj() / 14.9, 3.0, 0.05);
}

TEST(RfcModel, BankedAnchorNearMrf)
{
    RfcModel m({6, 32, 2, 1, 8});
    EXPECT_NEAR(m.accessEnergyPj() / 14.9, 1.0, 0.1);
}

TEST(RfcModel, MonotoneInPortsBanksSize)
{
    const double base = RfcModel({6, 8, 2, 1, 1}).accessEnergyPj();
    EXPECT_GT(RfcModel({6, 8, 4, 2, 1}).accessEnergyPj(), base);
    EXPECT_GT(RfcModel({6, 8, 2, 1, 4}).accessEnergyPj(), base);
    EXPECT_GT(RfcModel({6, 16, 2, 1, 1}).accessEnergyPj(), base);
}

TEST(RfcModel, TagEnergySmall)
{
    RfcModel m({6, 8, 2, 1, 1});
    EXPECT_LT(m.tagEnergyPj(), 0.05 * 14.9);
    EXPECT_GT(m.tagEnergyPj(), 0.0);
}

TEST(SwapTableRtl, BitsAndDelays)
{
    SwapTableRtl t(4);
    EXPECT_EQ(t.bits(), 104u);
    EXPECT_NEAR(t.delayPs(circuit::cmos22()), 105.0, 2.0);
    EXPECT_NEAR(t.delayPs(circuit::cmos16()), 95.0, 2.0);
    EXPECT_NEAR(t.delayPs(circuit::finfetNode7()), 55.0, 2.0);
}

TEST(SwapTableRtl, UnderTenPercentOfCycle)
{
    SwapTableRtl t(4);
    EXPECT_LT(t.cycleFraction(circuit::cmos22()), 0.10);
}

TEST(SwapTableRtl, ScalesWithEntries)
{
    SwapTableRtl t4(4), t8(8);
    EXPECT_EQ(t8.bits(), 208u);
    EXPECT_GT(t8.delayPs(circuit::finfetNode7()),
              t4.delayPs(circuit::finfetNode7()));
    EXPECT_GT(t8.lookupEnergyPj(), t4.lookupEnergyPj());
}

TEST(SwapTableRtl, IndexedStyleComparable)
{
    // Sec. III-B: differences between CAM and indexed are negligible.
    SwapTableRtl cam(4, SwapTableStyle::Cam);
    SwapTableRtl idx(4, SwapTableStyle::Indexed);
    EXPECT_NEAR(cam.delayPs(circuit::finfetNode7()),
                idx.delayPs(circuit::finfetNode7()), 5.0);
}
