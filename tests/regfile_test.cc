/**
 * @file
 * Register-file backend tests: swapping table semantics (the Fig. 6/7
 * walkthrough), pilot profiler hardware behaviour, the adaptive-FRF phase
 * detector, and the monolithic / partitioned / RFC access paths.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "regfile/adaptive_frf.hh"
#include "regfile/monolithic_rf.hh"
#include "regfile/partitioned_rf.hh"
#include "regfile/pilot_profiler.hh"
#include "regfile/rfc.hh"
#include "regfile/swap_table.hh"

using namespace pilotrf;
using namespace pilotrf::regfile;

namespace
{
isa::Kernel
miniKernel(unsigned regs = 16)
{
    isa::KernelBuilder b("mini", regs, 64, 4);
    b.op(isa::Opcode::Mov, 0, {1});
    return b.build();
}
} // namespace

// --- swapping table --------------------------------------------------------

TEST(SwapTable, IdentityAfterReset)
{
    SwapTable t(4);
    for (RegId r = 0; r < 16; ++r)
        EXPECT_EQ(t.lookup(r), r);
    EXPECT_EQ(t.validEntries(), 0u);
}

TEST(SwapTable, Fig6Walkthrough)
{
    SwapTable t(4);
    // Fig. 6b: compiler identifies r4..r7.
    t.program({4, 5, 6, 7});
    EXPECT_EQ(t.lookup(4), 0);
    EXPECT_EQ(t.lookup(0), 4);
    EXPECT_EQ(t.lookup(7), 3);
    EXPECT_EQ(t.lookup(3), 7);
    EXPECT_TRUE(t.inFrf(4));
    EXPECT_FALSE(t.inFrf(0));
    EXPECT_EQ(t.validEntries(), 8u);
    // Fig. 6c: the pilot reports r8..r11; mapping resets then reapplies.
    t.program({8, 9, 10, 11});
    EXPECT_EQ(t.lookup(8), 0);
    EXPECT_EQ(t.lookup(0), 8);
    EXPECT_EQ(t.lookup(4), 4); // old mapping gone
    EXPECT_TRUE(t.inFrf(11));
}

TEST(SwapTable, HotAlreadyInFrfKeepsSlot)
{
    SwapTable t(4);
    t.program({2, 9, 1, 12});
    EXPECT_EQ(t.lookup(2), 2);
    EXPECT_EQ(t.lookup(1), 1);
    // r9 and r12 take the free slots 0 and 3 (lowest first).
    EXPECT_EQ(t.lookup(9), 0);
    EXPECT_EQ(t.lookup(12), 3);
    EXPECT_EQ(t.lookup(0), 9);
    EXPECT_EQ(t.lookup(3), 12);
    EXPECT_EQ(t.validEntries(), 4u);
}

TEST(SwapTable, FewerHotThanSlots)
{
    SwapTable t(4);
    t.program({10});
    EXPECT_EQ(t.lookup(10), 0);
    EXPECT_EQ(t.lookup(0), 10);
    EXPECT_EQ(t.lookup(1), 1);
    EXPECT_EQ(t.validEntries(), 2u);
}

TEST(SwapTable, ExtraHotIgnoredBeyondN)
{
    SwapTable t(2);
    t.program({8, 9, 10, 11});
    EXPECT_EQ(t.lookup(8), 0);
    EXPECT_EQ(t.lookup(9), 1);
    EXPECT_EQ(t.lookup(10), 10); // beyond capacity: untouched
}

TEST(SwapTable, CountsLookupsAndPrograms)
{
    SwapTable t(4);
    const auto before = t.lookups();
    (void)t.lookup(3);
    (void)t.lookup(5);
    EXPECT_EQ(t.lookups(), before + 2);
    const auto progs = t.reprograms();
    t.program({9});
    EXPECT_GT(t.reprograms(), progs);
}

// --- pilot profiler --------------------------------------------------------

TEST(PilotProfiler, FirstWarpBecomesPilot)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(5);
    p.warpStarted(6);
    EXPECT_TRUE(p.pilotSelected());
    EXPECT_EQ(p.pilotWarp(), 5);
}

TEST(PilotProfiler, CountsOnlyPilotWhileMasked)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(2);
    p.noteAccess(2, 7);
    p.noteAccess(2, 7);
    p.noteAccess(3, 7); // not the pilot
    EXPECT_EQ(p.counters()[7], 2);
    EXPECT_TRUE(p.warpFinished(2));
    p.noteAccess(2, 7); // after mask reset
    EXPECT_EQ(p.counters()[7], 2);
}

TEST(PilotProfiler, NonPilotFinishIgnored)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(1);
    EXPECT_FALSE(p.warpFinished(2));
    EXPECT_TRUE(p.profiling());
}

TEST(PilotProfiler, SaturatingCounters)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(0);
    for (int i = 0; i < 70000; ++i)
        p.noteAccess(0, 3);
    EXPECT_EQ(p.counters()[3], 0xffff);
}

TEST(PilotProfiler, TopRegistersSortedAndTrimmed)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(0);
    for (int i = 0; i < 5; ++i)
        p.noteAccess(0, 10);
    for (int i = 0; i < 9; ++i)
        p.noteAccess(0, 2);
    p.noteAccess(0, 30);
    const auto top = p.topRegisters(4);
    ASSERT_EQ(top.size(), 3u); // only 3 registers ever touched
    EXPECT_EQ(top[0], 2);
    EXPECT_EQ(top[1], 10);
    EXPECT_EQ(top[2], 30);
}

TEST(PilotProfiler, RelaunchClearsState)
{
    PilotProfiler p;
    p.kernelLaunch();
    p.warpStarted(0);
    p.noteAccess(0, 1);
    p.kernelLaunch();
    EXPECT_EQ(p.counters()[1], 0);
    EXPECT_FALSE(p.pilotSelected());
    EXPECT_TRUE(p.profiling());
}

// --- adaptive FRF ----------------------------------------------------------

TEST(AdaptiveFrf, ThresholdBoundary)
{
    AdaptiveFrfController c(50, 85);
    // 84 issued in the first epoch -> low mode next epoch.
    for (int i = 0; i < 50; ++i)
        c.cycle(i == 0 ? 84 : 0);
    EXPECT_TRUE(c.lowPowerMode());
    // Exactly 85 -> high mode.
    for (int i = 0; i < 50; ++i)
        c.cycle(i == 0 ? 85 : 0);
    EXPECT_FALSE(c.lowPowerMode());
}

TEST(AdaptiveFrf, ModeAppliesOnEpochBoundaryOnly)
{
    AdaptiveFrfController c(50, 85);
    for (int i = 0; i < 49; ++i)
        c.cycle(0);
    EXPECT_FALSE(c.lowPowerMode()); // not yet
    c.cycle(0);
    EXPECT_TRUE(c.lowPowerMode());
}

TEST(AdaptiveFrf, CountersSaturateAt9Bits)
{
    AdaptiveFrfController c(50, 511);
    for (int i = 0; i < 50; ++i)
        c.cycle(100); // 5000 issued, saturates at 511
    EXPECT_FALSE(c.lowPowerMode()); // 511 >= 511 threshold? 511 < 511 false
}

TEST(AdaptiveFrf, EpochStats)
{
    AdaptiveFrfController c(10, 5);
    for (int i = 0; i < 35; ++i)
        c.cycle(0);
    EXPECT_EQ(c.epochs(), 3u);
    EXPECT_EQ(c.lowEpochs(), 3u);
}

TEST(AdaptiveFrf, ResetClearsPhase)
{
    AdaptiveFrfController c(10, 5);
    for (int i = 0; i < 10; ++i)
        c.cycle(0);
    EXPECT_TRUE(c.lowPowerMode());
    c.reset();
    EXPECT_FALSE(c.lowPowerMode());
}

// --- monolithic backends ---------------------------------------------------

TEST(MonolithicRf, StvLatencyAndCounts)
{
    MonolithicRf rf(24, rfmodel::RfMode::MrfStv);
    EXPECT_EQ(rf.access(0, 3, false).latency, 1u);
    EXPECT_EQ(rf.access(0, 3, true).latency, 1u);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.MRF@STV"), 2.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.reads"), 1.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.writes"), 1.0);
    EXPECT_EQ(rf.regAccessCounts()[3], 2u);
}

TEST(MonolithicRf, NtvLatencyFromModel)
{
    MonolithicRf rf(24, rfmodel::RfMode::MrfNtv);
    EXPECT_EQ(rf.latency(), 3u);
}

TEST(MonolithicRf, LatencyOverride)
{
    MonolithicRf rf(24, rfmodel::RfMode::MrfNtv, 5);
    EXPECT_EQ(rf.access(1, 1, false).latency, 5u);
}

TEST(MonolithicRf, BankMapping)
{
    MonolithicRf rf(24, rfmodel::RfMode::MrfStv);
    EXPECT_EQ(rf.bank(0, 0), 0u);
    EXPECT_EQ(rf.bank(1, 2), 3u);
    EXPECT_EQ(rf.bank(23, 1), 0u);
    EXPECT_TRUE(rf.needsBank(0, 0, false));
}

// --- partitioned RF --------------------------------------------------------

TEST(PartitionedRf, StaticProfilingRoutesFirstN)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Static;
    cfg.adaptiveFrf = false;
    PartitionedRf rf(24, cfg);
    rf.kernelLaunch(miniKernel());
    EXPECT_EQ(rf.access(0, 2, false).latency, cfg.frfHighLatency);
    EXPECT_EQ(rf.access(0, 9, false).latency, cfg.srfLatency);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.FRF_high"), 1.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.SRF"), 1.0);
}

TEST(PartitionedRf, OracleMapping)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Oracle;
    cfg.adaptiveFrf = false;
    PartitionedRf rf(24, cfg);
    rf.setOracleRegisters({9, 10, 11, 12});
    rf.kernelLaunch(miniKernel());
    EXPECT_EQ(rf.access(0, 9, false).latency, 1u);
    EXPECT_EQ(rf.access(0, 0, false).latency, 3u); // displaced
}

TEST(PartitionedRf, AdaptiveModeChangesLatencyAndEnergyMode)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Static;
    cfg.epochLength = 10;
    cfg.issueThreshold = 5;
    PartitionedRf rf(24, cfg);
    rf.kernelLaunch(miniKernel());
    EXPECT_EQ(rf.access(0, 0, false).latency, 1u);
    for (Cycle c = 0; c < 10; ++c)
        rf.cycleHook(c, 0); // idle epoch -> low mode
    EXPECT_TRUE(rf.adaptive().lowPowerMode());
    EXPECT_EQ(rf.access(0, 0, false).latency, cfg.frfLowLatency);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.FRF_low"), 1.0);
}

TEST(PartitionedRf, PilotFinishReprogramsTable)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Pilot;
    cfg.adaptiveFrf = false;
    PartitionedRf rf(24, cfg);
    rf.kernelLaunch(miniKernel());
    rf.warpStarted(0, 0);
    rf.warpStarted(1, 0);
    // The pilot hammers r9 and r10; another warp hammers r5 (ignored).
    for (int i = 0; i < 20; ++i) {
        rf.access(0, 9, false);
        rf.access(0, 10, true);
        rf.access(1, 5, false);
    }
    rf.warpFinished(0);
    const auto &hot = rf.pilotHotRegisters();
    ASSERT_GE(hot.size(), 2u);
    EXPECT_EQ(hot[0], 9);
    EXPECT_EQ(hot[1], 10);
    EXPECT_TRUE(rf.swapTable().inFrf(9));
    EXPECT_TRUE(rf.swapTable().inFrf(10));
    EXPECT_FALSE(rf.swapTable().inFrf(5));
    EXPECT_TRUE(rf.stats().has("pilot.finishCycle"));
}

TEST(PartitionedRf, HybridStartsWithCompilerMapping)
{
    // Kernel whose static top-4 is {1, 2, 3, 4} (multiple occurrences).
    isa::KernelBuilder b("h", 16, 64, 2);
    for (int i = 0; i < 3; ++i) {
        b.op(isa::Opcode::IAdd, 9, {9});
        b.op(isa::Opcode::IAdd, 9, {9});
        b.op(isa::Opcode::IAdd, 10, {10});
        b.op(isa::Opcode::IAdd, 10, {10});
    }
    auto k = b.build();
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Hybrid;
    cfg.adaptiveFrf = false;
    PartitionedRf rf(24, cfg);
    rf.kernelLaunch(k);
    EXPECT_TRUE(rf.swapTable().inFrf(9));
    EXPECT_TRUE(rf.swapTable().inFrf(10));
}

TEST(PartitionedRf, RemapTrafficCounted)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Pilot;
    cfg.adaptiveFrf = false;
    PartitionedRf rf(24, cfg);
    rf.kernelLaunch(miniKernel());
    rf.warpStarted(0, 0);
    for (int i = 0; i < 4; ++i)
        rf.access(0, 12, false);
    rf.warpFinished(0);
    EXPECT_GT(rf.stats().get("swap.remapMoves"), 0.0);
}

TEST(PartitionedRf, BankFollowsPhysicalRegister)
{
    PartitionedRfConfig cfg;
    cfg.profiling = Profiling::Oracle;
    PartitionedRf rf(24, cfg);
    rf.setOracleRegisters({9});
    rf.kernelLaunch(miniKernel());
    // r9 mapped into FRF slot 0: bank of (w=2, r9) == bank of phys 0.
    EXPECT_EQ(rf.bank(2, 9), 2u);
    EXPECT_EQ(rf.bank(2, 0), (2u + 9u) % 24u);
}

// --- register file cache ---------------------------------------------------

TEST(Rfc, WriteAllocatesReadHits)
{
    RfcRfConfig cfg;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    EXPECT_TRUE(rf.needsBank(0, 5, false));  // cold read: MRF
    EXPECT_FALSE(rf.needsBank(0, 5, true));  // writes go to the RFC
    rf.access(0, 5, true);
    EXPECT_FALSE(rf.needsBank(0, 5, false)); // now cached
    EXPECT_EQ(rf.access(0, 5, false).latency, cfg.rfcLatency);
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.readHit"), 1.0);
}

TEST(Rfc, ReadMissGoesToMrfAndFills)
{
    RfcRfConfig cfg;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    EXPECT_EQ(rf.access(0, 7, false).latency, 3u); // MRF@NTV
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.readMiss"), 1.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.fill"), 1.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.MRF@NTV"), 1.0);
    // The fill makes the next read hit.
    EXPECT_EQ(rf.access(0, 7, false).latency, 1u);
}

TEST(Rfc, NoAllocOnReadMissVariant)
{
    RfcRfConfig cfg;
    cfg.allocOnReadMiss = false;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    rf.access(0, 7, false);
    EXPECT_EQ(rf.access(0, 7, false).latency, 3u); // still a miss
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.fill"), 0.0);
}

TEST(Rfc, LruEvictionWritesBackDirty)
{
    RfcRfConfig cfg;
    cfg.regsPerWarp = 2;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    rf.access(0, 1, true); // dirty
    rf.access(0, 2, true); // dirty
    rf.access(0, 1, true); // refresh r1 -> r2 becomes LRU
    rf.access(0, 3, true); // evicts r2 (dirty) -> MRF write
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.evictWb"), 1.0);
    EXPECT_DOUBLE_EQ(rf.stats().get("access.MRF@NTV"), 1.0);
    EXPECT_FALSE(rf.needsBank(0, 1, false)); // r1 survived
    EXPECT_TRUE(rf.needsBank(0, 2, false));  // r2 evicted
}

TEST(Rfc, DeactivationFlushesDirty)
{
    RfcRfConfig cfg;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    rf.access(3, 1, true);
    rf.access(3, 2, true);
    rf.warpDeactivated(3);
    EXPECT_DOUBLE_EQ(rf.stats().get("rfc.flushWb"), 2.0);
    EXPECT_TRUE(rf.needsBank(3, 1, false)); // cold again
}

TEST(Rfc, PerWarpIsolation)
{
    RfcRfConfig cfg;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    rf.access(0, 5, true);
    EXPECT_TRUE(rf.needsBank(1, 5, false)); // other warp unaffected
}

TEST(Rfc, HitRateAccounting)
{
    RfcRfConfig cfg;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    rf.access(0, 1, true);
    rf.access(0, 1, false); // hit
    rf.access(0, 2, false); // miss
    EXPECT_DOUBLE_EQ(rf.readHitRate(), 0.5);
}

TEST(Rfc, MrfStvBackingLatency)
{
    RfcRfConfig cfg;
    cfg.mrfMode = rfmodel::RfMode::MrfStv;
    RfCacheRf rf(24, cfg, 64);
    rf.kernelLaunch(miniKernel());
    EXPECT_EQ(rf.access(0, 7, false).latency, 1u);
}
