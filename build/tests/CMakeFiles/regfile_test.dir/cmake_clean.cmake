file(REMOVE_RECURSE
  "CMakeFiles/regfile_test.dir/regfile_test.cc.o"
  "CMakeFiles/regfile_test.dir/regfile_test.cc.o.d"
  "regfile_test"
  "regfile_test.pdb"
  "regfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
