# Empty compiler generated dependencies file for kernel_text_test.
# This may be replaced when dependencies are built.
