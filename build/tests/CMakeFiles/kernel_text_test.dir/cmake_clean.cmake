file(REMOVE_RECURSE
  "CMakeFiles/kernel_text_test.dir/kernel_text_test.cc.o"
  "CMakeFiles/kernel_text_test.dir/kernel_text_test.cc.o.d"
  "kernel_text_test"
  "kernel_text_test.pdb"
  "kernel_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
