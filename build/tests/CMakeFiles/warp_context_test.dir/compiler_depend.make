# Empty compiler generated dependencies file for warp_context_test.
# This may be replaced when dependencies are built.
