file(REMOVE_RECURSE
  "CMakeFiles/warp_context_test.dir/warp_context_test.cc.o"
  "CMakeFiles/warp_context_test.dir/warp_context_test.cc.o.d"
  "warp_context_test"
  "warp_context_test.pdb"
  "warp_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
