# Empty dependencies file for sm_gpu_test.
# This may be replaced when dependencies are built.
