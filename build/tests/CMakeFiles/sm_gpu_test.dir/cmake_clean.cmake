file(REMOVE_RECURSE
  "CMakeFiles/sm_gpu_test.dir/sm_gpu_test.cc.o"
  "CMakeFiles/sm_gpu_test.dir/sm_gpu_test.cc.o.d"
  "sm_gpu_test"
  "sm_gpu_test.pdb"
  "sm_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
