file(REMOVE_RECURSE
  "CMakeFiles/rfmodel_test.dir/rfmodel_test.cc.o"
  "CMakeFiles/rfmodel_test.dir/rfmodel_test.cc.o.d"
  "rfmodel_test"
  "rfmodel_test.pdb"
  "rfmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
