# Empty compiler generated dependencies file for rfmodel_test.
# This may be replaced when dependencies are built.
