file(REMOVE_RECURSE
  "CMakeFiles/simt_stack_test.dir/simt_stack_test.cc.o"
  "CMakeFiles/simt_stack_test.dir/simt_stack_test.cc.o.d"
  "simt_stack_test"
  "simt_stack_test.pdb"
  "simt_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
