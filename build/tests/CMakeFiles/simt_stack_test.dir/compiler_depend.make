# Empty compiler generated dependencies file for simt_stack_test.
# This may be replaced when dependencies are built.
