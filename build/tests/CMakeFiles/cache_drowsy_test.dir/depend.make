# Empty dependencies file for cache_drowsy_test.
# This may be replaced when dependencies are built.
