file(REMOVE_RECURSE
  "CMakeFiles/cache_drowsy_test.dir/cache_drowsy_test.cc.o"
  "CMakeFiles/cache_drowsy_test.dir/cache_drowsy_test.cc.o.d"
  "cache_drowsy_test"
  "cache_drowsy_test.pdb"
  "cache_drowsy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_drowsy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
