file(REMOVE_RECURSE
  "CMakeFiles/config_and_limits_test.dir/config_and_limits_test.cc.o"
  "CMakeFiles/config_and_limits_test.dir/config_and_limits_test.cc.o.d"
  "config_and_limits_test"
  "config_and_limits_test.pdb"
  "config_and_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_and_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
