# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/config_and_limits_test[1]_include.cmake")
include("/root/repo/build/tests/cache_drowsy_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_text_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/regfile_test[1]_include.cmake")
include("/root/repo/build/tests/rfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/simt_stack_test[1]_include.cmake")
include("/root/repo/build/tests/sm_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/sram_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/warp_context_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
