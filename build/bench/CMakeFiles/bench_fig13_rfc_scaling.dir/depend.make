# Empty dependencies file for bench_fig13_rfc_scaling.
# This may be replaced when dependencies are built.
