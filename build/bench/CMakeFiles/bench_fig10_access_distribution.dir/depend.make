# Empty dependencies file for bench_fig10_access_distribution.
# This may be replaced when dependencies are built.
