
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sens_threshold.cc" "bench/CMakeFiles/bench_sens_threshold.dir/bench_sens_threshold.cc.o" "gcc" "bench/CMakeFiles/bench_sens_threshold.dir/bench_sens_threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/pilotrf_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pilotrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/regfile/CMakeFiles/pilotrf_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pilotrf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pilotrf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pilotrf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
