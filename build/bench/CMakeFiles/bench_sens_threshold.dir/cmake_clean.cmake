file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_threshold.dir/bench_sens_threshold.cc.o"
  "CMakeFiles/bench_sens_threshold.dir/bench_sens_threshold.cc.o.d"
  "bench_sens_threshold"
  "bench_sens_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
