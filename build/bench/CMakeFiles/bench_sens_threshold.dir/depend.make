# Empty dependencies file for bench_sens_threshold.
# This may be replaced when dependencies are built.
