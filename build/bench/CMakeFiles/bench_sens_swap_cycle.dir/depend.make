# Empty dependencies file for bench_sens_swap_cycle.
# This may be replaced when dependencies are built.
