file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_swap_cycle.dir/bench_sens_swap_cycle.cc.o"
  "CMakeFiles/bench_sens_swap_cycle.dir/bench_sens_swap_cycle.cc.o.d"
  "bench_sens_swap_cycle"
  "bench_sens_swap_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_swap_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
