# Empty compiler generated dependencies file for bench_table3_sram_cells.
# This may be replaced when dependencies are built.
