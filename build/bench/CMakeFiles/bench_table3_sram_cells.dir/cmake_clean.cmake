file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sram_cells.dir/bench_table3_sram_cells.cc.o"
  "CMakeFiles/bench_table3_sram_cells.dir/bench_table3_sram_cells.cc.o.d"
  "bench_table3_sram_cells"
  "bench_table3_sram_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sram_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
