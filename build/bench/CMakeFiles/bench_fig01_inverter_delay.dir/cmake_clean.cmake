file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_inverter_delay.dir/bench_fig01_inverter_delay.cc.o"
  "CMakeFiles/bench_fig01_inverter_delay.dir/bench_fig01_inverter_delay.cc.o.d"
  "bench_fig01_inverter_delay"
  "bench_fig01_inverter_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_inverter_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
