# Empty compiler generated dependencies file for bench_fig01_inverter_delay.
# This may be replaced when dependencies are built.
