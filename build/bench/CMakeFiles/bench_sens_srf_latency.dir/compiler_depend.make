# Empty compiler generated dependencies file for bench_sens_srf_latency.
# This may be replaced when dependencies are built.
