file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_srf_latency.dir/bench_sens_srf_latency.cc.o"
  "CMakeFiles/bench_sens_srf_latency.dir/bench_sens_srf_latency.cc.o.d"
  "bench_sens_srf_latency"
  "bench_sens_srf_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_srf_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
