file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_rf_characteristics.dir/bench_table4_rf_characteristics.cc.o"
  "CMakeFiles/bench_table4_rf_characteristics.dir/bench_table4_rf_characteristics.cc.o.d"
  "bench_table4_rf_characteristics"
  "bench_table4_rf_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_rf_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
