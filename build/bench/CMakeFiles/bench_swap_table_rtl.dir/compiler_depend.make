# Empty compiler generated dependencies file for bench_swap_table_rtl.
# This may be replaced when dependencies are built.
