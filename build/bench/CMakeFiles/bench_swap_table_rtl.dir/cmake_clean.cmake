file(REMOVE_RECURSE
  "CMakeFiles/bench_swap_table_rtl.dir/bench_swap_table_rtl.cc.o"
  "CMakeFiles/bench_swap_table_rtl.dir/bench_swap_table_rtl.cc.o.d"
  "bench_swap_table_rtl"
  "bench_swap_table_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swap_table_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
