file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_topn_accesses.dir/bench_fig02_topn_accesses.cc.o"
  "CMakeFiles/bench_fig02_topn_accesses.dir/bench_fig02_topn_accesses.cc.o.d"
  "bench_fig02_topn_accesses"
  "bench_fig02_topn_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_topn_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
