# Empty compiler generated dependencies file for bench_fig02_topn_accesses.
# This may be replaced when dependencies are built.
