# Empty compiler generated dependencies file for bench_rfc_ports.
# This may be replaced when dependencies are built.
