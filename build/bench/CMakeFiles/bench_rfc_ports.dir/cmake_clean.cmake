file(REMOVE_RECURSE
  "CMakeFiles/bench_rfc_ports.dir/bench_rfc_ports.cc.o"
  "CMakeFiles/bench_rfc_ports.dir/bench_rfc_ports.cc.o.d"
  "bench_rfc_ports"
  "bench_rfc_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rfc_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
