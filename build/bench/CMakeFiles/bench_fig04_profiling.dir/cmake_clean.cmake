file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_profiling.dir/bench_fig04_profiling.cc.o"
  "CMakeFiles/bench_fig04_profiling.dir/bench_fig04_profiling.cc.o.d"
  "bench_fig04_profiling"
  "bench_fig04_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
