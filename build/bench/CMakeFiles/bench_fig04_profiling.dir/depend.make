# Empty dependencies file for bench_fig04_profiling.
# This may be replaced when dependencies are built.
