# Empty dependencies file for bench_sens_epoch_length.
# This may be replaced when dependencies are built.
