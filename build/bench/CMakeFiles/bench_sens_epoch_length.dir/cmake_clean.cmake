file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_epoch_length.dir/bench_sens_epoch_length.cc.o"
  "CMakeFiles/bench_sens_epoch_length.dir/bench_sens_epoch_length.cc.o.d"
  "bench_sens_epoch_length"
  "bench_sens_epoch_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_epoch_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
