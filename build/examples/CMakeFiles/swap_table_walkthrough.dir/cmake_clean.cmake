file(REMOVE_RECURSE
  "CMakeFiles/swap_table_walkthrough.dir/swap_table_walkthrough.cpp.o"
  "CMakeFiles/swap_table_walkthrough.dir/swap_table_walkthrough.cpp.o.d"
  "swap_table_walkthrough"
  "swap_table_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_table_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
