# Empty compiler generated dependencies file for swap_table_walkthrough.
# This may be replaced when dependencies are built.
