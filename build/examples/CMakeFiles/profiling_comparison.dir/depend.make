# Empty dependencies file for profiling_comparison.
# This may be replaced when dependencies are built.
