file(REMOVE_RECURSE
  "CMakeFiles/profiling_comparison.dir/profiling_comparison.cpp.o"
  "CMakeFiles/profiling_comparison.dir/profiling_comparison.cpp.o.d"
  "profiling_comparison"
  "profiling_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
