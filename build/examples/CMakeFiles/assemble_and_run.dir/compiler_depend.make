# Empty compiler generated dependencies file for assemble_and_run.
# This may be replaced when dependencies are built.
