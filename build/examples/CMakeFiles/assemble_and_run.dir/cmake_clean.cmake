file(REMOVE_RECURSE
  "CMakeFiles/assemble_and_run.dir/assemble_and_run.cpp.o"
  "CMakeFiles/assemble_and_run.dir/assemble_and_run.cpp.o.d"
  "assemble_and_run"
  "assemble_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assemble_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
