
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regfile/adaptive_frf.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/adaptive_frf.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/adaptive_frf.cc.o.d"
  "/root/repo/src/regfile/drowsy_rf.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/drowsy_rf.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/drowsy_rf.cc.o.d"
  "/root/repo/src/regfile/monolithic_rf.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/monolithic_rf.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/monolithic_rf.cc.o.d"
  "/root/repo/src/regfile/partitioned_rf.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/partitioned_rf.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/partitioned_rf.cc.o.d"
  "/root/repo/src/regfile/pilot_profiler.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/pilot_profiler.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/pilot_profiler.cc.o.d"
  "/root/repo/src/regfile/register_file.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/register_file.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/register_file.cc.o.d"
  "/root/repo/src/regfile/rfc.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/rfc.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/rfc.cc.o.d"
  "/root/repo/src/regfile/swap_table.cc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/swap_table.cc.o" "gcc" "src/regfile/CMakeFiles/pilotrf_regfile.dir/swap_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pilotrf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pilotrf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
