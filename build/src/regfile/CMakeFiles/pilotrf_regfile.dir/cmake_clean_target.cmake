file(REMOVE_RECURSE
  "libpilotrf_regfile.a"
)
