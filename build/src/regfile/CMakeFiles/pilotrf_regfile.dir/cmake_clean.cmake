file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_regfile.dir/adaptive_frf.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/adaptive_frf.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/drowsy_rf.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/drowsy_rf.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/monolithic_rf.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/monolithic_rf.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/partitioned_rf.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/partitioned_rf.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/pilot_profiler.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/pilot_profiler.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/register_file.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/register_file.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/rfc.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/rfc.cc.o.d"
  "CMakeFiles/pilotrf_regfile.dir/swap_table.cc.o"
  "CMakeFiles/pilotrf_regfile.dir/swap_table.cc.o.d"
  "libpilotrf_regfile.a"
  "libpilotrf_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
