# Empty compiler generated dependencies file for pilotrf_regfile.
# This may be replaced when dependencies are built.
