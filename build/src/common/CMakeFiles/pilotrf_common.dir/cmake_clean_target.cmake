file(REMOVE_RECURSE
  "libpilotrf_common.a"
)
