# Empty dependencies file for pilotrf_common.
# This may be replaced when dependencies are built.
