file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_common.dir/logging.cc.o"
  "CMakeFiles/pilotrf_common.dir/logging.cc.o.d"
  "CMakeFiles/pilotrf_common.dir/random.cc.o"
  "CMakeFiles/pilotrf_common.dir/random.cc.o.d"
  "CMakeFiles/pilotrf_common.dir/stats.cc.o"
  "CMakeFiles/pilotrf_common.dir/stats.cc.o.d"
  "libpilotrf_common.a"
  "libpilotrf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
