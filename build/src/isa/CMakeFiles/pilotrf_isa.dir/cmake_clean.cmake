file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_isa.dir/instruction.cc.o"
  "CMakeFiles/pilotrf_isa.dir/instruction.cc.o.d"
  "CMakeFiles/pilotrf_isa.dir/kernel.cc.o"
  "CMakeFiles/pilotrf_isa.dir/kernel.cc.o.d"
  "CMakeFiles/pilotrf_isa.dir/kernel_builder.cc.o"
  "CMakeFiles/pilotrf_isa.dir/kernel_builder.cc.o.d"
  "CMakeFiles/pilotrf_isa.dir/kernel_text.cc.o"
  "CMakeFiles/pilotrf_isa.dir/kernel_text.cc.o.d"
  "CMakeFiles/pilotrf_isa.dir/static_profiler.cc.o"
  "CMakeFiles/pilotrf_isa.dir/static_profiler.cc.o.d"
  "libpilotrf_isa.a"
  "libpilotrf_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
