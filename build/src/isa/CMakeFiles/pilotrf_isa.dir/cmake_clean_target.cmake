file(REMOVE_RECURSE
  "libpilotrf_isa.a"
)
