# Empty dependencies file for pilotrf_isa.
# This may be replaced when dependencies are built.
