
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/pilotrf_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/pilotrf_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel.cc.o" "gcc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel.cc.o.d"
  "/root/repo/src/isa/kernel_builder.cc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel_builder.cc.o" "gcc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel_builder.cc.o.d"
  "/root/repo/src/isa/kernel_text.cc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel_text.cc.o" "gcc" "src/isa/CMakeFiles/pilotrf_isa.dir/kernel_text.cc.o.d"
  "/root/repo/src/isa/static_profiler.cc" "src/isa/CMakeFiles/pilotrf_isa.dir/static_profiler.cc.o" "gcc" "src/isa/CMakeFiles/pilotrf_isa.dir/static_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
