src/circuit/CMakeFiles/pilotrf_circuit.dir/tech.cc.o: \
 /root/repo/src/circuit/tech.cc /usr/include/stdc-predef.h \
 /root/repo/src/circuit/tech.hh
