file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_circuit.dir/finfet.cc.o"
  "CMakeFiles/pilotrf_circuit.dir/finfet.cc.o.d"
  "CMakeFiles/pilotrf_circuit.dir/inverter_chain.cc.o"
  "CMakeFiles/pilotrf_circuit.dir/inverter_chain.cc.o.d"
  "CMakeFiles/pilotrf_circuit.dir/monte_carlo.cc.o"
  "CMakeFiles/pilotrf_circuit.dir/monte_carlo.cc.o.d"
  "CMakeFiles/pilotrf_circuit.dir/sram.cc.o"
  "CMakeFiles/pilotrf_circuit.dir/sram.cc.o.d"
  "CMakeFiles/pilotrf_circuit.dir/tech.cc.o"
  "CMakeFiles/pilotrf_circuit.dir/tech.cc.o.d"
  "libpilotrf_circuit.a"
  "libpilotrf_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
