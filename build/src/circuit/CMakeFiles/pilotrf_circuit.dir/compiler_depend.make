# Empty compiler generated dependencies file for pilotrf_circuit.
# This may be replaced when dependencies are built.
