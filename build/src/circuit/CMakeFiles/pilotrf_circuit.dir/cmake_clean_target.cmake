file(REMOVE_RECURSE
  "libpilotrf_circuit.a"
)
