
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/finfet.cc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/finfet.cc.o" "gcc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/finfet.cc.o.d"
  "/root/repo/src/circuit/inverter_chain.cc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/inverter_chain.cc.o" "gcc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/inverter_chain.cc.o.d"
  "/root/repo/src/circuit/monte_carlo.cc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/monte_carlo.cc.o" "gcc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/monte_carlo.cc.o.d"
  "/root/repo/src/circuit/sram.cc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/sram.cc.o" "gcc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/sram.cc.o.d"
  "/root/repo/src/circuit/tech.cc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/tech.cc.o" "gcc" "src/circuit/CMakeFiles/pilotrf_circuit.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
