file(REMOVE_RECURSE
  "libpilotrf_sim.a"
)
