file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_sim.dir/cache.cc.o"
  "CMakeFiles/pilotrf_sim.dir/cache.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/gpu.cc.o"
  "CMakeFiles/pilotrf_sim.dir/gpu.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/scheduler.cc.o"
  "CMakeFiles/pilotrf_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/sim_config.cc.o"
  "CMakeFiles/pilotrf_sim.dir/sim_config.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/simt_stack.cc.o"
  "CMakeFiles/pilotrf_sim.dir/simt_stack.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/sm.cc.o"
  "CMakeFiles/pilotrf_sim.dir/sm.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/trace.cc.o"
  "CMakeFiles/pilotrf_sim.dir/trace.cc.o.d"
  "CMakeFiles/pilotrf_sim.dir/warp_context.cc.o"
  "CMakeFiles/pilotrf_sim.dir/warp_context.cc.o.d"
  "libpilotrf_sim.a"
  "libpilotrf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
