# Empty dependencies file for pilotrf_sim.
# This may be replaced when dependencies are built.
