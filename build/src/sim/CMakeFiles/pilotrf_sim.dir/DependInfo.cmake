
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/sim_config.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/sim_config.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/sim_config.cc.o.d"
  "/root/repo/src/sim/simt_stack.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/simt_stack.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/simt_stack.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/sm.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/warp_context.cc" "src/sim/CMakeFiles/pilotrf_sim.dir/warp_context.cc.o" "gcc" "src/sim/CMakeFiles/pilotrf_sim.dir/warp_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regfile/CMakeFiles/pilotrf_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pilotrf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pilotrf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
