
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfmodel/array_model.cc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/array_model.cc.o" "gcc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/array_model.cc.o.d"
  "/root/repo/src/rfmodel/rf_specs.cc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/rf_specs.cc.o" "gcc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/rf_specs.cc.o.d"
  "/root/repo/src/rfmodel/rfc_model.cc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/rfc_model.cc.o" "gcc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/rfc_model.cc.o.d"
  "/root/repo/src/rfmodel/swap_table_rtl.cc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/swap_table_rtl.cc.o" "gcc" "src/rfmodel/CMakeFiles/pilotrf_rfmodel.dir/swap_table_rtl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/pilotrf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
