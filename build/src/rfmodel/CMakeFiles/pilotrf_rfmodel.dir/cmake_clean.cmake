file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_rfmodel.dir/array_model.cc.o"
  "CMakeFiles/pilotrf_rfmodel.dir/array_model.cc.o.d"
  "CMakeFiles/pilotrf_rfmodel.dir/rf_specs.cc.o"
  "CMakeFiles/pilotrf_rfmodel.dir/rf_specs.cc.o.d"
  "CMakeFiles/pilotrf_rfmodel.dir/rfc_model.cc.o"
  "CMakeFiles/pilotrf_rfmodel.dir/rfc_model.cc.o.d"
  "CMakeFiles/pilotrf_rfmodel.dir/swap_table_rtl.cc.o"
  "CMakeFiles/pilotrf_rfmodel.dir/swap_table_rtl.cc.o.d"
  "libpilotrf_rfmodel.a"
  "libpilotrf_rfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_rfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
