file(REMOVE_RECURSE
  "libpilotrf_rfmodel.a"
)
