# Empty dependencies file for pilotrf_rfmodel.
# This may be replaced when dependencies are built.
