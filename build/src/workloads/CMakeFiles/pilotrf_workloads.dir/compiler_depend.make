# Empty compiler generated dependencies file for pilotrf_workloads.
# This may be replaced when dependencies are built.
