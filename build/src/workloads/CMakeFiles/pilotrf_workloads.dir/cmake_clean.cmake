file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_workloads.dir/category1.cc.o"
  "CMakeFiles/pilotrf_workloads.dir/category1.cc.o.d"
  "CMakeFiles/pilotrf_workloads.dir/category2.cc.o"
  "CMakeFiles/pilotrf_workloads.dir/category2.cc.o.d"
  "CMakeFiles/pilotrf_workloads.dir/category3.cc.o"
  "CMakeFiles/pilotrf_workloads.dir/category3.cc.o.d"
  "CMakeFiles/pilotrf_workloads.dir/registry.cc.o"
  "CMakeFiles/pilotrf_workloads.dir/registry.cc.o.d"
  "libpilotrf_workloads.a"
  "libpilotrf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
