
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/category1.cc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category1.cc.o" "gcc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category1.cc.o.d"
  "/root/repo/src/workloads/category2.cc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category2.cc.o" "gcc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category2.cc.o.d"
  "/root/repo/src/workloads/category3.cc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category3.cc.o" "gcc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/category3.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/pilotrf_workloads.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pilotrf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilotrf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
