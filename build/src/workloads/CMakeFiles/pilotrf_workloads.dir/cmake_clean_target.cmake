file(REMOVE_RECURSE
  "libpilotrf_workloads.a"
)
