file(REMOVE_RECURSE
  "libpilotrf_power.a"
)
