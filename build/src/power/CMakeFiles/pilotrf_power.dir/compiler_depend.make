# Empty compiler generated dependencies file for pilotrf_power.
# This may be replaced when dependencies are built.
