file(REMOVE_RECURSE
  "CMakeFiles/pilotrf_power.dir/energy_accountant.cc.o"
  "CMakeFiles/pilotrf_power.dir/energy_accountant.cc.o.d"
  "libpilotrf_power.a"
  "libpilotrf_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotrf_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
