/**
 * @file
 * Sec. V-B: design-space exploration of the FRF_low issue threshold. The
 * paper found any threshold around 85 (of 400 issue slots per 50-cycle
 * epoch) works well: <0.5% performance cost with 22% of FRF accesses in
 * the low-power mode.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Sec. V-B",
                  "FRF_low issue-threshold design-space exploration");
    std::printf("%-10s %12s %16s %14s\n", "threshold", "overhead",
                "FRF_low share", "dyn energy");
    power::EnergyAccountant acct;
    sim::SimConfig base;
    base.rfKind = sim::RfKind::MrfStv;
    double cb = 0, eb = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const auto r = bench::runWorkload(base, w);
        cb += double(r.totalCycles);
        eb += acct.account(base, r.rfStats, r.totalCycles).dynamicPj;
    });
    for (unsigned thr : {25u, 45u, 65u, 85u, 105u, 165u, 245u}) {
        sim::SimConfig part;
        part.rfKind = sim::RfKind::Partitioned;
        part.prf.issueThreshold = thr;
        double cp = 0, lo = 0, hi = 0, ep = 0;
        bench::forEachWorkload([&](const workloads::Workload &w) {
            const auto r = bench::runWorkload(part, w);
            cp += double(r.totalCycles);
            lo += r.rfStats.get("access.FRF_low");
            hi += r.rfStats.get("access.FRF_high");
            ep += acct.account(part, r.rfStats, r.totalCycles).dynamicPj;
        });
        std::printf("%-10u %+11.2f%% %15.1f%% %13.3f%s\n", thr,
                    100 * (cp / cb - 1), 100 * lo / (lo + hi), ep / eb,
                    thr == 85 ? "   <- paper's choice" : "");
        std::fflush(stdout);
    }
    return 0;
}
