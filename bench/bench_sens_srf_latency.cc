/**
 * @file
 * Sec. V-C sensitivity: impact of the SRF access latency on performance.
 * Paper: 4-cycle SRF degrades performance by 0.5% and 5-cycle by 2.4%
 * relative to the default 3-cycle SRF design.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Sec. V-C", "SRF access latency sensitivity");
    std::printf("%-12s %14s %18s\n", "SRF latency", "vs MRF@STV",
                "vs 3-cycle SRF");
    double cyc3 = 0;
    for (unsigned lat : {3u, 4u, 5u}) {
        sim::SimConfig base;
        base.rfKind = sim::RfKind::MrfStv;
        sim::SimConfig part;
        part.rfKind = sim::RfKind::Partitioned;
        part.prf.srfLatency = lat;
        double cb = 0, cp = 0;
        bench::forEachWorkload([&](const workloads::Workload &w) {
            cb += double(bench::runWorkload(base, w).totalCycles);
            cp += double(bench::runWorkload(part, w).totalCycles);
        });
        if (lat == 3)
            cyc3 = cp;
        std::printf("%-12u %+13.2f%% %+17.2f%%\n", lat, 100 * (cp / cb - 1),
                    100 * (cp / cyc3 - 1));
        std::fflush(stdout);
    }
    std::printf("\nPaper: +0.5%% at 4 cycles and +2.4%% at 5 cycles "
                "relative to the 3-cycle design.\n");
    return 0;
}
