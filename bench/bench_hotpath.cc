/**
 * @file
 * Simulator-throughput microbenchmark for the typed-counter stat plumbing.
 *
 * Runs three representative Table-I workloads (compute-heavy sgemm,
 * control/memory-heavy BFS, stencil hotspot) under {MRF@STV, partitioned,
 * RFC} and reports simulated warp-cycles per wall-clock second, so the
 * effect of hot-path changes is measured rather than asserted. Unlike the
 * figure benches this one deliberately drives `sim::Gpu` directly on the
 * calling thread: the object under test is the per-event cycle loop, not
 * the experiment runner around it.
 *
 * Warp-cycles are active SM-cycles (SM-cycles with at least one live
 * warp, summed over SMs) times the configured warps per SM — a
 * config-independent measure of simulated work.
 *
 * Output: a human-readable table on stdout and a machine-readable
 * `BENCH_hotpath.json` (path overridable as argv[1]) for CI artifacts.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

namespace
{

struct Config
{
    const char *label;
    sim::SimConfig cfg;
};

std::vector<Config>
configs()
{
    const auto withKind = [](sim::RfKind k) {
        sim::SimConfig c;
        c.rfKind = k;
        return c;
    };
    sim::SimConfig rfc = withKind(sim::RfKind::Rfc);
    rfc.policy = sim::SchedulerPolicy::TwoLevel;
    return {{"mrf_stv", withKind(sim::RfKind::MrfStv)},
            {"partitioned", withKind(sim::RfKind::Partitioned)},
            {"rfc_tl", rfc}};
}

struct Row
{
    std::string workload;
    std::string config;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t warpCycles = 0;
    double wallSeconds = 0.0;
    double warpCyclesPerSec = 0.0;
    double instructionsPerSec = 0.0;
};

Row
measure(const char *wlName, const Config &c)
{
    const auto &wl = workloads::workload(wlName);

    // Warm-up run: touch every lazily-built structure (kernels validate,
    // static profiles, allocator warm-up) outside the timed region.
    {
        sim::Gpu gpu(c.cfg);
        gpu.run(wl.kernels);
    }

    Row row;
    row.workload = wlName;
    row.config = c.label;

    const auto t0 = std::chrono::steady_clock::now();
    // Repeat until the timed region is long enough to swamp clock jitter.
    unsigned reps = 0;
    double elapsed = 0.0;
    do {
        sim::Gpu gpu(c.cfg);
        const sim::RunResult run = gpu.run(wl.kernels);
        ++reps;
        if (reps == 1) {
            row.cycles = run.totalCycles;
            row.instructions = run.totalInstructions;
            row.warpCycles =
                std::uint64_t(run.simStats.get("cycles.active")) *
                c.cfg.warpsPerSm;
        }
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < 0.5);

    row.wallSeconds = elapsed / reps;
    row.warpCyclesPerSec = double(row.warpCycles) / row.wallSeconds;
    row.instructionsPerSec = double(row.instructions) / row.wallSeconds;
    return row;
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        fatal("cannot write %s", path.c_str());
    os << "{\n  ";
    jsonString(os, "bench");
    os << ": ";
    jsonString(os, "hotpath");
    os << ",\n  ";
    jsonString(os, "rows");
    os << ": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << (i ? "," : "") << "\n    {";
        const auto str = [&](const char *k, const std::string &v,
                             bool first = false) {
            os << (first ? "" : ", ");
            jsonString(os, k);
            os << ": ";
            jsonString(os, v);
        };
        const auto num = [&](const char *k, double v) {
            os << ", ";
            jsonString(os, k);
            os << ": ";
            jsonNumber(os, v);
        };
        str("workload", r.workload, true);
        str("config", r.config);
        num("cycles", double(r.cycles));
        num("instructions", double(r.instructions));
        num("warpCycles", double(r.warpCycles));
        num("wallSeconds", r.wallSeconds);
        num("warpCyclesPerSec", r.warpCyclesPerSec);
        num("instructionsPerSec", r.instructionsPerSec);
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string out = argc > 1 ? argv[1] : "BENCH_hotpath.json";
    const char *workloadNames[] = {"sgemm", "BFS", "hotspot"};

    bench::header("BENCH hotpath",
                  "simulator throughput (warp-cycles/s) by RF backend");
    std::printf("%-10s %-12s %14s %12s %14s\n", "workload", "config",
                "warp-cycles", "wall s", "warp-cyc/s");

    std::vector<Row> rows;
    for (const char *wl : workloadNames) {
        for (const auto &c : configs()) {
            rows.push_back(measure(wl, c));
            const Row &r = rows.back();
            std::printf("%-10s %-12s %14llu %12.4f %14.3e\n",
                        r.workload.c_str(), r.config.c_str(),
                        (unsigned long long)r.warpCycles, r.wallSeconds,
                        r.warpCyclesPerSec);
        }
    }

    writeJson(rows, out);
    std::printf("\nreport: %s\n", out.c_str());
    return 0;
}
