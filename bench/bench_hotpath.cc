/**
 * @file
 * Simulator-throughput microbenchmark for the typed-counter stat plumbing.
 *
 * Runs three representative Table-I workloads (compute-heavy sgemm,
 * control/memory-heavy BFS, stencil hotspot) plus a synthetic
 * latency-bound pointer-chase (`memlat`: one dependent global-load chain
 * per warp at low occupancy, so whole SMs sit dead for most of each
 * ~230-cycle memory round trip) under {MRF@STV, partitioned, RFC} and
 * reports simulated warp-cycles per wall-clock second, so the effect of
 * hot-path changes is measured rather than asserted. Unlike the figure
 * benches this one deliberately drives `sim::Gpu` directly on the calling
 * thread: the object under test is the per-event cycle loop, not the
 * experiment runner around it.
 *
 * Every workload x config cell is measured with the event-horizon
 * fast-forward on (the default) and off; rows carry the fraction of
 * simulated SM-cycles the skip elided, so the on/off throughput ratio can
 * be read against how memory-bound the run actually was.
 *
 * A final section measures the sharded epoch-barrier engine
 * (SimConfig::numWorkers > 1) against the serial lockstep engine on the
 * latency-bound workloads, including `memskew` — a memlat variant whose
 * loop iterations take a hashed one-or-two memory round trips, so the
 * warps (and with them whole SMs) run out of phase. Dephased SMs are
 * the worst case for the lockstep engine's global all-idle skip (some
 * SM is always near an event, so the horizon collapses) and the case
 * the per-SM fast-forward inside Sm::step exists for; rows carry
 * per-shard skipped-cycle fractions and the 4-worker/1-worker speedup.
 *
 * Warp-cycles are active SM-cycles (SM-cycles with at least one live
 * warp, summed over SMs) times the configured warps per SM — a
 * config-independent measure of simulated work.
 *
 * The partitioned config additionally runs under each observability mode
 * (`+ts`: 100-cycle time-series sampling; `+trace`: a Chrome trace sink
 * on the GPU's hub), so the cost of *enabled* observability is measured
 * and the obs-off rows double as the regression reference for the
 * off-path (a null hub pointer and a null sampler check per cycle). A
 * closing section repeats memskew with the sampler / a trace sink
 * attached at 1 and 4 workers: observability no longer forces the
 * lockstep engine, so the traced sharded row measures the per-SM
 * buffered emission and barrier-time merge against the same 2x target.
 * A last pair of rows runs `memskew_l2` — memskew with 8-line load
 * bursts, so its traffic blows through a 1 KB L1 and hits the shared
 * L2 every iteration — with the full L1 + shared L2 + DRAM hierarchy
 * live at 1 and 4 workers: the shared L2 rides the sharded engine
 * through deferred-request replay, with each SM running ahead of its
 * oldest unreplayed request by at most the L2 response latency (the
 * NeedsMem lookahead bound), so these rows track the sharded speedup
 * that survives the live-traffic replay rounds (>= 1.5x target).
 *
 * A shard-scheduling section compares the static SM i -> worker
 * i % workers assignment against the default dynamic LPT ticket-queue
 * schedule (SimConfig::shardSchedule) on `memskew_hetero` — a
 * deliberately imbalanced 60-SM workload in which a hash-picked ~13%
 * of CTAs (one CTA per SM) run a multi-epoch latency-bound loop with a
 * ~7x cost spread while the rest exit almost immediately, so the live
 * set collapses to a small cluster of unequal heavy SMs that the
 * static residue assignment serializes — plus a short divergent kernel
 * launching eight CTA waves (many tiny resolution rounds, where the
 * dynamic schedule wakes only as many workers as there are runnable
 * SMs). Rows carry the engine's per-epoch straggler ratio (max/mean
 * per-worker busy time; 1.0 = perfectly balanced) and the
 * dynamic-over-static speedup at 4 workers is checked against a
 * >= 1.3x target — on multi-core hosts; with a single hardware thread
 * the workers timeslice one CPU, wall time measures total work under
 * either schedule, and the bench waives the wall-clock check in favor
 * of the straggler columns.
 *
 * Output: a human-readable table on stdout and a machine-readable
 * `BENCH_hotpath.json` (path overridable as argv[1]) for CI artifacts.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "isa/kernel_builder.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

namespace
{

struct Config
{
    const char *label;
    sim::SimConfig cfg;
};

std::vector<Config>
configs()
{
    const auto withKind = [](sim::RfKind k) {
        sim::SimConfig c;
        c.rfKind = k;
        return c;
    };
    sim::SimConfig rfc = withKind(sim::RfKind::Rfc);
    rfc.policy = sim::SchedulerPolicy::TwoLevel;
    return {{"mrf_stv", withKind(sim::RfKind::MrfStv)},
            {"partitioned", withKind(sim::RfKind::Partitioned)},
            {"rfc_tl", rfc}};
}

/** Observability attached to the measured Gpu. */
enum class ObsMode
{
    Off,     ///< no hub, no sampler: the default off path
    Sampled, ///< 100-cycle time-series sampling on every SM
    Traced,  ///< Chrome trace sink on the GPU's hub
};

const char *
toString(ObsMode m)
{
    switch (m) {
    case ObsMode::Off: return "off";
    case ObsMode::Sampled: return "ts";
    case ObsMode::Traced: return "trace";
    }
    return "?";
}

struct Row
{
    std::string workload;
    std::string config;
    std::string obs;
    std::string skip;     ///< event-horizon cycle skipping: "on" / "off"
    unsigned workers = 1; ///< SimConfig::numWorkers (1: lockstep engine)
    std::string schedule = "-"; ///< shard schedule ("-" under lockstep)
    /** Mean / worst per-epoch straggler ratio (max/mean per-worker busy
     *  time on full stepping rounds); 0 when nothing was measured. */
    double stragglerMean = 0.0;
    double stragglerMax = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t warpCycles = 0;
    /** Fraction of global simulated cycles the fast-forward jumped
     *  over instead of single-stepping. Counts the lockstep engine's
     *  all-idle global skip only; the sharded engine's per-SM skips
     *  show up in shardSkipFrac instead. */
    double skipFraction = 0.0;
    /** Per-shard fraction of the shard's simulated SM-cycles the per-SM
     *  fast-forward elided (shard s owns SMs s, s+workers, ...). */
    std::vector<double> shardSkipFrac;
    double wallSeconds = 0.0;
    double warpCyclesPerSec = 0.0;
    double instructionsPerSec = 0.0;
};

/** The kernels behind a bench workload name: the Table-I workloads from
 *  the registry, plus the synthetic `memlat` pointer-chase — 30 CTAs of a
 *  single warp, each walking a 16-deep dependent global-load chain, so at
 *  two warps per SM nearly every cycle of the ~230-cycle memory latency
 *  is dead on every SM at once. */
const std::vector<isa::Kernel> &
benchKernels(const std::string &name)
{
    if (name == "memlat") {
        static const std::vector<isa::Kernel> kernels = [] {
            isa::KernelBuilder b("memlat", 8, 32, 30);
            b.beginLoop(16);
            b.load(1, 1, isa::MemSpace::Global, 1);
            b.op(isa::Opcode::IAdd, 2, {1});
            b.endLoop();
            return std::vector<isa::Kernel>{b.build()};
        }();
        return kernels;
    }
    if (name == "memskew") {
        // memlat dephased: a hashed-per-visit conditional second load
        // makes each loop iteration take one or two memory round trips,
        // so warps drift out of phase immediately (spreading only the
        // trip *count* would keep every warp phase-locked at multiples
        // of the fixed iteration latency). 120 CTAs pair with the
        // sharded section's 60-SM low-occupancy config.
        static const std::vector<isa::Kernel> kernels = [] {
            isa::KernelBuilder b("memskew", 8, 32, 120);
            // Long loops: the warps launch in phase and only drift
            // apart as the hashed iteration lengths accumulate, so
            // short loops understate the steady-state divergence.
            b.beginLoop(48, 96);
            b.load(1, 1, isa::MemSpace::Global, 1);
            b.op(isa::Opcode::IAdd, 2, {1});
            b.beginIfUniform(0.5);
            b.load(3, 3, isa::MemSpace::Global, 1);
            b.op(isa::Opcode::IAdd, 4, {3});
            b.endIf();
            b.endLoop();
            return std::vector<isa::Kernel>{b.build()};
        }();
        return kernels;
    }
    if (name == "memskew_hetero") {
        // Deliberately imbalanced kernel mix for the shard-scheduling
        // rows, run at one CTA per SM on 60 SMs.
        //
        // hetero_long0..5: each CTA rolls one hashed top-level
        // conditional (the if sits outside every loop, so it hashes
        // once per CTA, not per visit) that gates a multi-epoch
        // memskew-style loop — one-or-two hashed memory round trips
        // per iteration — whose hashed trip count spreads heavy-SM
        // costs over a ~7x range. Roughly eight of the sixty SMs per
        // kernel go heavy and run millions of latency-bound cycles
        // across several epoch rounds; the rest execute one load and
        // exit almost immediately. The live set therefore collapses to
        // a small hash-picked cluster of unequal heavy SMs: the static
        // schedule serializes whatever residue class the cluster lands
        // in, round after round, while dynamic claiming (with LPT
        // costs from the previous epoch) spreads the same SMs across
        // every worker. Six differently-seeded instances average over
        // the hash luck. (Latency-bound rather than ALU-dense on
        // purpose: dephased-load stepping is what the engine spends
        // its time on in real runs, and it scales across SMT siblings
        // where back-to-back ALU stepping would not.)
        //
        // hetero_short: a small divergent kernel with eight CTA waves
        // (480 CTAs on 60 resident slots), so most of its wall time is
        // mid-run launch resolution — hundreds of rounds with only one
        // or two runnable SMs, where the dynamic schedule wakes just
        // that many workers but the static schedule has to wake all of
        // them, because any worker might own a runnable SM.
        static const std::vector<isa::Kernel> kernels = [] {
            std::vector<isa::Kernel> v;
            for (unsigned k = 0; k < 6; ++k) {
                isa::KernelBuilder b("hetero_long" + std::to_string(k),
                                     8, 32, 60, /*seed=*/k);
                b.beginIfUniform(0.13);
                b.beginLoop(1000, 6000); // hashed per CTA: unequal heavies
                b.load(1, 1, isa::MemSpace::Global, 1);
                b.op(isa::Opcode::IAdd, 2, {1});
                b.beginIfUniform(0.5); // hashed per visit: dephasing
                b.load(3, 3, isa::MemSpace::Global, 1);
                b.op(isa::Opcode::IAdd, 4, {3});
                b.endIf();
                b.endLoop();
                b.endIf();
                b.load(1, 1, isa::MemSpace::Global, 1);
                b.op(isa::Opcode::IAdd, 2, {1});
                v.push_back(b.build());
            }
            {
                isa::KernelBuilder b("hetero_short", 8, 32, 480);
                b.beginLoop(2, 6, /*divergent=*/true);
                b.load(1, 1, isa::MemSpace::Global, 1);
                b.op(isa::Opcode::IAdd, 2, {1});
                b.endLoop();
                v.push_back(b.build());
            }
            return v;
        }();
        return kernels;
    }
    if (name == "memskew_l2") {
        // memskew for the live-hierarchy rows: the same hashed
        // one-or-two round-trip loop, but every load bursts 8 lines so
        // each warp's per-iteration footprint (two 8-line regions, 2 KB)
        // blows through the 1 KB L1 and the steady-state traffic reaches
        // the shared L2 every iteration — the narrow variant's loads hit
        // the L1 after the cold pass and never exercise the deferred
        // request protocol the sharded L2 rows are here to measure. The
        // 240 KB total footprint sits in the default 1 MB L2, so the
        // round trips are L2 hits and the dephasing character survives.
        static const std::vector<isa::Kernel> kernels = [] {
            isa::KernelBuilder b("memskew_l2", 8, 32, 120);
            b.beginLoop(48, 96);
            b.load(1, 1, isa::MemSpace::Global, 8);
            b.op(isa::Opcode::IAdd, 2, {1});
            b.beginIfUniform(0.5);
            b.load(3, 3, isa::MemSpace::Global, 8);
            b.op(isa::Opcode::IAdd, 4, {3});
            b.endIf();
            b.endLoop();
            return std::vector<isa::Kernel>{b.build()};
        }();
        return kernels;
    }
    return workloads::workload(name).kernels;
}

Row
measure(const char *wlName, const Config &c, bool cycleSkip,
        ObsMode mode = ObsMode::Off, unsigned workers = 1,
        unsigned kernelCopies = 1,
        sim::ShardSchedule schedule = sim::ShardSchedule::Dynamic)
{
    // kernelCopies > 1 repeats the workload's kernels back to back in
    // one run, so short kernels amortize the per-rep fixed cost inside
    // the timed region (Gpu construction: 60 SMs' RF backends, L1s and
    // the MemSystem) that would otherwise compress cross-row ratios
    // toward 1x.
    std::vector<isa::Kernel> kernels;
    for (unsigned r = 0; r < kernelCopies; ++r)
        for (const auto &k : benchKernels(wlName))
            kernels.push_back(k);
    const sim::Workload workload{wlName, kernels};
    sim::SimConfig cfg = c.cfg;
    cfg.enableCycleSkip = cycleSkip;
    cfg.numWorkers = workers;
    cfg.shardSchedule = schedule;

    sim::GpuOptions gpuOpts;
    if (mode == ObsMode::Sampled)
        gpuOpts.timeSeriesPeriod = 100;
    else if (mode == ObsMode::Traced)
        gpuOpts.enableTraceHub = true;

    // Warm-up run: touch every lazily-built structure (kernels validate,
    // static profiles, allocator warm-up) outside the timed region.
    {
        sim::Gpu gpu(cfg);
        gpu.run(workload);
    }

    Row row;
    row.workload = wlName;
    row.config = c.label;
    row.obs = toString(mode);
    row.skip = cycleSkip ? "on" : "off";
    row.workers = workers;
    if (workers > 1)
        row.schedule = sim::toString(schedule);

    const auto t0 = std::chrono::steady_clock::now();
    // Repeat until the timed region is long enough to swamp clock jitter.
    unsigned reps = 0;
    double elapsed = 0.0;
    do {
        std::ostringstream traceOut; // discarded; outlives the Gpu
        sim::Gpu gpu(cfg, gpuOpts);
        if (mode == ObsMode::Traced)
            gpu.traceHub().addSink(
                std::make_unique<obs::ChromeTraceSink>(traceOut));
        const sim::RunResult run = gpu.run(workload);
        ++reps;
        if (reps == 1) {
            row.cycles = run.totalCycles;
            row.instructions = run.totalInstructions;
            row.warpCycles =
                std::uint64_t(run.simStats.get("cycles.active")) *
                cfg.warpsPerSm;
            row.skipFraction =
                run.totalCycles
                    ? double(gpu.skippedCycles()) / double(run.totalCycles)
                    : 0.0;
            for (unsigned s = 0; s < workers; ++s) {
                std::uint64_t ff = 0, smCycles = 0;
                for (unsigned i = s; i < cfg.numSms; i += workers) {
                    ff += gpu.smStats(i).fastForwardedCycles();
                    smCycles += run.totalCycles;
                }
                row.shardSkipFrac.push_back(
                    smCycles ? double(ff) / double(smCycles) : 0.0);
            }
            row.stragglerMean =
                gpu.schedTelemetry().meanStragglerRatio();
            row.stragglerMax = gpu.schedTelemetry().maxStragglerRatio;
            if (workers > 1 && std::getenv("PILOTRF_BENCH_TELEMETRY")) {
                const auto &st = gpu.schedTelemetry();
                std::printf("  [telemetry] %s %s epochs=%llu\n", wlName,
                            sim::toString(schedule),
                            (unsigned long long)st.epochs);
                for (std::size_t w = 0; w < st.workers.size(); ++w) {
                    const auto &wt = st.workers[w];
                    std::printf("    w%zu busy=%7.1fms idle=%7.1fms "
                                "steal=%7.1fms sms=%llu stolen=%llu\n",
                                w, double(wt.busyNs) * 1e-6,
                                double(wt.idleNs) * 1e-6,
                                double(wt.stealNs) * 1e-6,
                                (unsigned long long)wt.smsStepped,
                                (unsigned long long)wt.smsStolen);
                }
            }
        }
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < 0.5);

    row.wallSeconds = elapsed / reps;
    row.warpCyclesPerSec = double(row.warpCycles) / row.wallSeconds;
    row.instructionsPerSec = double(row.instructions) / row.wallSeconds;
    return row;
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        fatal("cannot write %s", path.c_str());
    os << "{\n  ";
    jsonString(os, "bench");
    os << ": ";
    jsonString(os, "hotpath");
    os << ",\n  ";
    jsonString(os, "rows");
    os << ": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << (i ? "," : "") << "\n    {";
        const auto str = [&](const char *k, const std::string &v,
                             bool first = false) {
            os << (first ? "" : ", ");
            jsonString(os, k);
            os << ": ";
            jsonString(os, v);
        };
        const auto num = [&](const char *k, double v) {
            os << ", ";
            jsonString(os, k);
            os << ": ";
            jsonNumber(os, v);
        };
        str("workload", r.workload, true);
        str("config", r.config);
        str("obs", r.obs);
        str("skip", r.skip);
        num("workers", double(r.workers));
        str("schedule", r.schedule);
        num("stragglerMean", r.stragglerMean);
        num("stragglerMax", r.stragglerMax);
        num("cycles", double(r.cycles));
        num("instructions", double(r.instructions));
        num("warpCycles", double(r.warpCycles));
        num("skipFraction", r.skipFraction);
        os << ", ";
        jsonString(os, "shardSkipFrac");
        os << ": [";
        for (std::size_t s = 0; s < r.shardSkipFrac.size(); ++s) {
            os << (s ? ", " : "");
            jsonNumber(os, r.shardSkipFrac[s]);
        }
        os << "]";
        num("wallSeconds", r.wallSeconds);
        num("warpCyclesPerSec", r.warpCyclesPerSec);
        num("instructionsPerSec", r.instructionsPerSec);
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string out = argc > 1 ? argv[1] : "BENCH_hotpath.json";
    const char *workloadNames[] = {"sgemm", "BFS", "hotspot", "memlat"};

    bench::header("BENCH hotpath",
                  "simulator throughput (warp-cycles/s) by RF backend");
    std::printf("%-13s %-12s %-6s %-4s %3s %-7s %9s %14s %9s %12s %14s"
                "  %s\n",
                "workload", "config", "obs", "skip", "wrk", "sched",
                "straggler", "warp-cycles", "skip-frac", "wall s",
                "warp-cyc/s", "shard-skip");

    const auto report = [](const Row &r) {
        std::string shards;
        for (std::size_t s = 0; s < r.shardSkipFrac.size(); ++s) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%s%.2f", s ? "/" : "",
                          r.shardSkipFrac[s]);
            shards += buf;
        }
        std::printf("%-13s %-12s %-6s %-4s %3u %-7s %9.2f %14llu %9.3f "
                    "%12.4f %14.3e  %s\n",
                    r.workload.c_str(), r.config.c_str(), r.obs.c_str(),
                    r.skip.c_str(), r.workers, r.schedule.c_str(),
                    r.stragglerMean, (unsigned long long)r.warpCycles,
                    r.skipFraction, r.wallSeconds, r.warpCyclesPerSec,
                    shards.c_str());
    };

    std::vector<Row> rows;
    for (const char *wl : workloadNames) {
        for (const auto &c : configs()) {
            // Event-horizon fast-forward on (the default) vs off: the
            // speedup and skip fraction quantify how memory-bound the
            // workload's dead cycles are under this backend.
            for (const bool skip : {true, false}) {
                rows.push_back(measure(wl, c, skip));
                report(rows.back());
            }
            // Observability cost, measured on the paper's design point
            // with the fast-forward in its default (on) state.
            if (std::string(c.label) == "partitioned") {
                for (const auto m : {ObsMode::Sampled, ObsMode::Traced}) {
                    rows.push_back(measure(wl, c, true, m));
                    report(rows.back());
                }
            }
        }
    }

    // Sharded epoch-barrier engine vs the serial lockstep engine. The
    // lockstep all-idle skip can only jump to the *earliest* event on
    // any SM, so once the SMs drift out of phase (memskew) it degrades
    // toward single-stepping; the sharded engine fast-forwards each SM
    // across its own full dead span regardless of the other shards.
    std::printf("\nsharded stepping (skip on, obs off):\n");
    // Wide low-occupancy variant of the partitioned config: 60 SMs,
    // two 1-warp CTAs each. The grid drains greedily at kernel start,
    // so without the occupancy cap the first SMs swallow the whole grid
    // and the rest sit finished; capped, memskew's 120 CTAs spread one
    // pair per SM. Many mostly-dead SMs are exactly where the engines
    // diverge: the lockstep engine steps every SM at every *global*
    // event cycle, while each shard fast-forwards straight across its
    // own dead spans.
    Config lowOcc{"lowocc_60sm", sim::SimConfig{}};
    lowOcc.cfg.numSms = 60;
    lowOcc.cfg.maxCtasPerSm = 2;
    double lockstep = 0.0, fourWorkers = 0.0;
    for (const char *wl : {"memlat", "memskew"}) {
        for (const unsigned workers : {1u, 2u, 4u}) {
            rows.push_back(
                measure(wl, lowOcc, true, ObsMode::Off, workers));
            report(rows.back());
            if (std::string(wl) == "memskew" && workers == 1)
                lockstep = rows.back().warpCyclesPerSec;
            if (std::string(wl) == "memskew" && workers == 4)
                fourWorkers = rows.back().warpCyclesPerSec;
        }
    }
    const double speedup = lockstep > 0.0 ? fourWorkers / lockstep : 0.0;
    std::printf("\nmemskew speedup, 4 workers vs lockstep: %.2fx %s\n",
                speedup,
                speedup >= 2.0 ? "(>= 2x target met)"
                               : "(BELOW the 2x target)");

    // Observability under sharding: the same dephased workload with the
    // sampler and a Chrome sink attached. Tracing shortens the epochs
    // (more barriers) and adds the buffered-emission and merge work, so
    // the traced sharded row measures what the shard-safe emission path
    // actually costs — and that it still clears the 2x engine speedup.
    std::printf("\nsharded stepping, observability on (skip on):\n");
    double tracedLockstep = 0.0, tracedFour = 0.0;
    for (const auto m : {ObsMode::Sampled, ObsMode::Traced}) {
        for (const unsigned workers : {1u, 4u}) {
            rows.push_back(measure("memskew", lowOcc, true, m, workers));
            report(rows.back());
            if (m == ObsMode::Traced && workers == 1)
                tracedLockstep = rows.back().warpCyclesPerSec;
            if (m == ObsMode::Traced && workers == 4)
                tracedFour = rows.back().warpCyclesPerSec;
        }
    }
    const double tracedSpeedup =
        tracedLockstep > 0.0 ? tracedFour / tracedLockstep : 0.0;
    std::printf("\nmemskew traced speedup, 4 workers vs lockstep: "
                "%.2fx %s\n",
                tracedSpeedup,
                tracedSpeedup >= 2.0 ? "(>= 2x target met)"
                                     : "(BELOW the 2x target)");

    // The shared L2 under sharding: the memory system used to force the
    // lockstep engine outright; now it rides the sharded engine through
    // the deferred-request replay, with each SM pausing (NeedsMem) only
    // while it would otherwise outrun a live request's reply by more
    // than the minimum L2 response latency. memskew_l2 keeps a request
    // in flight on nearly every warp at all times, so these rows run
    // the protocol at its busiest — hundreds of replay rounds per
    // kernel rather than the 2^20-cycle free-running epochs above —
    // and track that the sharded engine still wins on the dephased
    // workload with the full L1 + L2 + DRAM hierarchy live: target
    // >= 1.5x rather than 2x, paying for the replay rounds.
    std::printf("\nsharded stepping, shared L2 + DRAM on (skip on):\n");
    Config l2LowOcc = lowOcc;
    l2LowOcc.label = "lowocc_l2";
    l2LowOcc.cfg.l1Enable = true;
    l2LowOcc.cfg.l1SizeKb = 1;
    l2LowOcc.cfg.l2Enable = true;
    l2LowOcc.cfg.dramEnable = true;
    double l2Lockstep = 0.0, l2Four = 0.0;
    for (const unsigned workers : {1u, 4u}) {
        // The L2-hitting round trips make the kernel an order of
        // magnitude shorter than the all-miss memskew above, so repeat
        // it within each run to keep the timed region dominated by
        // stepping rather than per-rep Gpu construction.
        rows.push_back(measure("memskew_l2", l2LowOcc, true, ObsMode::Off,
                               workers, /*kernelCopies=*/12));
        report(rows.back());
        if (workers == 1)
            l2Lockstep = rows.back().warpCyclesPerSec;
        else
            l2Four = rows.back().warpCyclesPerSec;
    }
    const double l2Speedup = l2Lockstep > 0.0 ? l2Four / l2Lockstep : 0.0;
    std::printf("\nmemskew_l2 L2-enabled speedup, 4 workers vs lockstep: "
                "%.2fx %s\n",
                l2Speedup,
                l2Speedup >= 1.5 ? "(>= 1.5x target met)"
                                 : "(BELOW the 1.5x target)");

    // Shard scheduling: static assignment vs the dynamic LPT ticket
    // queue on the deliberately imbalanced memskew_hetero workload (see
    // benchKernels). The 1-worker row anchors the absolute engine
    // speedup; the pair of 4-worker rows isolates the scheduling
    // policy — identical simulation, identical results, different
    // worker-to-SM assignment — and the straggler column shows the
    // imbalance the dynamic schedule removes.
    std::printf("\nshard scheduling on imbalanced work "
                "(skip on, obs off):\n");
    // One CTA per SM: a dense CTA makes a dense *SM*, with no second
    // resident CTA to average the imbalance away.
    Config hetero{"lowocc_1cta", lowOcc.cfg};
    hetero.cfg.maxCtasPerSm = 1;
    double hetStatic = 0.0, hetDynamic = 0.0;
    rows.push_back(measure("memskew_hetero", hetero, true, ObsMode::Off,
                           1, /*kernelCopies=*/1));
    report(rows.back());
    for (const auto schedule :
         {sim::ShardSchedule::Static, sim::ShardSchedule::Dynamic}) {
        rows.push_back(measure("memskew_hetero", hetero, true,
                               ObsMode::Off, 4, /*kernelCopies=*/1,
                               schedule));
        report(rows.back());
        if (schedule == sim::ShardSchedule::Static)
            hetStatic = rows.back().warpCyclesPerSec;
        else
            hetDynamic = rows.back().warpCyclesPerSec;
    }
    const double schedSpeedup =
        hetStatic > 0.0 ? hetDynamic / hetStatic : 0.0;
    // The scheduling comparison measures *balance*: it needs at least
    // two hardware threads to turn balance into wall time. On a
    // single-CPU host the four workers timeslice one core, wall time
    // degenerates to total work under either schedule, and the only
    // meaningful evidence is the straggler column (per-round max/mean
    // per-worker busy time), so the wall-clock target is waived rather
    // than reported as a miss.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 2)
        std::printf("\nmemskew_hetero speedup, dynamic vs static at 4 "
                    "workers: %.2fx %s\n",
                    schedSpeedup,
                    schedSpeedup >= 1.3 ? "(>= 1.3x target met)"
                                        : "(BELOW the 1.3x target)");
    else
        std::printf("\nmemskew_hetero speedup, dynamic vs static at 4 "
                    "workers: %.2fx (1.3x wall-clock target waived: "
                    "single-CPU host, compare straggler columns instead)\n",
                    schedSpeedup);

    writeJson(rows, out);
    std::printf("\nreport: %s\n", out.c_str());
    return 0;
}
