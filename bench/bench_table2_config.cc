/**
 * @file
 * Table II: the simulated Kepler GTX-780-class configuration.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    bench::header("Table II", "experimental setup");
    sim::SimConfig cfg;
    std::printf("Architecture                 Kepler GTX 780 (modeled)\n");
    std::printf("SMs                          %u\n", cfg.numSms);
    std::printf("Warps per SM                 %u\n", cfg.warpsPerSm);
    std::printf("SIMT clusters                %u\n", cfg.spWidth);
    std::printf("SIMT lanes per cluster       32\n");
    std::printf("Schedulers x issue width     %u x %u\n", cfg.schedulers,
                cfg.issuePerScheduler);
    std::printf("Register file size           256KB\n");
    std::printf("Banks                        %u\n", cfg.rfBanks);
    std::printf("Operand collector units      %u\n", cfg.collectors);
    std::printf("Max CTAs per SM              %u\n", cfg.maxCtasPerSm);
    std::printf("FRF registers per warp       %u (32KB FRF / 224KB SRF)\n",
                cfg.prf.frfRegs);
    std::printf("Latencies (cycles)           FRF_high %u / FRF_low %u / "
                "SRF %u\n",
                cfg.prf.frfHighLatency, cfg.prf.frfLowLatency,
                cfg.prf.srfLatency);
    std::printf("Adaptive FRF epoch           %u cycles, threshold %u/400\n",
                cfg.prf.epochLength, cfg.prf.issueThreshold);
    return 0;
}
