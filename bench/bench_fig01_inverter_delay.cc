/**
 * @file
 * Figure 1: delay of a 40-stage FO4 inverter chain vs Vdd, 7 nm FinFET
 * with Vth = 0.23 V. The paper's headline ratio: NTV (0.30 V) is about 3x
 * slower than STV (0.45 V).
 */

#include "bench/bench_util.hh"
#include "circuit/inverter_chain.hh"

using namespace pilotrf;

int
main()
{
    bench::header("Figure 1", "40-stage FO4 inverter chain delay vs Vdd "
                              "(7nm FinFET, Vth=0.23V)");
    const auto &tech = circuit::finfet7();
    std::printf("%8s %14s\n", "Vdd (V)", "delay (ns)");
    for (const auto &p : circuit::fig1Sweep(tech))
        std::printf("%8.3f %14.4f\n", p.vdd, p.delaySec * 1e9);

    const double dStv = circuit::chainDelay(tech, circuit::vddStv);
    const double dNtv = circuit::chainDelay(tech, circuit::vddNtv);
    std::printf("\nNTV/STV delay ratio: %.2fx (paper: ~3x; e.g. the 16-bit "
                "adder slows from .051ns to .153ns)\n",
                dNtv / dStv);
    return 0;
}
