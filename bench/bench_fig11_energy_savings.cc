/**
 * @file
 * Figure 11: RF dynamic energy of the partitioned RF and the partitioned
 * RF plus adaptive FRF, normalized to the monolithic MRF at STV; plus the
 * MRF-always-at-NTV comparison (47% saving in the paper) and the leakage
 * saving (39%).
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 11",
                  "normalized RF dynamic energy (baseline: MRF at STV)");
    std::printf("%-10s %12s %14s %10s\n", "workload", "partitioned",
                "part+adaptive", "MRF@NTV");
    power::EnergyAccountant acct;

    sim::SimConfig base;
    base.rfKind = sim::RfKind::MrfStv;
    sim::SimConfig part;
    part.rfKind = sim::RfKind::Partitioned;
    part.prf.adaptiveFrf = false;
    sim::SimConfig adap;
    adap.rfKind = sim::RfKind::Partitioned;
    adap.prf.adaptiveFrf = true;
    sim::SimConfig ntv;
    ntv.rfKind = sim::RfKind::MrfNtv;

    double sP = 0, sA = 0, sN = 0;
    unsigned n = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const auto rb = bench::runWorkload(base, w);
        const auto rp = bench::runWorkload(part, w);
        const auto ra = bench::runWorkload(adap, w);
        const auto rn = bench::runWorkload(ntv, w);
        const double eb =
            acct.account(base, rb.rfStats, rb.totalCycles).dynamicPj;
        const double ep =
            acct.account(part, rp.rfStats, rp.totalCycles).dynamicPj;
        const double ea =
            acct.account(adap, ra.rfStats, ra.totalCycles).dynamicPj;
        const double en =
            acct.account(ntv, rn.rfStats, rn.totalCycles).dynamicPj;
        std::printf("%-10s %12.3f %14.3f %10.3f\n", w.name.c_str(),
                    ep / eb, ea / eb, en / eb);
        sP += ep / eb;
        sA += ea / eb;
        sN += en / eb;
        ++n;
    });
    std::printf("%-10s %12.3f %14.3f %10.3f\n", "AVERAGE", sP / n, sA / n,
                sN / n);
    std::printf("\nDynamic energy saving: %.1f%% (paper: 54%%); MRF@NTV "
                "saves %.1f%% (paper: 47%%)\n",
                100 * (1 - sA / n), 100 * (1 - sN / n));

    const double leakPart = acct.leakagePowerMw(adap);
    const double leakBase = acct.leakagePowerMw(base);
    std::printf("Leakage power saving: %.1f%% (paper: 39%%)\n",
                100 * (1 - leakPart / leakBase));
    return 0;
}
