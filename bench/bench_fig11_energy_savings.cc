/**
 * @file
 * Figure 11: RF dynamic energy of the partitioned RF and the partitioned
 * RF plus adaptive FRF, normalized to the monolithic MRF at STV; plus the
 * MRF-always-at-NTV comparison (47% saving in the paper) and the leakage
 * saving (39%).
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 11",
                  "normalized RF dynamic energy (baseline: MRF at STV)");
    std::printf("%-10s %12s %14s %10s\n", "workload", "partitioned",
                "part+adaptive", "MRF@NTV");

    // Configs 0..3: mrf_stv, partitioned, part_adaptive, mrf_ntv.
    const auto sweep = exp::namedSweep("fig11");
    const auto res = bench::runSweep(sweep);

    double sP = 0, sA = 0, sN = 0;
    unsigned n = 0;
    for (std::size_t w = 0; w < res.workloadCount; ++w) {
        const double eb = res.at(w, 0).energy.dynamicPj;
        const double ep = res.at(w, 1).energy.dynamicPj;
        const double ea = res.at(w, 2).energy.dynamicPj;
        const double en = res.at(w, 3).energy.dynamicPj;
        std::printf("%-10s %12.3f %14.3f %10.3f\n",
                    res.at(w, 0).job.workload.c_str(), ep / eb, ea / eb,
                    en / eb);
        sP += ep / eb;
        sA += ea / eb;
        sN += en / eb;
        ++n;
    }
    std::printf("%-10s %12.3f %14.3f %10.3f\n", "AVERAGE", sP / n, sA / n,
                sN / n);
    std::printf("\nDynamic energy saving: %.1f%% (paper: 54%%); MRF@NTV "
                "saves %.1f%% (paper: 47%%)\n",
                100 * (1 - sA / n), 100 * (1 - sN / n));

    const double leakPart = res.at(0, 2).energy.leakagePowerMw;
    const double leakBase = res.at(0, 0).energy.leakagePowerMw;
    std::printf("Leakage power saving: %.1f%% (paper: 39%%)\n",
                100 * (1 - leakPart / leakBase));
    return 0;
}
