/**
 * @file
 * Ablation: the partitioned RF against the alternative low-power RF
 * organizations discussed in the paper's related work — the drowsy RF
 * (Warped Register File style, leakage-only savings) and the RFC (dynamic
 * energy savings that do not scale). Reports dynamic energy, effective
 * leakage power, and execution time for each, suite-wide.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Ablation",
                  "partitioned RF vs related-work RF organizations");
    power::EnergyAccountant acct;

    struct Row
    {
        const char *name;
        sim::SimConfig cfg;
    };
    std::vector<Row> rows;
    {
        sim::SimConfig c;
        c.rfKind = sim::RfKind::MrfStv;
        rows.push_back({"MRF@STV (baseline)", c});
        c.rfKind = sim::RfKind::MrfNtv;
        rows.push_back({"MRF@NTV", c});
        c.rfKind = sim::RfKind::Drowsy;
        rows.push_back({"Drowsy RF", c});
        c.rfKind = sim::RfKind::Rfc;
        c.policy = sim::SchedulerPolicy::TwoLevel;
        c.tlActiveWarps = 32; // generous pool: isolate the RFC itself
        rows.push_back({"RFC + TL", c});
        sim::SimConfig p;
        p.rfKind = sim::RfKind::Partitioned;
        rows.push_back({"Partitioned (proposed)", p});
    }

    double baseE = 0, baseC = 0;
    std::printf("%-24s %10s %13s %10s\n", "organization", "dyn energy",
                "leakage (mW)", "exec time");
    for (const auto &row : rows) {
        double e = 0, c = 0, leakSum = 0;
        unsigned n = 0;
        bench::forEachWorkload([&](const workloads::Workload &w) {
            const auto r = bench::runWorkload(row.cfg, w);
            const auto rep =
                acct.account(row.cfg, r.rfStats, r.totalCycles);
            e += rep.dynamicPj;
            c += double(r.totalCycles);
            leakSum += rep.leakagePowerMw;
            ++n;
        });
        if (baseE == 0) {
            baseE = e;
            baseC = c;
        }
        std::printf("%-24s %10.3f %13.2f %10.3f\n", row.name, e / baseE,
                    leakSum / n, c / baseC);
        std::fflush(stdout);
    }
    std::printf("\nThe drowsy RF attacks leakage only; the RFC's dynamic "
                "savings erode with scale;\nthe partitioned design is the "
                "only one cutting both at <2%% performance cost.\n");
    return 0;
}
