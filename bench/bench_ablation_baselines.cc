/**
 * @file
 * Ablation: the partitioned RF against the alternative low-power RF
 * organizations discussed in the paper's related work — the drowsy RF
 * (Warped Register File style, leakage-only savings) and the RFC (dynamic
 * energy savings that do not scale). Reports dynamic energy, effective
 * leakage power, and execution time for each, suite-wide.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Ablation",
                  "partitioned RF vs related-work RF organizations");

    // Config order: mrf_stv, mrf_ntv, drowsy, rfc_tl32, partitioned.
    const char *const names[] = {"MRF@STV (baseline)", "MRF@NTV",
                                 "Drowsy RF", "RFC + TL",
                                 "Partitioned (proposed)"};

    const auto res = bench::runSweep(exp::namedSweep("ablation_baselines"));

    double baseE = 0, baseC = 0;
    std::printf("%-24s %10s %13s %10s\n", "organization", "dyn energy",
                "leakage (mW)", "exec time");
    for (std::size_t c = 0; c < res.configCount; ++c) {
        double e = 0, cyc = 0, leakSum = 0;
        unsigned n = 0;
        for (std::size_t w = 0; w < res.workloadCount; ++w) {
            const auto &r = res.at(w, c);
            e += r.energy.dynamicPj;
            cyc += double(r.run.totalCycles);
            leakSum += r.energy.leakagePowerMw;
            ++n;
        }
        if (baseE == 0) {
            baseE = e;
            baseC = cyc;
        }
        std::printf("%-24s %10.3f %13.2f %10.3f\n", names[c], e / baseE,
                    leakSum / n, cyc / baseC);
    }
    std::printf("\nThe drowsy RF attacks leakage only; the RFC's dynamic "
                "savings erode with scale;\nthe partitioned design is the "
                "only one cutting both at <2%% performance cost.\n");
    return 0;
}
