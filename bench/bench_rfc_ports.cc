/**
 * @file
 * Sec. V-D: RFC port/bank energy scaling from the FinCACTI-style model.
 * Paper anchors: a (2R,1W) 6-registers-per-warp RFC costs 0.37x the MRF
 * access energy; growing to (8R,4W) costs 3x; an 8-banked RFC at the
 * 32-warp size costs about the same as the MRF.
 */

#include "bench/bench_util.hh"
#include "rfmodel/rfc_model.hh"

using namespace pilotrf;

int
main()
{
    bench::header("Sec. V-D", "RFC access energy vs ports and banks "
                              "(relative to the 14.9pJ MRF access)");
    struct Row
    {
        const char *label;
        rfmodel::RfcConfig cfg;
        double paper;
    };
    const Row rows[] = {
        {"(2R,1W), 1 bank, 8 warps", {6, 8, 2, 1, 1}, 0.37},
        {"(4R,2W), 1 bank, 8 warps", {6, 8, 4, 2, 1}, -1},
        {"(8R,4W), 1 bank, 8 warps", {6, 8, 8, 4, 1}, 3.0},
        {"(2R,1W), 2 banks, 8 warps", {6, 8, 2, 1, 2}, -1},
        {"(2R,1W), 4 banks, 16 warps", {6, 16, 2, 1, 4}, -1},
        {"(2R,1W), 8 banks, 32 warps", {6, 32, 2, 1, 8}, 1.0},
    };
    std::printf("%-28s %8s %12s %8s\n", "configuration", "size", "E/MRF",
                "paper");
    for (const auto &r : rows) {
        rfmodel::RfcModel m(r.cfg);
        std::printf("%-28s %6.1fKB %12.3f", r.label, m.sizeKb(),
                    m.accessEnergyPj() / 14.9);
        if (r.paper > 0)
            std::printf(" %8.2f", r.paper);
        std::printf("\n");
    }
    std::printf("\nTag-check energy: %.3f pJ per request\n",
                rfmodel::RfcModel({6, 8, 2, 1, 1}).tagEnergyPj());
    return 0;
}
