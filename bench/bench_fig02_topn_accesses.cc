/**
 * @file
 * Figure 2: percentage of accesses to the top 3/4/5 most accessed
 * registers per workload. Paper averages: 62% / 72% / 77%.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 2",
                  "accesses to the top-N registers (fraction of total)");
    std::printf("%-10s %8s %8s %8s\n", "workload", "top-3", "top-4",
                "top-5");
    double s3 = 0, s4 = 0, s5 = 0;
    unsigned n = 0;
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const auto r = bench::runWorkload(cfg, w);
        const double t3 = bench::kernelWeightedTopN(r, 3);
        const double t4 = bench::kernelWeightedTopN(r, 4);
        const double t5 = bench::kernelWeightedTopN(r, 5);
        std::printf("%-10s %7.1f%% %7.1f%% %7.1f%%\n", w.name.c_str(),
                    100 * t3, 100 * t4, 100 * t5);
        s3 += t3;
        s4 += t4;
        s5 += t5;
        ++n;
    });
    std::printf("%-10s %7.1f%% %7.1f%% %7.1f%%   (paper: 62%% / 72%% / "
                "77%%)\n",
                "AVERAGE", 100 * s3 / n, 100 * s4 / n, 100 * s5 / n);
    return 0;
}
