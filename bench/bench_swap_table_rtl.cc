/**
 * @file
 * Sec. III-B: RTL characteristics of the swapping table — 8 entries of 13
 * bits (104 bits total); lookup delay 105 / 95 / 55 ps at 22 nm CMOS /
 * 16 nm CMOS / 7 nm FinFET, i.e. under 10% of a 900 MHz cycle.
 */

#include "bench/bench_util.hh"
#include "rfmodel/swap_table_rtl.hh"

using namespace pilotrf;
using namespace pilotrf::circuit;

int
main()
{
    bench::header("Sec. III-B", "swapping table RTL evaluation");
    rfmodel::SwapTableRtl cam(4, rfmodel::SwapTableStyle::Cam);
    std::printf("entries: %u x 13 bits = %u bits (paper: 104)\n", 8,
                cam.bits());
    struct NodeRow
    {
        const CmosNode &node;
        double paperPs;
    };
    const NodeRow rows[] = {
        {cmos22(), 105}, {cmos16(), 95}, {finfetNode7(), 55}};
    std::printf("%-12s %12s %8s %14s\n", "node", "delay (ps)", "paper",
                "cycle frac");
    for (const auto &r : rows)
        std::printf("%-12s %12.0f %8.0f %13.1f%%\n", r.node.name,
                    cam.delayPs(r.node), r.paperPs,
                    100 * cam.cycleFraction(r.node));
    std::printf("\nScaling with tracked register count n (7nm FinFET "
                "CAM):\n");
    for (unsigned nTop : {4u, 8u, 16u}) {
        rfmodel::SwapTableRtl t(nTop);
        std::printf("  n=%2u: %3u bits, %5.1f ps, %5.3f pJ/lookup\n", nTop,
                    t.bits(), t.delayPs(finfetNode7()),
                    t.lookupEnergyPj());
    }
    return 0;
}
