/**
 * @file
 * Figure 12: execution time of the proposed design normalized to the MRF
 * at STV under the same scheduler. Series: partitioned+hybrid with GTO
 * and TL, partitioned+compiler-only profiling (GTO), and the MRF always
 * at NTV (paper: 7.1% slowdown; proposed <2% with GTO; hybrid beats
 * compiler-only by ~2%).
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 12",
                  "normalized execution time (1.0 = MRF@STV, same "
                  "scheduler)");
    std::printf("%-10s %10s %10s %12s %10s\n", "workload", "GTO-hyb",
                "TL-hyb", "GTO-compile", "MRF@NTV");

    // Configs 0..5: gto_mrf_stv, tl_mrf_stv, gto_hybrid, tl_hybrid,
    // gto_compiler, mrf_ntv.
    const auto res = bench::runSweep(exp::namedSweep("fig12"));

    double s[4] = {0, 0, 0, 0};
    unsigned n = 0;
    for (std::size_t w = 0; w < res.workloadCount; ++w) {
        const double cb = double(res.at(w, 0).run.totalCycles);
        const double ct = double(res.at(w, 1).run.totalCycles);
        const double v[4] = {
            res.at(w, 2).run.totalCycles / cb,
            res.at(w, 3).run.totalCycles / ct,
            res.at(w, 4).run.totalCycles / cb,
            res.at(w, 5).run.totalCycles / cb,
        };
        std::printf("%-10s %10.3f %10.3f %12.3f %10.3f\n",
                    res.at(w, 0).job.workload.c_str(), v[0], v[1], v[2],
                    v[3]);
        for (int i = 0; i < 4; ++i)
            s[i] += v[i];
        ++n;
    }
    std::printf("%-10s %10.3f %10.3f %12.3f %10.3f\n", "AVERAGE", s[0] / n,
                s[1] / n, s[2] / n, s[3] / n);
    std::printf("\nPaper: proposed <2%% overhead (GTO); hybrid ~2%% better "
                "than compiler-only; MRF@NTV 7.1%% overhead.\n");
    return 0;
}
