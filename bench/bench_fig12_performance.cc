/**
 * @file
 * Figure 12: execution time of the proposed design normalized to the MRF
 * at STV under the same scheduler. Series: partitioned+hybrid with GTO
 * and TL, partitioned+compiler-only profiling (GTO), and the MRF always
 * at NTV (paper: 7.1% slowdown; proposed <2% with GTO; hybrid beats
 * compiler-only by ~2%).
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 12",
                  "normalized execution time (1.0 = MRF@STV, same "
                  "scheduler)");
    std::printf("%-10s %10s %10s %12s %10s\n", "workload", "GTO-hyb",
                "TL-hyb", "GTO-compile", "MRF@NTV");

    auto mk = [](sim::SchedulerPolicy pol, sim::RfKind kind,
                 regfile::Profiling prof) {
        sim::SimConfig c;
        c.policy = pol;
        c.rfKind = kind;
        c.prf.profiling = prof;
        return c;
    };
    const auto baseGto =
        mk(sim::SchedulerPolicy::Gto, sim::RfKind::MrfStv,
           regfile::Profiling::Hybrid);
    const auto baseTl =
        mk(sim::SchedulerPolicy::TwoLevel, sim::RfKind::MrfStv,
           regfile::Profiling::Hybrid);
    const auto gtoHyb = mk(sim::SchedulerPolicy::Gto,
                           sim::RfKind::Partitioned,
                           regfile::Profiling::Hybrid);
    const auto tlHyb = mk(sim::SchedulerPolicy::TwoLevel,
                          sim::RfKind::Partitioned,
                          regfile::Profiling::Hybrid);
    const auto gtoCmp = mk(sim::SchedulerPolicy::Gto,
                           sim::RfKind::Partitioned,
                           regfile::Profiling::Compiler);
    const auto ntv = mk(sim::SchedulerPolicy::Gto, sim::RfKind::MrfNtv,
                        regfile::Profiling::Hybrid);

    double s[4] = {0, 0, 0, 0};
    unsigned n = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const double cb = double(bench::runWorkload(baseGto, w).totalCycles);
        const double ct = double(bench::runWorkload(baseTl, w).totalCycles);
        const double v[4] = {
            bench::runWorkload(gtoHyb, w).totalCycles / cb,
            bench::runWorkload(tlHyb, w).totalCycles / ct,
            bench::runWorkload(gtoCmp, w).totalCycles / cb,
            bench::runWorkload(ntv, w).totalCycles / cb,
        };
        std::printf("%-10s %10.3f %10.3f %12.3f %10.3f\n", w.name.c_str(),
                    v[0], v[1], v[2], v[3]);
        for (int i = 0; i < 4; ++i)
            s[i] += v[i];
        ++n;
        std::fflush(stdout);
    });
    std::printf("%-10s %10.3f %10.3f %12.3f %10.3f\n", "AVERAGE", s[0] / n,
                s[1] / n, s[2] / n, s[3] / n);
    std::printf("\nPaper: proposed <2%% overhead (GTO); hybrid ~2%% better "
                "than compiler-only; MRF@NTV 7.1%% overhead.\n");
    return 0;
}
