/**
 * @file
 * Figure 4: efficiency of the profiling techniques — the fraction of all
 * dynamic register accesses covered by the four registers each technique
 * identifies. Columns: compiler (static binary counts), pilot (pilot-warp
 * dynamic counts), hybrid (time-weighted FRF coverage of the proposed
 * design), optimal (post-hoc actual top-4).
 */

#include "bench/bench_util.hh"
#include "isa/static_profiler.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 4", "efficiency of profiling techniques "
                              "(top-4 coverage of total accesses)");
    std::printf("%-10s %4s %10s %8s %8s %9s\n", "workload", "cat",
                "compiler", "pilot", "hybrid", "optimal");

    sim::SimConfig hybridCfg;
    hybridCfg.rfKind = sim::RfKind::Partitioned;
    hybridCfg.prf.profiling = regfile::Profiling::Hybrid;

    double sums[4] = {0, 0, 0, 0};
    unsigned n = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const auto r = bench::runWorkload(hybridCfg, w);
        double vals[4] = {0, 0, 0, 0};
        double den = 0;
        for (const auto &k : r.kernels) {
            double total = 0;
            for (auto c : k.regAccess)
                total += double(c);
            // compiler / pilot / optimal: post-hoc coverage of the set.
            const double comp = k.accessFraction(k.staticHot);
            const double pil = k.accessFraction(k.pilotHot);
            const double opt = k.topNFraction(4);
            // hybrid: accesses the partitioned design actually served
            // from the FRF while this kernel ran.
            const double frf = k.rfStats.get("access.FRF_high") +
                               k.rfStats.get("access.FRF_low");
            const double all = frf + k.rfStats.get("access.SRF");
            const double hyb = all > 0 ? frf / all : 0.0;
            vals[0] += comp * total;
            vals[1] += pil * total;
            vals[2] += hyb * total;
            vals[3] += opt * total;
            den += total;
        }
        for (auto &v : vals)
            v /= den;
        std::printf("%-10s %4u %9.1f%% %7.1f%% %7.1f%% %8.1f%%\n",
                    w.name.c_str(), w.category, 100 * vals[0],
                    100 * vals[1], 100 * vals[2], 100 * vals[3]);
        for (int i = 0; i < 4; ++i)
            sums[i] += vals[i];
        ++n;
    });
    std::printf("%-10s %4s %9.1f%% %7.1f%% %7.1f%% %8.1f%%\n", "AVERAGE",
                "", 100 * sums[0] / n, 100 * sums[1] / n, 100 * sums[2] / n,
                100 * sums[3] / n);
    std::printf("\nExpected structure (paper): pilot ~= optimal for Cat 1-2;"
                " compiler lags pilot by >10%% in Cat 2;\n"
                "compiler beats pilot by >10%% in Cat 3 (LIB, WP).\n");
    return 0;
}
