/**
 * @file
 * Sec. V-C sensitivity: adaptive-FRF epoch length at a fixed 20% issue
 * threshold. Paper: the epoch length has a small impact on performance.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Sec. V-C", "adaptive FRF epoch length sensitivity "
                              "(threshold fixed at 20% of issue slots)");
    std::printf("%-8s %12s %12s %16s\n", "epoch", "overhead", "low epochs",
                "FRF_low share");
    sim::SimConfig base;
    base.rfKind = sim::RfKind::MrfStv;
    double cb = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        cb += double(bench::runWorkload(base, w).totalCycles);
    });
    for (unsigned epoch : {25u, 50u, 100u, 200u}) {
        sim::SimConfig part;
        part.rfKind = sim::RfKind::Partitioned;
        part.prf.epochLength = epoch;
        // 20% of the maximum issue slots in one epoch (8/cycle).
        part.prf.issueThreshold =
            unsigned(0.20 * epoch * part.schedulers *
                     part.issuePerScheduler + 0.5);
        double cp = 0, lo = 0, hi = 0;
        bench::forEachWorkload([&](const workloads::Workload &w) {
            const auto r = bench::runWorkload(part, w);
            cp += double(r.totalCycles);
            lo += r.rfStats.get("access.FRF_low");
            hi += r.rfStats.get("access.FRF_high");
        });
        std::printf("%-8u %+11.2f%% %12s %15.1f%%\n", epoch,
                    100 * (cp / cb - 1), "-", 100 * lo / (lo + hi));
        std::fflush(stdout);
    }
    return 0;
}
