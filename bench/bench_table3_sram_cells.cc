/**
 * @file
 * Table III: characteristics of the 8T SRAM cell in 7 nm FinFET — supply
 * voltage, ON current per micron, and static noise margin for the three
 * operating points (NTV; STV with back gate enabled; STV with back gate
 * disabled). Extended with the 6T/9T/10T comparison and the Monte-Carlo
 * yield analysis of Sec. IV-A.
 */

#include "bench/bench_util.hh"
#include "circuit/monte_carlo.hh"

using namespace pilotrf;
using namespace pilotrf::circuit;

int
main()
{
    bench::header("Table III",
                  "8T SRAM cell characteristics, 7nm FinFET technology");
    const auto &tech = finfet7();
    FinFet dev(tech);
    const auto p8 = defaultCellParams(SramCellType::T8);

    struct Row
    {
        const char *name;
        double vdd;
        BackGate bg;
        double paperIon, paperSnm;
    };
    const Row rows[] = {
        {"NTV", vddNtv, BackGate::Enabled, 7.505e-4, 0.092},
        {"STV, BG=Vdd", vddStv, BackGate::Enabled, 2.372e-3, 0.144},
        {"STV, BG=0", vddStv, BackGate::Disabled, 2.427e-4, 0.096},
    };
    std::printf("%-12s %8s %13s %13s %8s %8s\n", "design", "V (V)",
                "Ion (A/um)", "paper Ion", "SNM (V)", "paper");
    for (const auto &r : rows) {
        std::printf("%-12s %8.2f %13.3e %13.3e %8.3f %8.3f\n", r.name,
                    r.vdd, dev.onCurrentPerUm(r.vdd, r.bg), r.paperIon,
                    snm(p8, tech, r.vdd, SnmMode::Hold, r.bg), r.paperSnm);
    }

    std::printf("\nCell comparison at STV (read SNM; 8T+ are "
                "read-decoupled):\n");
    std::printf("%-5s %10s %12s %18s\n", "cell", "SNM (V)", "area (um2)",
                "MC yield (SNM>40mV)");
    for (auto t : {SramCellType::T6, SramCellType::T8, SramCellType::T9,
                   SramCellType::T10}) {
        const auto p = defaultCellParams(t);
        const auto y =
            monteCarloSnm(p, tech, vddStv, SnmMode::Read,
                          BackGate::Enabled, 0.04, 120, 42);
        std::printf("%-5s %10.3f %12.4f %13.1f%%\n", toString(t),
                    snm(p, tech, vddStv, SnmMode::Read), p.areaUm2,
                    100 * y.yield);
    }
    std::printf("(paper: the upsized 6T reaches only 0.088V at STV; the "
                "compact 8T is the area/SNM sweet spot)\n");
    return 0;
}
