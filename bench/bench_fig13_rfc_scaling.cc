/**
 * @file
 * Figure 13: scalability of the hierarchical register-file cache (RFC)
 * versus the partitioned RF as the GPU scales the scheduler count, RFC
 * banking and active warp pool. Configurations (schedulers, RFC banks,
 * active warps, MRF region): (1,2,8,NTV) (2,4,16,NTV) (4,8,32,NTV)
 * (4,8,32,STV). Bars: dynamic energy normalized to MRF@STV; lines:
 * execution time normalized to the GTO MRF@STV baseline.
 */

#include "bench/bench_util.hh"
#include "rfmodel/rfc_model.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 13",
                  "RFC vs partitioned RF scalability (suite aggregates)");

    struct Point
    {
        const char *label;
        unsigned banks, warps;
    };
    // Config triplets per scale point: .mrf_stv, .rfc, .part (see
    // exp::namedSweep("fig13")).
    const Point points[] = {{"(1,2, 8,NTV)", 2, 8},
                            {"(2,4,16,NTV)", 4, 16},
                            {"(4,8,32,NTV)", 8, 32},
                            {"(4,8,32,STV)", 8, 32}};

    const auto res = bench::runSweep(exp::namedSweep("fig13"));

    std::printf("%-16s %7s %8s %8s %8s %8s %9s\n", "config", "RFC KB",
                "E(RFC)", "E(part)", "t(RFC)", "t(part)", "hit rate");
    for (std::size_t p = 0; p < std::size(points); ++p) {
        double eB = 0, eR = 0, eP = 0, cB = 0, cR = 0, cP = 0, hit = 0,
               miss = 0;
        for (std::size_t w = 0; w < res.workloadCount; ++w) {
            const auto &rb = res.at(w, 3 * p + 0);
            const auto &rr = res.at(w, 3 * p + 1);
            const auto &rp = res.at(w, 3 * p + 2);
            eB += rb.energy.dynamicPj;
            eR += rr.energy.dynamicPj;
            eP += rp.energy.dynamicPj;
            cB += double(rb.run.totalCycles);
            cR += double(rr.run.totalCycles);
            cP += double(rp.run.totalCycles);
            hit += rr.run.rfStats.get("rfc.readHit");
            miss += rr.run.rfStats.get("rfc.readMiss");
        }
        rfmodel::RfcConfig rc;
        rc.activeWarps = points[p].warps;
        rc.banks = points[p].banks;
        rfmodel::RfcModel model(rc);
        std::printf("%-13s %8.1f %8.3f %8.3f %8.3f %8.3f %8.1f%%\n",
                    points[p].label, model.sizeKb(), eR / eB, eP / eB,
                    cR / cB, cP / cB, 100 * hit / (hit + miss));
        std::fflush(stdout);
    }
    std::printf("\nPaper structure: RFC energy savings shrink as schedulers"
                "/warps scale while the partitioned RF stays constant;\n"
                "RFC exec overhead 9.5%%/3.8%%/3.3%% at 8/16/32 active "
                "warps; RFC over MRF@STV saves only ~10%%.\n");
    return 0;
}
