/**
 * @file
 * Figure 13: scalability of the hierarchical register-file cache (RFC)
 * versus the partitioned RF as the GPU scales the scheduler count, RFC
 * banking and active warp pool. Configurations (schedulers, RFC banks,
 * active warps, MRF region): (1,2,8,NTV) (2,4,16,NTV) (4,8,32,NTV)
 * (4,8,32,STV). Bars: dynamic energy normalized to MRF@STV; lines:
 * execution time normalized to the GTO MRF@STV baseline.
 */

#include "bench/bench_util.hh"
#include "rfmodel/rfc_model.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 13",
                  "RFC vs partitioned RF scalability (suite aggregates)");
    power::EnergyAccountant acct;

    struct Cfg
    {
        unsigned sched, banks, warps;
        bool stv;
    };
    const Cfg cfgs[] = {
        {1, 2, 8, false}, {2, 4, 16, false}, {4, 8, 32, false},
        {4, 8, 32, true}};

    std::printf("%-16s %7s %8s %8s %8s %8s %9s\n", "config", "RFC KB",
                "E(RFC)", "E(part)", "t(RFC)", "t(part)", "hit rate");
    for (const auto &c : cfgs) {
        sim::SimConfig base;
        base.rfKind = sim::RfKind::MrfStv;
        base.schedulers = c.sched;
        sim::SimConfig rfc = base;
        rfc.rfKind = sim::RfKind::Rfc;
        rfc.policy = sim::SchedulerPolicy::TwoLevel;
        rfc.tlActiveWarps = c.warps;
        rfc.rfc.rfcBanks = c.banks;
        rfc.rfc.mrfMode =
            c.stv ? rfmodel::RfMode::MrfStv : rfmodel::RfMode::MrfNtv;
        sim::SimConfig part = base;
        part.rfKind = sim::RfKind::Partitioned;

        double eB = 0, eR = 0, eP = 0, cB = 0, cR = 0, cP = 0, hit = 0,
               miss = 0;
        bench::forEachWorkload([&](const workloads::Workload &w) {
            const auto rb = bench::runWorkload(base, w);
            const auto rr = bench::runWorkload(rfc, w);
            const auto rp = bench::runWorkload(part, w);
            eB += acct.account(base, rb.rfStats, rb.totalCycles).dynamicPj;
            eR += acct.account(rfc, rr.rfStats, rr.totalCycles).dynamicPj;
            eP += acct.account(part, rp.rfStats, rp.totalCycles).dynamicPj;
            cB += double(rb.totalCycles);
            cR += double(rr.totalCycles);
            cP += double(rp.totalCycles);
            hit += rr.rfStats.get("rfc.readHit");
            miss += rr.rfStats.get("rfc.readMiss");
        });
        rfmodel::RfcConfig rc;
        rc.activeWarps = c.warps;
        rc.banks = c.banks;
        rfmodel::RfcModel model(rc);
        std::printf("(%u,%u,%2u,%s) %8.1f %8.3f %8.3f %8.3f %8.3f %8.1f%%\n",
                    c.sched, c.banks, c.warps, c.stv ? "STV" : "NTV",
                    model.sizeKb(), eR / eB, eP / eB, cR / cB, cP / cB,
                    100 * hit / (hit + miss));
        std::fflush(stdout);
    }
    std::printf("\nPaper structure: RFC energy savings shrink as schedulers"
                "/warps scale while the partitioned RF stays constant;\n"
                "RFC exec overhead 9.5%%/3.8%%/3.3%% at 8/16/32 active "
                "warps; RFC over MRF@STV saves only ~10%%.\n");
    return 0;
}
