/**
 * @file
 * Sec. III-B sensitivity: what if the swapping-table lookup could not be
 * folded into the register access time and cost one extra pipeline cycle
 * on every access? The paper reports the overall overhead stays below 1%.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Sec. III-B",
                  "swapping-table extra-cycle sensitivity");
    sim::SimConfig folded;
    folded.rfKind = sim::RfKind::Partitioned;
    sim::SimConfig extra = folded;
    extra.prf.swapTableExtraCycle = true;

    double cf = 0, ce = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        cf += double(bench::runWorkload(folded, w).totalCycles);
        ce += double(bench::runWorkload(extra, w).totalCycles);
    });
    std::printf("lookup folded into the access:   %.0f cycles\n", cf);
    std::printf("lookup as an extra cycle:        %.0f cycles "
                "(%+.2f%%)\n",
                ce, 100 * (ce / cf - 1));
    std::printf("\nPaper: conservatively adding one cycle keeps the "
                "overhead below 1%%.\n");
    return 0;
}
