/**
 * @file
 * Table I: benchmark runtime information — registers/thread, threads/CTA,
 * and the pilot warp's runtime as a fraction of the kernel runtime.
 *
 * Note on scale: the synthetic grids are sized for fast simulation (a few
 * CTA waves per SM), which compresses the kernel runtime relative to the
 * pilot and therefore inflates the small pilot-CTA%% values; the paper's
 * ordering (Category 3 >> MUM/CP >> the rest) is preserved.
 */

#include <cmath>

#include "bench/bench_util.hh"

using namespace pilotrf;

namespace
{
struct PaperRow
{
    const char *name;
    double pilotPct;
};
const PaperRow paperRows[] = {
    {"BFS", 0.12},    {"btree", 0.7},  {"hotspot", 3.6}, {"nw", 0.48},
    {"stencil", 0.2}, {"backprop", 2.6}, {"sad", 0.13},  {"srad", 0.6},
    {"MUM", 37.0},    {"kmeans", 7.5}, {"lavaMD", 0.2},  {"mri-q", 14.3},
    {"NN", 8.2},      {"sgemm", 16.2}, {"CP", 47.0},     {"LIB", 60.0},
    {"WP", 75.0},
};

double
paperPilot(const std::string &name)
{
    for (const auto &r : paperRows)
        if (name == r.name)
            return r.pilotPct;
    return -1.0;
}
} // namespace

int
main()
{
    setQuiet(true);
    bench::header("Table I", "benchmark runtime information");
    std::printf("%-10s %4s %10s %8s %12s %12s\n", "workload", "cat",
                "regs/thr", "thr/CTA", "pilot%%(sim)", "pilot%%(paper)");
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    double logSum = 0;
    unsigned n = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        const auto r = bench::runWorkload(cfg, w);
        // Kernel-weighted pilot fraction.
        double frac = 0, cyc = 0;
        for (const auto &k : r.kernels) {
            if (k.pilotFinishCycle >= 0)
                frac += k.pilotFinishCycle;
            cyc += double(k.cycles);
        }
        const double pct = cyc > 0 ? 100.0 * frac / cyc : 0.0;
        const auto &k0 = w.kernels.front();
        std::printf("%-10s %4u %10u %8u %11.2f%% %11.2f%%\n",
                    w.name.c_str(), w.category, k0.regsPerThread(),
                    k0.threadsPerCta(), pct, paperPilot(w.name));
        logSum += std::log(std::max(pct, 0.01));
        ++n;
    });
    std::printf("GEOMEAN pilot%%(sim) = %.2f%%  (paper geomean: 3%%)\n",
                std::exp(logSum / n));
    return 0;
}
