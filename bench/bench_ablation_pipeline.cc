/**
 * @file
 * Ablation of two microarchitectural modeling choices DESIGN.md calls
 * out: write-queue forwarding (dependents unblock at write grant + 1
 * instead of after the full array write latency) and the optional per-SM
 * L1 data cache. Each is toggled on the baseline and the partitioned RF
 * to show the paper's conclusions are insensitive to them.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Ablation", "write forwarding and L1 cache");

    // Config order per toggle combo: .mrf_stv, .partitioned, .mrf_ntv;
    // combos ordered (l1 off, fwd on) (off, off) (on, on) (on, off).
    const auto res = bench::runSweep(exp::namedSweep("ablation_pipeline"));

    const auto suiteCycles = [&](std::size_t c) {
        double cycles = 0;
        for (std::size_t w = 0; w < res.workloadCount; ++w)
            cycles += double(res.at(w, c).run.totalCycles);
        return cycles;
    };

    std::size_t c = 0;
    for (const bool l1 : {false, true}) {
        for (const bool fwd : {true, false}) {
            const double cb = suiteCycles(c + 0);
            const double cp = suiteCycles(c + 1);
            const double cn = suiteCycles(c + 2);
            std::printf("L1=%-3s fwd=%-3s : partitioned %+6.2f%%  "
                        "MRF@NTV %+6.2f%%  (vs matching baseline)\n",
                        l1 ? "on" : "off", fwd ? "on" : "off",
                        100 * (cp / cb - 1), 100 * (cn / cb - 1));
            c += 3;
        }
    }
    std::printf("\nThe partitioned RF's small overhead and its advantage "
                "over the all-NTV design persist\nacross both modeling "
                "choices; without forwarding, write latency amplifies "
                "both overheads.\n");
    return 0;
}
