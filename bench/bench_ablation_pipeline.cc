/**
 * @file
 * Ablation of two microarchitectural modeling choices DESIGN.md calls
 * out: write-queue forwarding (dependents unblock at write grant + 1
 * instead of after the full array write latency) and the optional per-SM
 * L1 data cache. Each is toggled on the baseline and the partitioned RF
 * to show the paper's conclusions are insensitive to them.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

namespace
{
double
suiteCycles(const sim::SimConfig &cfg)
{
    double c = 0;
    bench::forEachWorkload([&](const workloads::Workload &w) {
        c += double(bench::runWorkload(cfg, w).totalCycles);
    });
    return c;
}
} // namespace

int
main()
{
    setQuiet(true);
    bench::header("Ablation", "write forwarding and L1 cache");

    for (const bool l1 : {false, true}) {
        for (const bool fwd : {true, false}) {
            sim::SimConfig base;
            base.rfKind = sim::RfKind::MrfStv;
            base.l1Enable = l1;
            base.writeForwarding = fwd;
            sim::SimConfig part = base;
            part.rfKind = sim::RfKind::Partitioned;
            sim::SimConfig ntv = base;
            ntv.rfKind = sim::RfKind::MrfNtv;

            const double cb = suiteCycles(base);
            const double cp = suiteCycles(part);
            const double cn = suiteCycles(ntv);
            std::printf("L1=%-3s fwd=%-3s : partitioned %+6.2f%%  "
                        "MRF@NTV %+6.2f%%  (vs matching baseline)\n",
                        l1 ? "on" : "off", fwd ? "on" : "off",
                        100 * (cp / cb - 1), 100 * (cn / cb - 1));
            std::fflush(stdout);
        }
    }
    std::printf("\nThe partitioned RF's small overhead and its advantage "
                "over the all-NTV design persist\nacross both modeling "
                "choices; without forwarding, write latency amplifies "
                "both overheads.\n");
    return 0;
}
