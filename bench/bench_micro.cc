/**
 * @file
 * Google-benchmark microbenchmarks of the analytic models and the hot
 * simulation paths: SNM extraction, array-model evaluation, swap-table
 * lookup, and whole-SM cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "circuit/sram.hh"
#include "common/logging.hh"
#include "regfile/swap_table.hh"
#include "rfmodel/array_model.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

static void
BM_SnmButterfly(benchmark::State &state)
{
    const auto &tech = circuit::finfet7();
    const auto cell = circuit::defaultCellParams(circuit::SramCellType::T8);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            circuit::snm(cell, tech, circuit::vddStv, circuit::SnmMode::Hold));
}
BENCHMARK(BM_SnmButterfly);

static void
BM_ArrayModelAccessEnergy(benchmark::State &state)
{
    rfmodel::ArrayConfig cfg{double(state.range(0)) * 1024.0};
    for (auto _ : state) {
        rfmodel::ArrayModel m(cfg);
        benchmark::DoNotOptimize(m.accessEnergyPj());
    }
}
BENCHMARK(BM_ArrayModelAccessEnergy)->Arg(32)->Arg(224)->Arg(256);

static void
BM_SwapTableLookup(benchmark::State &state)
{
    regfile::SwapTable t(4);
    t.program({9, 10, 11, 12});
    RegId r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(r));
        r = RegId((r + 1) % 16);
    }
}
BENCHMARK(BM_SwapTableLookup);

static void
BM_SimulatedKernelCycles(benchmark::State &state)
{
    setQuiet(true);
    const auto &w = workloads::workload("srad");
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.rfKind = sim::RfKind::Partitioned;
        sim::Gpu gpu(cfg);
        const auto r = gpu.run(w.view());
        benchmark::DoNotOptimize(r.totalCycles);
        state.counters["cycles/s"] = benchmark::Counter(
            double(r.totalCycles), benchmark::Counter::kIsRate);
    }
}
BENCHMARK(BM_SimulatedKernelCycles)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
