/**
 * @file
 * Figure 10: distribution of register accesses over the partitioned RF
 * structures (FRF in high power mode, FRF in low power mode, SRF), with 4
 * registers per warp in the FRF. Paper: 62% of accesses reach the FRF;
 * 22% of the FRF accesses happen in FRF_low mode.
 */

#include "bench/bench_util.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    bench::header("Figure 10", "partitioned RF access distribution");
    std::printf("%-10s %10s %10s %8s %14s\n", "workload", "FRF_high",
                "FRF_low", "SRF", "low/FRF share");

    const auto res = bench::runSweep(exp::namedSweep("fig10"));

    double sFrf = 0, sLowShare = 0;
    double tHi = 0, tLo = 0, tSrf = 0;
    unsigned n = 0;
    for (const auto &j : res.jobs) {
        const double hi = j.run.rfStats.get("access.FRF_high");
        const double lo = j.run.rfStats.get("access.FRF_low");
        const double srf = j.run.rfStats.get("access.SRF");
        const double tot = hi + lo + srf;
        std::printf("%-10s %9.1f%% %9.1f%% %7.1f%% %13.1f%%\n",
                    j.job.workload.c_str(), 100 * hi / tot, 100 * lo / tot,
                    100 * srf / tot, 100 * lo / std::max(1.0, hi + lo));
        sFrf += (hi + lo) / tot;
        sLowShare += lo / std::max(1.0, hi + lo);
        tHi += hi;
        tLo += lo;
        tSrf += srf;
        ++n;
    }
    std::printf("AVERAGE (per workload): FRF %.1f%% of accesses "
                "(paper 62%%); FRF_low %.1f%% of FRF accesses\n",
                100 * sFrf / n, 100 * sLowShare / n);
    std::printf("SUITE (access-weighted): FRF %.1f%%; FRF_low %.1f%% of "
                "FRF accesses (paper 22%%)\n",
                100 * (tHi + tLo) / (tHi + tLo + tSrf),
                100 * tLo / std::max(1.0, tHi + tLo));
    return 0;
}
