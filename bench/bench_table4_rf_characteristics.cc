/**
 * @file
 * Table IV: size, access energy and leakage power of the partitioned
 * register file and the power-aggressive MRF baseline, plus the area
 * overhead analysis of Sec. V-A (<10%).
 */

#include "bench/bench_util.hh"
#include "rfmodel/rf_specs.hh"

using namespace pilotrf;
using rfmodel::RfMode;

int
main()
{
    bench::header("Table IV",
                  "register file access energy / leakage power / size");
    rfmodel::RfSpecs specs;

    struct PaperRow
    {
        RfMode mode;
        double e, p, kb;
    };
    const PaperRow paper[] = {
        {RfMode::FrfLow, 5.25, 7.28, 32},
        {RfMode::FrfHigh, 7.65, 7.28, 32},
        {RfMode::Srf, 7.03, 13.4, 224},
        {RfMode::MrfStv, 14.9, 33.8, 256},
    };

    std::printf("%-9s %12s %8s %13s %8s %7s %9s %6s\n", "RF type",
                "E/access(pJ)", "paper", "leakage(mW)", "paper", "size",
                "t_acc(ns)", "cycles");
    for (const auto &pr : paper) {
        const auto &s = specs.spec(pr.mode);
        std::printf("%-9s %12.2f %8.2f %13.2f %8.2f %5.0fKB %9.3f %6u\n",
                    rfmodel::toString(pr.mode), s.accessEnergyPj, pr.e,
                    s.leakagePowerMw, pr.p, s.sizeKb, s.accessTimeNs,
                    s.accessCycles);
    }
    const auto &ntv = specs.spec(RfMode::MrfNtv);
    std::printf("%-9s %12.2f %8s %13.2f %8s %5.0fKB %9.3f %6u\n",
                rfmodel::toString(RfMode::MrfNtv), ntv.accessEnergyPj, "-",
                ntv.leakagePowerMw, "-", ntv.sizeKb, ntv.accessTimeNs,
                ntv.accessCycles);

    std::printf("\nArea: baseline %.4f mm2 (paper 0.2), proposed %.4f mm2 "
                "(paper 0.214) -> %.1f%% overhead (paper <10%%)\n",
                specs.baselineAreaMm2(), specs.proposedAreaMm2(),
                100 * (specs.proposedAreaMm2() / specs.baselineAreaMm2() -
                       1.0));
    std::printf("Leakage: partitioned %.1f mW vs MRF %.1f mW -> %.1f%% "
                "saving (paper 39%%)\n",
                specs.spec(RfMode::FrfHigh).leakagePowerMw +
                    specs.spec(RfMode::Srf).leakagePowerMw,
                specs.spec(RfMode::MrfStv).leakagePowerMw,
                100 * (1 - (specs.spec(RfMode::FrfHigh).leakagePowerMw +
                            specs.spec(RfMode::Srf).leakagePowerMw) /
                               specs.spec(RfMode::MrfStv).leakagePowerMw));
    return 0;
}
