/**
 * @file
 * pilotrf_run — the scriptable entry point to the experiment runner and
 * the sweep service.
 *
 * Everything the tool can be asked to compute is one validated
 * `exp::SweepRequest` (sweep name, axis overrides, seeds, report
 * shape). The flags build one, `--request FILE` loads one, and all
 * three execution modes lower the same struct:
 *
 *   batch (default)   expand and run locally, write the JSON report
 *   --serve SOCK      daemon: accept requests over a Unix socket,
 *                     serve repeats from the content-addressed result
 *                     cache, dedupe identical in-flight cells across
 *                     concurrent clients (single-flight)
 *   --connect SOCK    client: submit this request to a daemon, stream
 *                     its status lines to stderr, write its report
 *
 *   pilotrf_run --list
 *   pilotrf_run --sweep fig11 --threads 4 --out fig11.json
 *   pilotrf_run --sweep smoke --seeds 3 --no-timing   # deterministic bytes
 *   pilotrf_run --dump-request > req.json             # flags as a request
 *   pilotrf_run --serve /tmp/pilotrf.sock --store cache.jsonl &
 *   pilotrf_run --connect /tmp/pilotrf.sock --request req.json --out r.json
 *
 * Observability (all outputs are per-job files; the job's readable
 * workload-config-seed key is inserted before the extension so
 * concurrent jobs never share a stream):
 *
 *   pilotrf_run --sweep smoke --timeseries 100          # sampled counters
 *   pilotrf_run --sweep smoke --chrome-trace trace.json # chrome://tracing
 *   pilotrf_run --sweep smoke --trace-jsonl ev.jsonl --trace-cats warp,cta
 *
 * Configuration as data: --dump-config prints the full SimConfig as JSON;
 * --config runs a sweep's workloads under a config loaded from a JSON
 * file (replacing the sweep's config axis, labelled by file basename).
 * Unknown keys and mistyped values — in config files and request files
 * alike — are fatal, not ignored.
 *
 * Long campaigns survive failures and interruptions: with --checkpoint,
 * completed jobs stream to a JSONL manifest as they finish, and a rerun
 * with --resume serves them from the manifest instead of recomputing —
 * the merged report is byte-identical to an uninterrupted run. --timeout
 * and --retries bound wedged and transiently-failing jobs; one bad job
 * never loses its siblings' results. The daemon's --store is the same
 * idea promoted to a service: cells are keyed by content (exp::JobKey)
 * and simulator fingerprint, so repeated sweeps cost only novel cells.
 *
 * Exit code: 0 when every job is ok, 3 when any failed or timed out (or
 * the daemon rejected the request).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "common/version.hh"
#include "exp/checkpoint.hh"
#include "exp/job_key.hh"
#include "exp/report.hh"
#include "exp/sweep_request.hh"
#include "exp/sweeps.hh"
#include "sim/trace.hh"
#include "svc/net.hh"
#include "svc/sweep_service.hh"

using namespace pilotrf;

namespace
{

/** "configs/ntv_sweep.json" -> "ntv_sweep" (config-variant label). */
std::string
configLabelFromPath(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base.empty() ? "config" : base;
}

std::string
slurpFile(const std::string &path, const char *what)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open %s file '%s'", what, path.c_str());
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

sim::SimConfig
loadConfigFile(const std::string &path)
{
    try {
        return sim::SimConfig::fromJsonText(slurpFile(path, "config"));
    } catch (const std::exception &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
}

exp::SweepRequest
loadRequestFile(const std::string &path)
{
    try {
        return exp::SweepRequest::fromJsonText(slurpFile(path, "request"));
    } catch (const std::exception &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
}

std::uint64_t
parseTraceCatList(const std::string &list)
{
    std::uint64_t mask = 0;
    std::string item;
    const auto flush = [&] {
        if (item.empty())
            return;
        const auto cat = sim::parseTraceCat(item);
        if (!cat)
            fatal("--trace-cats: unknown category '%s'", item.c_str());
        mask |= std::uint64_t(1) << unsigned(*cat);
        item.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            item += char(std::tolower(static_cast<unsigned char>(c)));
    }
    flush();
    return mask;
}

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "request (one schema for flags, files and server mode):\n"
        "  --sweep NAME    named sweep to run (default: smoke)\n"
        "  --workloads W1,W2  replace the sweep's workload axis\n"
        "  --config FILE   run the sweep's workloads under the SimConfig\n"
        "                  in JSON FILE (replaces the config axis)\n"
        "  --seeds N       replicate each job under N deterministic seeds\n"
        "  --base-seed S   base seed mixed into every derived job seed\n"
        "  --workers N     per-job Gpu engine workers (0 = config knob;\n"
        "                  >1 shards SMs; outputs identical at any N)\n"
        "  --schedule S    shard schedule: static | dynamic (default:\n"
        "                  config knob; outputs identical either way)\n"
        "  --no-timing     omit wall-clock/thread/provenance fields\n"
        "                  (stable bytes)\n"
        "  --no-kernels    omit the per-kernel arrays\n"
        "  --request FILE  load a SweepRequest JSON (flags after it\n"
        "                  override its fields)\n"
        "  --dump-request  print the effective request as JSON and exit\n"
        "execution (batch mode):\n"
        "  --threads N     worker threads (default: all cores; 1 = serial)\n"
        "  --out FILE      write the JSON report to FILE (default: stdout)\n"
        "  --checkpoint F  stream completed jobs to JSONL manifest F\n"
        "  --resume        skip jobs already ok in the manifest and merge\n"
        "                  their cached results (requires --checkpoint)\n"
        "  --timeout SECS  per-job wall-clock timeout (0 = none)\n"
        "  --retries N     retry a throwing job up to N times\n"
        "  --backoff MS    first retry delay, doubling (default 100)\n"
        "sweep service:\n"
        "  --serve SOCK    serve requests on Unix socket SOCK (daemon)\n"
        "  --connect SOCK  submit the request to the daemon at SOCK\n"
        "  --store FILE    daemon: content-addressed result cache JSONL\n"
        "                  (default: in-memory only)\n"
        "  --store-max N   daemon: evict LRU entries beyond N cells\n"
        "  --serve-conns N daemon: exit after N connections (0 = forever)\n"
        "observability:\n"
        "  --timeseries N  sample per-SM counters every N cycles into\n"
        "                  per-job time-series JSON files\n"
        "  --timeseries-out FILE  time-series path stem\n"
        "                  (default timeseries.json)\n"
        "  --chrome-trace FILE    write per-job Chrome trace-event JSON\n"
        "                  (chrome://tracing / Perfetto)\n"
        "  --trace-jsonl FILE     write per-job JSONL event streams\n"
        "  --trace-cats LIST      restrict the JSONL text channel to the\n"
        "                  given categories (e.g. warp,cta)\n"
        "misc:\n"
        "  --dump-config   print the effective SimConfig as JSON and exit\n"
        "  --list          list the named sweeps and exit\n"
        "  --version       print the simulator fingerprint and exit\n",
        argv0);
    return code;
}

/** Split "WP,LIB" -> {"WP", "LIB"}. */
std::vector<std::string>
splitCommaList(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    for (const char c : list) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(std::move(item));
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty())
        out.push_back(std::move(item));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    exp::SweepRequest req;
    std::string outPath;
    bool dumpConfig = false;
    bool dumpRequest = false;
    unsigned threads = 0;
    std::string servePath;
    std::string connectPath;
    std::string storePath;
    std::size_t storeMax = 0;
    unsigned serveConns = 0;
    exp::RunnerOptions ropts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--sweep")
            req.sweep = value();
        else if (arg == "--workloads")
            req.workloads = splitCommaList(value());
        else if (arg == "--config") {
            const std::string path = value();
            req.config = loadConfigFile(path);
            req.configLabel = configLabelFromPath(path);
        } else if (arg == "--seeds")
            req.seeds = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--base-seed")
            req.baseSeed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--workers")
            req.workers = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--schedule") {
            req.schedule = value();
            if (!sim::parseShardSchedule(req.schedule).has_value())
                fatal("--schedule must be 'static' or 'dynamic', got '%s'",
                      req.schedule.c_str());
        } else if (arg == "--no-timing")
            req.includeTiming = false;
        else if (arg == "--no-kernels")
            req.includeKernels = false;
        else if (arg == "--request")
            req = loadRequestFile(value());
        else if (arg == "--dump-request")
            dumpRequest = true;
        else if (arg == "--threads")
            threads = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--out")
            outPath = value();
        else if (arg == "--checkpoint")
            ropts.checkpointPath = value();
        else if (arg == "--resume")
            ropts.resume = true;
        else if (arg == "--timeout")
            ropts.timeoutSeconds = std::strtod(value(), nullptr);
        else if (arg == "--retries")
            ropts.maxRetries = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--backoff")
            ropts.retryBackoffMs =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--serve")
            servePath = value();
        else if (arg == "--connect")
            connectPath = value();
        else if (arg == "--store")
            storePath = value();
        else if (arg == "--store-max")
            storeMax = std::strtoull(value(), nullptr, 10);
        else if (arg == "--serve-conns")
            serveConns = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--dump-config")
            dumpConfig = true;
        else if (arg == "--timeseries")
            ropts.obs.timeseriesPeriod =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--timeseries-out")
            ropts.obs.timeseriesPath = value();
        else if (arg == "--chrome-trace")
            ropts.obs.chromeTracePath = value();
        else if (arg == "--trace-jsonl")
            ropts.obs.jsonlTracePath = value();
        else if (arg == "--trace-cats")
            ropts.obs.traceCategoryMask = parseTraceCatList(value());
        else if (arg == "--list") {
            for (const auto &n : exp::sweepNames())
                std::printf("%-20s %s\n", n.c_str(),
                            exp::sweepDescription(n).c_str());
            return 0;
        } else if (arg == "--version") {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (req.seeds == 0)
        fatal("--seeds must be >= 1");
    if (ropts.resume && ropts.checkpointPath.empty())
        fatal("--resume requires --checkpoint");
    if (!servePath.empty() && !connectPath.empty())
        fatal("--serve and --connect are mutually exclusive");

    if (dumpConfig) {
        const sim::SimConfig cfg =
            req.config ? *req.config : sim::SimConfig{};
        std::fputs(cfg.jsonText().c_str(), stdout);
        return 0;
    }
    if (dumpRequest) {
        std::fputs(req.jsonText().c_str(), stdout);
        return 0;
    }

    // --- server mode: the request flags are irrelevant; clients send
    // their own requests over the socket.
    if (!servePath.empty()) {
        svc::ServiceOptions sopts;
        sopts.storePath = storePath;
        sopts.storeMaxEntries = storeMax;
        sopts.threads = threads;
        sopts.runner = ropts;
        svc::SweepService service(sopts);
        std::fprintf(stderr,
                     "pilotrf_run: serving on %s (%s, store: %s, %zu "
                     "cached cells)\n",
                     servePath.c_str(), versionString().c_str(),
                     storePath.empty() ? "<memory>" : storePath.c_str(),
                     service.store().size());
        return svc::serve(servePath, service, serveConns);
    }

    // --- client mode: submit the request, relay status to stderr and
    // the report to --out/stdout.
    if (!connectPath.empty()) {
        std::ostringstream report;
        const int rc = svc::runClient(connectPath, req.jsonText(), report,
                                      std::cerr);
        if (rc != 0)
            return rc == 3 ? 3 : 1;
        if (outPath.empty()) {
            std::fputs(report.str().c_str(), stdout);
        } else {
            std::ofstream os(outPath);
            if (!os)
                fatal("cannot open '%s' for writing", outPath.c_str());
            os << report.str();
        }
        return 0;
    }

    // --- batch mode.
    exp::Sweep sweep = req.toSweep();
    ropts.numWorkers = req.workers;
    if (!req.schedule.empty())
        ropts.schedule = sim::parseShardSchedule(req.schedule);

    const exp::ExperimentRunner runner(threads, ropts);
    std::fprintf(stderr,
                 "pilotrf_run: sweep '%s', %zu jobs (%zu workloads x %zu "
                 "configs x %u seeds), %u threads\n",
                 sweep.name.c_str(), sweep.jobCount(),
                 sweep.workloads.size(), sweep.configs.size(), req.seeds,
                 runner.threads());

    const exp::SweepResult res = runner.run(sweep);

    const exp::ReportOptions opts = req.reportOptions();
    if (outPath.empty()) {
        exp::writeJson(res, std::cout, opts);
    } else {
        std::ofstream os(outPath);
        if (!os)
            fatal("cannot open '%s' for writing", outPath.c_str());
        exp::writeJson(res, os, opts);
    }
    const exp::SweepSummary sum = res.summary();
    std::fprintf(stderr,
                 "pilotrf_run: %zu jobs in %.2f s: %zu ok (%zu resumed), "
                 "%zu failed, %zu timeout (report: %s)\n",
                 res.jobs.size(), res.wallSeconds, sum.ok, sum.resumed,
                 sum.failed, sum.timeout,
                 outPath.empty() ? "<stdout>" : outPath.c_str());
    for (const auto &j : res.jobs)
        if (j.status != exp::JobStatus::Ok)
            std::fprintf(stderr, "pilotrf_run:   %s: %s\n",
                         exp::legacyJobKey(j.job).c_str(),
                         j.statusString().c_str());
    return sum.allOk(res.jobs.size()) ? 0 : 3;
}
