/**
 * @file
 * pilotrf_run — the scriptable entry point to the experiment runner.
 *
 * Runs a named sweep (workloads x configs x seeds) on a worker pool and
 * writes a JSON report: per-job cycles, instructions, hierarchical
 * `rf.` / `sim.` stats, the `power::EnergyAccountant` breakdown, and
 * wall-clock / thread-count metadata.
 *
 *   pilotrf_run --list
 *   pilotrf_run --sweep fig11 --threads 4 --out fig11.json
 *   pilotrf_run --sweep smoke --seeds 3 --no-timing   # deterministic bytes
 *
 * Observability (all outputs are per-job files; the job key is inserted
 * before the extension so concurrent jobs never share a stream):
 *
 *   pilotrf_run --sweep smoke --timeseries 100          # sampled counters
 *   pilotrf_run --sweep smoke --chrome-trace trace.json # chrome://tracing
 *   pilotrf_run --sweep smoke --trace-jsonl ev.jsonl --trace-cats warp,cta
 *
 * Configuration as data: --dump-config prints the full SimConfig as JSON;
 * --config runs a sweep's workloads under a config loaded from a JSON
 * file (replacing the sweep's config axis, labelled by file basename).
 * Unknown keys and mistyped values in the file are fatal, not ignored.
 *
 * Long campaigns survive failures and interruptions: with --checkpoint,
 * completed jobs stream to a JSONL manifest as they finish, and a rerun
 * with --resume serves them from the manifest instead of recomputing —
 * the merged report is byte-identical to an uninterrupted run. --timeout
 * and --retries bound wedged and transiently-failing jobs; one bad job
 * never loses its siblings' results.
 *
 * Exit code: 0 when every job is ok, 3 when any failed or timed out.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweeps.hh"
#include "sim/trace.hh"

using namespace pilotrf;

namespace
{

/** "configs/ntv_sweep.json" -> "ntv_sweep" (config-variant label). */
std::string
configLabelFromPath(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base.empty() ? "config" : base;
}

sim::SimConfig
loadConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream text;
    text << is.rdbuf();
    try {
        return sim::SimConfig::fromJsonText(text.str());
    } catch (const std::exception &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
}

std::uint64_t
parseTraceCatList(const std::string &list)
{
    std::uint64_t mask = 0;
    std::string item;
    const auto flush = [&] {
        if (item.empty())
            return;
        const auto cat = sim::parseTraceCat(item);
        if (!cat)
            fatal("--trace-cats: unknown category '%s'", item.c_str());
        mask |= std::uint64_t(1) << unsigned(*cat);
        item.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            item += char(std::tolower(static_cast<unsigned char>(c)));
    }
    flush();
    return mask;
}

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --sweep NAME    named sweep to run (default: smoke)\n"
        "  --threads N     worker threads (default: all cores; 1 = serial)\n"
        "  --workers N     per-job Gpu engine workers (0 = config knob;\n"
        "                  >1 shards SMs; outputs identical at any N)\n"
        "  --seeds N       replicate each job under N deterministic seeds\n"
        "  --base-seed S   base seed mixed into every derived job seed\n"
        "  --out FILE      write the JSON report to FILE (default: stdout)\n"
        "  --no-timing     omit wall-clock/thread/provenance fields\n"
        "                  (stable bytes)\n"
        "  --no-kernels    omit the per-kernel arrays\n"
        "  --checkpoint F  stream completed jobs to JSONL manifest F\n"
        "  --resume        skip jobs already ok in the manifest and merge\n"
        "                  their cached results (requires --checkpoint)\n"
        "  --timeout SECS  per-job wall-clock timeout (0 = none)\n"
        "  --retries N     retry a throwing job up to N times\n"
        "  --backoff MS    first retry delay, doubling (default 100)\n"
        "  --config FILE   run the sweep's workloads under the SimConfig\n"
        "                  in JSON FILE (replaces the config axis)\n"
        "  --dump-config   print the effective SimConfig as JSON and exit\n"
        "  --timeseries N  sample per-SM counters every N cycles into\n"
        "                  per-job time-series JSON files\n"
        "  --timeseries-out FILE  time-series path stem\n"
        "                  (default timeseries.json)\n"
        "  --chrome-trace FILE    write per-job Chrome trace-event JSON\n"
        "                  (chrome://tracing / Perfetto)\n"
        "  --trace-jsonl FILE     write per-job JSONL event streams\n"
        "  --trace-cats LIST      restrict the JSONL text channel to the\n"
        "                  given categories (e.g. warp,cta)\n"
        "  --list          list the named sweeps and exit\n",
        argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string sweepName = "smoke";
    std::string outPath;
    std::string configPath;
    bool dumpConfig = false;
    unsigned threads = 0;
    unsigned seeds = 1;
    std::uint64_t baseSeed = 0;
    exp::ReportOptions opts;
    exp::RunnerOptions ropts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--sweep")
            sweepName = value();
        else if (arg == "--threads")
            threads = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--workers")
            ropts.numWorkers = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--seeds")
            seeds = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--base-seed")
            baseSeed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--out")
            outPath = value();
        else if (arg == "--no-timing")
            opts.includeTiming = false;
        else if (arg == "--no-kernels")
            opts.includeKernels = false;
        else if (arg == "--checkpoint")
            ropts.checkpointPath = value();
        else if (arg == "--resume")
            ropts.resume = true;
        else if (arg == "--timeout")
            ropts.timeoutSeconds = std::strtod(value(), nullptr);
        else if (arg == "--retries")
            ropts.maxRetries = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--backoff")
            ropts.retryBackoffMs =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--config")
            configPath = value();
        else if (arg == "--dump-config")
            dumpConfig = true;
        else if (arg == "--timeseries")
            ropts.obs.timeseriesPeriod =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--timeseries-out")
            ropts.obs.timeseriesPath = value();
        else if (arg == "--chrome-trace")
            ropts.obs.chromeTracePath = value();
        else if (arg == "--trace-jsonl")
            ropts.obs.jsonlTracePath = value();
        else if (arg == "--trace-cats")
            ropts.obs.traceCategoryMask = parseTraceCatList(value());
        else if (arg == "--list") {
            for (const auto &n : exp::sweepNames())
                std::printf("%-20s %s\n", n.c_str(),
                            exp::sweepDescription(n).c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (seeds == 0)
        fatal("--seeds must be >= 1");
    if (ropts.resume && ropts.checkpointPath.empty())
        fatal("--resume requires --checkpoint");

    if (dumpConfig) {
        const sim::SimConfig cfg = configPath.empty()
                                       ? sim::SimConfig{}
                                       : loadConfigFile(configPath);
        std::fputs(cfg.jsonText().c_str(), stdout);
        return 0;
    }

    exp::Sweep sweep = exp::namedSweep(sweepName);
    if (!configPath.empty()) {
        sweep.configs = {{configLabelFromPath(configPath),
                          loadConfigFile(configPath)}};
    }
    sweep.baseSeed = baseSeed;
    sweep.seeds.clear();
    for (unsigned s = 0; s < seeds; ++s)
        sweep.seeds.push_back(s);

    const exp::ExperimentRunner runner(threads, ropts);
    std::fprintf(stderr,
                 "pilotrf_run: sweep '%s', %zu jobs (%zu workloads x %zu "
                 "configs x %u seeds), %u threads\n",
                 sweep.name.c_str(), sweep.jobCount(),
                 sweep.workloads.size(), sweep.configs.size(), seeds,
                 runner.threads());

    const exp::SweepResult res = runner.run(sweep);

    if (outPath.empty()) {
        exp::writeJson(res, std::cout, opts);
    } else {
        std::ofstream os(outPath);
        if (!os)
            fatal("cannot open '%s' for writing", outPath.c_str());
        exp::writeJson(res, os, opts);
    }
    const exp::SweepSummary sum = res.summary();
    std::fprintf(stderr,
                 "pilotrf_run: %zu jobs in %.2f s: %zu ok (%zu resumed), "
                 "%zu failed, %zu timeout (report: %s)\n",
                 res.jobs.size(), res.wallSeconds, sum.ok, sum.resumed,
                 sum.failed, sum.timeout,
                 outPath.empty() ? "<stdout>" : outPath.c_str());
    for (const auto &j : res.jobs)
        if (j.status != exp::JobStatus::Ok)
            std::fprintf(stderr, "pilotrf_run:   %s: %s\n",
                         exp::checkpointKey(j.job).c_str(),
                         j.statusString().c_str());
    return sum.allOk(res.jobs.size()) ? 0 : 3;
}
