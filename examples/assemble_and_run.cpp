/**
 * @file
 * Assemble-and-run: define a kernel in the textual assembly format, parse
 * it, disassemble it back, and execute it on the partitioned-RF GPU —
 * the workflow for experimenting with custom workloads without writing
 * C++.
 */

#include <cstdio>

#include "common/logging.hh"
#include "isa/kernel_text.hh"
#include "sim/gpu.hh"

using namespace pilotrf;

namespace
{
const char *kernelSource = R"(
# A small molecular-dynamics-flavoured kernel: gather neighbours,
# accumulate forces in hot registers r6/r7/r8, occasional boundary fixup.
.kernel md_forces regs=14 threads=128 ctas=360 seed=41
    iadd r0, r1                 # base address
    ld.global.t1 r2, [r0]       # particle position
    loop 10 spread 4 {
        ld.global.t6 r3, [r2]   # scattered neighbour positions
        ffma r6, r3, r7, r6     # force accumulation
        fmul r7, r6, r3
        fadd r8, r6, r7
        if 0.2 {
            fadd r9, r8, r2     # boundary wrap (rare)
        }
    }
    st.global.t1 [r0], r6
    st.global.t1 [r0], r8
)";
} // namespace

int
main()
{
    setQuiet(true);
    const isa::Kernel kernel = isa::parseKernel(kernelSource);

    std::printf("Parsed kernel, disassembly:\n%s\n",
                isa::disassemble(kernel).c_str());

    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;
    sim::Gpu gpu(cfg);
    const auto r = gpu.run(kernel);

    const auto &k0 = r.kernels.front();
    std::printf("ran %llu instructions in %llu cycles\n",
                (unsigned long long)r.totalInstructions,
                (unsigned long long)r.totalCycles);
    std::printf("dynamic top-4 registers:");
    for (RegId reg : k0.topRegisters(4))
        std::printf(" r%u", unsigned(reg));
    std::printf(" (%.1f%% of all accesses)\n", 100 * k0.topNFraction(4));
    std::printf("pilot identified:");
    for (RegId reg : k0.pilotHot)
        std::printf(" r%u", unsigned(reg));
    std::printf("\ncompiler identified:");
    for (RegId reg : k0.staticHot)
        std::printf(" r%u", unsigned(reg));
    const double hi = r.rfStats.get("access.FRF_high");
    const double lo = r.rfStats.get("access.FRF_low");
    const double srf = r.rfStats.get("access.SRF");
    std::printf("\nFRF served %.1f%% of accesses\n",
                100 * (hi + lo) / (hi + lo + srf));
    return 0;
}
