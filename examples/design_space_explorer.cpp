/**
 * @file
 * Design-space exploration with the public API: sweep the FRF size (the
 * number of per-warp registers kept in the fast partition) and report the
 * energy/performance trade-off on a register-heavy workload — the kind of
 * study an architect would run before committing to n = 4.
 */

#include <cstdio>

#include "common/logging.hh"
#include "power/energy_accountant.hh"
#include "rfmodel/array_model.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    const auto &wl = workloads::workload("sgemm");
    power::EnergyAccountant acct;

    // Baseline: monolithic RF at STV.
    sim::SimConfig base;
    base.rfKind = sim::RfKind::MrfStv;
    sim::Gpu baseGpu(base);
    const auto rb = baseGpu.run(wl.kernels);
    const double eBase =
        acct.account(base, rb.rfStats, rb.totalCycles).dynamicPj;

    std::printf("FRF sizing exploration on %s (baseline: MRF@STV)\n\n",
                wl.name.c_str());
    std::printf("%4s %8s %10s %10s %10s %12s\n", "n", "FRF KB",
                "FRF share", "energy", "exec time", "FRF E/access");

    for (unsigned n : {2u, 3u, 4u, 6u, 8u}) {
        sim::SimConfig cfg;
        cfg.rfKind = sim::RfKind::Partitioned;
        cfg.prf.frfRegs = n;
        sim::Gpu gpu(cfg);
        const auto r = gpu.run(wl.kernels);
        const double e =
            acct.account(cfg, r.rfStats, r.totalCycles).dynamicPj;
        const double hi = r.rfStats.get("access.FRF_high");
        const double lo = r.rfStats.get("access.FRF_low");
        const double srf = r.rfStats.get("access.SRF");

        // What would an FRF of this size cost per access? (The energy
        // accountant uses the calibrated 4-register FRF; this column shows
        // the array model's scaling.)
        rfmodel::ArrayConfig frfCfg{n * 64.0 * 128.0};
        frfCfg.backGated = true;
        frfCfg.flavor = rfmodel::CellFlavor::Fast;
        rfmodel::ArrayModel frf(frfCfg);

        std::printf("%4u %8.0f %9.1f%% %10.3f %10.3f %10.2fpJ\n", n,
                    frfCfg.sizeBytes / 1024.0,
                    100 * (hi + lo) / (hi + lo + srf), e / eBase,
                    double(r.totalCycles) / rb.totalCycles,
                    frf.accessEnergyPj());
    }

    std::printf("\nLarger FRFs capture more accesses but cost more per "
                "access and more leakage;\nthe paper's n = 4 (32KB) sits "
                "at the knee for top-4-dominated workloads.\n");
    return 0;
}
