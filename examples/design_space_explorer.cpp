/**
 * @file
 * Design-space exploration with the public API: sweep the FRF size (the
 * number of per-warp registers kept in the fast partition) and report the
 * energy/performance trade-off on a register-heavy workload — the kind of
 * study an architect would run before committing to n = 4.
 *
 * The whole study is one declarative `exp::Sweep`; the runner fans the
 * six configurations out across every available core and hands back
 * results (with energy already accounted) in sweep order.
 */

#include <cstdio>

#include "common/logging.hh"
#include "exp/experiment.hh"
#include "rfmodel/array_model.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);

    const unsigned frfSizes[] = {2, 3, 4, 6, 8};

    exp::Sweep sweep;
    sweep.name = "frf_sizing";
    sweep.workloads = {"sgemm"};
    {
        sim::SimConfig base;
        base.rfKind = sim::RfKind::MrfStv;
        sweep.configs.push_back({"mrf_stv", base});
        for (const unsigned n : frfSizes) {
            sim::SimConfig cfg;
            cfg.rfKind = sim::RfKind::Partitioned;
            cfg.prf.frfRegs = n;
            sweep.configs.push_back({"frf" + std::to_string(n), cfg});
        }
    }

    const auto res = exp::ExperimentRunner().run(sweep);
    const auto &base = res.at(0, 0);
    const double eBase = base.energy.dynamicPj;

    std::printf("FRF sizing exploration on %s (baseline: MRF@STV)\n\n",
                base.job.workload.c_str());
    std::printf("%4s %8s %10s %10s %10s %12s\n", "n", "FRF KB",
                "FRF share", "energy", "exec time", "FRF E/access");

    for (std::size_t i = 0; i < std::size(frfSizes); ++i) {
        const unsigned n = frfSizes[i];
        const auto &r = res.at(0, i + 1);
        const double hi = r.run.rfStats.get("access.FRF_high");
        const double lo = r.run.rfStats.get("access.FRF_low");
        const double srf = r.run.rfStats.get("access.SRF");

        // What would an FRF of this size cost per access? (The energy
        // accountant uses the calibrated 4-register FRF; this column shows
        // the array model's scaling.)
        rfmodel::ArrayConfig frfCfg{n * 64.0 * 128.0};
        frfCfg.backGated = true;
        frfCfg.flavor = rfmodel::CellFlavor::Fast;
        rfmodel::ArrayModel frf(frfCfg);

        std::printf("%4u %8.0f %9.1f%% %10.3f %10.3f %10.2fpJ\n", n,
                    frfCfg.sizeBytes / 1024.0,
                    100 * (hi + lo) / (hi + lo + srf),
                    r.energy.dynamicPj / eBase,
                    double(r.run.totalCycles) / base.run.totalCycles,
                    frf.accessEnergyPj());
    }

    std::printf("\nLarger FRFs capture more accesses but cost more per "
                "access and more leakage;\nthe paper's n = 4 (32KB) sits "
                "at the knee for top-4-dominated workloads.\n");
    return 0;
}
