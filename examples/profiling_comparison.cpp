/**
 * @file
 * Compare the four FRF-placement policies on one Category-2 workload
 * (where compiler profiling mispredicts): static first-n, compiler,
 * pure pilot, and the proposed hybrid — reporting FRF coverage, energy
 * and runtime for each, plus the RFC alternative for context.
 */

#include <cstdio>

#include "common/logging.hh"
#include "power/energy_accountant.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);
    const auto &wl = workloads::workload("mri-q");
    power::EnergyAccountant acct;

    sim::SimConfig base;
    base.rfKind = sim::RfKind::MrfStv;
    sim::Gpu baseGpu(base);
    const auto rb = baseGpu.run(wl.view());
    const double eBase =
        acct.account(base, rb.rfStats, rb.totalCycles).dynamicPj;

    std::printf("Placement-policy comparison on %s (Category %u)\n\n",
                wl.name.c_str(), wl.category);
    std::printf("%-12s %10s %10s %10s\n", "policy", "FRF share", "energy",
                "exec time");

    using regfile::Profiling;
    const std::pair<const char *, Profiling> policies[] = {
        {"static", Profiling::Static},
        {"compiler", Profiling::Compiler},
        {"pilot", Profiling::Pilot},
        {"hybrid", Profiling::Hybrid},
    };
    for (const auto &[name, prof] : policies) {
        sim::SimConfig cfg;
        cfg.rfKind = sim::RfKind::Partitioned;
        cfg.prf.profiling = prof;
        sim::Gpu gpu(cfg);
        const auto r = gpu.run(wl.view());
        const double hi = r.rfStats.get("access.FRF_high");
        const double lo = r.rfStats.get("access.FRF_low");
        const double srf = r.rfStats.get("access.SRF");
        const double e =
            acct.account(cfg, r.rfStats, r.totalCycles).dynamicPj;
        std::printf("%-12s %9.1f%% %10.3f %10.3f\n", name,
                    100 * (hi + lo) / (hi + lo + srf), e / eBase,
                    double(r.totalCycles) / rb.totalCycles);
    }

    // The hierarchical RFC alternative under its two-level scheduler.
    sim::SimConfig rfcCfg;
    rfcCfg.rfKind = sim::RfKind::Rfc;
    rfcCfg.policy = sim::SchedulerPolicy::TwoLevel;
    rfcCfg.tlActiveWarps = 32;
    sim::Gpu rfcGpu(rfcCfg);
    const auto rr = rfcGpu.run(wl.view());
    const double eRfc =
        acct.account(rfcCfg, rr.rfStats, rr.totalCycles).dynamicPj;
    std::printf("%-12s %9.1f%% %10.3f %10.3f   (hit rate %.0f%%)\n",
                "RFC+TL", 0.0, eRfc / eBase,
                double(rr.totalCycles) / rb.totalCycles,
                100 * rr.rfStats.get("rfc.readHit") /
                    (rr.rfStats.get("rfc.readHit") +
                     rr.rfStats.get("rfc.readMiss")));

    std::printf(
        "\nOn Category-2 code the compiler's static counts chase "
        "rarely-executed decoy registers,\nso little reaches the FRF and "
        "execution slows; the pilot fixes the placement at runtime.\n"
        "Note the role of profiling: it protects PERFORMANCE (1-cycle FRF "
        "hits). The energy saving\ncomes from the partitioning itself -- "
        "both partitions are far cheaper than the 14.9pJ MRF.\n");
    return 0;
}
