/**
 * @file
 * A step-by-step reproduction of the paper's Figures 6 and 7: how the
 * swapping table maps architected registers between the FRF and SRF as
 * the hybrid profiling pipeline progresses — identity at launch, the
 * compiler's guess while the pilot runs, and the pilot's answer after it
 * retires.
 */

#include <cstdio>

#include "regfile/swap_table.hh"

using namespace pilotrf;
using regfile::SwapTable;

namespace
{
void
dumpTable(const SwapTable &t, const char *stage)
{
    std::printf("--- %s ---\n", stage);
    std::printf("  entries:");
    bool any = false;
    for (const auto &e : t.entries()) {
        if (!e.valid)
            continue;
        std::printf("  [r%u -> r%u]", unsigned(e.archReg),
                    unsigned(e.mappedReg));
        any = true;
    }
    if (!any)
        std::printf("  (all invalid: identity mapping)");
    std::printf("\n  FRF residents:");
    for (RegId r = 0; r < 16; ++r)
        if (t.inFrf(r))
            std::printf(" r%u", unsigned(r));
    std::printf("\n");
}
} // namespace

int
main()
{
    std::printf("Swapping table walkthrough (Figures 6 and 7)\n");
    std::printf("FRF holds n = 4 registers per warp; table has 2n = 8 "
                "entries of 13 bits (104 bits total).\n\n");

    SwapTable table(4);

    // Fig. 6a / Fig. 7(left): before the kernel runs, the first four
    // architected registers sit in the FRF.
    dumpTable(table, "kernel launch: identity (Fig. 6a)");

    // Fig. 6b / Fig. 7(middle): the compiler-based profile says r4..r7
    // are hot, so they swap into the FRF while r0..r3 take their SRF
    // homes.
    table.program({4, 5, 6, 7});
    dumpTable(table, "compiler profile applied: r4-r7 hot (Fig. 6b)");

    // Access paths: looking up r0 now CAM-hits and redirects to r4's old
    // home in the SRF; looking up r4 redirects into FRF slot 0.
    std::printf("  lookup(r4) = r%u (FRF), lookup(r0) = r%u (SRF)\n",
                unsigned(table.lookup(4)), unsigned(table.lookup(0)));

    // Fig. 6c / Fig. 7(right): the pilot warp retires and reports r8..r11
    // as the true hot set. The table resets to the original mapping and
    // then applies the new one.
    table.program({8, 9, 10, 11});
    dumpTable(table, "pilot profile applied: r8-r11 hot (Fig. 6c)");
    std::printf("  lookup(r8) = r%u (FRF), lookup(r0) = r%u (SRF), "
                "lookup(r4) = r%u (untouched)\n",
                unsigned(table.lookup(8)), unsigned(table.lookup(0)),
                unsigned(table.lookup(4)));

    std::printf("\ntable was reprogrammed %llu times and served %llu "
                "lookups\n",
                (unsigned long long)table.reprograms(),
                (unsigned long long)table.lookups());
    return 0;
}
