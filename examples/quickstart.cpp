/**
 * @file
 * Quickstart: build a small kernel with the DSL, run it on the simulated
 * Kepler-class GPU with the partitioned register file, and print the
 * headline numbers — where the accesses went, how much energy the RF
 * spent, and the pilot warp's findings.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"
#include "power/energy_accountant.hh"
#include "sim/gpu.hh"

using namespace pilotrf;

int
main()
{
    setQuiet(true);

    // A toy reduction kernel: 13 registers per thread, 256-thread CTAs,
    // 480 CTAs. Registers r4..r6 do the hot work inside the loop.
    isa::KernelBuilder b("quickstart", 13, 256, 480);
    b.op(isa::Opcode::IAdd, 0, {1});            // thread id / address
    b.load(4, 0, isa::MemSpace::Global, 1);     // stream in
    b.beginLoop(12);                            // accumulate
    b.op(isa::Opcode::FFma, 5, {4, 6, 5});
    b.op(isa::Opcode::FMul, 6, {5, 4});
    b.endLoop();
    b.store(0, 5, isa::MemSpace::Global, 1);    // result out
    const isa::Kernel kernel = b.build();

    // The proposed design: partitioned RF, hybrid profiling, adaptive FRF.
    sim::SimConfig cfg;
    cfg.rfKind = sim::RfKind::Partitioned;

    sim::Gpu gpu(cfg);
    const sim::RunResult r = gpu.run(kernel);

    std::printf("kernel '%s': %llu cycles, %llu instructions (IPC %.2f)\n",
                kernel.name().c_str(),
                (unsigned long long)r.totalCycles,
                (unsigned long long)r.totalInstructions,
                double(r.totalInstructions) / double(r.totalCycles));

    const double hi = r.rfStats.get("access.FRF_high");
    const double lo = r.rfStats.get("access.FRF_low");
    const double srf = r.rfStats.get("access.SRF");
    std::printf("RF accesses: %.0f FRF_high, %.0f FRF_low, %.0f SRF "
                "(%.1f%% served by the fast partition)\n",
                hi, lo, srf, 100 * (hi + lo) / (hi + lo + srf));

    const auto &k0 = r.kernels.front();
    std::printf("pilot warp finished at cycle %.0f and identified hot "
                "registers:",
                k0.pilotFinishCycle);
    for (RegId reg : k0.pilotHot)
        std::printf(" r%u", unsigned(reg));
    std::printf("\n");

    power::EnergyAccountant acct;
    const auto e = acct.account(cfg, r.rfStats, r.totalCycles);
    std::printf("RF dynamic energy: %.2f nJ; leakage power %.1f mW\n",
                e.dynamicPj * 1e-3, e.leakagePowerMw);

    // Compare against the power-aggressive monolithic baseline.
    sim::SimConfig baseCfg;
    baseCfg.rfKind = sim::RfKind::MrfStv;
    sim::Gpu baseline(baseCfg);
    const auto rb = baseline.run(kernel);
    const auto eb = acct.account(baseCfg, rb.rfStats, rb.totalCycles);
    std::printf("vs MRF@STV baseline: %.1f%% dynamic energy saved, "
                "%+.2f%% execution time\n",
                100 * (1 - e.dynamicPj / eb.dynamicPj),
                100.0 * r.totalCycles / rb.totalCycles - 100.0);
    return 0;
}
