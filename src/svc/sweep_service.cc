#include "svc/sweep_service.hh"

#include <atomic>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/version.hh"
#include "exp/job_key.hh"
#include "exp/report.hh"

namespace pilotrf::svc
{

namespace
{

/** One compact status line: {"type":"job",...} (no newline). */
std::string
jobStatusLine(const exp::Job &job, const std::string &key,
              const char *source, const exp::JobResult &r)
{
    std::ostringstream os;
    os << "{\"type\":\"job\",\"key\":";
    jsonString(os, key);
    os << ",\"workload\":";
    jsonString(os, job.workload);
    os << ",\"config\":";
    jsonString(os, job.configLabel);
    os << ",\"seed\":" << job.seed << ",\"source\":\"" << source
       << "\",\"status\":";
    jsonString(os, r.statusString());
    os << "}";
    return os.str();
}

} // namespace

SweepService::SweepService(ServiceOptions options)
    : opts(std::move(options)),
      resultStore(opts.storePath,
                  opts.fingerprint.empty() ? versionString()
                                           : opts.fingerprint,
                  opts.storeMaxEntries)
{
    if (opts.threads == 0)
        opts.threads = std::max(1u, std::thread::hardware_concurrency());
    // The store is the persistence layer; a per-request checkpoint
    // manifest would race between concurrent requests.
    opts.runner.checkpointPath.clear();
    opts.runner.resume = false;
}

exp::SweepResult
SweepService::run(const exp::SweepRequest &request, const StatusFn &status,
                  RequestStats *stats)
{
    const exp::Sweep sweep = request.toSweep();
    const std::vector<exp::Job> jobs = exp::ExperimentRunner::expand(sweep);

    exp::RunnerOptions ropts = opts.runner;
    ropts.numWorkers = request.workers;
    if (!request.schedule.empty())
        ropts.schedule = sim::parseShardSchedule(request.schedule);
    const exp::ExperimentRunner runner(1, ropts);

    exp::SweepResult out;
    out.sweep = sweep.name;
    out.threads = opts.threads;
    out.workloadCount = sweep.workloads.size();
    out.configCount = sweep.configs.size();
    out.seedCount = sweep.seeds.size();
    out.jobs.resize(jobs.size());

    RequestStats rs;
    rs.jobs = jobs.size();
    std::mutex rsMu;

    // Serializes this request's status lines. Per-request, not
    // service-wide: the callback is a blocking socket write, and a
    // client that stops draining its socket must only stall its own
    // request's stream, never another connection's.
    std::mutex statusMu;
    const auto emit = [&](const std::string &line) {
        if (!status)
            return;
        std::lock_guard<std::mutex> lock(statusMu);
        status(line);
    };

    // One cell. Classification and execution must see a consistent
    // (store, inflight) pair: a finishing request puts to the store
    // *before* retiring its inflight cell, so no racer can miss both.
    // Only classification happens under inflightMu — rebuild and emit
    // (a potentially blocking client write) run outside it, so a slow
    // client cannot stall the whole daemon's classification.
    const auto serveOne = [&](const exp::Job &job) {
        const std::string key = exp::checkpointKey(job);
        std::shared_ptr<Cell> cell;
        bool owner = false;
        std::optional<exp::CheckpointEntry> cached;
        {
            std::lock_guard<std::mutex> lock(inflightMu);
            const auto it = inflight.find(key);
            if (it != inflight.end()) {
                cell = it->second; // join the in-flight computation
            } else if ((cached = resultStore.get(key))) {
                // Served below, outside the lock.
            } else {
                cell = std::make_shared<Cell>();
                inflight[key] = cell;
                owner = true;
            }
        }

        if (cached) {
            exp::JobResult res = rebuildJobResult(*cached, job, accountant);
            emit(jobStatusLine(job, key, "cache", res));
            {
                std::lock_guard<std::mutex> slock(rsMu);
                ++rs.cacheHits;
            }
            out.jobs[job.index] = std::move(res);
            return;
        }

        if (owner) {
            exp::JobResult res = runner.runJobGuarded(job);
            resultStore.put(key, res); // before retiring the cell
            {
                std::lock_guard<std::mutex> lock(inflightMu);
                inflight.erase(key);
            }
            {
                std::lock_guard<std::mutex> lock(cell->mu);
                cell->result = res;
                cell->done = true;
            }
            cell->cv.notify_all();
            emit(jobStatusLine(job, key, "run", res));
            {
                std::lock_guard<std::mutex> slock(rsMu);
                ++rs.simulated;
            }
            out.jobs[job.index] = std::move(res);
        } else {
            std::unique_lock<std::mutex> lock(cell->mu);
            cell->cv.wait(lock, [&] { return cell->done; });
            exp::JobResult res = cell->result;
            lock.unlock();
            // The cell was computed for an identical JobKey, possibly
            // under a different label/index: re-anchor presentation
            // fields to *this* request's job.
            res.job = job;
            emit(jobStatusLine(job, key, "inflight", res));
            {
                std::lock_guard<std::mutex> slock(rsMu);
                ++rs.joined;
            }
            out.jobs[job.index] = std::move(res);
        }
    };

    const unsigned workers =
        unsigned(std::min<std::size_t>(opts.threads, jobs.size()));
    if (workers <= 1) {
        for (const auto &job : jobs)
            serveOne(job);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t n =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (n >= jobs.size())
                        return;
                    serveOne(jobs[n]);
                }
            });
        }
        pool.clear(); // join
    }
    runner.reapStrays();

    const exp::SweepSummary sum = out.summary();
    rs.ok = sum.ok;
    rs.failed = sum.failed;
    rs.timeout = sum.timeout;
    if (stats)
        *stats = rs;
    if (status) {
        std::ostringstream os;
        os << "{\"type\":\"summary\",\"sweep\":";
        jsonString(os, sweep.name);
        os << ",\"jobs\":" << rs.jobs << ",\"cacheHits\":" << rs.cacheHits
           << ",\"simulated\":" << rs.simulated
           << ",\"joined\":" << rs.joined << ",\"ok\":" << rs.ok
           << ",\"failed\":" << rs.failed << ",\"timeout\":" << rs.timeout
           << ",\"storeSize\":" << resultStore.size() << ",\"fingerprint\":";
        jsonString(os, resultStore.fingerprint());
        os << "}";
        emit(os.str());
    }
    return out;
}

std::string
SweepService::report(const exp::SweepRequest &request,
                     const StatusFn &status, RequestStats *stats)
{
    const exp::SweepResult res = run(request, status, stats);
    return exp::toJsonString(res, request.reportOptions());
}

} // namespace pilotrf::svc
