/**
 * @file
 * The wire protocol of the sweep service: SweepRequests over a Unix
 * domain stream socket, status lines and the report back.
 *
 * One connection serves one request:
 *
 *   client -> server:  "PILOTRF-SVC1 <nbytes>\n" + <nbytes of request JSON>
 *   server -> client:  zero or more status lines, each a single-line
 *                      JSON document terminated by '\n' (the
 *                      SweepService status stream: per-job source/
 *                      status events, then one summary line);
 *                      then exactly one of
 *                        "#report <nbytes>\n" + <nbytes of JSON report>
 *                        "#error <message>\n"
 *                      and the server closes the connection.
 *
 * Status lines start with '{' and the terminator lines with '#', so a
 * client needs no lookahead. The framing is deliberately dumb — a
 * length-prefixed request dodges "is the JSON document complete yet"
 * parsing, and the report (a multi-line pretty document) streams as an
 * opaque byte range, preserving the byte-identity guarantees the rest
 * of the repository is built on.
 */

#ifndef PILOTRF_SVC_NET_HH
#define PILOTRF_SVC_NET_HH

#include <iosfwd>
#include <string>

#include "svc/sweep_service.hh"

namespace pilotrf::svc
{

/**
 * Serve requests on a Unix socket at `sockPath` (unlinked and re-bound
 * on entry; stale sockets from a previous daemon never block startup).
 * Each connection is handled on its own thread, so concurrent clients
 * exercise the service's single-flight dedup.
 *
 * @param maxConns return after accepting this many connections
 *        (deterministic teardown for tests/CI); 0 = serve forever.
 * @return 0 on clean exit; nonzero errno-style code on socket failure.
 */
int serve(const std::string &sockPath, SweepService &service,
          unsigned maxConns = 0);

/**
 * Submit one request to a serving daemon and demultiplex the reply:
 * report bytes to `reportOut`, status lines (newline-terminated) to
 * `statusOut`.
 *
 * @return 0 when a report was received, 3 when the daemon replied
 *         "#error", nonzero errno-style code on connect/protocol
 *         failure.
 */
int runClient(const std::string &sockPath, const std::string &requestJson,
              std::ostream &reportOut, std::ostream &statusOut);

} // namespace pilotrf::svc

#endif // PILOTRF_SVC_NET_HH
