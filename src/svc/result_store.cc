#include "svc/result_store.hh"

#include "common/logging.hh"

namespace pilotrf::svc
{

ResultStore::ResultStore(std::string path_, std::string fingerprint_,
                         std::size_t maxEntries_)
    : path(std::move(path_)), fp(std::move(fingerprint_)),
      maxEntries(maxEntries_)
{
    load();
}

void
ResultStore::load()
{
    std::lock_guard<std::mutex> lock(mu);
    bool dirty = false;
    if (!path.empty()) {
        std::ifstream in(path);
        std::string line;
        std::size_t lineNo = 0;
        while (in && std::getline(in, line)) {
            ++lineNo;
            if (line.empty())
                continue;
            std::string err;
            auto e = exp::parseCheckpointLine(line, &err);
            if (!e || e->status != exp::JobStatus::Ok ||
                e->fingerprint != fp) {
                // Stale fingerprint, malformed, or a non-ok fragment
                // that should never have been cached: drop it. The
                // fingerprint case is the versioned invalidation — a
                // simulator whose stats can differ must not serve
                // entries an older one computed.
                ++stats.invalidated;
                dirty = true;
                continue;
            }
            const auto it = entries.find(e->key);
            if (it != entries.end()) {
                // Duplicate key (append after a crash-interrupted
                // compaction): last line wins, like the manifest.
                lru.erase(it->second.lruPos);
                entries.erase(it);
                ++stats.invalidated;
                dirty = true;
            }
            const std::string key = e->key;
            const auto lruPos = lru.insert(lru.end(), key);
            entries[key] = Slot{std::move(*e), line, lruPos};
        }
    }
    if (maxEntries && entries.size() > maxEntries) {
        dirty = true;
        while (entries.size() > maxEntries) {
            const std::string victim = lru.front();
            lru.pop_front();
            entries.erase(victim);
            ++stats.evictions;
        }
    }
    if (!path.empty()) {
        if (dirty) {
            // Physically remove dropped entries instead of re-skipping
            // them on every open.
            std::ofstream out(path, std::ios::trunc);
            for (const auto &key : lru)
                out << entries.at(key).line << "\n";
        }
        appender.open(path, std::ios::app);
        if (!appender)
            fatal("result store: cannot open '%s' for appending",
                  path.c_str());
    }
}

std::optional<exp::CheckpointEntry>
ResultStore::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        ++stats.misses;
        return std::nullopt;
    }
    ++stats.hits;
    lru.splice(lru.end(), lru, it->second.lruPos); // refresh recency
    return it->second.entry;
}

bool
ResultStore::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.count(key) != 0;
}

void
ResultStore::put(const std::string &key, const exp::JobResult &result)
{
    if (result.status != exp::JobStatus::Ok)
        return;
    // Serialize through the checkpoint-line format and parse it back,
    // so what get() returns now is byte-for-byte what a restarted
    // daemon would read from disk.
    const std::string line = exp::checkpointLine("store", result, fp);
    std::string err;
    auto entry = exp::parseCheckpointLine(line, &err);
    if (!entry)
        panic("result store: unparseable self-written line (%s)",
              err.c_str());

    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it != entries.end()) {
        // Re-put of a cached key (two requests raced past the store
        // check): identical content, just refresh recency.
        lru.splice(lru.end(), lru, it->second.lruPos);
        return;
    }
    const auto lruPos = lru.insert(lru.end(), key);
    entries[key] = Slot{std::move(*entry), line, lruPos};
    ++stats.puts;
    if (appender.is_open()) {
        appender << line << "\n";
        appender.flush();
    }
    if (maxEntries && entries.size() > maxEntries)
        evictLocked();
}

void
ResultStore::evictLocked()
{
    while (entries.size() > maxEntries) {
        const std::string victim = lru.front();
        lru.pop_front();
        entries.erase(victim);
        ++stats.evictions;
        ++deadLines;
    }
    // Evicted entries' lines stay in the file until enough accumulate
    // to be worth a rewrite — compacting on every eviction would make
    // each put() at the size bound O(store) disk I/O under the mutex.
    // Leftover dead lines are harmless across a restart: each is still
    // a valid fingerprint-checked result, and load() re-caps to
    // maxEntries, so resurrection costs only recency fidelity — which
    // the store already defines as "as of the last compaction".
    if (deadLines > entries.size() + 64)
        compactLocked();
}

void
ResultStore::compactLocked()
{
    if (!appender.is_open())
        return;
    appender.close();
    std::ofstream out(path, std::ios::trunc);
    for (const auto &key : lru)
        out << entries.at(key).line << "\n";
    deadLines = 0;
    appender.open(path, std::ios::app);
    if (!appender)
        warn("result store: cannot reopen '%s' after compaction; "
             "further entries will not persist",
             path.c_str());
}

void
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mu);
    compactLocked();
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

StoreCounters
ResultStore::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

} // namespace pilotrf::svc
