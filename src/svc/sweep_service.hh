/**
 * @file
 * The sweep service: design-space exploration as a long-lived,
 * memoizing facility instead of a batch process.
 *
 * A `SweepService` accepts `exp::SweepRequest`s (the same validated
 * schema the CLI lowers its flags into), expands them to jobs, and
 * serves each cell from one of three sources:
 *
 *  - **cache** — the content-addressed ResultStore already holds the
 *    cell (keyed by `exp::JobKey` + simulator fingerprint): served
 *    instantly, byte-identical (timing aside) to a fresh run;
 *  - **inflight** — another concurrent request is already computing the
 *    identical cell: this request joins it (single-flight — a cell is
 *    never simulated twice, no matter how many clients race);
 *  - **run** — a genuine miss, executed on `ExperimentRunner`'s
 *    fault-tolerant per-job machinery (watchdog, retries) and cached.
 *
 * Requests are assembled in job-submission order from per-cell results,
 * so a request's report is byte-identical to a cold batch run of the
 * same sweep (with timing fields off), whatever mix of sources served
 * it — the soak test asserts exactly that from 8 hammering clients.
 */

#ifndef PILOTRF_SVC_SWEEP_SERVICE_HH
#define PILOTRF_SVC_SWEEP_SERVICE_HH

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exp/sweep_request.hh"
#include "power/energy_accountant.hh"
#include "svc/result_store.hh"

namespace pilotrf::svc
{

struct ServiceOptions
{
    /** Backing file of the ResultStore; "" = memory-only (cells still
     *  dedupe and memoize for the daemon's lifetime). */
    std::string storePath;

    /** ResultStore size bound; 0 = unbounded. */
    std::size_t storeMaxEntries = 0;

    /** Worker threads *per request* for cache misses; 0 = all cores. */
    unsigned threads = 0;

    /** Baseline fault-tolerance knobs for miss execution (timeout,
     *  retries, backoff, obs). checkpointPath/resume are ignored — the
     *  ResultStore *is* the service's persistence. numWorkers is
     *  overridden per request by SweepRequest::workers. */
    exp::RunnerOptions runner;

    /** Fingerprint the store validates against; "" = versionString().
     *  Tests inject synthetic values to exercise invalidation. */
    std::string fingerprint;
};

/** How one request's cells were served, plus their outcomes. */
struct RequestStats
{
    std::size_t jobs = 0;
    std::size_t cacheHits = 0; ///< served from the ResultStore
    std::size_t simulated = 0; ///< executed by this request
    std::size_t joined = 0;    ///< waited on another request's execution
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timeout = 0;
};

class SweepService
{
  public:
    /** Per-event status callback: receives complete single-line JSON
     *  documents (no newline). Invocations are serialized; relative
     *  order of concurrent jobs' lines is nondeterministic, but the
     *  summary line is always last. May be empty. */
    using StatusFn = std::function<void(const std::string &line)>;

    explicit SweepService(ServiceOptions options);

    /** Serve one request: every cell from cache/inflight/run as
     *  available. Thread-safe — concurrent calls dedupe against each
     *  other. Throws std::runtime_error on an invalid request (unknown
     *  sweep name reaching toSweep()). */
    exp::SweepResult run(const exp::SweepRequest &request,
                         const StatusFn &status = {},
                         RequestStats *stats = nullptr);

    /** run() rendered with the request's report options. */
    std::string report(const exp::SweepRequest &request,
                       const StatusFn &status = {},
                       RequestStats *stats = nullptr);

    ResultStore &store() { return resultStore; }

  private:
    /** Rendezvous of requests racing on one in-flight cell. */
    struct Cell
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        exp::JobResult result;
    };

    ServiceOptions opts;
    ResultStore resultStore;
    power::EnergyAccountant accountant;

    std::mutex inflightMu;
    std::map<std::string, std::shared_ptr<Cell>> inflight;
};

} // namespace pilotrf::svc

#endif // PILOTRF_SVC_SWEEP_SERVICE_HH
