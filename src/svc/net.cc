#include "svc/net.hh"

#include <cerrno>
#include <cstring>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace pilotrf::svc
{

namespace
{

constexpr const char *kMagic = "PILOTRF-SVC1";

/** write() the whole buffer, retrying on EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= std::size_t(n);
    }
    return true;
}

bool
writeAll(int fd, const std::string &s)
{
    return writeAll(fd, s.data(), s.size());
}

/** Byte-at-a-time reader (the protocol is header-then-blob; the blob
 *  read below is bulk, so this never dominates). */
class FdReader
{
  public:
    explicit FdReader(int fd) : fd(fd) {}

    /** Read up to (and including) '\n'; false on EOF/error. The
     *  newline is stripped from `line`. */
    bool readLine(std::string &line)
    {
        line.clear();
        char c;
        for (;;) {
            const ssize_t n = ::read(fd, &c, 1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            if (c == '\n')
                return true;
            line += c;
            if (line.size() > (std::size_t(1) << 20))
                return false; // runaway header
        }
    }

    /** Read exactly len bytes; false on EOF/error. */
    bool readExact(std::string &out, std::size_t len)
    {
        out.clear();
        out.resize(len);
        std::size_t got = 0;
        while (got < len) {
            const ssize_t n = ::read(fd, out.data() + got, len - got);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            got += std::size_t(n);
        }
        return true;
    }

  private:
    int fd;
};

/** Parse "PILOTRF-SVC1 <nbytes>" -> nbytes; false on malformed. */
bool
parseRequestHeader(const std::string &line, std::size_t &nbytes)
{
    std::istringstream is(line);
    std::string magic;
    if (!(is >> magic >> nbytes) || magic != kMagic)
        return false;
    // An outlandish length is a framing error, not a request.
    return nbytes > 0 && nbytes <= (std::size_t(1) << 24);
}

bool
bindTo(int fd, const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0;
}

bool
connectTo(int fd, const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) == 0;
}

void
sendError(int fd, const std::string &message)
{
    // Keep the terminator line single-line whatever the exception said.
    std::string clean = message;
    for (char &c : clean)
        if (c == '\n' || c == '\r')
            c = ' ';
    writeAll(fd, "#error " + clean + "\n");
}

/** One connection: read the request, stream status, send the report. */
void
handleConnection(int fd, SweepService &service)
{
    FdReader reader(fd);
    std::string header;
    std::size_t nbytes = 0;
    if (!reader.readLine(header) || !parseRequestHeader(header, nbytes)) {
        sendError(fd, "malformed request header (want \"" +
                          std::string(kMagic) + " <nbytes>\")");
        ::close(fd);
        return;
    }
    std::string body;
    if (!reader.readExact(body, nbytes)) {
        sendError(fd, "short request body");
        ::close(fd);
        return;
    }

    try {
        const exp::SweepRequest request =
            exp::SweepRequest::fromJsonText(body);
        // Status lines flow as cells resolve; a dropped client just
        // makes these writes fail silently, and the report write below
        // fails the same way — the daemon never dies with a client.
        const std::string report =
            service.report(request, [fd](const std::string &line) {
                writeAll(fd, line + "\n");
            });
        writeAll(fd, "#report " + std::to_string(report.size()) + "\n");
        writeAll(fd, report);
    } catch (const std::exception &e) {
        sendError(fd, e.what());
    }
    ::close(fd);
}

} // namespace

int
serve(const std::string &sockPath, SweepService &service,
      unsigned maxConns)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errno ? errno : 1;
    ::unlink(sockPath.c_str());
    if (!bindTo(fd, sockPath)) {
        const int err = errno ? errno : 1;
        warn("sweep service: cannot bind '%s': %s", sockPath.c_str(),
             std::strerror(err));
        ::close(fd);
        return err;
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno ? errno : 1;
        ::close(fd);
        return err;
    }
    inform("sweep service: listening on %s", sockPath.c_str());

    std::vector<std::jthread> handlers;
    for (unsigned accepted = 0; maxConns == 0 || accepted < maxConns;
         ++accepted) {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno ? errno : 1;
            ::close(fd);
            return err;
        }
        handlers.emplace_back(
            [conn, &service] { handleConnection(conn, service); });
    }
    handlers.clear(); // join: finish in-flight replies before teardown
    ::close(fd);
    ::unlink(sockPath.c_str());
    return 0;
}

int
runClient(const std::string &sockPath, const std::string &requestJson,
          std::ostream &reportOut, std::ostream &statusOut)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errno ? errno : 1;
    if (!connectTo(fd, sockPath)) {
        const int err = errno ? errno : 1;
        warn("sweep client: cannot connect to '%s': %s", sockPath.c_str(),
             std::strerror(err));
        ::close(fd);
        return err;
    }
    if (!writeAll(fd, std::string(kMagic) + " " +
                          std::to_string(requestJson.size()) + "\n") ||
        !writeAll(fd, requestJson)) {
        ::close(fd);
        return EPIPE;
    }

    FdReader reader(fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.rfind("#report ", 0) == 0) {
            const std::size_t n =
                std::stoull(line.substr(std::strlen("#report ")));
            std::string report;
            if (!reader.readExact(report, n)) {
                ::close(fd);
                return EPROTO;
            }
            reportOut << report;
            ::close(fd);
            return 0;
        }
        if (line.rfind("#error ", 0) == 0) {
            warn("sweep client: daemon error: %s",
                 line.substr(std::strlen("#error ")).c_str());
            ::close(fd);
            return 3;
        }
        statusOut << line << "\n";
    }
    ::close(fd);
    return EPROTO; // connection ended without a terminator line
}

} // namespace pilotrf::svc
