#include "svc/net.hh"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <list>
#include <ostream>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace pilotrf::svc
{

namespace
{

constexpr const char *kMagic = "PILOTRF-SVC1";

/** Send the whole buffer, retrying on EINTR/short writes. MSG_NOSIGNAL
 *  turns a dropped peer into EPIPE instead of SIGPIPE — a flaky client
 *  must never take down the long-lived daemon. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= std::size_t(n);
    }
    return true;
}

bool
writeAll(int fd, const std::string &s)
{
    return writeAll(fd, s.data(), s.size());
}

/** Byte-at-a-time reader (the protocol is header-then-blob; the blob
 *  read below is bulk, so this never dominates). */
class FdReader
{
  public:
    explicit FdReader(int fd) : fd(fd) {}

    /** Read up to (and including) '\n'; false on EOF/error. The
     *  newline is stripped from `line`. */
    bool readLine(std::string &line)
    {
        line.clear();
        char c;
        for (;;) {
            const ssize_t n = ::read(fd, &c, 1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            if (c == '\n')
                return true;
            line += c;
            if (line.size() > (std::size_t(1) << 20))
                return false; // runaway header
        }
    }

    /** Read exactly len bytes; false on EOF/error. */
    bool readExact(std::string &out, std::size_t len)
    {
        out.clear();
        out.resize(len);
        std::size_t got = 0;
        while (got < len) {
            const ssize_t n = ::read(fd, out.data() + got, len - got);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            got += std::size_t(n);
        }
        return true;
    }

  private:
    int fd;
};

/** Parse a decimal byte count, rejecting non-digits and anything past
 *  the framing bound (an outlandish length is a protocol error, not a
 *  reason to attempt a giant allocation). */
bool
parseLength(const std::string &text, std::size_t &nbytes)
{
    if (text.empty())
        return false;
    nbytes = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        nbytes = nbytes * 10 + std::size_t(c - '0');
        if (nbytes > (std::size_t(1) << 24))
            return false;
    }
    return true;
}

/** Parse "PILOTRF-SVC1 <nbytes>" -> nbytes; false on malformed. */
bool
parseRequestHeader(const std::string &line, std::size_t &nbytes)
{
    std::istringstream is(line);
    std::string magic, count;
    if (!(is >> magic >> count) || magic != kMagic)
        return false;
    return parseLength(count, nbytes) && nbytes > 0;
}

bool
bindTo(int fd, const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0;
}

bool
connectTo(int fd, const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) == 0;
}

void
sendError(int fd, const std::string &message)
{
    // Keep the terminator line single-line whatever the exception said.
    std::string clean = message;
    for (char &c : clean)
        if (c == '\n' || c == '\r')
            c = ' ';
    writeAll(fd, "#error " + clean + "\n");
}

/** One connection: read the request, stream status, send the report. */
void
handleConnection(int fd, SweepService &service)
{
    FdReader reader(fd);
    std::string header;
    std::size_t nbytes = 0;
    if (!reader.readLine(header) || !parseRequestHeader(header, nbytes)) {
        sendError(fd, "malformed request header (want \"" +
                          std::string(kMagic) + " <nbytes>\")");
        ::close(fd);
        return;
    }
    std::string body;
    if (!reader.readExact(body, nbytes)) {
        sendError(fd, "short request body");
        ::close(fd);
        return;
    }

    try {
        const exp::SweepRequest request =
            exp::SweepRequest::fromJsonText(body);
        // Status lines flow as cells resolve; a dropped client just
        // makes these writes fail silently, and the report write below
        // fails the same way — the daemon never dies with a client.
        const std::string report =
            service.report(request, [fd](const std::string &line) {
                writeAll(fd, line + "\n");
            });
        writeAll(fd, "#report " + std::to_string(report.size()) + "\n");
        writeAll(fd, report);
    } catch (const std::exception &e) {
        sendError(fd, e.what());
    }
    ::close(fd);
}

} // namespace

int
serve(const std::string &sockPath, SweepService &service,
      unsigned maxConns)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errno ? errno : 1;
    ::unlink(sockPath.c_str());
    if (!bindTo(fd, sockPath)) {
        const int err = errno ? errno : 1;
        warn("sweep service: cannot bind '%s': %s", sockPath.c_str(),
             std::strerror(err));
        ::close(fd);
        return err;
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno ? errno : 1;
        ::close(fd);
        return err;
    }
    inform("sweep service: listening on %s", sockPath.c_str());

    // Handlers park in a list so finished ones can be reaped as the
    // daemon accepts more — a serve-forever process must not accumulate
    // one joinable thread per connection it ever served.
    struct Handler
    {
        std::atomic<bool> done{false};
        std::jthread thread;
    };
    std::list<Handler> handlers;
    for (unsigned accepted = 0; maxConns == 0 || accepted < maxConns;
         ++accepted) {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno ? errno : 1;
            ::close(fd);
            return err;
        }
        handlers.remove_if( // join (instant: they already finished)
            [](const Handler &h) { return h.done.load(); });
        Handler &h = handlers.emplace_back();
        h.thread = std::jthread([conn, &service, &h] {
            handleConnection(conn, service);
            h.done.store(true);
        });
    }
    handlers.clear(); // join: finish in-flight replies before teardown
    ::close(fd);
    ::unlink(sockPath.c_str());
    return 0;
}

int
runClient(const std::string &sockPath, const std::string &requestJson,
          std::ostream &reportOut, std::ostream &statusOut)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errno ? errno : 1;
    if (!connectTo(fd, sockPath)) {
        const int err = errno ? errno : 1;
        warn("sweep client: cannot connect to '%s': %s", sockPath.c_str(),
             std::strerror(err));
        ::close(fd);
        return err;
    }
    if (!writeAll(fd, std::string(kMagic) + " " +
                          std::to_string(requestJson.size()) + "\n") ||
        !writeAll(fd, requestJson)) {
        ::close(fd);
        return EPIPE;
    }

    FdReader reader(fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.rfind("#report ", 0) == 0) {
            std::size_t n = 0;
            if (!parseLength(line.substr(std::strlen("#report ")), n)) {
                warn("sweep client: malformed report terminator '%s'",
                     line.c_str());
                ::close(fd);
                return EPROTO;
            }
            std::string report;
            if (!reader.readExact(report, n)) {
                ::close(fd);
                return EPROTO;
            }
            reportOut << report;
            ::close(fd);
            return 0;
        }
        if (line.rfind("#error ", 0) == 0) {
            warn("sweep client: daemon error: %s",
                 line.substr(std::strlen("#error ")).c_str());
            ::close(fd);
            return 3;
        }
        statusOut << line << "\n";
    }
    ::close(fd);
    return EPROTO; // connection ended without a terminator line
}

} // namespace pilotrf::svc
