/**
 * @file
 * The content-addressed result cache of the sweep service.
 *
 * Keys are `exp::JobKey` strings (workload name + hash of the canonical
 * `SimConfig` JSON + seed); values are the same per-job fragments the
 * checkpoint manifest stores, so a cached cell rebuilds a JobResult
 * byte-identical (timing fields aside) to a fresh run. The store is
 * disk-backed as a JSONL file of checkpoint lines and survives daemon
 * restarts.
 *
 * Versioned invalidation: every line records the simulator fingerprint
 * (`versionString()`) that produced it. A store opened by a simulator
 * with a different fingerprint drops every stale entry and compacts the
 * file — a stat-affecting change (which bumps `kStatSchemaRev`) can
 * never serve pre-change results.
 *
 * Eviction: `maxEntries` bounds the store (0 = unbounded). The store is
 * LRU within a process lifetime — get() refreshes recency — and
 * persists recency as file order at each compaction, so restart
 * recency is "as of the last compaction", which is all a cache needs.
 */

#ifndef PILOTRF_SVC_RESULT_STORE_HH
#define PILOTRF_SVC_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "exp/checkpoint.hh"

namespace pilotrf::svc
{

/** Lifetime counters of one store instance (monitoring / tests). */
struct StoreCounters
{
    std::uint64_t hits = 0;        ///< get() found a live entry
    std::uint64_t misses = 0;      ///< get() found nothing
    std::uint64_t puts = 0;        ///< entries written
    std::uint64_t evictions = 0;   ///< entries dropped by the size bound
    std::uint64_t invalidated = 0; ///< entries dropped on open: stale
                                   ///< fingerprint / malformed / dup
};

class ResultStore
{
  public:
    /**
     * Open (creating if absent) the store at `path`.
     *
     * @param path JSONL file backing the store; "" = memory-only.
     * @param fingerprint the simulator fingerprint entries must match;
     *        normally pilotrf::versionString() (tests inject others).
     * @param maxEntries size bound; 0 = unbounded.
     */
    explicit ResultStore(std::string path,
                         std::string fingerprint,
                         std::size_t maxEntries = 0);

    /** Cached entry for the JobKey string, refreshing its recency;
     *  nullopt on miss. Thread-safe. */
    std::optional<exp::CheckpointEntry> get(const std::string &key);

    /** True if the key is cached, *without* touching recency or the
     *  hit/miss counters (single-flight planning peeks, then commits
     *  with get()). Thread-safe. */
    bool contains(const std::string &key) const;

    /**
     * Cache a finished ok job under its JobKey string, appending to the
     * backing file and evicting least-recently-used entries past the
     * size bound. Non-ok results are not cached (a failure is not a
     * result, and a timeout may be a machine property). Thread-safe.
     */
    void put(const std::string &key, const exp::JobResult &result);

    std::size_t size() const;
    StoreCounters counters() const;
    const std::string &fingerprint() const { return fp; }

    /** Rewrite the backing file to exactly the live entries in recency
     *  order (oldest first). Called automatically on open when stale
     *  entries were dropped, and amortized across evictions once enough
     *  dead lines accumulate. */
    void compact();

  private:
    void load();
    void evictLocked();
    void compactLocked();

    struct Slot
    {
        exp::CheckpointEntry entry;
        std::string line; ///< the serialized form, for compaction
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mu;
    std::string path;
    std::string fp;
    std::size_t maxEntries;
    std::map<std::string, Slot> entries;
    std::list<std::string> lru; ///< keys, least recently used first
    std::ofstream appender;     ///< open only when `path` is non-empty
    std::size_t deadLines = 0;  ///< evicted lines still in the file
    StoreCounters stats;
};

} // namespace pilotrf::svc

#endif // PILOTRF_SVC_RESULT_STORE_HH
