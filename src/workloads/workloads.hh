/**
 * @file
 * The benchmark suite: 17 synthetic kernels modeled on the Rodinia /
 * Parboil / ISPASS workloads of Table I. Each kernel fixes the paper's
 * registers-per-thread and threads-per-CTA, encodes a distinct hot
 * register set tuned to the Fig. 2 access-skew averages, and realizes its
 * category's profiling behaviour (Fig. 4):
 *
 *  - Category 1: static binary counts track the dynamic counts;
 *  - Category 2: the dynamically hot registers live inside high-trip-count
 *    loops while a rarely-executed region inflates the static counts of
 *    cold registers, so compiler profiling mispredicts;
 *  - Category 3: tiny grids where the pilot warp spans most of the kernel
 *    and per-warp uniform branches make the pilot's view unrepresentative.
 */

#ifndef PILOTRF_WORKLOADS_WORKLOADS_HH
#define PILOTRF_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "sim/workload.hh"

namespace pilotrf::workloads
{

struct Workload
{
    std::string name;
    unsigned category; ///< 1..3, per Table I
    std::vector<isa::Kernel> kernels;

    /** The named, non-owning view Gpu::run takes. */
    sim::Workload view() const { return {name, kernels}; }
};

/** All 17 workloads, Table I order. */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; fatal() if unknown. */
const Workload &workload(const std::string &name);

// Individual builders (exposed for unit tests).
Workload makeBfs();
Workload makeBtree();
Workload makeHotspot();
Workload makeNw();
Workload makeStencil();
Workload makeBackprop();
Workload makeSad();
Workload makeSrad();
Workload makeMum();
Workload makeKmeans();
Workload makeLavaMd();
Workload makeMriQ();
Workload makeNn();
Workload makeSgemm();
Workload makeCp();
Workload makeLib();
Workload makeWp();

} // namespace pilotrf::workloads

#endif // PILOTRF_WORKLOADS_WORKLOADS_HH
