/**
 * @file
 * Category-2 workloads: the dynamically hot registers live inside
 * high-trip-count loops while rarely-executed code regions inflate the
 * static occurrence counts of cold registers, so compiler profiling
 * under-performs pilot profiling by more than 10% (Fig. 4).
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace pilotrf::workloads
{

Workload
makeKmeans()
{
    KernelBuilder b("kmeans_k1", 9, 256, 600, 0x3a5);
    prologue(b, {0, 3});
    decoyBlock(b, {1, 2, 3}, 6); // error/boundary handling, rarely run
    b.load(4, 0, MemSpace::Global, 1);
    b.beginLoop(10, 0, false); // distance accumulation over features
    hotCompute(b, {5, 6, 7}, {4, 0}, 5);
    coldTouch(b, {8, 1, 2}, 2);
    b.endLoop();
    b.store(3, 5, MemSpace::Global, 1);
    return {"kmeans", 2, {b.build()}};
}

Workload
makeLavaMd()
{
    KernelBuilder b("lavamd_k1", 6, 128, 1200, 0x1a7a);
    b.op(Opcode::IAdd, 2, {5});
    decoyBlock(b, {0, 1}, 7); // neighbour-box bookkeeping, rarely run
    b.load(5, 2, MemSpace::Global, 1);
    b.beginLoop(12, 0, false); // particle interactions
    b.op(Opcode::FFma, 3, {4, 5, 3});
    b.op(Opcode::FMul, 4, {3, 5});
    b.op(Opcode::FAdd, 3, {3, 4});
    coldTouch(b, {0, 1}, 1);
    b.endLoop();
    b.store(2, 3, MemSpace::Global, 1);
    return {"lavaMD", 2, {b.build()}};
}

Workload
makeMriQ()
{
    KernelBuilder b("mriq_k1", 12, 512, 180, 0x319);
    prologue(b, {0, 1});
    decoyBlock(b, {2, 3, 4}, 5); // setup/edge path, rarely run
    b.load(5, 0, MemSpace::Global, 1);
    b.beginLoop(11, 0, false); // k-space accumulation
    b.op(Opcode::Sin, 6, {5});
    hotCompute(b, {8, 9, 10}, {6, 5}, 4);
    coldTouch(b, {7, 11, 0}, 2);
    b.endLoop();
    b.store(1, 8, MemSpace::Global, 1);
    return {"mri-q", 2, {b.build()}};
}

Workload
makeNn()
{
    KernelBuilder b("nn_k1", 10, 169, 600, 0x22);
    prologue(b, {2, 3});
    decoyBlock(b, {0, 1, 2}, 6); // record parsing, rarely run
    b.load(7, 2, MemSpace::Global, 1);
    b.beginLoop(9, 0, false); // distance over coordinates
    hotCompute(b, {4, 5, 6}, {7, 3}, 5);
    coldTouch(b, {8, 9, 0}, 2);
    b.endLoop();
    b.store(3, 4, MemSpace::Global, 1);
    return {"NN", 2, {b.build()}};
}

Workload
makeSgemm()
{
    // Tuned so a static first-4 allocation (r0..r3) captures ~25% of the
    // accesses while the true top-4 {r9..r12} capture ~55% (Sec. III).
    KernelBuilder b("sgemm_k1", 27, 128, 720, 0x96e);
    prologue(b, {0, 1, 2, 3});
    decoyBlock(b, {20, 21, 22, 23}, 5); // remainder-tile path, rarely run
    b.load(5, 0, MemSpace::Global, 1);
    b.beginLoop(12, 0, false); // k-loop
    b.load(6, 1, MemSpace::Global, 1);
    b.load(7, 2, MemSpace::Shared, 1);
    hotCompute(b, {9, 10, 11, 12}, {5, 6, 7}, 9);
    b.op(Opcode::IAdd, 0, {0, 3}); // address stride updates keep r0..r3
    b.op(Opcode::IAdd, 1, {1, 3}); // at a ~25% share
    b.op(Opcode::IAdd, 2, {2, 3});
    coldTouch(b, {14, 15, 16, 17}, 1);
    b.endLoop();
    b.store(3, 9, MemSpace::Global, 1);
    b.store(3, 10, MemSpace::Global, 1);
    return {"sgemm", 2, {b.build()}};
}

Workload
makeCp()
{
    // Coulombic potential: small grid (pilot spans ~half the kernel,
    // Table I: 47%) with hot set {r1, r9, r10} (Sec. II).
    KernelBuilder b("cp_k1", 12, 128, 40, 0xc9);
    prologue(b, {0, 2});
    decoyBlock(b, {4, 5, 6}, 5);
    b.load(3, 0, MemSpace::Global, 1);
    b.beginLoop(10, 10, false); // atoms, per-warp workload varies
    b.op(Opcode::Rsq, 7, {3});
    hotCompute(b, {10, 1, 9}, {7, 3}, 5);
    b.op(Opcode::FMul, 9, {10, 9});
    coldTouch(b, {8, 11, 0}, 2);
    b.endLoop();
    b.store(2, 1, MemSpace::Global, 1);
    return {"CP", 2, {b.build()}};
}

} // namespace pilotrf::workloads
