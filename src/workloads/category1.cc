/**
 * @file
 * Category-1 workloads (Table I / Fig. 4): static binary occurrence counts
 * agree with the dynamic access distribution, so compiler profiling works
 * about as well as pilot profiling.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace pilotrf::workloads
{

Workload
makeBfs()
{
    // Frontier expansion: memory-bound with scattered neighbour loads and
    // a divergent visited-check. 7 regs, 256 threads/CTA.
    KernelBuilder b("bfs_k1", 7, 256, 600, 0xbf5);
    prologue(b, {0, 4});
    b.load(1, 0, MemSpace::Global, 1); // frontier node (coalesced)
    b.beginLoop(5, 3, true);           // neighbour walk, divergent trips
    b.load(2, 1, MemSpace::Global, 8); // scattered adjacency access
    b.op(Opcode::IAdd, 3, {2, 1});
    b.beginIf(0.4); // unvisited?
    b.op(Opcode::IAdd, 3, {3, 2});
    b.store(0, 3, MemSpace::Global, 8);
    b.endIf();
    b.op(Opcode::IAdd, 1, {1, 3});
    coldTouch(b, {5, 6}, 2);
    b.endLoop();
    b.store(4, 1, MemSpace::Global, 1);
    return {"BFS", 1, {b.build()}};
}

Workload
makeBtree()
{
    // B+tree traversal: pointer chasing with scattered loads.
    KernelBuilder b("btree_k1", 15, 508, 240, 0xb7ee);
    prologue(b, {0, 1, 10});
    b.load(2, 0, MemSpace::Global, 1);
    b.beginLoop(6, 2, false); // levels of the tree
    b.load(3, 2, MemSpace::Global, 12); // node fetch (scattered)
    b.op(Opcode::IAdd, 7, {3, 2});
    b.op(Opcode::SetP, 7, {7, 3});
    b.op(Opcode::IAdd, 2, {7, 3});
    coldTouch(b, {8, 9, 11}, 2);
    b.endLoop();
    b.store(10, 2, MemSpace::Global, 4);
    b.store(10, 7, MemSpace::Global, 4);
    return {"btree", 1, {b.build()}};
}

Workload
makeHotspot()
{
    // 2D thermal stencil: compute-heavy tile iteration with barriers.
    KernelBuilder b("hotspot_k1", 27, 256, 600, 0x407);
    prologue(b, {0, 1, 2, 3});
    b.load(4, 0, MemSpace::Global, 1);
    b.load(5, 1, MemSpace::Global, 1);
    b.beginLoop(8, 0, false); // pyramid iterations
    b.load(10, 2, MemSpace::Shared, 1);
    hotCompute(b, {4, 5, 6}, {10, 11}, 6);
    b.op(Opcode::FMul, 11, {6, 10});
    coldTouch(b, {12, 13, 14, 15}, 2);
    b.barrier();
    b.endLoop();
    b.store(3, 6, MemSpace::Global, 1);
    return {"hotspot", 1, {b.build()}};
}

Workload
makeNw()
{
    // Needleman-Wunsch: tiny 16-thread CTAs, barrier per anti-diagonal.
    KernelBuilder b("nw_k1", 21, 16, 960, 0x0909);
    prologue(b, {0, 2, 3});
    b.beginLoop(10, 0, false); // anti-diagonals
    b.load(5, 0, MemSpace::Shared, 1);
    b.op(Opcode::IAdd, 1, {5, 6});
    b.op(Opcode::IAdd, 6, {1, 5});
    b.op(Opcode::SetP, 1, {6, 1});
    b.store(0, 1, MemSpace::Shared, 1);
    coldTouch(b, {8, 9, 10}, 2);
    b.barrier();
    b.endLoop();
    b.store(3, 6, MemSpace::Global, 2);
    return {"nw", 1, {b.build()}};
}

Workload
makeStencil()
{
    // 3D 7-point stencil: 1024-thread CTAs, coalesced streaming.
    KernelBuilder b("stencil_k1", 15, 1024, 120, 0x57e);
    prologue(b, {0, 1});
    b.load(2, 0, MemSpace::Global, 1);
    b.beginLoop(10, 0, false); // z-sweep
    b.load(5, 1, MemSpace::Global, 1);
    hotCompute(b, {3, 4, 8}, {2, 5}, 5);
    coldTouch(b, {9, 10, 11, 12}, 2);
    b.store(1, 3, MemSpace::Global, 1);
    b.barrier();
    b.endLoop();
    return {"stencil", 1, {b.build()}};
}

Workload
makeBackprop()
{
    // Two kernels with disjoint hot sets (Sec. II): k1 hot {r0,r8,r9} with
    // r0 accessed about 6x r6; k2 hot {r4,r5,r6}.
    KernelBuilder k1("backprop_k1", 13, 256, 480, 0xbac1);
    prologue(k1, {1, 2});
    k1.load(6, 1, MemSpace::Global, 1); // r6: touched once per warp here
    k1.beginLoop(9, 0, false);          // layer fan-in
    k1.op(Opcode::FFma, 0, {8, 9, 0});
    k1.op(Opcode::FMul, 8, {0, 9});
    k1.op(Opcode::FAdd, 0, {0, 8});
    k1.op(Opcode::FAdd, 9, {0, 6});
    coldTouch(k1, {10, 11, 12}, 2);
    k1.endLoop();
    k1.store(2, 0, MemSpace::Global, 1);

    KernelBuilder k2("backprop_k2", 13, 256, 480, 0xbac2);
    prologue(k2, {0, 1});
    k2.load(4, 0, MemSpace::Global, 1);
    k2.beginLoop(8, 0, false); // weight adjustment
    hotCompute(k2, {4, 5, 6}, {2, 3}, 5);
    coldTouch(k2, {7, 8, 9}, 2);
    k2.endLoop();
    k2.store(1, 5, MemSpace::Global, 1);

    return {"backprop", 1, {k1.build(), k2.build()}};
}

Workload
makeSad()
{
    // Sum-of-absolute-differences: 61-thread CTAs, dense compute.
    KernelBuilder b("sad_k1", 29, 61, 960, 0x5ad);
    prologue(b, {0, 1, 20});
    b.load(3, 0, MemSpace::Global, 1);
    b.beginLoop(12, 0, false); // search window
    b.load(10, 1, MemSpace::Global, 2);
    hotCompute(b, {2, 6, 7}, {3, 10}, 6);
    coldTouch(b, {12, 13, 14, 15}, 3);
    b.endLoop();
    b.store(20, 2, MemSpace::Global, 1);
    return {"sad", 1, {b.build()}};
}

Workload
makeSrad()
{
    // Speckle-reducing anisotropic diffusion: divergent boundary handling.
    KernelBuilder b("srad_k1", 12, 256, 600, 0x5bad);
    prologue(b, {0, 3});
    b.load(4, 0, MemSpace::Global, 1);
    b.beginLoop(8, 0, false);
    hotCompute(b, {1, 2, 5}, {4, 6}, 5);
    coldTouch(b, {7, 8, 9, 10}, 2);
    b.beginIf(0.25); // image boundary lanes
    b.op(Opcode::FMul, 6, {1, 4});
    b.endIf();
    b.endLoop();
    b.store(3, 1, MemSpace::Global, 1);
    return {"srad", 1, {b.build()}};
}

Workload
makeMum()
{
    // MUMmer suffix-tree matching: long divergent walks, small grid, so
    // the pilot spans a large share of the kernel (Table I: 37%).
    KernelBuilder b("mum_k1", 15, 256, 40, 0x303);
    prologue(b, {0, 1});
    b.load(2, 0, MemSpace::Global, 1);
    b.beginLoop(8, 26, true); // query walk, strongly divergent trips
    b.load(3, 2, MemSpace::Global, 10);
    hotCompute(b, {4, 5, 6}, {3, 2}, 4);
    coldTouch(b, {7, 8, 9}, 2);
    b.op(Opcode::IAdd, 2, {2, 4});
    b.endLoop();
    b.store(1, 4, MemSpace::Global, 4);
    return {"MUM", 1, {b.build()}};
}

} // namespace pilotrf::workloads
