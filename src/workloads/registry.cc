#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace pilotrf::workloads
{

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        // Category 1
        v.push_back(makeBfs());
        v.push_back(makeBtree());
        v.push_back(makeHotspot());
        v.push_back(makeNw());
        v.push_back(makeStencil());
        v.push_back(makeBackprop());
        v.push_back(makeSad());
        v.push_back(makeSrad());
        v.push_back(makeMum());
        // Category 2
        v.push_back(makeKmeans());
        v.push_back(makeLavaMd());
        v.push_back(makeMriQ());
        v.push_back(makeNn());
        v.push_back(makeSgemm());
        v.push_back(makeCp());
        // Category 3
        v.push_back(makeLib());
        v.push_back(makeWp());
        return v;
    }();
    return all;
}

const Workload &
workload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload: %s", name.c_str());
}

} // namespace pilotrf::workloads
