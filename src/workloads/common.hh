/**
 * @file
 * Shared emission helpers for the synthetic workloads.
 */

#ifndef PILOTRF_WORKLOADS_COMMON_HH
#define PILOTRF_WORKLOADS_COMMON_HH

#include <vector>

#include "isa/kernel_builder.hh"

namespace pilotrf::workloads
{

using isa::KernelBuilder;
using isa::MemSpace;
using isa::Opcode;

/**
 * Emit @p n fused-multiply-add style instructions cycling through the hot
 * register set with one auxiliary operand each: hot registers collect
 * roughly three operand references per instruction, auxiliaries one.
 */
inline void
hotCompute(KernelBuilder &b, const std::vector<RegId> &hot,
           const std::vector<RegId> &aux, unsigned n)
{
    const std::size_t h = hot.size(), a = aux.size();
    for (unsigned i = 0; i < n; ++i) {
        b.op(Opcode::FFma, hot[i % h],
             {hot[(i + 1) % h], aux[i % a], hot[i % h]});
    }
}

/**
 * Emit a rarely-executed block stuffed with references to the decoy
 * registers. The compiler's static occurrence counts see every reference;
 * dynamically the block runs with probability @p execProb per warp — the
 * Category-2 mechanism that defeats compiler-based profiling.
 */
inline void
decoyBlock(KernelBuilder &b, const std::vector<RegId> &decoys, unsigned per,
           double execProb = 0.02)
{
    b.beginIfUniform(execProb);
    for (unsigned i = 0; i < per; ++i)
        for (std::size_t d = 0; d < decoys.size(); ++d)
            b.op(Opcode::IAdd, decoys[d],
                 {decoys[(d + 1) % decoys.size()], decoys[d]});
    b.endIf();
}

/**
 * Emit @p k integer ops over a rotating set of cold registers: spreads a
 * controlled share of the dynamic accesses across the long tail so the
 * top-N concentration matches the Fig. 2 averages.
 */
inline void
coldTouch(KernelBuilder &b, const std::vector<RegId> &cold, unsigned k)
{
    for (unsigned i = 0; i < k; ++i)
        b.op(Opcode::IAdd, cold[i % cold.size()],
             {cold[(i + 1) % cold.size()]});
}

/** Short address-setup prologue over the given registers. */
inline void
prologue(KernelBuilder &b, const std::vector<RegId> &regs)
{
    for (std::size_t i = 0; i < regs.size(); ++i)
        b.op(Opcode::IAdd, regs[i], {regs[(i + 1) % regs.size()]});
}

} // namespace pilotrf::workloads

#endif // PILOTRF_WORKLOADS_COMMON_HH
