/**
 * @file
 * Category-3 workloads (LIB, WP): very few warps, so the pilot warp spans
 * most of the kernel runtime (60-75%, Table I), and per-warp uniform
 * branches select between code paths with different register pressure —
 * the single pilot's view is unrepresentative and compiler profiling
 * identifies a better register set (Fig. 4).
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace pilotrf::workloads
{

namespace
{

/** Emit a per-warp-selected pair of compute paths with different hot
 *  register sets; shared contains registers hot on every path. */
void
perWarpPaths(KernelBuilder &b, const std::vector<RegId> &pathA,
             const std::vector<RegId> &pathB,
             const std::vector<RegId> &shared, unsigned trips,
             unsigned opsPerIter)
{
    // Mandatory shared work so every warp (the pilot included) runs for a
    // comparable stretch...
    b.beginLoop(trips / 2, 2, false);
    hotCompute(b, shared, pathA, 2);
    b.endLoop();
    // ...then per-warp path selection: most warps take exactly one of the
    // two register-disjoint paths, so a single pilot's counters are
    // unrepresentative of the aggregate (the Category-3 mechanism).
    b.beginIfUniform(0.65); // path A warps
    b.beginLoop(trips, 6, false);
    hotCompute(b, pathA, shared, opsPerIter);
    b.endLoop();
    b.endIf();
    b.beginIfUniform(0.65); // path B warps
    b.beginLoop(trips, 6, false);
    hotCompute(b, pathB, shared, opsPerIter);
    b.endLoop();
    b.endIf();
}

} // namespace

Workload
makeLib()
{
    // LIBOR Monte-Carlo: 64-thread CTAs, 8 CTAs total.
    KernelBuilder b("lib_k1", 18, 64, 8, 0x11b);
    prologue(b, {0, 12});
    b.load(1, 0, MemSpace::Global, 1);
    perWarpPaths(b, {2, 3, 4}, {5, 6, 7}, {1}, 14, 6);
    b.op(Opcode::FAdd, 12, {1, 12});
    b.store(0, 12, MemSpace::Global, 1);
    return {"LIB", 3, {b.build()}};
}

Workload
makeWp()
{
    // Weather prediction kernel: 64-thread CTAs, 4 CTAs total.
    KernelBuilder b("wp_k1", 8, 64, 4, 17);
    b.op(Opcode::IAdd, 0, {6});
    b.load(1, 0, MemSpace::Global, 1);
    perWarpPaths(b, {2, 3}, {4, 5}, {1}, 16, 5);
    b.op(Opcode::FMul, 6, {1, 0});
    b.store(0, 6, MemSpace::Global, 1);
    return {"WP", 3, {b.build()}};
}

} // namespace pilotrf::workloads
