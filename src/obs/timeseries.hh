/**
 * @file
 * Cycle-resolved counter sampling: turns the end-of-run aggregate
 * `CounterBlock`s into time series.
 *
 * A `TimeSeriesSampler` watches any number of counter blocks (an SM's
 * pipeline counters, its RF backend's access counters) plus instantaneous
 * gauges (live-warp count). Every `periodCycles` ticks it takes one
 * sample: the *delta* of every counter since the previous sample, and the
 * current value of every gauge. Samples land in a fixed-capacity ring
 * buffer (oldest dropped first, with a drop count), so a sampler's memory
 * is bounded no matter how long the run is.
 *
 * Because samples are deltas, the column-wise sum over all retained
 * samples of an undropped series equals the counter's final value — the
 * conservation property the tests assert.
 *
 * The off path costs one predictable branch per SM cycle (a null check in
 * the SM's cycle loop); when sampling is on, the per-cycle cost is one
 * increment-and-compare, and the per-sample cost is linear in the column
 * count.
 */

#ifndef PILOTRF_OBS_TIMESERIES_HH
#define PILOTRF_OBS_TIMESERIES_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/counters.hh"
#include "common/types.hh"

namespace pilotrf::obs
{

class TimeSeriesSampler
{
  public:
    /**
     * @param periodCycles cycles between samples (>= 1)
     * @param capacity ring capacity in samples; older samples are
     *        discarded (and counted) once it fills
     */
    explicit TimeSeriesSampler(unsigned periodCycles,
                               std::size_t capacity = std::size_t(1) << 14);

    /** Watch a counter block; its columns are named `prefix + counter
     *  name`. Register sources before the first sample is taken. */
    void addBlock(std::string prefix, const CounterBlock *block);

    /** Watch an instantaneous value (sampled, not delta'd). */
    void addGauge(std::string name, std::function<std::uint64_t()> fn);

    /** Per-cycle hook; takes a sample every periodCycles-th call. */
    void tick(Cycle now)
    {
        if (++sinceLast >= period)
            sample(now);
    }

    /** Ticks until the next tick() takes a sample (1..period). The SM's
     *  event horizon must not cross that cycle, so skipped spans never
     *  swallow a sample point. */
    unsigned ticksUntilSample() const { return period - sinceLast; }

    /** Credit n skipped cycles without sampling. Only legal for spans the
     *  horizon already proved sample-free: n < ticksUntilSample(). */
    void skipTicks(std::uint64_t n)
    {
        sinceLast += unsigned(n);
    }

    /** Capture the final partial interval (call once at run end so the
     *  deltas sum to the final counter values). */
    void finish(Cycle now)
    {
        if (sinceLast > 0)
            sample(now);
    }

    /**
     * Re-attribute a counter increment that was applied late. The
     * sharded engine defers shared-L2 hit/miss increments to the epoch
     * barrier, but architecturally they belong at the request `cycle`;
     * any sample already taken at or after that cycle was written
     * without the delta. This moves the delta where the serial engine
     * would have recorded it: into the earliest retained sample stamped
     * >= `cycle` (and out of the upcoming interval), leaving column
     * sums — and the serial/sharded byte identity — intact. If the
     * owning sample was already dropped from the ring, the delta is
     * dropped with it, exactly as if it had been recorded on time. A
     * no-op when no sample at or after `cycle` exists yet (the next
     * sample will capture the increment naturally).
     */
    void retroCredit(Cycle cycle, const CounterBlock *block,
                     CounterBlock::Handle h, std::uint64_t delta);

    unsigned periodCycles() const { return period; }
    std::size_t capacity() const { return cap; }

    /** Samples currently retained in the ring. */
    std::size_t sampleCount() const { return count; }

    /** Samples discarded because the ring was full. */
    std::uint64_t droppedSamples() const { return dropped; }

    /** Column names, layout order (latched at the first sample). */
    std::vector<std::string> columnNames() const;

    /** Sum of one column's retained samples (tests: delta conservation).
     *  Returns 0 for unknown columns. */
    std::uint64_t columnSum(const std::string &name) const;

    /**
     * Write the series as one JSON object:
     * {"period": P, "samples": N, "dropped": D,
     *  "cycles": [...], "series": {"<column>": [...], ...}}
     * at the given indentation depth (2 spaces per level).
     */
    void writeJson(std::ostream &os, unsigned depth = 0) const;

  private:
    void sample(Cycle now);
    void latchLayout();

    struct Source
    {
        std::string prefix;
        const CounterBlock *block;
        std::size_t firstColumn = 0;
        std::size_t nColumns = 0; ///< latched at the first sample
        std::vector<std::uint64_t> prev;
    };

    struct Gauge
    {
        std::string name;
        std::function<std::uint64_t()> fn;
        std::size_t column = 0;
    };

    unsigned period;
    unsigned sinceLast = 0;
    std::size_t cap;

    std::vector<Source> sources;
    std::vector<Gauge> gauges;
    bool layoutLatched = false;
    std::size_t columns = 0;

    // Ring storage: sample i lives at slot (head + i) % cap, with its
    // cycle stamp in `cycles` and `columns` contiguous values in `data`.
    std::vector<Cycle> cycles;
    std::vector<std::uint64_t> data;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t dropped = 0;
    Cycle lastDroppedCycle = 0; ///< stamp of the newest dropped sample
};

/**
 * Write a whole GPU's samplers as one document:
 * {"period": P, "sms": [<per-SM sampler JSON>, ...]}.
 */
void writeTimeSeriesJson(std::ostream &os,
                         const std::vector<const TimeSeriesSampler *> &sms);

} // namespace pilotrf::obs

#endif // PILOTRF_OBS_TIMESERIES_HH
