#include "obs/trace.hh"

#include <queue>

#include "common/stats.hh"

namespace pilotrf::obs
{

void
drainTraceBuffers(const std::vector<TraceBuffer *> &buffers)
{
    // Min-heap over the buffer fronts, keyed (cycle, buffer position);
    // the buffer vector is in smId order, so the position is the smId
    // tiebreak. Ties pop the lowest smId first and a popped buffer
    // re-enters with its next entry, so a run of same-cycle events from
    // one SM drains contiguously before the next SM's — the lockstep
    // engine's within-cycle order.
    struct Head
    {
        Cycle cycle;
        std::size_t buf;
    };
    const auto later = [](const Head &a, const Head &b) {
        return a.cycle != b.cycle ? a.cycle > b.cycle : a.buf > b.buf;
    };
    std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(
        later);
    std::vector<std::size_t> pos(buffers.size(), 0);
    for (std::size_t b = 0; b < buffers.size(); ++b)
        if (buffers[b] && !buffers[b]->entries.empty())
            heap.push({buffers[b]->entries.front().ev.cycle, b});
    while (!heap.empty()) {
        const Head h = heap.top();
        heap.pop();
        TraceBuffer &tb = *buffers[h.buf];
        const TraceBuffer::Entry &e = tb.entries[pos[h.buf]];
        tb.deliver(e.ev, e.dest);
        if (++pos[h.buf] < tb.entries.size())
            heap.push({tb.entries[pos[h.buf]].ev.cycle, h.buf});
    }
    for (TraceBuffer *tb : buffers)
        if (tb)
            tb->entries.clear();
}

const char *
toString(EventKind k)
{
    switch (k) {
      case EventKind::Instant: return "i";
      case EventKind::Begin: return "B";
      case EventKind::End: return "E";
      case EventKind::Counter: return "C";
    }
    return "?";
}

TraceSink &
TraceHub::addSink(std::unique_ptr<TraceSink> sink)
{
    if (sink->wantsText())
        ++nText;
    if (sink->handlesStructured())
        ++nStructured;
    sinks.push_back(std::move(sink));
    return *sinks.back();
}

void
TraceHub::dispatch(const TraceEvent &ev)
{
    for (const auto &s : sinks)
        if (s->wantsText())
            s->event(ev);
}

void
TraceHub::dispatchStructured(const TraceEvent &ev)
{
    for (const auto &s : sinks)
        if (s->handlesStructured())
            s->event(ev);
}

void
TraceHub::flush()
{
    for (const auto &s : sinks)
        s->flush();
}

void
TextTraceSink::event(const TraceEvent &ev)
{
    (*os) << ev.cycle << ": sm" << ev.sm << " " << ev.categoryName << ": "
          << ev.text << "\n";
}

std::unique_ptr<JsonlTraceSink>
JsonlTraceSink::toFile(const std::string &path, std::string *error)
{
    auto sink = std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink());
    sink->owned.open(path, std::ios::binary);
    if (!sink->owned) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return nullptr;
    }
    sink->os = &sink->owned;
    return sink;
}

void
JsonlTraceSink::event(const TraceEvent &ev)
{
    std::ostream &s = *os;
    s << "{\"cycle\": ";
    jsonNumber(s, double(ev.cycle));
    s << ", \"sm\": " << ev.sm;
    if (ev.warp >= 0)
        s << ", \"warp\": " << ev.warp;
    s << ", \"cat\": ";
    jsonString(s, ev.categoryName);
    s << ", \"kind\": ";
    jsonString(s, toString(ev.kind));
    if (!ev.name.empty()) {
        s << ", \"name\": ";
        jsonString(s, ev.name);
    }
    if (!ev.args.empty()) {
        s << ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
            s << (i ? ", " : "");
            jsonString(s, ev.args[i].key);
            s << ": ";
            jsonNumber(s, ev.args[i].value);
        }
        s << "}";
    }
    if (!ev.text.empty()) {
        s << ", \"text\": ";
        jsonString(s, ev.text);
    }
    s << "}\n";
}

void
JsonlTraceSink::flush()
{
    if (os)
        os->flush();
}

std::unique_ptr<ChromeTraceSink>
ChromeTraceSink::toFile(const std::string &path, std::string *error)
{
    auto sink = std::unique_ptr<ChromeTraceSink>(new ChromeTraceSink());
    sink->owned.open(path, std::ios::binary);
    if (!sink->owned) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return nullptr;
    }
    sink->os = &sink->owned;
    return sink;
}

ChromeTraceSink::~ChromeTraceSink()
{
    flush();
}

void
ChromeTraceSink::begin()
{
    if (started)
        return;
    started = true;
    (*os) << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
}

void
ChromeTraceSink::comma()
{
    (*os) << (firstEvent ? "\n" : ",\n");
    firstEvent = false;
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    if (closed)
        return;
    begin();

    // Name the SM's track group once (metadata events carry no
    // timestamp, so they never disturb per-track monotonicity).
    if (ev.sm >= smSeen.size())
        smSeen.resize(ev.sm + 1, false);
    if (!smSeen[ev.sm]) {
        smSeen[ev.sm] = true;
        comma();
        (*os) << "{\"ph\": \"M\", \"pid\": " << ev.sm
              << ", \"name\": \"process_name\", \"args\": {\"name\": "
                 "\"sm"
              << ev.sm << "\"}}";
    }

    writeEvent(ev, toString(ev.kind));
}

void
ChromeTraceSink::writeEvent(const TraceEvent &ev, const char *ph)
{
    comma();
    std::ostream &s = *os;
    s << "{\"ph\": \"" << ph << "\", \"ts\": ";
    jsonNumber(s, double(ev.cycle));
    s << ", \"pid\": " << ev.sm << ", \"tid\": "
      << (ev.warp >= 0 ? ev.warp : 0) << ", \"cat\": ";
    jsonString(s, ev.categoryName);
    if (!ev.name.empty() || !ev.text.empty()) {
        s << ", \"name\": ";
        jsonString(s, ev.name.empty() ? ev.text : ev.name);
    }
    if (ev.kind == EventKind::Instant)
        s << ", \"s\": \"" << (ev.warp >= 0 ? 't' : 'p') << "\"";
    if (!ev.args.empty()) {
        s << ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
            s << (i ? ", " : "");
            jsonString(s, ev.args[i].key);
            s << ": ";
            jsonNumber(s, ev.args[i].value);
        }
        s << "}";
    }
    s << "}";
}

void
ChromeTraceSink::flush()
{
    if (closed || !os) // null os: the toFile() failed-open carcass
        return;
    closed = true;
    begin();
    (*os) << "\n]}\n";
    os->flush();
}

} // namespace pilotrf::obs
