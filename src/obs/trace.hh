/**
 * @file
 * Structured trace-sink API: the pluggable backend behind the simulator's
 * trace points.
 *
 * A `TraceEvent` carries the who/when/what of one simulator event in a
 * structured form (cycle, SM, warp, category, kind, name, numeric args)
 * plus an optional pre-formatted text message for human-readable sinks. A
 * `TraceHub` fans events out to any number of `TraceSink`s:
 *
 *  - `TextTraceSink`    — the legacy one-line-per-event formatter
 *                         ("<cycle>: sm<N> <cat>: <message>")
 *  - `JsonlTraceSink`   — one JSON object per line, machine-readable
 *  - `ChromeTraceSink`  — Chrome trace-event (catapult) JSON, loadable in
 *                         chrome://tracing or Perfetto
 *
 * Events travel on two channels. *Text* events originate from the
 * printf-style trace points and are delivered to sinks that
 * `wantsText()`; they are gated by the hub's per-category mask.
 * *Structured* events (warp lifetimes, swap-table movements, back-gate
 * transitions, ...) are delivered only to sinks that
 * `handlesStructured()`, so attaching a structured sink never changes the
 * byte stream a text sink produces.
 *
 * A hub is not synchronized: attach one hub per simulated GPU (the
 * experiment runner gives every job its own hub and output files, which
 * is what makes tracing safe under the worker pool).
 *
 * Emission itself goes through one more layer: every SM owns a
 * `TraceBuffer`, the shard-safe front door to its hubs. In *immediate*
 * mode (the serial engine) the buffer forwards each event straight to
 * its destination hubs; in *buffered* mode (the sharded engine) it
 * appends events — lock-free, the buffer belongs to exactly one SM and
 * one worker — and `drainTraceBuffers()` merge-replays all buffers at an
 * epoch barrier in the exact (cycle, smId, per-SM program order) the
 * serial engine would have emitted, so every sink's byte stream is
 * independent of the worker count.
 */

#ifndef PILOTRF_OBS_TRACE_HH
#define PILOTRF_OBS_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pilotrf::obs
{

/** How a structured event relates to simulated time. */
enum class EventKind : std::uint8_t
{
    Instant, ///< a point event (swap, flush, one trace line)
    Begin,   ///< opens a duration on the event's (sm, warp) track
    End,     ///< closes the innermost duration on the track
    Counter, ///< samples a named value (back-gate mode, ...)
};

const char *toString(EventKind k);

/** One named numeric argument of a structured event. */
struct TraceArg
{
    const char *key;
    double value;
};

/** One simulator event, structured. */
struct TraceEvent
{
    Cycle cycle = 0;
    SmId sm = 0;
    std::int32_t warp = -1; ///< -1: not warp-scoped (SM-level event)
    unsigned category = 0;  ///< sim::TraceCat enumerator value
    const char *categoryName = "?";
    EventKind kind = EventKind::Instant;
    std::string name; ///< event/track name for structured sinks
    std::string text; ///< pre-formatted message (text trace points)
    std::vector<TraceArg> args;
};

/** Consumes events; implementations own their formatting and output. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void event(const TraceEvent &ev) = 0;

    /** Receive printf-style text events (the legacy trace points). */
    virtual bool wantsText() const { return true; }

    /** Receive structured events (warp lifetimes, swaps, back-gate). */
    virtual bool handlesStructured() const { return false; }

    /** Finish the output (close JSON documents, flush streams). Safe to
     *  call more than once. */
    virtual void flush() {}
};

/**
 * Fans events out to the attached sinks. Text events additionally pass a
 * per-category enable mask (default: all categories), so a hub can carry
 * a high-volume JSONL sink restricted to a few categories.
 */
class TraceHub
{
  public:
    /** Attach a sink; the hub owns it. Returns it for convenience. */
    TraceSink &addSink(std::unique_ptr<TraceSink> sink);

    /** Deliver a text event to every text-wanting sink. */
    void dispatch(const TraceEvent &ev);

    /** Deliver a structured event to every structured-handling sink. */
    void dispatchStructured(const TraceEvent &ev);

    /** True when at least one sink handles structured events — the gate
     *  the instrumentation checks before building an event. */
    bool wantsStructured() const { return nStructured > 0; }

    /** True when a text sink is attached and the category is enabled. */
    bool textEnabled(unsigned category) const
    {
        return nText > 0 && ((catMask >> category) & 1u) != 0;
    }

    void setCategoryMask(std::uint64_t mask) { catMask = mask; }
    std::uint64_t categoryMask() const { return catMask; }

    std::size_t sinkCount() const { return sinks.size(); }

    /** flush() every sink. */
    void flush();

  private:
    std::vector<std::unique_ptr<TraceSink>> sinks;
    unsigned nText = 0;
    unsigned nStructured = 0;
    std::uint64_t catMask = ~std::uint64_t(0);
};

/**
 * Per-SM emission front end: the one object trace producers talk to.
 *
 * A buffer knows two destinations — the *local* (per-GPU) hub and the
 * *global* (process-wide) hub behind the static `sim::Trace` API — and
 * carries each event to a subset of three channels, encoded as `Dest`
 * bits computed at the emission site (where the category gates are
 * checked). Two modes:
 *
 *  - **immediate** (default; the lockstep engine, kernel setup): every
 *    emit() dispatches to the destination hubs on the spot, preserving
 *    the serial engine's emission order with zero added cost.
 *  - **buffered** (the sharded engine): emit() appends the event and its
 *    destination bits to a private vector. No locks: a buffer is written
 *    by exactly one SM, which the engine steps on exactly one worker,
 *    and read only between worker rounds (the pool barrier publishes
 *    it). The vector index is the event's sequence stamp — per-SM
 *    program order — and entries are cycle-monotone because every
 *    producer stamps a monotone per-SM clock.
 *
 * `drainTraceBuffers()` k-way merges buffered entries across SMs on
 * (cycle, smId, seq) and replays them into the hubs; see the trace docs
 * for why that reproduces the serial byte stream exactly.
 *
 * The gate helpers (wantsStructured(), localTextEnabled()) read
 * run-constant hub state (sink counts and the category mask are fixed
 * before run()), so concurrent shard workers may call them freely.
 */
class TraceBuffer
{
  public:
    /** Destination channels of one event (bitmask). */
    enum Dest : std::uint8_t
    {
        GlobalText = 1,      ///< global hub, text channel
        LocalText = 2,       ///< local hub, text channel
        LocalStructured = 4, ///< local hub, structured channel
    };

    /** Wire the destination hubs (either may be null). */
    void wire(TraceHub *localHub, TraceHub *globalHub)
    {
        local = localHub;
        global = globalHub;
    }

    /** Re-point just the local (per-GPU) hub; null detaches. */
    void setLocal(TraceHub *localHub) { local = localHub; }
    TraceHub *localHub() const { return local; }

    /** Local-hub gates, null-safe (the gates producers check before
     *  building an event). */
    bool wantsStructured() const
    {
        return local && local->wantsStructured();
    }
    bool localTextEnabled(unsigned category) const
    {
        return local && local->textEnabled(category);
    }

    /** Deliver (immediate mode) or append (buffered mode) one event to
     *  the `dest` channels. */
    void emit(const TraceEvent &ev, std::uint8_t dest)
    {
        if (buffered)
            entries.push_back({ev, dest});
        else
            deliver(ev, dest);
    }

    /** Convenience for the structured telemetry points. */
    void emitStructured(const TraceEvent &ev) { emit(ev, LocalStructured); }

    /**
     * Buffered mode only: append a void placeholder entry stamped at
     * `cycle` and return its index. A producer whose event content is
     * not known until an epoch barrier (the deferred shared-L2 replies)
     * reserves its program-order slot at emission time and fills it —
     * or leaves it void — with fillSlot() before the barrier drain. A
     * void entry (dest == 0) delivers nothing but keeps the buffer's
     * cycle-monotone merge order intact.
     */
    std::size_t reserveSlot(Cycle cycle)
    {
        TraceEvent ev;
        ev.cycle = cycle;
        entries.push_back({std::move(ev), 0});
        return entries.size() - 1;
    }

    /** Fill a reserved slot. `ev.cycle` must equal the reserved cycle. */
    void fillSlot(std::size_t idx, TraceEvent ev, std::uint8_t dest)
    {
        entries[idx] = {std::move(ev), dest};
    }

    /** Switch emission modes. Turning buffering off does not drain;
     *  callers drain at a barrier first (see drainTraceBuffers()). */
    void setBuffered(bool on) { buffered = on; }
    bool isBuffered() const { return buffered; }

    std::size_t pendingEvents() const { return entries.size(); }

  private:
    friend void drainTraceBuffers(
        const std::vector<TraceBuffer *> &buffers);

    struct Entry
    {
        TraceEvent ev;
        std::uint8_t dest;
    };

    void deliver(const TraceEvent &ev, std::uint8_t dest)
    {
        if ((dest & GlobalText) && global)
            global->dispatch(ev);
        if ((dest & LocalText) && local)
            local->dispatch(ev);
        if ((dest & LocalStructured) && local)
            local->dispatchStructured(ev);
    }

    TraceHub *local = nullptr;  ///< per-GPU hub (not owned)
    TraceHub *global = nullptr; ///< process-wide hub (not owned)
    bool buffered = false;
    std::vector<Entry> entries;
};

/**
 * Barrier-time merge: replay every buffered event of `buffers` (which
 * must be ordered by smId) into its destination hubs in ascending
 * (cycle, smId, seq) order, then clear the buffers.
 *
 * Each buffer is cycle-monotone and appended in per-SM program order, so
 * a k-way merge that pops the smallest (front cycle, smId) reproduces
 * the serial lockstep engine's emission order exactly: that engine runs
 * cycle-major, SMs in smId order within a cycle, each SM's cycle in
 * program order. Call only when every live SM has reached the barrier
 * (all future events then carry cycles past everything drained here).
 */
void drainTraceBuffers(const std::vector<TraceBuffer *> &buffers);

/**
 * The legacy human-readable formatter as a sink:
 * "<cycle>: sm<N> <cat>: <message>" — byte-identical to the printf-era
 * trace output. Text events only.
 */
class TextTraceSink : public TraceSink
{
  public:
    /** Write to a borrowed stream (not owned). */
    explicit TextTraceSink(std::ostream &os) : os(&os) {}

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return true; }
    bool handlesStructured() const override { return false; }

    /** Redirect the output (the static Trace::setStream path). */
    void setStream(std::ostream &s) { os = &s; }

  private:
    std::ostream *os;
};

/**
 * One JSON object per line, both channels:
 * {"cycle":C,"sm":N,"warp":W,"cat":"...","kind":"...","name":"...",
 *  "args":{...},"text":"..."} — absent fields are omitted.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os(&os) {}

    /** Open `path` for writing and own the stream. Returns nullptr (and
     *  leaves *error set when given) if the file cannot be opened. */
    static std::unique_ptr<JsonlTraceSink> toFile(const std::string &path,
                                                  std::string *error =
                                                      nullptr);

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return true; }
    bool handlesStructured() const override { return true; }
    void flush() override;

  private:
    JsonlTraceSink() = default;

    std::ofstream owned;
    std::ostream *os = nullptr;
};

/**
 * Chrome trace-event (catapult) exporter: a `{"traceEvents":[...]}`
 * document whose tracks are (pid = SM, tid = warp). Warp lifetimes render
 * as duration events, swap-table movements as instants, back-gate mode as
 * a counter track; one simulated cycle maps to one microsecond of trace
 * time. Structured events only (the text channel would drown the
 * viewer). Load the file in chrome://tracing or https://ui.perfetto.dev.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os) : os(&os) {}

    static std::unique_ptr<ChromeTraceSink> toFile(const std::string &path,
                                                   std::string *error =
                                                       nullptr);

    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return false; }
    bool handlesStructured() const override { return true; }

    /** Close the JSON document; further events are dropped. */
    void flush() override;

  private:
    ChromeTraceSink() = default;

    void writeEvent(const TraceEvent &ev, const char *ph);
    void begin();
    void comma();

    std::ofstream owned;
    std::ostream *os = nullptr;
    bool started = false;
    bool closed = false;
    bool firstEvent = true;
    std::vector<bool> smSeen; ///< process_name metadata emitted per SM
};

} // namespace pilotrf::obs

#endif // PILOTRF_OBS_TRACE_HH
