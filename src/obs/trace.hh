/**
 * @file
 * Structured trace-sink API: the pluggable backend behind the simulator's
 * trace points.
 *
 * A `TraceEvent` carries the who/when/what of one simulator event in a
 * structured form (cycle, SM, warp, category, kind, name, numeric args)
 * plus an optional pre-formatted text message for human-readable sinks. A
 * `TraceHub` fans events out to any number of `TraceSink`s:
 *
 *  - `TextTraceSink`    — the legacy one-line-per-event formatter
 *                         ("<cycle>: sm<N> <cat>: <message>")
 *  - `JsonlTraceSink`   — one JSON object per line, machine-readable
 *  - `ChromeTraceSink`  — Chrome trace-event (catapult) JSON, loadable in
 *                         chrome://tracing or Perfetto
 *
 * Events travel on two channels. *Text* events originate from the
 * printf-style trace points and are delivered to sinks that
 * `wantsText()`; they are gated by the hub's per-category mask.
 * *Structured* events (warp lifetimes, swap-table movements, back-gate
 * transitions, ...) are delivered only to sinks that
 * `handlesStructured()`, so attaching a structured sink never changes the
 * byte stream a text sink produces.
 *
 * A hub is not synchronized: attach one hub per simulated GPU (the
 * experiment runner gives every job its own hub and output files, which
 * is what makes tracing safe under the worker pool).
 */

#ifndef PILOTRF_OBS_TRACE_HH
#define PILOTRF_OBS_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pilotrf::obs
{

/** How a structured event relates to simulated time. */
enum class EventKind : std::uint8_t
{
    Instant, ///< a point event (swap, flush, one trace line)
    Begin,   ///< opens a duration on the event's (sm, warp) track
    End,     ///< closes the innermost duration on the track
    Counter, ///< samples a named value (back-gate mode, ...)
};

const char *toString(EventKind k);

/** One named numeric argument of a structured event. */
struct TraceArg
{
    const char *key;
    double value;
};

/** One simulator event, structured. */
struct TraceEvent
{
    Cycle cycle = 0;
    SmId sm = 0;
    std::int32_t warp = -1; ///< -1: not warp-scoped (SM-level event)
    unsigned category = 0;  ///< sim::TraceCat enumerator value
    const char *categoryName = "?";
    EventKind kind = EventKind::Instant;
    std::string name; ///< event/track name for structured sinks
    std::string text; ///< pre-formatted message (text trace points)
    std::vector<TraceArg> args;
};

/** Consumes events; implementations own their formatting and output. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void event(const TraceEvent &ev) = 0;

    /** Receive printf-style text events (the legacy trace points). */
    virtual bool wantsText() const { return true; }

    /** Receive structured events (warp lifetimes, swaps, back-gate). */
    virtual bool handlesStructured() const { return false; }

    /** Finish the output (close JSON documents, flush streams). Safe to
     *  call more than once. */
    virtual void flush() {}
};

/**
 * Fans events out to the attached sinks. Text events additionally pass a
 * per-category enable mask (default: all categories), so a hub can carry
 * a high-volume JSONL sink restricted to a few categories.
 */
class TraceHub
{
  public:
    /** Attach a sink; the hub owns it. Returns it for convenience. */
    TraceSink &addSink(std::unique_ptr<TraceSink> sink);

    /** Deliver a text event to every text-wanting sink. */
    void dispatch(const TraceEvent &ev);

    /** Deliver a structured event to every structured-handling sink. */
    void dispatchStructured(const TraceEvent &ev);

    /** True when at least one sink handles structured events — the gate
     *  the instrumentation checks before building an event. */
    bool wantsStructured() const { return nStructured > 0; }

    /** True when a text sink is attached and the category is enabled. */
    bool textEnabled(unsigned category) const
    {
        return nText > 0 && ((catMask >> category) & 1u) != 0;
    }

    void setCategoryMask(std::uint64_t mask) { catMask = mask; }
    std::uint64_t categoryMask() const { return catMask; }

    std::size_t sinkCount() const { return sinks.size(); }

    /** flush() every sink. */
    void flush();

  private:
    std::vector<std::unique_ptr<TraceSink>> sinks;
    unsigned nText = 0;
    unsigned nStructured = 0;
    std::uint64_t catMask = ~std::uint64_t(0);
};

/**
 * The legacy human-readable formatter as a sink:
 * "<cycle>: sm<N> <cat>: <message>" — byte-identical to the printf-era
 * trace output. Text events only.
 */
class TextTraceSink : public TraceSink
{
  public:
    /** Write to a borrowed stream (not owned). */
    explicit TextTraceSink(std::ostream &os) : os(&os) {}

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return true; }
    bool handlesStructured() const override { return false; }

    /** Redirect the output (the static Trace::setStream path). */
    void setStream(std::ostream &s) { os = &s; }

  private:
    std::ostream *os;
};

/**
 * One JSON object per line, both channels:
 * {"cycle":C,"sm":N,"warp":W,"cat":"...","kind":"...","name":"...",
 *  "args":{...},"text":"..."} — absent fields are omitted.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os(&os) {}

    /** Open `path` for writing and own the stream. Returns nullptr (and
     *  leaves *error set when given) if the file cannot be opened. */
    static std::unique_ptr<JsonlTraceSink> toFile(const std::string &path,
                                                  std::string *error =
                                                      nullptr);

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return true; }
    bool handlesStructured() const override { return true; }
    void flush() override;

  private:
    JsonlTraceSink() = default;

    std::ofstream owned;
    std::ostream *os = nullptr;
};

/**
 * Chrome trace-event (catapult) exporter: a `{"traceEvents":[...]}`
 * document whose tracks are (pid = SM, tid = warp). Warp lifetimes render
 * as duration events, swap-table movements as instants, back-gate mode as
 * a counter track; one simulated cycle maps to one microsecond of trace
 * time. Structured events only (the text channel would drown the
 * viewer). Load the file in chrome://tracing or https://ui.perfetto.dev.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os) : os(&os) {}

    static std::unique_ptr<ChromeTraceSink> toFile(const std::string &path,
                                                   std::string *error =
                                                       nullptr);

    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;
    bool wantsText() const override { return false; }
    bool handlesStructured() const override { return true; }

    /** Close the JSON document; further events are dropped. */
    void flush() override;

  private:
    ChromeTraceSink() = default;

    void writeEvent(const TraceEvent &ev, const char *ph);
    void begin();
    void comma();

    std::ofstream owned;
    std::ostream *os = nullptr;
    bool started = false;
    bool closed = false;
    bool firstEvent = true;
    std::vector<bool> smSeen; ///< process_name metadata emitted per SM
};

} // namespace pilotrf::obs

#endif // PILOTRF_OBS_TRACE_HH
