#include "obs/timeseries.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace pilotrf::obs
{

TimeSeriesSampler::TimeSeriesSampler(unsigned periodCycles,
                                     std::size_t capacity)
    : period(std::max(1u, periodCycles)), cap(std::max<std::size_t>(1, capacity))
{
}

void
TimeSeriesSampler::addBlock(std::string prefix, const CounterBlock *block)
{
    panicIf(layoutLatched, "TimeSeriesSampler source added after sampling "
                           "started");
    sources.push_back({std::move(prefix), block, 0, 0, {}});
}

void
TimeSeriesSampler::addGauge(std::string name,
                            std::function<std::uint64_t()> fn)
{
    panicIf(layoutLatched, "TimeSeriesSampler gauge added after sampling "
                           "started");
    gauges.push_back({std::move(name), std::move(fn), 0});
}

void
TimeSeriesSampler::latchLayout()
{
    columns = 0;
    for (auto &src : sources) {
        src.firstColumn = columns;
        src.nColumns = src.block->size();
        src.prev.assign(src.nColumns, 0);
        columns += src.nColumns;
    }
    for (auto &g : gauges)
        g.column = columns++;
    cycles.resize(cap);
    data.resize(cap * columns);
    layoutLatched = true;
}

void
TimeSeriesSampler::sample(Cycle now)
{
    sinceLast = 0;
    if (!layoutLatched)
        latchLayout();

    std::size_t slot;
    if (count < cap) {
        slot = (head + count) % cap;
        ++count;
    } else {
        slot = head;
        head = (head + 1) % cap;
        ++dropped;
        lastDroppedCycle = cycles[slot];
    }
    cycles[slot] = now;
    std::uint64_t *row = data.data() + slot * columns;

    for (auto &src : sources) {
        // Counters registered after the layout latched (none today) are
        // ignored rather than shifting every older sample's columns.
        for (std::size_t i = 0; i < src.nColumns; ++i) {
            const std::uint64_t cur =
                src.block->value(CounterBlock::Handle(i));
            row[src.firstColumn + i] = cur - src.prev[i];
            src.prev[i] = cur;
        }
    }
    for (const auto &g : gauges)
        row[g.column] = g.fn();
}

void
TimeSeriesSampler::retroCredit(Cycle cycle, const CounterBlock *block,
                               CounterBlock::Handle h, std::uint64_t delta)
{
    if (delta == 0 || !layoutLatched || count == 0)
        return;
    Source *src = nullptr;
    for (auto &s : sources)
        if (s.block == block) {
            src = &s;
            break;
        }
    if (!src || std::size_t(h) >= src->nColumns)
        return;
    // No sample at or after `cycle` yet: the increment sits in the
    // upcoming interval, which is where it belongs.
    if (cycles[(head + count - 1) % cap] < cycle)
        return;
    // Some sample should have carried the delta; either way the next
    // delta (cur - prev) must not double-count it.
    src->prev[h] += delta;
    // Dropped samples are the oldest; if the newest dropped one is at or
    // after `cycle`, the owning sample is gone and the delta goes with
    // it (the serial engine would have dropped it identically).
    if (dropped > 0 && lastDroppedCycle >= cycle)
        return;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t slot = (head + i) % cap;
        if (cycles[slot] >= cycle) {
            data[slot * columns + src->firstColumn + h] += delta;
            return;
        }
    }
}

std::vector<std::string>
TimeSeriesSampler::columnNames() const
{
    std::vector<std::string> names;
    names.reserve(columns);
    if (!layoutLatched) {
        // Pre-sample layout: derive from the current source shapes.
        for (const auto &src : sources)
            for (std::size_t i = 0; i < src.block->size(); ++i)
                names.push_back(
                    src.prefix + src.block->name(CounterBlock::Handle(i)));
        for (const auto &g : gauges)
            names.push_back(g.name);
        return names;
    }
    for (const auto &src : sources)
        for (std::size_t i = 0; i < src.nColumns; ++i)
            names.push_back(src.prefix +
                            src.block->name(CounterBlock::Handle(i)));
    for (const auto &g : gauges)
        names.push_back(g.name);
    return names;
}

std::uint64_t
TimeSeriesSampler::columnSum(const std::string &name) const
{
    const std::vector<std::string> names = columnNames();
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end() || !layoutLatched)
        return 0;
    const std::size_t col = std::size_t(it - names.begin());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < count; ++i)
        sum += data[((head + i) % cap) * columns + col];
    return sum;
}

void
TimeSeriesSampler::writeJson(std::ostream &os, unsigned depth) const
{
    const std::string pad(2 * (depth + 1), ' ');
    os << "{\n" << pad << "\"period\": " << period << ",\n"
       << pad << "\"samples\": " << count << ",\n"
       << pad << "\"dropped\": " << dropped << ",\n"
       << pad << "\"cycles\": [";
    for (std::size_t i = 0; i < count; ++i) {
        os << (i ? ", " : "");
        jsonNumber(os, double(cycles[(head + i) % cap]));
    }
    os << "],\n" << pad << "\"series\": {";
    const std::vector<std::string> names = columnNames();
    for (std::size_t col = 0; col < names.size(); ++col) {
        os << (col ? ",\n" : "\n") << pad << "  ";
        jsonString(os, names[col]);
        os << ": [";
        for (std::size_t i = 0; i < count; ++i) {
            os << (i ? ", " : "");
            jsonNumber(os, double(data[((head + i) % cap) * columns + col]));
        }
        os << "]";
    }
    os << (names.empty() ? "" : "\n") << (names.empty() ? "" : pad.c_str())
       << "}\n" << std::string(2 * depth, ' ') << "}";
}

void
writeTimeSeriesJson(std::ostream &os,
                    const std::vector<const TimeSeriesSampler *> &sms)
{
    os << "{\n  \"sms\": [";
    for (std::size_t i = 0; i < sms.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        if (sms[i])
            sms[i]->writeJson(os, 2);
        else
            os << "null";
    }
    os << "\n  ]\n}\n";
}

} // namespace pilotrf::obs
