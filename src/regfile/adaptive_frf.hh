/**
 * @file
 * Epoch-based low-compute phase detector driving the FRF power mode
 * (Sec. IV-C). A 9-bit counter tallies issued instructions per epoch; if
 * the tally falls below the threshold the next epoch runs the FRF in the
 * back-gate-disabled low-power mode (FRF_low, 2-cycle access).
 */

#ifndef PILOTRF_REGFILE_ADAPTIVE_FRF_HH
#define PILOTRF_REGFILE_ADAPTIVE_FRF_HH

#include <cstdint>

#include "common/types.hh"

namespace pilotrf::regfile
{

class AdaptiveFrfController
{
  public:
    /**
     * @param epochLength epoch size in cycles (paper: 50)
     * @param threshold issued-instruction threshold (paper: 85 out of a
     *        maximum of 400 issue slots per 50-cycle epoch, i.e. ~20%)
     */
    AdaptiveFrfController(unsigned epochLength = 50, unsigned threshold = 85);

    /** Advance one cycle with the number of instructions issued. */
    void cycle(unsigned issued);

    /** Cycles until the running epoch completes (1..epochLength): the
     *  next cycle() call that can flip the power mode is the
     *  cyclesToBoundary()-th from now. */
    unsigned cyclesToBoundary() const { return epochLen - cycleInEpoch; }

    /** Fast-forward n cycles with nothing issued: bit-identical to n
     *  consecutive cycle(0) calls, in closed form. */
    void advanceIdle(std::uint64_t n);

    /** Current FRF power mode (applies during the present epoch). */
    bool lowPowerMode() const { return lowMode; }

    std::uint64_t epochs() const { return nEpochs; }
    std::uint64_t lowEpochs() const { return nLowEpochs; }

    /** Reset phase state at kernel boundaries. */
    void reset();

    unsigned epochLength() const { return epochLen; }
    unsigned threshold() const { return thresh; }

  private:
    unsigned epochLen;
    unsigned thresh;
    unsigned cycleInEpoch = 0;
    unsigned issuedInEpoch = 0;
    bool lowMode = false;
    std::uint64_t nEpochs = 0;
    std::uint64_t nLowEpochs = 0;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_ADAPTIVE_FRF_HH
