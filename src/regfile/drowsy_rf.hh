/**
 * @file
 * Drowsy register file baseline, in the spirit of the Warped Register
 * File (Abdel-Majeed & Annavaram, HPCA 2013) the paper cites as related
 * work: the registers of warps that have been idle for a while are put
 * into a drowsy (data-retentive low-voltage) state that leaks a fraction
 * of the awake leakage; the first access to a drowsy warp's registers
 * pays a wake-up cycle.
 *
 * This baseline saves leakage like the SRF does but, unlike the
 * partitioned design, saves no dynamic access energy — the ablation
 * bench quantifies exactly that difference.
 */

#ifndef PILOTRF_REGFILE_DROWSY_RF_HH
#define PILOTRF_REGFILE_DROWSY_RF_HH

#include <vector>

#include "regfile/register_file.hh"

namespace pilotrf::regfile
{

struct DrowsyRfConfig
{
    unsigned drowsyAfter = 100; ///< idle cycles before a warp drowses
    unsigned wakeLatency = 1;   ///< extra cycles on a drowsy access
    double drowsyLeakFactor = 0.30; ///< leakage vs awake cells
};

class DrowsyRf : public RegisterFile
{
  public:
    DrowsyRf(unsigned numBanks, const DrowsyRfConfig &cfg,
             unsigned warpsPerSm);

    void kernelLaunch(const isa::Kernel &kernel) override;
    RfAccess access(WarpId w, RegId r, bool write) override;
    void cycleHook(Cycle now, unsigned issued) override;
    void advanceIdle(Cycle first, std::uint64_t n) override;
    void warpStarted(WarpId w, CtaId cta) override;
    void warpFinished(WarpId w) override;

    /** Fraction of warp-cycles spent awake so far (drives the leakage
     *  accounting). */
    double awakeFraction() const;

    bool isDrowsy(WarpId w) const;

    const DrowsyRfConfig &config() const { return cfg; }

  private:
    DrowsyRfConfig cfg;
    std::vector<Cycle> lastAccess; ///< per warp slot
    std::vector<bool> live;
    std::uint64_t awakeWarpCycles = 0;
    std::uint64_t liveWarpCycles = 0;

    CounterBlock::Handle hWakeups, hAwakeWarpCycles, hLiveWarpCycles;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_DROWSY_RF_HH
