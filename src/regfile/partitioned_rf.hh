/**
 * @file
 * The proposed partitioned register file: a small fast partition (FRF) at
 * STV with adaptive back-gate power modes and a large slow partition (SRF)
 * permanently at NTV, fronted by the swapping table and fed by the
 * compiler / pilot-warp / hybrid profiling machinery (Secs. III and IV).
 */

#ifndef PILOTRF_REGFILE_PARTITIONED_RF_HH
#define PILOTRF_REGFILE_PARTITIONED_RF_HH

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "regfile/adaptive_frf.hh"
#include "regfile/pilot_profiler.hh"
#include "regfile/register_file.hh"
#include "regfile/swap_table.hh"

namespace pilotrf::regfile
{

/** Which mechanism chooses the FRF residents. */
enum class Profiling
{
    Static,   ///< first n architected registers (the strawman of Sec. III)
    Compiler, ///< static binary occurrence counts only
    Pilot,    ///< pilot-warp dynamic counts only
    Hybrid,   ///< compiler until the pilot retires, then pilot (proposed)
    Oracle,   ///< externally supplied hot set (post-hoc optimal)
};

const char *toString(Profiling p);

/** Number of Profiling enumerators (bounds the parse/round-trip scan). */
inline constexpr unsigned numProfilings = 5;

/** Inverse of toString(); nullopt for unknown names. */
std::optional<Profiling> parseProfiling(std::string_view name);

struct PartitionedRfConfig
{
    unsigned frfRegs = 4;       ///< FRF register slots per warp (n)
    Profiling profiling = Profiling::Hybrid;
    bool adaptiveFrf = true;    ///< enable FRF_low epochs
    unsigned epochLength = 50;
    unsigned issueThreshold = 85;
    unsigned frfHighLatency = 1;
    unsigned frfLowLatency = 2;
    unsigned srfLatency = 3;    ///< 4/5 for the Sec. V-C sensitivity study
    bool countRemapTraffic = true; ///< account the one-off swap movement
    /** Conservatively charge the swapping-table lookup as an extra
     *  pipeline cycle on every access (Sec. III-B shows the lookup fits
     *  in the register access time; this models the fallback). */
    bool swapTableExtraCycle = false;
};

class PartitionedRf : public RegisterFile
{
  public:
    PartitionedRf(unsigned numBanks, const PartitionedRfConfig &cfg);

    void kernelLaunch(const isa::Kernel &kernel) override;
    unsigned bank(WarpId w, RegId r) const override;
    RfAccess access(WarpId w, RegId r, bool write) override;
    void cycleHook(Cycle now, unsigned issued) override;
    Cycle nextEventCycle(Cycle now) const override;
    void advanceIdle(Cycle first, std::uint64_t n) override;
    void warpStarted(WarpId w, CtaId cta) override;
    void warpFinished(WarpId w) override;

    /** Supply the oracle hot set (Profiling::Oracle only). */
    void setOracleRegisters(const std::vector<RegId> &hot);

    const SwapTable &swapTable() const { return table; }
    const PilotProfiler &pilotProfiler() const { return pilot; }
    const AdaptiveFrfController &adaptive() const { return frfController; }
    const PartitionedRfConfig &config() const { return cfg; }

    /** Registers the pilot identified as hot (empty until it retires). */
    const std::vector<RegId> &pilotHotRegisters() const { return pilotHot; }

  private:
    /** Telemetry: one instant event per valid swap-table entry plus a
     *  summary (hub attached only). */
    void emitSwapEvents(const char *reason, std::uint64_t moves);
    /** Telemetry: back-gate mode counter event when the mode changed. */
    void emitBackgateMode(bool force);

    PartitionedRfConfig cfg;
    SwapTable table;
    PilotProfiler pilot;
    AdaptiveFrfController frfController;
    std::vector<RegId> oracleHot;
    std::vector<RegId> pilotHot;
    unsigned liveWarps = 0;
    bool lastLowMode = false; ///< last back-gate mode the hub saw

    CounterBlock::Handle hSwapLookup, hRemapMoves, hPilotFinish;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_PARTITIONED_RF_HH
