#include "regfile/drowsy_rf.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pilotrf::regfile
{

DrowsyRf::DrowsyRf(unsigned numBanks, const DrowsyRfConfig &cfg_,
                   unsigned warpsPerSm)
    : RegisterFile(numBanks), cfg(cfg_)
{
    panicIf(cfg.drowsyLeakFactor < 0.0 || cfg.drowsyLeakFactor > 1.0,
            "drowsy leak factor out of range");
    lastAccess.assign(warpsPerSm, 0);
    live.assign(warpsPerSm, false);
    hWakeups = ctrs.add("drowsy.wakeups");
    hAwakeWarpCycles = ctrs.add("drowsy.awakeWarpCycles");
    hLiveWarpCycles = ctrs.add("drowsy.liveWarpCycles");
}

void
DrowsyRf::kernelLaunch(const isa::Kernel &kernel)
{
    RegisterFile::kernelLaunch(kernel);
    std::fill(live.begin(), live.end(), false);
}

bool
DrowsyRf::isDrowsy(WarpId w) const
{
    return !live[w] || lastCycle - lastAccess[w] > cfg.drowsyAfter;
}

RfAccess
DrowsyRf::access(WarpId w, RegId r, bool write)
{
    note(rfmodel::RfMode::MrfStv, write);
    noteReg(r);
    unsigned extra = 0;
    if (isDrowsy(w)) {
        extra = cfg.wakeLatency;
        ctrs.inc(hWakeups);
    }
    lastAccess[w] = lastCycle;
    return {1 + extra, 1};
}

void
DrowsyRf::cycleHook(Cycle now, unsigned issued)
{
    RegisterFile::cycleHook(now, issued);
    for (WarpId w = 0; w < live.size(); ++w) {
        if (!live[w])
            continue;
        ++liveWarpCycles;
        if (!isDrowsy(w))
            ++awakeWarpCycles;
    }
    ctrs.set(hAwakeWarpCycles, awakeWarpCycles);
    ctrs.set(hLiveWarpCycles, liveWarpCycles);
}

void
DrowsyRf::advanceIdle(Cycle first, std::uint64_t n)
{
    RegisterFile::advanceIdle(first, n);
    // Closed form of n cycleHook(t, 0) calls: a live warp is awake at
    // cycle t while t <= lastAccess + drowsyAfter (no accesses happen
    // inside a dead span, so lastAccess is frozen).
    const Cycle last = first + n - 1;
    for (WarpId w = 0; w < live.size(); ++w) {
        if (!live[w])
            continue;
        liveWarpCycles += n;
        const Cycle awakeUntil = lastAccess[w] + cfg.drowsyAfter;
        if (awakeUntil >= first)
            awakeWarpCycles += std::min(last, awakeUntil) - first + 1;
    }
    ctrs.set(hAwakeWarpCycles, awakeWarpCycles);
    ctrs.set(hLiveWarpCycles, liveWarpCycles);
}

void
DrowsyRf::warpStarted(WarpId w, CtaId)
{
    live[w] = true;
    lastAccess[w] = lastCycle;
}

void
DrowsyRf::warpFinished(WarpId w)
{
    live[w] = false;
}

double
DrowsyRf::awakeFraction() const
{
    return liveWarpCycles ? double(awakeWarpCycles) / double(liveWarpCycles)
                          : 1.0;
}

} // namespace pilotrf::regfile
