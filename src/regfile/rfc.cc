#include "regfile/rfc.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace pilotrf::regfile
{

RfCacheRf::RfCacheRf(unsigned numBanks, const RfcRfConfig &cfg_,
                     unsigned warpsPerSm)
    : RegisterFile(numBanks), cfg(cfg_)
{
    panicIf(cfg.regsPerWarp == 0, "RFC with no entries per warp");
    hTag = ctrs.add("rfc.tag");
    hWrite = ctrs.add("rfc.write");
    hReadHit = ctrs.add("rfc.readHit");
    hReadMiss = ctrs.add("rfc.readMiss");
    hEvictWb = ctrs.add("rfc.evictWb");
    hFill = ctrs.add("rfc.fill");
    hFlushWb = ctrs.add("rfc.flushWb");
    if (cfg.mrfLatency) {
        mrfLat = cfg.mrfLatency;
    } else {
        static const rfmodel::RfSpecs specs;
        mrfLat = specs.spec(cfg.mrfMode).accessCycles;
    }
    sets.assign(warpsPerSm, std::vector<Entry>(cfg.regsPerWarp));
}

void
RfCacheRf::kernelLaunch(const isa::Kernel &kernel)
{
    RegisterFile::kernelLaunch(kernel);
    for (auto &s : sets)
        for (auto &e : s)
            e = Entry{};
}

void
RfCacheRf::noteInternalMrfWrite()
{
    noteMode(cfg.mrfMode, 1);
}

RfCacheRf::Entry *
RfCacheRf::find(WarpId w, RegId r)
{
    for (auto &e : sets[w])
        if (e.valid && e.reg == r)
            return &e;
    return nullptr;
}

const RfCacheRf::Entry *
RfCacheRf::find(WarpId w, RegId r) const
{
    return const_cast<RfCacheRf *>(this)->find(w, r);
}

RfCacheRf::Entry &
RfCacheRf::victim(WarpId w)
{
    Entry *best = &sets[w][0];
    for (auto &e : sets[w]) {
        if (!e.valid)
            return e;
        if (e.lastUse < best->lastUse)
            best = &e;
    }
    return *best;
}

bool
RfCacheRf::needsBank(WarpId w, RegId r, bool write) const
{
    if (write)
        return false; // results always land in the RFC
    return find(w, r) == nullptr;
}

RfAccess
RfCacheRf::access(WarpId w, RegId r, bool write)
{
    noteReg(r);
    ctrs.inc(hTag);

    if (write) {
        Entry *e = find(w, r);
        if (!e) {
            Entry &v = victim(w);
            if (v.valid && v.dirty) {
                // Write the victim back to the MRF. Internal traffic: it
                // is energy-relevant but not an architected operand
                // access, so only the mode counter advances.
                noteInternalMrfWrite();
                ctrs.inc(hEvictWb);
            }
            v = Entry{r, true, false, 0};
            e = &v;
        }
        e->dirty = true;
        e->lastUse = ++useClock;
        ctrs.inc(hWrite);
        noteWrite();
        return {cfg.rfcLatency, 1};
    }

    if (Entry *e = find(w, r)) {
        e->lastUse = ++useClock;
        ctrs.inc(hReadHit);
        noteRead();
        return {cfg.rfcLatency, 1};
    }
    // Read miss: fetch from the MRF; optionally fill the RFC.
    ctrs.inc(hReadMiss);
    note(cfg.mrfMode, false);
    if (cfg.allocOnReadMiss) {
        Entry &v = victim(w);
        if (v.valid && v.dirty) {
            noteInternalMrfWrite();
            ctrs.inc(hEvictWb);
        }
        v = Entry{r, true, false, ++useClock};
        ctrs.inc(hFill);
    }
    return {mrfLat, 1};
}

void
RfCacheRf::flush(WarpId w)
{
    unsigned written = 0;
    for (auto &e : sets[w]) {
        if (e.valid && e.dirty) {
            noteInternalMrfWrite();
            ctrs.inc(hFlushWb);
            ++written;
        }
        e = Entry{};
    }
    if (traceBuf && traceBuf->wantsStructured()) {
        obs::TraceEvent ev;
        ev.cycle = traceNow;
        ev.sm = traceSm;
        ev.warp = std::int32_t(w);
        ev.categoryName = "swap";
        ev.kind = obs::EventKind::Instant;
        ev.name = "rfc.flush";
        ev.args = {{"writebacks", double(written)}};
        traceBuf->emitStructured(ev);
    }
}

void
RfCacheRf::warpDeactivated(WarpId w)
{
    flush(w);
}

void
RfCacheRf::warpFinished(WarpId w)
{
    flush(w);
}

double
RfCacheRf::readHitRate() const
{
    const double hits = double(ctrs.value(hReadHit));
    const double misses = double(ctrs.value(hReadMiss));
    return hits + misses > 0 ? hits / (hits + misses) : 0.0;
}

} // namespace pilotrf::regfile
