#include "regfile/rfc.hh"

#include <string>

#include "common/logging.hh"

namespace pilotrf::regfile
{

RfCacheRf::RfCacheRf(unsigned numBanks, const RfcRfConfig &cfg_,
                     unsigned warpsPerSm)
    : RegisterFile(numBanks), cfg(cfg_)
{
    panicIf(cfg.regsPerWarp == 0, "RFC with no entries per warp");
    if (cfg.mrfLatency) {
        mrfLat = cfg.mrfLatency;
    } else {
        static const rfmodel::RfSpecs specs;
        mrfLat = specs.spec(cfg.mrfMode).accessCycles;
    }
    sets.assign(warpsPerSm, std::vector<Entry>(cfg.regsPerWarp));
}

void
RfCacheRf::kernelLaunch(const isa::Kernel &kernel)
{
    RegisterFile::kernelLaunch(kernel);
    for (auto &s : sets)
        for (auto &e : s)
            e = Entry{};
}

void
RfCacheRf::noteInternalMrfWrite()
{
    _stats.add(std::string("access.") + rfmodel::toString(cfg.mrfMode), 1);
}

RfCacheRf::Entry *
RfCacheRf::find(WarpId w, RegId r)
{
    for (auto &e : sets[w])
        if (e.valid && e.reg == r)
            return &e;
    return nullptr;
}

const RfCacheRf::Entry *
RfCacheRf::find(WarpId w, RegId r) const
{
    return const_cast<RfCacheRf *>(this)->find(w, r);
}

RfCacheRf::Entry &
RfCacheRf::victim(WarpId w)
{
    Entry *best = &sets[w][0];
    for (auto &e : sets[w]) {
        if (!e.valid)
            return e;
        if (e.lastUse < best->lastUse)
            best = &e;
    }
    return *best;
}

bool
RfCacheRf::needsBank(WarpId w, RegId r, bool write) const
{
    if (write)
        return false; // results always land in the RFC
    return find(w, r) == nullptr;
}

RfAccess
RfCacheRf::access(WarpId w, RegId r, bool write)
{
    noteReg(r);
    _stats.add("rfc.tag", 1);

    if (write) {
        Entry *e = find(w, r);
        if (!e) {
            Entry &v = victim(w);
            if (v.valid && v.dirty) {
                // Write the victim back to the MRF. Internal traffic: it
                // is energy-relevant but not an architected operand
                // access, so only the mode counter advances.
                noteInternalMrfWrite();
                _stats.add("rfc.evictWb", 1);
            }
            v = Entry{r, true, false, 0};
            e = &v;
        }
        e->dirty = true;
        e->lastUse = ++useClock;
        _stats.add("rfc.write", 1);
        _stats.add("access.writes", 1);
        return {cfg.rfcLatency, 1};
    }

    if (Entry *e = find(w, r)) {
        e->lastUse = ++useClock;
        _stats.add("rfc.readHit", 1);
        _stats.add("access.reads", 1);
        return {cfg.rfcLatency, 1};
    }
    // Read miss: fetch from the MRF; optionally fill the RFC.
    _stats.add("rfc.readMiss", 1);
    note(cfg.mrfMode, false);
    if (cfg.allocOnReadMiss) {
        Entry &v = victim(w);
        if (v.valid && v.dirty) {
            noteInternalMrfWrite();
            _stats.add("rfc.evictWb", 1);
        }
        v = Entry{r, true, false, ++useClock};
        _stats.add("rfc.fill", 1);
    }
    return {mrfLat, 1};
}

void
RfCacheRf::flush(WarpId w)
{
    for (auto &e : sets[w]) {
        if (e.valid && e.dirty) {
            noteInternalMrfWrite();
            _stats.add("rfc.flushWb", 1);
        }
        e = Entry{};
    }
}

void
RfCacheRf::warpDeactivated(WarpId w)
{
    flush(w);
}

void
RfCacheRf::warpFinished(WarpId w)
{
    flush(w);
}

double
RfCacheRf::readHitRate() const
{
    const double hits = _stats.get("rfc.readHit");
    const double misses = _stats.get("rfc.readMiss");
    return hits + misses > 0 ? hits / (hits + misses) : 0.0;
}

} // namespace pilotrf::regfile
