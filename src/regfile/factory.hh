/**
 * @file
 * The one registration point for register-file backends: maps the
 * configured `sim::RfKind` to a constructed backend. New backends plug in
 * here and become reachable from the Gpu, the tests and the examples
 * without touching the SM model.
 */

#ifndef PILOTRF_REGFILE_FACTORY_HH
#define PILOTRF_REGFILE_FACTORY_HH

#include <memory>

namespace pilotrf::sim
{
struct SimConfig;
}

namespace pilotrf::regfile
{

class RegisterFile;

/** Construct the RF backend selected by `cfg.rfKind`, sized and tuned
 *  from the matching nested config (prf / rfc / drowsy). */
std::unique_ptr<RegisterFile> makeRegisterFile(const sim::SimConfig &cfg);

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_FACTORY_HH
