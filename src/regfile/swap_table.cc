#include "regfile/swap_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pilotrf::regfile
{

SwapTable::SwapTable(unsigned frfRegs) : frf(frfRegs)
{
    panicIf(frf == 0, "swap table with zero FRF registers");
    table.resize(2 * frf);
    reset();
}

void
SwapTable::reset()
{
    for (auto &e : table)
        e = Entry{};
    ++nPrograms;
}

void
SwapTable::program(const std::vector<RegId> &hotRegs)
{
    reset();

    // Hot registers that already live in the FRF default range keep their
    // slots; the remaining hot registers displace the coldest default
    // residents, lowest slot first (Sec. III-B example).
    std::vector<bool> slotTaken(frf, false);
    std::vector<RegId> toPlace;
    for (unsigned i = 0; i < hotRegs.size() && i < frf; ++i) {
        const RegId h = hotRegs[i];
        if (h < frf)
            slotTaken[h] = true;
        else
            toPlace.push_back(h);
    }

    unsigned e = 0;
    RegId slot = 0;
    for (RegId h : toPlace) {
        while (slot < frf && slotTaken[slot])
            ++slot;
        panicIf(slot >= frf, "swap table out of FRF slots");
        // h now lives in FRF slot `slot`; the displaced register `slot`
        // takes h's SRF home.
        table[e++] = {true, h, slot};
        table[e++] = {true, slot, h};
        slotTaken[slot] = true;
    }
    ++nPrograms;
}

RegId
SwapTable::lookup(RegId r) const
{
    ++nLookups;
    for (const auto &e : table)
        if (e.valid && e.archReg == r)
            return e.mappedReg;
    return r;
}

unsigned
SwapTable::validEntries() const
{
    unsigned n = 0;
    for (const auto &e : table)
        n += e.valid;
    return n;
}

} // namespace pilotrf::regfile
