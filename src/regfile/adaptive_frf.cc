#include "regfile/adaptive_frf.hh"

#include "common/logging.hh"

namespace pilotrf::regfile
{

AdaptiveFrfController::AdaptiveFrfController(unsigned epochLength,
                                             unsigned threshold)
    : epochLen(epochLength), thresh(threshold)
{
    panicIf(epochLen == 0, "adaptive FRF with zero epoch length");
}

void
AdaptiveFrfController::cycle(unsigned issued)
{
    // 9-bit hardware counter saturates at 511.
    issuedInEpoch = std::min(511u, issuedInEpoch + issued);
    if (++cycleInEpoch < epochLen)
        return;
    lowMode = issuedInEpoch < thresh;
    ++nEpochs;
    if (lowMode)
        ++nLowEpochs;
    cycleInEpoch = 0;
    issuedInEpoch = 0;
}

void
AdaptiveFrfController::advanceIdle(std::uint64_t n)
{
    const std::uint64_t toBoundary = epochLen - cycleInEpoch;
    if (n < toBoundary) {
        cycleInEpoch += unsigned(n);
        return;
    }
    // The partially-filled epoch completes with whatever was already
    // tallied before the idle span began.
    lowMode = issuedInEpoch < thresh;
    ++nEpochs;
    if (lowMode)
        ++nLowEpochs;
    issuedInEpoch = 0;
    n -= toBoundary;

    // Any number of whole all-idle epochs: each tallies zero issues.
    const std::uint64_t whole = n / epochLen;
    if (whole) {
        lowMode = 0 < thresh;
        nEpochs += whole;
        if (lowMode)
            nLowEpochs += whole;
    }
    cycleInEpoch = unsigned(n % epochLen);
}

void
AdaptiveFrfController::reset()
{
    cycleInEpoch = 0;
    issuedInEpoch = 0;
    lowMode = false;
}

} // namespace pilotrf::regfile
