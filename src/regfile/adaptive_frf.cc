#include "regfile/adaptive_frf.hh"

#include "common/logging.hh"

namespace pilotrf::regfile
{

AdaptiveFrfController::AdaptiveFrfController(unsigned epochLength,
                                             unsigned threshold)
    : epochLen(epochLength), thresh(threshold)
{
    panicIf(epochLen == 0, "adaptive FRF with zero epoch length");
}

void
AdaptiveFrfController::cycle(unsigned issued)
{
    // 9-bit hardware counter saturates at 511.
    issuedInEpoch = std::min(511u, issuedInEpoch + issued);
    if (++cycleInEpoch < epochLen)
        return;
    lowMode = issuedInEpoch < thresh;
    ++nEpochs;
    if (lowMode)
        ++nLowEpochs;
    cycleInEpoch = 0;
    issuedInEpoch = 0;
}

void
AdaptiveFrfController::reset()
{
    cycleInEpoch = 0;
    issuedInEpoch = 0;
    lowMode = false;
}

} // namespace pilotrf::regfile
