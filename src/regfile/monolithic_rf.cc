#include "regfile/monolithic_rf.hh"

#include "common/logging.hh"

namespace pilotrf::regfile
{

MonolithicRf::MonolithicRf(unsigned numBanks, rfmodel::RfMode mode_,
                           unsigned latencyOverride)
    : RegisterFile(numBanks), mode(mode_)
{
    panicIf(mode != rfmodel::RfMode::MrfStv && mode != rfmodel::RfMode::MrfNtv,
            "MonolithicRf mode must be MrfStv or MrfNtv");
    if (latencyOverride) {
        lat = latencyOverride;
    } else {
        static const rfmodel::RfSpecs specs;
        lat = specs.spec(mode).accessCycles;
    }
}

RfAccess
MonolithicRf::access(WarpId w, RegId r, bool write)
{
    (void)w;
    note(mode, write);
    noteReg(r);
    // Banks are pipelined (one request per cycle) at both operating
    // points, as in GPGPU-Sim's operand-collector model; NTV only
    // lengthens the read latency.
    return {lat, 1};
}

} // namespace pilotrf::regfile
