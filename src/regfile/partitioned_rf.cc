#include "regfile/partitioned_rf.hh"

#include "common/logging.hh"
#include "isa/static_profiler.hh"
#include "obs/trace.hh"

namespace pilotrf::regfile
{

const char *
toString(Profiling p)
{
    switch (p) {
      case Profiling::Static: return "static";
      case Profiling::Compiler: return "compiler";
      case Profiling::Pilot: return "pilot";
      case Profiling::Hybrid: return "hybrid";
      case Profiling::Oracle: return "oracle";
    }
    return "?";
}

std::optional<Profiling>
parseProfiling(std::string_view name)
{
    for (unsigned p = 0; p < numProfilings; ++p)
        if (name == toString(Profiling(p)))
            return Profiling(p);
    return std::nullopt;
}

PartitionedRf::PartitionedRf(unsigned numBanks,
                             const PartitionedRfConfig &cfg_)
    : RegisterFile(numBanks), cfg(cfg_), table(cfg_.frfRegs),
      frfController(cfg_.epochLength, cfg_.issueThreshold)
{
    panicIf(cfg.frfRegs == 0, "partitioned RF with empty FRF");
    hSwapLookup = ctrs.add("swap.lookup");
    hRemapMoves = ctrs.add("swap.remapMoves");
    hPilotFinish = ctrs.add("pilot.finishCycle");
}

void
PartitionedRf::kernelLaunch(const isa::Kernel &kernel)
{
    table.reset();
    frfController.reset();
    pilotHot.clear();
    liveWarps = 0;

    const bool usesPilot = cfg.profiling == Profiling::Pilot ||
                           cfg.profiling == Profiling::Hybrid;
    if (usesPilot)
        pilot.kernelLaunch();

    switch (cfg.profiling) {
      case Profiling::Static:
      case Profiling::Pilot:
        break; // identity mapping until (if ever) the pilot reprograms it
      case Profiling::Compiler:
      case Profiling::Hybrid: {
        isa::StaticProfile prof(kernel);
        table.program(prof.topRegisters(cfg.frfRegs));
        break;
      }
      case Profiling::Oracle:
        table.program(oracleHot);
        break;
    }
    if (traceBuf && traceBuf->wantsStructured()) {
        emitSwapEvents("launch", 0);
        emitBackgateMode(/*force=*/true);
    }
}

void
PartitionedRf::emitSwapEvents(const char *reason, std::uint64_t moves)
{
    obs::TraceEvent ev;
    ev.cycle = traceNow;
    ev.sm = traceSm;
    ev.categoryName = "swap";
    ev.kind = obs::EventKind::Instant;
    ev.name = std::string("swap.") + reason;
    ev.args = {{"entries", double(table.validEntries())},
               {"moves", double(moves)}};
    traceBuf->emitStructured(ev);

    for (const auto &e : table.entries()) {
        if (!e.valid)
            continue;
        obs::TraceEvent pair;
        pair.cycle = traceNow;
        pair.sm = traceSm;
        pair.categoryName = "swap";
        pair.kind = obs::EventKind::Instant;
        pair.name = "swap.map";
        pair.args = {{"arch", double(e.archReg)},
                     {"phys", double(e.mappedReg)}};
        traceBuf->emitStructured(pair);
    }
}

void
PartitionedRf::emitBackgateMode(bool force)
{
    if (!traceBuf || !traceBuf->wantsStructured())
        return;
    const bool low = cfg.adaptiveFrf && frfController.lowPowerMode();
    if (!force && low == lastLowMode)
        return;
    lastLowMode = low;
    obs::TraceEvent ev;
    ev.cycle = traceNow;
    ev.sm = traceSm;
    ev.categoryName = "backgate";
    ev.kind = obs::EventKind::Counter;
    ev.name = "frf.backgate";
    ev.args = {{"low", low ? 1.0 : 0.0}};
    traceBuf->emitStructured(ev);
}

void
PartitionedRf::setOracleRegisters(const std::vector<RegId> &hot)
{
    oracleHot = hot;
}

unsigned
PartitionedRf::bank(WarpId w, RegId r) const
{
    return (w + table.lookup(r)) % banks;
}

RfAccess
PartitionedRf::access(WarpId w, RegId r, bool write)
{
    pilot.noteAccess(w, r);
    noteReg(r);
    ctrs.inc(hSwapLookup);

    const unsigned extra = cfg.swapTableExtraCycle ? 1 : 0;
    const RegId phys = table.lookup(r);
    if (phys < cfg.frfRegs) {
        // The FRF runs at STV and stays pipelined in both power modes.
        const bool low = cfg.adaptiveFrf && frfController.lowPowerMode();
        note(low ? rfmodel::RfMode::FrfLow : rfmodel::RfMode::FrfHigh,
             write);
        return {(low ? cfg.frfLowLatency : cfg.frfHighLatency) + extra, 1};
    }
    note(rfmodel::RfMode::Srf, write);
    return {cfg.srfLatency + extra, 1};
}

void
PartitionedRf::cycleHook(Cycle now, unsigned issued)
{
    RegisterFile::cycleHook(now, issued);
    if (cfg.adaptiveFrf)
        frfController.cycle(issued);
    if (traceBuf)
        emitBackgateMode(/*force=*/false);
}

Cycle
PartitionedRf::nextEventCycle(Cycle now) const
{
    // Epoch boundaries flip the back-gate mode, which is observable from
    // outside only through a structured trace sink (emitBackgateMode
    // stamps the exact flip cycle). With such a sink attached, the only
    // boundary that can emit during an idle span is the high->low flip:
    // an idle epoch's tally is zero, so once the mode is low it stays
    // low through any amount of idleness and boundaries emit nothing.
    // Clamp the horizon to the next boundary only while the mode is
    // still high; in low mode (and without a sink) the controller
    // fast-forwards in closed form (advanceIdle) with no horizon.
    if (cfg.adaptiveFrf && traceBuf && traceBuf->wantsStructured() &&
        !frfController.lowPowerMode())
        return now + frfController.cyclesToBoundary() - 1;
    return kNeverCycle;
}

void
PartitionedRf::advanceIdle(Cycle first, std::uint64_t n)
{
    RegisterFile::advanceIdle(first, n);
    if (cfg.adaptiveFrf)
        frfController.advanceIdle(n);
}

void
PartitionedRf::warpStarted(WarpId w, CtaId cta)
{
    (void)cta;
    ++liveWarps;
    pilot.warpStarted(w);
}

void
PartitionedRf::warpFinished(WarpId w)
{
    if (liveWarps)
        --liveWarps;
    if (!pilot.warpFinished(w))
        return;

    // The pilot retired: reprogram the table from the dynamic counters
    // (Fig. 6c: reset to the original mapping, then apply the new one).
    pilotHot = pilot.topRegisters(cfg.frfRegs);
    table.program(pilotHot);
    ctrs.set(hPilotFinish, lastCycle);

    if (cfg.countRemapTraffic) {
        // Physically relocating the swapped registers costs one read and
        // one write per moved register per live warp; count them as one
        // FRF and one SRF access each way.
        const unsigned movedPairs = table.validEntries() / 2;
        const std::uint64_t moves =
            std::uint64_t(movedPairs) * (liveWarps + 1);
        noteMode(rfmodel::RfMode::FrfHigh, 2 * moves);
        noteMode(rfmodel::RfMode::Srf, 2 * moves);
        ctrs.inc(hRemapMoves, 2 * moves);
        if (traceBuf && traceBuf->wantsStructured())
            emitSwapEvents("pilot", 2 * moves);
    } else if (traceBuf && traceBuf->wantsStructured()) {
        emitSwapEvents("pilot", 0);
    }
}

} // namespace pilotrf::regfile
