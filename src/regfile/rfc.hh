/**
 * @file
 * Hierarchical register-file cache (RFC) baseline, after Gebhart et al.
 * (ISCA 2011) — the comparison point of Sec. V-D.
 *
 * Each active warp owns a small fully-associative set of register entries.
 * Instruction results allocate into the RFC (write-allocate, write-back);
 * read hits avoid the MRF; read misses go straight to the MRF without
 * allocating. When the two-level scheduler demotes a warp from the active
 * pool its RFC entries are flushed (dirty ones written back to the MRF).
 */

#ifndef PILOTRF_REGFILE_RFC_HH
#define PILOTRF_REGFILE_RFC_HH

#include <cstdint>
#include <vector>

#include "regfile/register_file.hh"

namespace pilotrf::regfile
{

struct RfcRfConfig
{
    unsigned regsPerWarp = 6;  ///< RFC entries per warp
    rfmodel::RfMode mrfMode = rfmodel::RfMode::MrfNtv; ///< backing MRF
    unsigned mrfLatency = 0;   ///< 0: from the array model
    unsigned rfcLatency = 1;   ///< RFC hit latency
    /** Porting/banking of the RFC structure (energy accounting). */
    unsigned readPorts = 2;
    unsigned writePorts = 1;
    unsigned rfcBanks = 1;
    /** Fill the RFC with operands fetched on read misses (the baseline
     *  Gebhart design); the fill evicts LRU entries and thrashes the
     *  small per-warp set on register-rich code. */
    bool allocOnReadMiss = true;
};

class RfCacheRf : public RegisterFile
{
  public:
    RfCacheRf(unsigned numBanks, const RfcRfConfig &cfg,
              unsigned warpsPerSm);

    void kernelLaunch(const isa::Kernel &kernel) override;
    bool needsBank(WarpId w, RegId r, bool write) const override;
    RfAccess access(WarpId w, RegId r, bool write) override;
    void warpDeactivated(WarpId w) override;
    void warpFinished(WarpId w) override;

    /** Read hit rate so far (tag checks on reads that hit). */
    double readHitRate() const;

    const RfcRfConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        RegId reg = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    void noteInternalMrfWrite();
    Entry *find(WarpId w, RegId r);
    const Entry *find(WarpId w, RegId r) const;
    Entry &victim(WarpId w);
    void flush(WarpId w);

    RfcRfConfig cfg;
    unsigned mrfLat;
    std::vector<std::vector<Entry>> sets; // [warp][entry]
    std::uint64_t useClock = 0;

    CounterBlock::Handle hTag, hWrite, hReadHit, hReadMiss, hEvictWb,
        hFill, hFlushWb;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_RFC_HH
