/**
 * @file
 * The register swapping table (Sec. III-B).
 *
 * A 2n-entry mapping structure that swaps up to n highly-accessed
 * architected registers into the FRF's n default slots. Both the CAM and
 * the direct-indexed organization are provided; they are architecturally
 * equivalent (the paper found their energy/delay differences negligible at
 * this size).
 */

#ifndef PILOTRF_REGFILE_SWAP_TABLE_HH
#define PILOTRF_REGFILE_SWAP_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pilotrf::regfile
{

/**
 * Functional swapping table. Registers r < frfRegs live in the FRF by
 * default; program() installs swap pairs so the given hot registers map
 * into FRF slots while the displaced cold registers take their SRF homes.
 */
class SwapTable
{
  public:
    /** @param frfRegs number of per-warp register slots in the FRF (n). */
    explicit SwapTable(unsigned frfRegs);

    /** Invalidate all entries: identity mapping (Fig. 6a). */
    void reset();

    /**
     * Map the given hot registers into the FRF (Fig. 6b/6c). Hot registers
     * already inside the FRF's default range keep their slots; the others
     * are pairwise swapped with the coldest default FRF residents.
     *
     * @param hotRegs highly-accessed registers, most accessed first; at
     *        most frfRegs entries are honoured.
     */
    void program(const std::vector<RegId> &hotRegs);

    /** Physical register location of architected register r (CAM search
     *  followed by identity fallback). */
    RegId lookup(RegId r) const;

    /** True if r currently resides in the FRF partition. */
    bool inFrf(RegId r) const { return lookup(r) < frf; }

    /** Number of valid entries (<= 2n). */
    unsigned validEntries() const;

    /** Lookups performed since construction (energy accounting). */
    std::uint64_t lookups() const { return nLookups; }

    /** Times program()/reset() rewrote the table. */
    std::uint64_t reprograms() const { return nPrograms; }

    unsigned frfRegs() const { return frf; }

    /** Table entry: architected register -> current physical location. */
    struct Entry
    {
        bool valid = false;
        RegId archReg = 0;
        RegId mappedReg = 0;
    };

    /** Raw entries, for tests and the walkthrough example (Fig. 7). */
    const std::vector<Entry> &entries() const { return table; }

  private:
    unsigned frf;
    std::vector<Entry> table; // 2n entries
    mutable std::uint64_t nLookups = 0;
    std::uint64_t nPrograms = 0;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_SWAP_TABLE_HH
