#include "regfile/factory.hh"

#include "common/logging.hh"
#include "regfile/drowsy_rf.hh"
#include "regfile/monolithic_rf.hh"
#include "regfile/partitioned_rf.hh"
#include "regfile/rfc.hh"
#include "sim/sim_config.hh" // data members only; no sim-layer link dep

namespace pilotrf::regfile
{

std::unique_ptr<RegisterFile>
makeRegisterFile(const sim::SimConfig &cfg)
{
    switch (cfg.rfKind) {
      case sim::RfKind::MrfStv:
        return std::make_unique<MonolithicRf>(
            cfg.rfBanks, rfmodel::RfMode::MrfStv, cfg.mrfLatencyOverride);
      case sim::RfKind::MrfNtv:
        return std::make_unique<MonolithicRf>(
            cfg.rfBanks, rfmodel::RfMode::MrfNtv, cfg.mrfLatencyOverride);
      case sim::RfKind::Partitioned:
        return std::make_unique<PartitionedRf>(cfg.rfBanks, cfg.prf);
      case sim::RfKind::Rfc:
        return std::make_unique<RfCacheRf>(cfg.rfBanks, cfg.rfc,
                                           cfg.warpsPerSm);
      case sim::RfKind::Drowsy:
        return std::make_unique<DrowsyRf>(cfg.rfBanks, cfg.drowsy,
                                          cfg.warpsPerSm);
    }
    panic("unknown RfKind");
}

} // namespace pilotrf::regfile
