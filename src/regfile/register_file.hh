/**
 * @file
 * Abstract register-file backend interface consumed by the SM model.
 *
 * A backend answers three questions for every operand access: does it need
 * a main-RF bank port, which bank, and — once granted — what latency does
 * the access take. Backends internally count every access by physical
 * structure and power mode; the power library converts those counts into
 * energy using the FinCACTI-style models.
 */

#ifndef PILOTRF_REGFILE_REGISTER_FILE_HH
#define PILOTRF_REGFILE_REGISTER_FILE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/counters.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/kernel.hh"
#include "rfmodel/rf_specs.hh"

namespace pilotrf::obs
{
class TraceBuffer;
}

namespace pilotrf::regfile
{

/**
 * Result of one register access.
 *
 * Banks accept one request per cycle (the arrays are pipelined, as in
 * GPGPU-Sim's operand-collector model); `busy` lets a backend model a
 * non-pipelined array by occupying its bank for several cycles.
 */
struct RfAccess
{
    unsigned latency; ///< cycles until data is available
    unsigned busy;    ///< cycles the serving bank stays occupied
};

/**
 * Per-SM register file backend. One instance per SM.
 */
class RegisterFile
{
  public:
    explicit RegisterFile(unsigned numBanks);
    virtual ~RegisterFile() = default;

    /** A new kernel starts on this SM: reset profiling/mapping state. */
    virtual void kernelLaunch(const isa::Kernel &kernel);

    /** Does this access need a main-RF bank port? (RFC hits do not.) */
    virtual bool needsBank(WarpId w, RegId r, bool write) const;

    /** Physical bank serving the access (valid when needsBank()). */
    virtual unsigned bank(WarpId w, RegId r) const;

    /**
     * Perform the access: record energy events and return the access
     * latency and bank occupancy in cycles.
     */
    virtual RfAccess access(WarpId w, RegId r, bool write) = 0;

    /** Called once per cycle with the number of instructions the SM
     *  issued this cycle (drives the adaptive-FRF phase detector). */
    virtual void cycleHook(Cycle now, unsigned issued);

    /**
     * Event-horizon contract, part 1: the earliest cycle >= now at which
     * this backend's externally observable behaviour can change *without
     * any SM activity* — e.g. an adaptive-FRF epoch boundary that must
     * emit a back-gate trace event at its exact cycle. kNeverCycle means
     * the backend is closed-form under idleness (see advanceIdle()) and
     * imposes no horizon of its own.
     */
    virtual Cycle nextEventCycle(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /**
     * Event-horizon contract, part 2: the SM fast-forwarded over the dead
     * cycles [first, first + n). Reproduce the exact cumulative effect of
     * n consecutive cycleHook(t, 0) calls (t = first .. first + n - 1) in
     * closed form: counters, epoch state and leakage accounting must end
     * up bit-identical to single-stepping. Overrides must call the base,
     * which advances the lastCycle / trace clocks to the last skipped
     * cycle.
     */
    virtual void advanceIdle(Cycle first, std::uint64_t n)
    {
        lastCycle = first + n - 1;
        traceNow = lastCycle;
    }

    /** Warp lifecycle notifications (pilot selection / retirement). */
    virtual void warpStarted(WarpId w, CtaId cta);
    virtual void warpFinished(WarpId w);

    /** Two-level scheduler notifications (RFC active-pool management). */
    virtual void warpActivated(WarpId w);
    virtual void warpDeactivated(WarpId w);

    /** Per-architected-register dynamic access counts (reads+writes). */
    const std::vector<std::uint64_t> &regAccessCounts() const
    {
        return regCounts;
    }

    /**
     * Reporting view of the backend's statistics. Reading synchronizes
     * the typed counters into the StatSet, so call it at kernel/run
     * boundaries, never per simulated event.
     */
    StatSet &stats()
    {
        ctrs.snapshotInto(_stats);
        return _stats;
    }
    const StatSet &stats() const
    {
        ctrs.snapshotInto(_stats);
        return _stats;
    }

    /** The typed counters behind stats() (registration + raw values). */
    const CounterBlock &counters() const { return ctrs; }

    /**
     * Attach the owning SM's trace buffer (and id) so the backend can
     * emit telemetry events — swap-table movements, back-gate
     * transitions, RFC flushes — through the same shard-safe emission
     * path as the SM's own trace points. Null detaches; with no buffer
     * (or no structured sink behind it) the telemetry points cost one
     * predictable branch each.
     */
    void attachTrace(obs::TraceBuffer *buf, SmId sm)
    {
        traceBuf = buf;
        traceSm = sm;
    }

    /**
     * Advance the timestamp stamped on emitted trace events. The SM calls
     * this at the top of every cycle — before the issue stage, which can
     * retire warps (and emit swap telemetry) ahead of cycleHook()'s
     * lastCycle update — so backend events carry the in-progress cycle,
     * keeping per-track timestamps monotonic in exported traces.
     */
    void noteCycle(Cycle now) { traceNow = now; }

    unsigned numBanks() const { return banks; }

  protected:
    /** Count one access in the given structure/power mode. */
    void note(rfmodel::RfMode m, bool write)
    {
        ctrs.inc(hAccessMode[unsigned(m)]);
        ctrs.inc(write ? hWrites : hReads);
    }

    /** Count n accesses against one structure/power mode (bulk traffic,
     *  e.g. the partitioned RF's one-off remap movement). */
    void noteMode(rfmodel::RfMode m, std::uint64_t n)
    {
        ctrs.inc(hAccessMode[unsigned(m)], n);
    }

    /** Count an architected read/write served without a mode access
     *  (e.g. an RFC hit: the operand never touches a main-RF array). */
    void noteRead() { ctrs.inc(hReads); }
    void noteWrite() { ctrs.inc(hWrites); }

    /** Count the access against the architected register distribution. */
    void noteReg(RegId r);

    unsigned banks;
    Cycle lastCycle = 0;
    Cycle traceNow = 0; ///< see noteCycle()
    obs::TraceBuffer *traceBuf = nullptr; ///< the SM's buffer (not owned)
    SmId traceSm = 0; ///< SM id stamped on emitted events
    CounterBlock ctrs; ///< typed counters; backends add their own
    mutable StatSet _stats; ///< reporting snapshot, rebuilt by stats()
    std::vector<std::uint64_t> regCounts;

  private:
    /** access.<mode> counter per RfMode, registered at construction. */
    std::array<CounterBlock::Handle, rfmodel::numRfModes> hAccessMode;
    CounterBlock::Handle hReads, hWrites;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_REGISTER_FILE_HH
