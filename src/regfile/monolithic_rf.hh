/**
 * @file
 * Baseline monolithic register files: the power-aggressive MRF at STV
 * (1-cycle access) and the naive all-NTV MRF (3-cycle access, the design
 * that loses 7.1% performance in Sec. V-C).
 */

#ifndef PILOTRF_REGFILE_MONOLITHIC_RF_HH
#define PILOTRF_REGFILE_MONOLITHIC_RF_HH

#include "regfile/register_file.hh"

namespace pilotrf::regfile
{

class MonolithicRf : public RegisterFile
{
  public:
    /**
     * @param numBanks register banks
     * @param mode MrfStv or MrfNtv
     * @param latencyOverride 0: use the array model's cycle count;
     *        otherwise force this access latency (sensitivity studies)
     */
    MonolithicRf(unsigned numBanks, rfmodel::RfMode mode,
                 unsigned latencyOverride = 0);

    RfAccess access(WarpId w, RegId r, bool write) override;

    unsigned latency() const { return lat; }

  private:
    rfmodel::RfMode mode;
    unsigned lat;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_MONOLITHIC_RF_HH
