/**
 * @file
 * Pilot-warp profiling hardware model (Sec. III-A.2 / III-B).
 *
 * Per SM: 63 two-byte saturating access counters, a one-byte
 * pilot-warp-id register and a profile mask bit. The pilot warp is the
 * first warp that starts running after a kernel launch; while the mask bit
 * is set every register access of the pilot increments the corresponding
 * counter. When the pilot retires the counters are sorted to produce the
 * highly-accessed register list.
 */

#ifndef PILOTRF_REGFILE_PILOT_PROFILER_HH
#define PILOTRF_REGFILE_PILOT_PROFILER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pilotrf::regfile
{

class PilotProfiler
{
  public:
    PilotProfiler();

    /** New kernel on this SM: set the mask bit, clear counters, forget
     *  the pilot selection. */
    void kernelLaunch();

    /** A warp began execution; the first one becomes the pilot. */
    void warpStarted(WarpId w);

    /** Register access notification from the RF access path: counts only
     *  while the mask bit is set and the warp is the pilot. */
    void noteAccess(WarpId w, RegId r);

    /**
     * A warp retired. Returns true when it was the pilot finishing its
     * profiling run (the caller should then read topRegisters() and
     * reprogram the swapping table).
     */
    bool warpFinished(WarpId w);

    /** The n most accessed registers per the counters, descending; ties
     *  to the lower register id. */
    std::vector<RegId> topRegisters(unsigned n) const;

    /** Raw counter values (hardware width: 16-bit saturating). */
    const std::array<std::uint16_t, maxRegsPerThread> &counters() const
    {
        return counts;
    }

    bool profiling() const { return maskBit; }
    bool pilotSelected() const { return havePilot(); }
    WarpId pilotWarp() const { return pilot; }

  private:
    bool havePilot() const { return pilotValid; }

    std::array<std::uint16_t, maxRegsPerThread> counts{};
    bool maskBit = false;
    bool pilotValid = false;
    WarpId pilot = 0;
};

} // namespace pilotrf::regfile

#endif // PILOTRF_REGFILE_PILOT_PROFILER_HH
