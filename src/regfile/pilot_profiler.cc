#include "regfile/pilot_profiler.hh"

#include "isa/static_profiler.hh"

namespace pilotrf::regfile
{

PilotProfiler::PilotProfiler()
{
    counts.fill(0);
}

void
PilotProfiler::kernelLaunch()
{
    counts.fill(0);
    maskBit = true;
    pilotValid = false;
}

void
PilotProfiler::warpStarted(WarpId w)
{
    if (maskBit && !pilotValid) {
        pilot = w;
        pilotValid = true;
    }
}

void
PilotProfiler::noteAccess(WarpId w, RegId r)
{
    if (!maskBit || !pilotValid || w != pilot)
        return;
    if (r < counts.size() && counts[r] != 0xffff)
        ++counts[r];
}

bool
PilotProfiler::warpFinished(WarpId w)
{
    if (!maskBit || !pilotValid || w != pilot)
        return false;
    maskBit = false;
    return true;
}

std::vector<RegId>
PilotProfiler::topRegisters(unsigned n) const
{
    std::vector<std::uint64_t> v(counts.begin(), counts.end());
    auto ranked = isa::rankRegisters(v, n);
    // Drop registers that were never accessed: they are not "highly
    // accessed" no matter their rank.
    while (!ranked.empty() && counts[ranked.back()] == 0)
        ranked.pop_back();
    return ranked;
}

} // namespace pilotrf::regfile
