#include "regfile/register_file.hh"

#include <string>

namespace pilotrf::regfile
{

RegisterFile::RegisterFile(unsigned numBanks) : banks(numBanks)
{
    regCounts.assign(maxRegsPerThread, 0);
}

void
RegisterFile::kernelLaunch(const isa::Kernel &kernel)
{
    (void)kernel;
}

bool
RegisterFile::needsBank(WarpId, RegId, bool) const
{
    return true;
}

unsigned
RegisterFile::bank(WarpId w, RegId r) const
{
    return (w + r) % banks;
}

void
RegisterFile::cycleHook(Cycle now, unsigned)
{
    lastCycle = now;
}

void
RegisterFile::warpStarted(WarpId, CtaId)
{
}

void
RegisterFile::warpFinished(WarpId)
{
}

void
RegisterFile::warpActivated(WarpId)
{
}

void
RegisterFile::warpDeactivated(WarpId)
{
}

void
RegisterFile::note(rfmodel::RfMode m, bool write)
{
    _stats.add(std::string("access.") + rfmodel::toString(m), 1);
    _stats.add(write ? "access.writes" : "access.reads", 1);
}

void
RegisterFile::noteReg(RegId r)
{
    if (r < regCounts.size())
        ++regCounts[r];
}

} // namespace pilotrf::regfile
