#include "regfile/register_file.hh"

#include <string>

namespace pilotrf::regfile
{

RegisterFile::RegisterFile(unsigned numBanks) : banks(numBanks)
{
    regCounts.assign(maxRegsPerThread, 0);
    for (unsigned m = 0; m < rfmodel::numRfModes; ++m) {
        hAccessMode[m] = ctrs.add(
            std::string("access.") + rfmodel::toString(rfmodel::RfMode(m)));
    }
    hReads = ctrs.add("access.reads");
    hWrites = ctrs.add("access.writes");
}

void
RegisterFile::kernelLaunch(const isa::Kernel &kernel)
{
    (void)kernel;
}

bool
RegisterFile::needsBank(WarpId, RegId, bool) const
{
    return true;
}

unsigned
RegisterFile::bank(WarpId w, RegId r) const
{
    return (w + r) % banks;
}

void
RegisterFile::cycleHook(Cycle now, unsigned)
{
    lastCycle = now;
    traceNow = now; // keep trace stamps sane without a driving SM
}

void
RegisterFile::warpStarted(WarpId, CtaId)
{
}

void
RegisterFile::warpFinished(WarpId)
{
}

void
RegisterFile::warpActivated(WarpId)
{
}

void
RegisterFile::warpDeactivated(WarpId)
{
}

void
RegisterFile::noteReg(RegId r)
{
    if (r < regCounts.size())
        ++regCounts[r];
}

} // namespace pilotrf::regfile
