#include "power/energy_accountant.hh"

#include "common/logging.hh"
#include "rfmodel/swap_table_rtl.hh"

namespace pilotrf::power
{

using rfmodel::RfMode;

EnergyAccountant::EnergyAccountant(double clockHz_) : clockHz(clockHz_)
{
    panicIf(clockHz <= 0.0, "non-positive clock frequency");
}

double
EnergyAccountant::leakagePowerMw(const sim::SimConfig &cfg) const
{
    switch (cfg.rfKind) {
      case sim::RfKind::MrfStv:
        return _specs.spec(RfMode::MrfStv).leakagePowerMw;
      case sim::RfKind::MrfNtv:
      case sim::RfKind::Rfc: // RFC backs onto the (usually NTV) MRF
        return cfg.rfc.mrfMode == RfMode::MrfStv &&
                       cfg.rfKind == sim::RfKind::Rfc
                   ? _specs.spec(RfMode::MrfStv).leakagePowerMw
                   : _specs.spec(RfMode::MrfNtv).leakagePowerMw;
      case sim::RfKind::Partitioned:
        return _specs.spec(RfMode::FrfHigh).leakagePowerMw +
               _specs.spec(RfMode::Srf).leakagePowerMw;
      case sim::RfKind::Drowsy:
        // Nominal (all awake); account() applies the awake fraction.
        return _specs.spec(RfMode::MrfStv).leakagePowerMw;
    }
    panic("unknown RfKind");
}

EnergyReport
EnergyAccountant::account(const sim::SimConfig &cfg, const StatSet &rf,
                          std::uint64_t cycles) const
{
    EnergyReport rep;

    auto count = [&](RfMode m) {
        return rf.get(std::string("access.") + rfmodel::toString(m));
    };

    rep.frfPj = count(RfMode::FrfHigh) *
                    _specs.spec(RfMode::FrfHigh).accessEnergyPj +
                count(RfMode::FrfLow) *
                    _specs.spec(RfMode::FrfLow).accessEnergyPj;
    rep.srfPj = count(RfMode::Srf) * _specs.spec(RfMode::Srf).accessEnergyPj;
    rep.mrfPj = count(RfMode::MrfStv) *
                    _specs.spec(RfMode::MrfStv).accessEnergyPj +
                count(RfMode::MrfNtv) *
                    _specs.spec(RfMode::MrfNtv).accessEnergyPj;

    if (cfg.rfKind == sim::RfKind::Rfc) {
        rfmodel::RfcConfig rc;
        rc.regsPerWarp = cfg.rfc.regsPerWarp;
        rc.activeWarps = cfg.policy == sim::SchedulerPolicy::TwoLevel
                             ? cfg.tlActiveWarps
                             : cfg.warpsPerSm;
        rc.readPorts = cfg.rfc.readPorts;
        rc.writePorts = cfg.rfc.writePorts;
        rc.banks = cfg.rfc.rfcBanks;
        rfmodel::RfcModel model(rc);
        const double dataAccesses = rf.get("rfc.readHit") +
                                    rf.get("rfc.write") +
                                    rf.get("rfc.fill");
        rep.rfcPj = dataAccesses * model.accessEnergyPj() +
                    rf.get("rfc.tag") * model.tagEnergyPj();
    }

    rfmodel::SwapTableRtl swapRtl(cfg.prf.frfRegs);
    rep.overheadPj = rf.get("swap.lookup") * swapRtl.lookupEnergyPj();

    rep.dynamicPj =
        rep.frfPj + rep.srfPj + rep.mrfPj + rep.rfcPj + rep.overheadPj;

    rep.leakagePowerMw = leakagePowerMw(cfg);
    if (cfg.rfKind == sim::RfKind::Drowsy &&
        rf.has("drowsy.liveWarpCycles") &&
        rf.get("drowsy.liveWarpCycles") > 0) {
        const double awake = rf.get("drowsy.awakeWarpCycles") /
                             rf.get("drowsy.liveWarpCycles");
        rep.leakagePowerMw *=
            awake + cfg.drowsy.drowsyLeakFactor * (1.0 - awake);
    }
    rep.runSeconds = double(cycles) / clockHz;
    // mW * s = mJ; express in uJ.
    rep.leakageUj = rep.leakagePowerMw * rep.runSeconds * 1e3;
    return rep;
}

} // namespace pilotrf::power
