/**
 * @file
 * Converts the RF backends' access counters into energy, GPUWattch-style:
 * dynamic energy is counts x per-access energy from the FinCACTI-like
 * models; leakage energy is organization leakage power x runtime.
 */

#ifndef PILOTRF_POWER_ENERGY_ACCOUNTANT_HH
#define PILOTRF_POWER_ENERGY_ACCOUNTANT_HH

#include "common/stats.hh"
#include "rfmodel/rf_specs.hh"
#include "rfmodel/rfc_model.hh"
#include "sim/sim_config.hh"

namespace pilotrf::power
{

/** Energy breakdown of one run. */
struct EnergyReport
{
    double dynamicPj = 0.0;     ///< total RF dynamic energy
    double frfPj = 0.0;         ///< FRF share (high + low modes)
    double srfPj = 0.0;         ///< SRF share
    double mrfPj = 0.0;         ///< monolithic MRF share
    double rfcPj = 0.0;         ///< RFC data + tag share
    double overheadPj = 0.0;    ///< swapping-table lookups etc.
    double leakagePowerMw = 0.0; ///< RF leakage power of the organization
    double leakageUj = 0.0;     ///< leakage energy over the run
    double runSeconds = 0.0;
};

class EnergyAccountant
{
  public:
    /** @param clockHz SM core clock (paper: 900 MHz). */
    explicit EnergyAccountant(double clockHz = 900e6);

    /**
     * Account a run executed under the given configuration.
     *
     * @param cfg the simulation configuration the stats came from
     * @param rfStats merged RF backend stats (access.* / rfc.* / swap.*)
     * @param cycles total run cycles
     */
    EnergyReport account(const sim::SimConfig &cfg, const StatSet &rfStats,
                         std::uint64_t cycles) const;

    /** Leakage power of the configured RF organization, mW (per SM). */
    double leakagePowerMw(const sim::SimConfig &cfg) const;

    const rfmodel::RfSpecs &specs() const { return _specs; }

  private:
    double clockHz;
    rfmodel::RfSpecs _specs;
};

} // namespace pilotrf::power

#endif // PILOTRF_POWER_ENERGY_ACCOUNTANT_HH
