#include "isa/static_profiler.hh"

#include <algorithm>
#include <numeric>

namespace pilotrf::isa
{

StaticProfile::StaticProfile(const Kernel &kernel)
    : occurrences(kernel.regsPerThread(), 0)
{
    for (const auto &in : kernel.code()) {
        for (unsigned i = 0; i < in.numDsts; ++i)
            ++occurrences[in.dsts[i]];
        for (unsigned i = 0; i < in.numSrcs; ++i)
            ++occurrences[in.srcs[i]];
    }
}

std::uint64_t
StaticProfile::count(RegId r) const
{
    return r < occurrences.size() ? occurrences[r] : 0;
}

std::vector<RegId>
StaticProfile::topRegisters(unsigned n) const
{
    return rankRegisters(occurrences, n);
}

std::vector<RegId>
rankRegisters(const std::vector<std::uint64_t> &counts, unsigned n)
{
    std::vector<RegId> regs(counts.size());
    std::iota(regs.begin(), regs.end(), RegId(0));
    std::stable_sort(regs.begin(), regs.end(), [&](RegId a, RegId b) {
        return counts[a] > counts[b];
    });
    if (regs.size() > n)
        regs.resize(n);
    return regs;
}

} // namespace pilotrf::isa
