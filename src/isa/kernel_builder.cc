#include "isa/kernel_builder.hh"

#include "common/logging.hh"

namespace pilotrf::isa
{

KernelBuilder::KernelBuilder(std::string name_, unsigned regs,
                             unsigned threads, unsigned ctas,
                             std::uint64_t seed_)
    : name(std::move(name_)), regsPerThread(regs), threadsPerCta(threads),
      numCtas(ctas), seed(seed_)
{
}

KernelBuilder &
KernelBuilder::op(Opcode o, RegId dst, std::initializer_list<RegId> srcs)
{
    Instruction in;
    in.op = o;
    in.numDsts = 1;
    in.dsts[0] = dst;
    panicIf(srcs.size() > in.srcs.size(), "too many sources");
    for (RegId s : srcs)
        in.srcs[in.numSrcs++] = s;
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::opNoDst(Opcode o, std::initializer_list<RegId> srcs)
{
    Instruction in;
    in.op = o;
    panicIf(srcs.size() > in.srcs.size(), "too many sources");
    for (RegId s : srcs)
        in.srcs[in.numSrcs++] = s;
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::load(RegId dst, RegId addr, MemSpace space,
                    unsigned transactions)
{
    Instruction in;
    in.op = space == MemSpace::Global ? Opcode::Ldg : Opcode::Lds;
    in.space = space;
    in.transactions = std::uint8_t(transactions);
    in.numDsts = 1;
    in.dsts[0] = dst;
    in.numSrcs = 1;
    in.srcs[0] = addr;
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::store(RegId addr, RegId data, MemSpace space,
                     unsigned transactions)
{
    Instruction in;
    in.op = space == MemSpace::Global ? Opcode::Stg : Opcode::Sts;
    in.space = space;
    in.transactions = std::uint8_t(transactions);
    in.numSrcs = 2;
    in.srcs[0] = addr;
    in.srcs[1] = data;
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::barrier()
{
    Instruction in;
    in.op = Opcode::Bar;
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::beginLoop(unsigned tripBase, unsigned tripSpread,
                         bool divergent)
{
    panicIf(tripBase == 0 && tripSpread == 0, "loop with zero trips");
    frames.push_back({Frame::Loop, Pc(code.size()), tripBase, tripSpread,
                      divergent});
    return *this;
}

KernelBuilder &
KernelBuilder::endLoop()
{
    panicIf(frames.empty() || frames.back().kind != Frame::Loop,
            "endLoop without beginLoop");
    const Frame f = frames.back();
    frames.pop_back();
    Instruction in;
    in.op = Opcode::Bra;
    in.branch = f.divergent ? BranchKind::LoopDivergent
                            : BranchKind::LoopUniform;
    in.target = f.headerPc;
    in.reconverge = Pc(code.size()) + 1; // fall-through after the backedge
    in.tripBase = std::uint16_t(f.tripBase);
    in.tripSpread = std::uint16_t(f.tripSpread);
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::beginIf(double fraction, bool uniform)
{
    panicIf(fraction < 0.0 || fraction > 1.0, "if fraction out of range");
    Instruction in;
    in.op = Opcode::Bra;
    in.branch = uniform ? BranchKind::Uniform : BranchKind::Divergent;
    // "Taken" means skipping the body to the join point; lanes enter the
    // body with probability fraction.
    in.takenFrac = float(1.0 - fraction);
    // target/reconverge patched by endIf()
    frames.push_back({Frame::If, Pc(code.size()), 0, 0, !uniform});
    code.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::endIf()
{
    panicIf(frames.empty() || frames.back().kind != Frame::If,
            "endIf without beginIf");
    const Frame f = frames.back();
    frames.pop_back();
    const Pc join = Pc(code.size());
    code[f.headerPc].target = join;
    code[f.headerPc].reconverge = join;
    return *this;
}

Kernel
KernelBuilder::build()
{
    panicIf(built, "KernelBuilder::build called twice");
    panicIf(!frames.empty(), "unclosed loop or if region");
    built = true;
    if (code.empty() || !code.back().isExit()) {
        Instruction in;
        in.op = Opcode::Exit;
        code.push_back(in);
    }
    Kernel k(name, regsPerThread, threadsPerCta, numCtas, std::move(code),
             seed);
    k.validate();
    return k;
}

} // namespace pilotrf::isa
