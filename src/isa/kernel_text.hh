/**
 * @file
 * Textual kernel format: a structured, PTX-flavoured assembly that maps
 * onto the KernelBuilder, plus a flat disassembler. Lets workloads live
 * in files and makes kernels inspectable:
 *
 *   .kernel backprop_k1 regs=13 threads=256 ctas=480 seed=7
 *       iadd r1, r2
 *       ld.global.t1 r6, [r1]
 *       loop 9 {
 *           ffma r0, r8, r9, r0
 *       }
 *       if 0.4 {
 *           fmul r8, r0, r9
 *       }
 *       bar
 *       st.global.t1 [r2], r0
 *
 * Loop syntax: `loop <trips> [spread <n>] [divergent] { ... }`.
 * If syntax: `if <fraction> [uniform] { ... }`.
 */

#ifndef PILOTRF_ISA_KERNEL_TEXT_HH
#define PILOTRF_ISA_KERNEL_TEXT_HH

#include <string>

#include "isa/kernel.hh"

namespace pilotrf::isa
{

/** Parse one kernel from the structured text format. Calls fatal() with
 *  a line-numbered message on malformed input. */
Kernel parseKernel(const std::string &text);

/** Flat disassembly of a kernel (one instruction per line with PCs,
 *  branch targets and reconvergence points). */
std::string disassemble(const Kernel &kernel);

} // namespace pilotrf::isa

#endif // PILOTRF_ISA_KERNEL_TEXT_HH
