#include "isa/kernel.hh"

#include "common/logging.hh"

namespace pilotrf::isa
{

Kernel::Kernel(std::string name, unsigned regsPerThread,
               unsigned threadsPerCta, unsigned numCtas,
               std::vector<Instruction> code, std::uint64_t seed)
    : _name(std::move(name)), _regsPerThread(regsPerThread),
      _threadsPerCta(threadsPerCta), _numCtas(numCtas), _seed(seed),
      _code(std::move(code))
{
}

void
Kernel::validate() const
{
    if (_code.empty())
        fatal("kernel %s has no code", _name.c_str());
    if (_regsPerThread == 0 || _regsPerThread > maxRegsPerThread)
        fatal("kernel %s: %u regs/thread out of range", _name.c_str(),
              _regsPerThread);
    if (_threadsPerCta == 0 || _threadsPerCta > 1024)
        fatal("kernel %s: %u threads/CTA out of range", _name.c_str(),
              _threadsPerCta);
    if (_numCtas == 0)
        fatal("kernel %s: empty grid", _name.c_str());
    if (!_code.back().isExit())
        fatal("kernel %s: code does not end with exit", _name.c_str());

    for (Pc pc = 0; pc < length(); ++pc) {
        const auto &in = _code[pc];
        for (unsigned i = 0; i < in.numDsts; ++i)
            if (in.dsts[i] >= _regsPerThread)
                fatal("kernel %s pc %u: dst r%u out of range",
                      _name.c_str(), pc, unsigned(in.dsts[i]));
        for (unsigned i = 0; i < in.numSrcs; ++i)
            if (in.srcs[i] >= _regsPerThread)
                fatal("kernel %s pc %u: src r%u out of range",
                      _name.c_str(), pc, unsigned(in.srcs[i]));
        if (in.isBranch()) {
            if (in.target >= length() || in.reconverge > length())
                fatal("kernel %s pc %u: branch target out of range",
                      _name.c_str(), pc);
            if (in.isBackedge() && in.target > pc)
                fatal("kernel %s pc %u: backedge jumps forward",
                      _name.c_str(), pc);
            if (in.branch == BranchKind::None)
                fatal("kernel %s pc %u: bra without behaviour",
                      _name.c_str(), pc);
        }
    }
}

} // namespace pilotrf::isa
