#include "isa/kernel_text.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/kernel_builder.hh"

namespace pilotrf::isa
{

namespace
{

/** Tokenizer state over one kernel text. */
struct Lexer
{
    std::vector<std::vector<std::string>> lines; // tokens per line
    std::vector<unsigned> lineNumbers;

    explicit Lexer(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        unsigned num = 0;
        while (std::getline(is, line)) {
            ++num;
            // Strip comments.
            const auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            const auto slashes = line.find("//");
            if (slashes != std::string::npos)
                line.resize(slashes);
            std::vector<std::string> toks;
            std::string tok;
            for (char c : line) {
                if (std::isspace(static_cast<unsigned char>(c)) ||
                    c == ',') {
                    if (!tok.empty()) {
                        toks.push_back(tok);
                        tok.clear();
                    }
                } else if (c == '{' || c == '}' || c == '[' || c == ']') {
                    if (!tok.empty()) {
                        toks.push_back(tok);
                        tok.clear();
                    }
                    toks.push_back(std::string(1, c));
                } else {
                    tok += c;
                }
            }
            if (!tok.empty())
                toks.push_back(tok);
            if (!toks.empty()) {
                lines.push_back(std::move(toks));
                lineNumbers.push_back(num);
            }
        }
    }
};

[[noreturn]] void
parseError(unsigned line, const std::string &msg)
{
    fatal("kernel text line %u: %s", line, msg.c_str());
}

unsigned
parseUint(const std::string &tok, unsigned line, const char *what)
{
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(tok, &pos);
        if (pos != tok.size())
            throw std::invalid_argument(tok);
        return unsigned(v);
    } catch (...) {
        parseError(line, std::string("expected ") + what + ", got '" +
                             tok + "'");
    }
}

double
parseFraction(const std::string &tok, unsigned line)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(tok, &pos);
        if (pos != tok.size() || v < 0.0 || v > 1.0)
            throw std::invalid_argument(tok);
        return v;
    } catch (...) {
        parseError(line, "expected fraction in [0,1], got '" + tok + "'");
    }
}

RegId
parseReg(const std::string &tok, unsigned line)
{
    if (tok.size() < 2 || tok[0] != 'r')
        parseError(line, "expected register (rN), got '" + tok + "'");
    const unsigned v = parseUint(tok.substr(1), line, "register number");
    if (v >= maxRegsPerThread)
        parseError(line, "register out of range: " + tok);
    return RegId(v);
}

/** key=value attribute. */
std::pair<std::string, std::string>
parseAttr(const std::string &tok, unsigned line)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
        parseError(line, "expected key=value, got '" + tok + "'");
    return {tok.substr(0, eq), tok.substr(eq + 1)};
}

const std::map<std::string, Opcode> &
aluOpcodes()
{
    static const std::map<std::string, Opcode> ops = {
        {"nop", Opcode::Nop},   {"mov", Opcode::Mov},
        {"iadd", Opcode::IAdd}, {"imul", Opcode::IMul},
        {"fadd", Opcode::FAdd}, {"fmul", Opcode::FMul},
        {"ffma", Opcode::FFma}, {"mad", Opcode::Mad},
        {"setp", Opcode::SetP}, {"shfl", Opcode::Shfl},
        {"rsq", Opcode::Rsq},   {"sin", Opcode::Sin},
        {"rcp", Opcode::Rcp},
    };
    return ops;
}

/** Split "ld.global.t8" into {"ld", "global", "t8"}. */
std::vector<std::string>
splitDots(const std::string &tok)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : tok) {
        if (c == '.') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

struct Parser
{
    Lexer lex;
    std::size_t pos = 0;

    explicit Parser(const std::string &text) : lex(text) {}

    bool done() const { return pos >= lex.lines.size(); }
    const std::vector<std::string> &toks() const { return lex.lines[pos]; }
    unsigned line() const { return lex.lineNumbers[pos]; }

    Kernel parse();
    void parseBody(KernelBuilder &b);
    void parseMem(KernelBuilder &b, const std::vector<std::string> &parts);
};

void
Parser::parseMem(KernelBuilder &b, const std::vector<std::string> &parts)
{
    const auto &t = toks();
    const bool isLoad = parts[0] == "ld";
    MemSpace space = MemSpace::Global;
    unsigned txn = 1;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "global")
            space = MemSpace::Global;
        else if (parts[i] == "shared")
            space = MemSpace::Shared;
        else if (parts[i].size() > 1 && parts[i][0] == 't')
            txn = parseUint(parts[i].substr(1), line(), "transactions");
        else
            parseError(line(), "bad memory qualifier '." + parts[i] + "'");
    }
    if (isLoad) {
        // ld.* rd, [ raddr ]
        if (t.size() != 5 || t[2] != "[" || t[4] != "]")
            parseError(line(), "expected: ld.* rD, [rA]");
        b.load(parseReg(t[1], line()), parseReg(t[3], line()), space, txn);
    } else {
        // st.* [ raddr ], rs
        if (t.size() != 5 || t[1] != "[" || t[3] != "]")
            parseError(line(), "expected: st.* [rA], rS");
        b.store(parseReg(t[2], line()), parseReg(t[4], line()), space, txn);
    }
}

void
Parser::parseBody(KernelBuilder &b)
{
    while (!done()) {
        const auto &t = toks();
        const std::string &head = t[0];

        if (head == "}") {
            return; // caller closes the region
        }
        if (head == "loop") {
            // loop <trips> [spread <n>] [divergent] {
            if (t.size() < 3 || t.back() != "{")
                parseError(line(), "expected: loop N [spread M] "
                                   "[divergent] {");
            const unsigned trips = parseUint(t[1], line(), "trip count");
            unsigned spread = 0;
            bool divergent = false;
            for (std::size_t i = 2; i + 1 < t.size(); ++i) {
                if (t[i] == "spread")
                    spread = parseUint(t[++i], line(), "spread");
                else if (t[i] == "divergent")
                    divergent = true;
                else
                    parseError(line(), "bad loop modifier '" + t[i] + "'");
            }
            b.beginLoop(trips, spread, divergent);
            ++pos;
            parseBody(b);
            if (done() || toks()[0] != "}")
                parseError(done() ? lex.lineNumbers.back() : line(),
                           "unclosed loop");
            b.endLoop();
            ++pos;
            continue;
        }
        if (head == "if") {
            // if <fraction> [uniform] {
            if (t.size() < 3 || t.back() != "{")
                parseError(line(), "expected: if F [uniform] {");
            const double frac = parseFraction(t[1], line());
            const bool uniform = t.size() > 3 && t[2] == "uniform";
            b.beginIf(frac, uniform);
            ++pos;
            parseBody(b);
            if (done() || toks()[0] != "}")
                parseError(done() ? lex.lineNumbers.back() : line(),
                           "unclosed if");
            b.endIf();
            ++pos;
            continue;
        }
        if (head == "bar" || head == "bar.sync") {
            b.barrier();
            ++pos;
            continue;
        }
        const auto parts = splitDots(head);
        if (parts[0] == "ld" || parts[0] == "st") {
            parseMem(b, parts);
            ++pos;
            continue;
        }
        const auto it = aluOpcodes().find(head);
        if (it == aluOpcodes().end())
            parseError(line(), "unknown instruction '" + head + "'");
        if (t.size() < 2)
            parseError(line(), "instruction needs a destination");
        const RegId dst = parseReg(t[1], line());
        std::vector<RegId> srcs;
        for (std::size_t i = 2; i < t.size(); ++i)
            srcs.push_back(parseReg(t[i], line()));
        if (srcs.size() > 3)
            parseError(line(), "too many source operands");
        switch (srcs.size()) {
          case 0: b.op(it->second, dst, {}); break;
          case 1: b.op(it->second, dst, {srcs[0]}); break;
          case 2: b.op(it->second, dst, {srcs[0], srcs[1]}); break;
          default:
            b.op(it->second, dst, {srcs[0], srcs[1], srcs[2]});
            break;
        }
        ++pos;
    }
}

Kernel
Parser::parse()
{
    if (done())
        fatal("kernel text: empty input");
    const auto &t = toks();
    if (t[0] != ".kernel" || t.size() < 2)
        parseError(line(), "expected: .kernel <name> key=value...");
    const std::string name = t[1];
    unsigned regs = 0, threads = 0, ctas = 0;
    std::uint64_t seed = 0;
    for (std::size_t i = 2; i < t.size(); ++i) {
        const auto [k, v] = parseAttr(t[i], line());
        if (k == "regs")
            regs = parseUint(v, line(), "regs");
        else if (k == "threads")
            threads = parseUint(v, line(), "threads");
        else if (k == "ctas")
            ctas = parseUint(v, line(), "ctas");
        else if (k == "seed")
            seed = parseUint(v, line(), "seed");
        else
            parseError(line(), "unknown attribute '" + k + "'");
    }
    if (!regs || !threads || !ctas)
        parseError(line(), ".kernel needs regs=, threads= and ctas=");
    ++pos;
    KernelBuilder b(name, regs, threads, ctas, seed);
    parseBody(b);
    if (!done())
        parseError(line(), "unexpected '}' outside any region");
    return b.build();
}

} // namespace

Kernel
parseKernel(const std::string &text)
{
    Parser p(text);
    return p.parse();
}

std::string
disassemble(const Kernel &kernel)
{
    std::ostringstream os;
    os << ".kernel " << kernel.name() << " regs=" << kernel.regsPerThread()
       << " threads=" << kernel.threadsPerCta()
       << " ctas=" << kernel.numCtas() << " seed=" << kernel.seed() << "\n";
    for (Pc pc = 0; pc < kernel.length(); ++pc) {
        const auto &in = kernel.at(pc);
        os << "  " << pc << ": " << in.toString();
        if (in.isBranch()) {
            switch (in.branch) {
              case BranchKind::Uniform:
                os << " uniform p=" << in.takenFrac;
                break;
              case BranchKind::Divergent:
                os << " divergent p=" << in.takenFrac;
                break;
              case BranchKind::LoopUniform:
                os << " loop trips=" << in.tripBase << "+"
                   << in.tripSpread;
                break;
              case BranchKind::LoopDivergent:
                os << " loop trips=" << in.tripBase << "+"
                   << in.tripSpread << " divergent";
                break;
              default:
                break;
            }
        }
        if (in.isMem())
            os << " txn=" << unsigned(in.transactions);
        os << "\n";
    }
    return os.str();
}

} // namespace pilotrf::isa
