/**
 * @file
 * Structured-control-flow builder for kernels.
 *
 * Emits well-nested loops and divergent if-regions with correct SIMT
 * reconvergence PCs, so hand-written synthetic workloads cannot produce
 * malformed control flow.
 */

#ifndef PILOTRF_ISA_KERNEL_BUILDER_HH
#define PILOTRF_ISA_KERNEL_BUILDER_HH

#include <initializer_list>
#include <vector>

#include "isa/kernel.hh"

namespace pilotrf::isa
{

class KernelBuilder
{
  public:
    KernelBuilder(std::string name, unsigned regsPerThread,
                  unsigned threadsPerCta, unsigned numCtas,
                  std::uint64_t seed = 0);

    /** Generic ALU/SFU emitter: op dst <- srcs. */
    KernelBuilder &op(Opcode o, RegId dst,
                      std::initializer_list<RegId> srcs);

    /** ALU op with no destination (e.g. setp-like side effects). */
    KernelBuilder &opNoDst(Opcode o, std::initializer_list<RegId> srcs);

    /** Load into dst from addr register. */
    KernelBuilder &load(RegId dst, RegId addr,
                        MemSpace space = MemSpace::Global,
                        unsigned transactions = 1);

    /** Store data register to addr register. */
    KernelBuilder &store(RegId addr, RegId data,
                         MemSpace space = MemSpace::Global,
                         unsigned transactions = 1);

    /** CTA-wide barrier. */
    KernelBuilder &barrier();

    /**
     * Open a loop body. The matching endLoop() emits the backedge.
     * @param tripBase guaranteed body executions
     * @param tripSpread extra executions hashed in [0, spread)
     * @param divergent true: per-lane trip counts (SIMT divergence)
     */
    KernelBuilder &beginLoop(unsigned tripBase, unsigned tripSpread = 0,
                             bool divergent = false);
    KernelBuilder &endLoop();

    /**
     * Open a divergent if-region executed by roughly @p fraction of the
     * lanes; the rest jump to the matching endIf(). fraction == 1 with
     * uniform=true makes a uniform (non-divergent) conditional with the
     * given taken probability per warp.
     */
    KernelBuilder &beginIf(double fraction, bool uniform = false);
    KernelBuilder &endIf();

    /** Uniform forward branch skipping the region with probability p. */
    KernelBuilder &beginIfUniform(double executeProb)
    {
        return beginIf(executeProb, true);
    }

    /** Finish: appends exit, validates, and returns the kernel. */
    Kernel build();

    /** Number of instructions emitted so far. */
    Pc size() const { return Pc(code.size()); }

  private:
    struct Frame
    {
        enum Kind { Loop, If } kind;
        Pc headerPc;       // loop: first body pc; if: the bra pc
        unsigned tripBase, tripSpread;
        bool divergent;
    };

    std::string name;
    unsigned regsPerThread, threadsPerCta, numCtas;
    std::uint64_t seed;
    std::vector<Instruction> code;
    std::vector<Frame> frames;
    bool built = false;
};

} // namespace pilotrf::isa

#endif // PILOTRF_ISA_KERNEL_BUILDER_HH
