/**
 * @file
 * Compiler-based register profiling (Sec. III-A.1): counts the static
 * occurrences of each architected register in the kernel binary. Being a
 * static analysis it cannot see loop trip counts or branch behaviour —
 * exactly the limitation the pilot-warp profiling repairs.
 */

#ifndef PILOTRF_ISA_STATIC_PROFILER_HH
#define PILOTRF_ISA_STATIC_PROFILER_HH

#include <cstdint>
#include <vector>

#include "isa/kernel.hh"

namespace pilotrf::isa
{

/**
 * Static (binary) register-occurrence profile of one kernel.
 */
class StaticProfile
{
  public:
    explicit StaticProfile(const Kernel &kernel);

    /** Occurrences of register r in the kernel text. */
    std::uint64_t count(RegId r) const;

    /** The n most frequent registers, most frequent first; ties broken by
     *  lower register id (deterministic). */
    std::vector<RegId> topRegisters(unsigned n) const;

    /** All per-register counts, indexed by register id. */
    const std::vector<std::uint64_t> &counts() const { return occurrences; }

  private:
    std::vector<std::uint64_t> occurrences;
};

/** Rank registers by a count vector, descending, ties to lower id.
 *  Counts are 64-bit so dynamic access tallies rank unsaturated. */
std::vector<RegId> rankRegisters(const std::vector<std::uint64_t> &counts,
                                 unsigned n);

} // namespace pilotrf::isa

#endif // PILOTRF_ISA_STATIC_PROFILER_HH
