#include "isa/instruction.hh"

#include <sstream>

namespace pilotrf::isa
{

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Mov: return "mov";
      case Opcode::IAdd: return "iadd";
      case Opcode::IMul: return "imul";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FFma: return "ffma";
      case Opcode::Mad: return "mad";
      case Opcode::SetP: return "setp";
      case Opcode::Shfl: return "shfl";
      case Opcode::Rsq: return "rsq";
      case Opcode::Sin: return "sin";
      case Opcode::Rcp: return "rcp";
      case Opcode::Ldg: return "ld.global";
      case Opcode::Stg: return "st.global";
      case Opcode::Lds: return "ld.shared";
      case Opcode::Sts: return "st.shared";
      case Opcode::Bra: return "bra";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Exit: return "exit";
    }
    return "?";
}

ExecClass
Instruction::execClass() const
{
    switch (op) {
      case Opcode::Rsq:
      case Opcode::Sin:
      case Opcode::Rcp:
        return ExecClass::Sfu;
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::Lds:
      case Opcode::Sts:
        return ExecClass::Mem;
      case Opcode::Bra:
      case Opcode::Bar:
      case Opcode::Exit:
        return ExecClass::Ctrl;
      default:
        return ExecClass::Sp;
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << isa::toString(op);
    for (unsigned i = 0; i < numDsts; ++i)
        os << (i ? "," : " ") << "r" << unsigned(dsts[i]);
    for (unsigned i = 0; i < numSrcs; ++i)
        os << (i || numDsts ? "," : " ") << "r" << unsigned(srcs[i]);
    if (isBranch())
        os << " ->" << target << " (rpc " << reconverge << ")";
    return os.str();
}

} // namespace pilotrf::isa
