/**
 * @file
 * A GPU kernel: static code plus launch geometry.
 */

#ifndef PILOTRF_ISA_KERNEL_HH
#define PILOTRF_ISA_KERNEL_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace pilotrf::isa
{

/**
 * One kernel of a workload. All threads execute this code; per-thread
 * behaviour differences come exclusively from the hashed branch outcomes.
 */
class Kernel
{
  public:
    Kernel() = default;
    Kernel(std::string name, unsigned regsPerThread, unsigned threadsPerCta,
           unsigned numCtas, std::vector<Instruction> code,
           std::uint64_t seed = 0);

    const std::string &name() const { return _name; }
    unsigned regsPerThread() const { return _regsPerThread; }
    unsigned threadsPerCta() const { return _threadsPerCta; }
    unsigned numCtas() const { return _numCtas; }
    std::uint64_t seed() const { return _seed; }

    unsigned warpsPerCta() const
    {
        return (_threadsPerCta + warpSize - 1) / warpSize;
    }

    const std::vector<Instruction> &code() const { return _code; }
    const Instruction &at(Pc pc) const { return _code.at(pc); }
    Pc length() const { return Pc(_code.size()); }

    /**
     * Structural sanity checks: register ids within bounds, branch targets
     * and reconvergence PCs in range, code terminated by Exit. Calls
     * fatal() on violation (a malformed kernel is a user error).
     */
    void validate() const;

  private:
    std::string _name;
    unsigned _regsPerThread = 0;
    unsigned _threadsPerCta = 0;
    unsigned _numCtas = 0;
    std::uint64_t _seed = 0;
    std::vector<Instruction> _code;
};

} // namespace pilotrf::isa

#endif // PILOTRF_ISA_KERNEL_HH
