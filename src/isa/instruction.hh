/**
 * @file
 * The kernel intermediate representation: a PTX-like instruction set rich
 * enough to drive the cycle-level SM model and the register-file access
 * analysis, with declarative branch behaviours that make whole-program
 * execution deterministic and reproducible.
 */

#ifndef PILOTRF_ISA_INSTRUCTION_HH
#define PILOTRF_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pilotrf::isa
{

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Mov, IAdd, IMul, FAdd, FMul, FFma, Mad, SetP, Shfl, // SP pipeline
    Rsq, Sin, Rcp,                                       // SFU pipeline
    Ldg, Stg, Lds, Sts,                                  // memory pipeline
    Bra, Bar, Exit,                                      // control
};

const char *toString(Opcode op);

/** Functional unit class an instruction dispatches to. */
enum class ExecClass : std::uint8_t { Sp, Sfu, Mem, Ctrl };

/** Memory space of a load/store. */
enum class MemSpace : std::uint8_t { None, Global, Shared };

/**
 * Declarative branch behaviour. Direction decisions are produced by
 * hashing structural coordinates (kernel seed, CTA, warp, lane, PC, visit)
 * so every simulation is reproducible and, per the paper's observation,
 * warps of the same kernel exhibit near-identical register access
 * behaviour.
 */
enum class BranchKind : std::uint8_t
{
    None,
    Uniform,       ///< whole warp takes/falls through together
    Divergent,     ///< lanes decide individually (if/else divergence)
    LoopUniform,   ///< backedge; whole warp iterates the same trip count
    LoopDivergent, ///< backedge; per-lane trip counts differ
};

/**
 * One static instruction of a kernel.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t numDsts = 0;
    std::uint8_t numSrcs = 0;
    std::array<RegId, 2> dsts{};
    std::array<RegId, 4> srcs{};

    MemSpace space = MemSpace::None;
    /** Memory transactions generated per warp access (1 = fully
     *  coalesced, up to 32 = fully scattered). */
    std::uint8_t transactions = 1;

    BranchKind branch = BranchKind::None;
    Pc target = 0;       ///< branch target (loop header for backedges)
    Pc reconverge = 0;   ///< immediate post-dominator for the SIMT stack
    float takenFrac = 0.0f;      ///< Uniform/Divergent taken probability
    std::uint16_t tripBase = 0;  ///< loop trip count base
    std::uint16_t tripSpread = 0; ///< additional hashed trips in [0,spread)

    /** Functional-unit class. */
    ExecClass execClass() const;

    bool isBranch() const { return op == Opcode::Bra; }
    bool isBarrier() const { return op == Opcode::Bar; }
    bool isExit() const { return op == Opcode::Exit; }
    bool isMem() const { return execClass() == ExecClass::Mem; }
    bool isLoad() const { return op == Opcode::Ldg || op == Opcode::Lds; }
    bool isGlobal() const { return space == MemSpace::Global; }
    bool isBackedge() const
    {
        return branch == BranchKind::LoopUniform ||
               branch == BranchKind::LoopDivergent;
    }

    /** Human-readable disassembly. */
    std::string toString() const;
};

} // namespace pilotrf::isa

#endif // PILOTRF_ISA_INSTRUCTION_HH
