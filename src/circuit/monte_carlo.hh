/**
 * @file
 * Monte-Carlo process-variation yield analysis of SRAM cells.
 *
 * FinFETs have undoped channels and are immune to random dopant
 * fluctuation; the residual Vth variation comes from line-edge roughness
 * (LER) and work-function variation (WFV), modeled as independent Gaussian
 * threshold shifts per transistor (Sec. IV-A).
 */

#ifndef PILOTRF_CIRCUIT_MONTE_CARLO_HH
#define PILOTRF_CIRCUIT_MONTE_CARLO_HH

#include <cstdint>

#include "circuit/sram.hh"

namespace pilotrf::circuit
{

/** Aggregate result of a Monte-Carlo SNM run. */
struct YieldResult
{
    double meanSnm;   ///< mean SNM over samples (V)
    double stdSnm;    ///< standard deviation of SNM (V)
    double minSnm;    ///< worst sampled SNM (V)
    double yield;     ///< fraction of samples with SNM above the margin
    unsigned samples; ///< number of Monte-Carlo samples
};

/**
 * Run a Monte-Carlo SNM yield analysis.
 *
 * @param cell cell flavour under test
 * @param tech technology (supplies sigmaVthLer / sigmaVthWfv)
 * @param vdd supply voltage
 * @param mode Hold or Read SNM
 * @param bg back-gate state
 * @param snmMargin minimum acceptable SNM (V) for the yield criterion
 * @param samples Monte-Carlo sample count
 * @param seed RNG seed (results are deterministic per seed)
 */
YieldResult monteCarloSnm(const SramCellParams &cell, const TechParams &tech,
                          double vdd, SnmMode mode,
                          BackGate bg = BackGate::Enabled,
                          double snmMargin = 0.04, unsigned samples = 200,
                          std::uint64_t seed = 1);

} // namespace pilotrf::circuit

#endif // PILOTRF_CIRCUIT_MONTE_CARLO_HH
