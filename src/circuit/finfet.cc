#include "circuit/finfet.hh"

#include <cmath>

#include "common/logging.hh"

namespace pilotrf::circuit
{

FinFet::FinFet(const TechParams &tech, unsigned fins, double vthDelta)
    : _tech(tech), _fins(fins), _vthDelta(vthDelta)
{
    panicIf(fins == 0, "FinFet with zero fins");
}

double
FinFet::vth(BackGate bg) const
{
    double v = _tech.vth + _vthDelta;
    if (bg == BackGate::Disabled)
        v += _tech.deltaVthBackGate;
    return v;
}

double
FinFet::drive(double vgs, double vds, BackGate bg) const
{
    const double a = _tech.aSlope;
    const double x = (vgs - vth(bg) + _tech.diblDrive * vds) / a;
    // Numerically stable soft-plus.
    const double sp = x > 30.0 ? x : std::log1p(std::exp(x));
    return a * sp;
}

double
FinFet::current(double vgs, double vds, BackGate bg) const
{
    if (vds <= 0.0)
        return 0.0;
    const double g = drive(vgs, vds, bg);
    if (g <= 0.0)
        return 0.0;
    // With the back gate disabled only the front channel conducts: the
    // drive prefactor (channel count) halves.
    const double i0 = bg == BackGate::Enabled ? _tech.i0 : _tech.i0 * 0.5;
    const double vnorm = std::max(g, 1e-4);
    const double fsat =
        (1.0 - std::exp(-vds / vnorm)) * (1.0 + _tech.lambda * vds);
    return i0 * std::pow(g, _tech.betaI) * fsat * widthUm();
}

double
FinFet::onCurrentPerUm(double vdd, BackGate bg) const
{
    return current(vdd, vdd, bg) / widthUm();
}

double
FinFet::leakage(double vdd, BackGate bg) const
{
    // Subthreshold conduction with DIBL; dominant leakage component in
    // FinFETs (gate leakage is negligible thanks to the wrapped gate).
    const double a = _tech.aSlope;
    const double vthEff = vth(bg) - _tech.dibl * vdd;
    const double i =
        _tech.ioffRef * std::exp(-(vthEff - _tech.vth) / a) *
        (1.0 + _tech.lambda * vdd);
    // Scale to zero-bias threshold reference: ioffRef is defined at
    // Vth = tech.vth, Vds -> vdd handled through the DIBL term above.
    return i * widthUm();
}

double
FinFet::gateCap(BackGate bg) const
{
    const double c = _tech.cgPerUm * widthUm();
    return bg == BackGate::Enabled ? c : c * 0.5;
}

double
FinFet::widthUm() const
{
    return _fins * _tech.finWidthUm;
}

} // namespace pilotrf::circuit
