#include "circuit/sram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pilotrf::circuit
{

const char *
toString(SramCellType t)
{
    switch (t) {
      case SramCellType::T6: return "6T";
      case SramCellType::T8: return "8T";
      case SramCellType::T9: return "9T";
      case SramCellType::T10: return "10T";
    }
    return "?";
}

SramCellParams
defaultCellParams(SramCellType type)
{
    // Areas from fin-grid layout estimates at 7 nm (gate pitch 54 nm, fin
    // pitch 27 nm). The 6T variant is upsized (2-fin pull-downs) as in the
    // paper's comparison and is still larger than the compact 8T cell.
    switch (type) {
      case SramCellType::T6:
        return {type, 2, 1, 1, false, 0.0315, 0.88};
      case SramCellType::T8:
        return {type, 1, 1, 1, true, 0.0291, 0.88};
      case SramCellType::T9:
        return {type, 1, 1, 1, true, 0.0335, 0.88};
      case SramCellType::T10:
        return {type, 1, 1, 1, true, 0.0379, 0.88};
    }
    panic("unknown cell type");
}

Vtc::Vtc(const SramCellParams &cell, const TechParams &tech, double vdd,
         BackGate bg, bool readDisturb, double dVthPd, double dVthPu,
         double dVthAx, unsigned samples)
    : _vdd(vdd)
{
    panicIf(samples < 2, "Vtc needs at least 2 samples");
    // Cell fins are minimum size with degraded subthreshold swing; with the
    // back gate disabled the single-gate channel control degrades further.
    TechParams cellTech = tech;
    cellTech.aSlope *= tech.cellSlopeFactor;
    cellTech.diblDrive *= tech.cellDiblFactor;
    if (bg == BackGate::Disabled)
        cellTech.aSlope *= tech.cellSlopeBackGateOff;
    FinFet pd(cellTech, cell.pullDownFins, dVthPd);
    FinFet pu(cellTech, cell.pullUpFins, dVthPu);
    FinFet ax(cellTech, cell.accessFins, dVthAx);

    vout.resize(samples);
    for (unsigned i = 0; i < samples; ++i) {
        const double vin = vdd * i / (samples - 1);
        // Current balance at the output node, monotone increasing in vo:
        //   h(vo) = Ipd(vin, vo) - pf*Ipu(vdd-vin, vdd-vo) - Iax(read)
        auto h = [&](double vo) {
            double ipd = pd.current(vin, vo, bg);
            double ipu = cell.pmosFactor * pu.current(vdd - vin, vdd - vo, bg);
            double iax = 0.0;
            if (readDisturb) {
                // Wordline and bitline at vdd; access device sources at the
                // storage node, pulling it toward the bitline.
                iax = ax.current(vdd - vo, vdd - vo, bg);
            }
            return ipd - ipu - iax;
        };
        double lo = 0.0, hi = vdd;
        if (h(hi - 1e-9) <= 0.0) {
            vout[i] = vdd; // pull-down cannot win anywhere: output stays high
            continue;
        }
        if (h(lo + 1e-12) >= 0.0) {
            vout[i] = 0.0;
            continue;
        }
        for (int it = 0; it < 60; ++it) {
            double mid = 0.5 * (lo + hi);
            (h(mid) < 0.0 ? lo : hi) = mid;
        }
        vout[i] = 0.5 * (lo + hi);
    }
}

double
Vtc::eval(double vin) const
{
    const unsigned n = vout.size();
    if (vin <= 0.0)
        return vout.front();
    if (vin >= _vdd)
        return vout.back();
    const double pos = vin / _vdd * (n - 1);
    const unsigned i = std::min<unsigned>(unsigned(pos), n - 2);
    const double frac = pos - i;
    return vout[i] * (1.0 - frac) + vout[i + 1] * frac;
}

double
lobeSnm(const Vtc &a, const Vtc &b)
{
    // Largest square with lower-left corner on curve B (x = b(y)) and
    // upper-right corner under curve A (y = a(x)) in the upper-left lobe:
    // for each anchor y, find max s with y + s = a(b(y) + s).
    const double vdd = a.vdd();
    double best = 0.0;
    const unsigned anchors = 192;
    for (unsigned i = 0; i < anchors; ++i) {
        const double y = vdd * i / (anchors - 1);
        const double xb = b.eval(y);
        auto fits = [&](double s) { return y + s <= a.eval(xb + s); };
        if (!fits(0.0))
            continue;
        double lo = 0.0, hi = vdd;
        if (fits(hi)) {
            best = std::max(best, hi);
            continue;
        }
        for (int it = 0; it < 40; ++it) {
            double mid = 0.5 * (lo + hi);
            (fits(mid) ? lo : hi) = mid;
        }
        best = std::max(best, lo);
    }
    return best;
}

double
writeMargin(const SramCellParams &cell, const TechParams &tech, double vdd,
            BackGate bg, const CellVariation &var)
{
    TechParams cellTech = tech;
    cellTech.aSlope *= tech.cellSlopeFactor;
    cellTech.diblDrive *= tech.cellDiblFactor;
    if (bg == BackGate::Disabled)
        cellTech.aSlope *= tech.cellSlopeBackGateOff;
    FinFet pu(cellTech, cell.pullUpFins, var[1]);
    FinFet ax(cellTech, cell.accessFins, var[2]);

    // Node A initially '1': PMOS pull-up (gate at 0) sources current; the
    // access device (wordline high, bitline at 0) sinks it. The balance
    // point is monotone in V_A, so bisect.
    auto h = [&](double va) {
        const double iax = ax.current(vdd, va, bg);
        const double ipu =
            cell.pmosFactor * pu.current(vdd, vdd - va, bg);
        return iax - ipu; // increasing in va
    };
    double lo = 0.0, hi = vdd;
    if (h(hi - 1e-9) <= 0.0)
        return -vdd; // access too weak: node stays high, unwritable
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        (h(mid) < 0.0 ? lo : hi) = mid;
    }
    const double vNode = 0.5 * (lo + hi);

    // Switching threshold of the opposite inverter: input where its
    // output crosses vdd/2.
    Vtc inv(cell, tech, vdd, bg, false, var[3], var[4], var[5]);
    double vmLo = 0.0, vmHi = vdd;
    for (int it = 0; it < 40; ++it) {
        const double mid = 0.5 * (vmLo + vmHi);
        (inv.eval(mid) > vdd / 2.0 ? vmLo : vmHi) = mid;
    }
    const double vm = 0.5 * (vmLo + vmHi);
    return vm - vNode;
}

double
snm(const SramCellParams &cell, const TechParams &tech, double vdd,
    SnmMode mode, BackGate bg, const CellVariation &var)
{
    const bool disturb = mode == SnmMode::Read && !cell.readDecoupled;
    // Inverter 1: pd1/pu1 with ax1 disturbance; inverter 2: pd2/pu2, ax2.
    Vtc inv1(cell, tech, vdd, bg, disturb, var[0], var[1], var[2]);
    Vtc inv2(cell, tech, vdd, bg, disturb, var[3], var[4], var[5]);
    const double lobe1 = lobeSnm(inv1, inv2);
    const double lobe2 = lobeSnm(inv2, inv1);
    return std::min(lobe1, lobe2);
}

} // namespace pilotrf::circuit
