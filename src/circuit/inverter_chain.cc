#include "circuit/inverter_chain.hh"

#include <cmath>

#include "common/logging.hh"

namespace pilotrf::circuit
{

double
inverterDelay(const TechParams &tech, double vdd, double fanout, BackGate bg)
{
    panicIf(vdd <= 0.0, "inverterDelay with non-positive Vdd");
    FinFet dev(tech);
    const double g = dev.drive(vdd, vdd, bg);
    if (g <= 1e-9)
        return 1.0; // effectively non-functional: 1 second
    // Load and drive both halve with the back gate disabled; only the Vth
    // shift inside g() survives in the ratio.
    return tech.kDelay * (fanout / 4.0) * vdd / std::pow(g, tech.alphaDelay);
}

double
chainDelay(const TechParams &tech, double vdd, unsigned stages, double fanout,
           BackGate bg)
{
    return stages * inverterDelay(tech, vdd, fanout, bg);
}

std::vector<DelayPoint>
fig1Sweep(const TechParams &tech, double vLo, double vHi, double step)
{
    std::vector<DelayPoint> points;
    for (double v = vLo; v <= vHi + 1e-9; v += step)
        points.push_back({v, chainDelay(tech, v)});
    return points;
}

} // namespace pilotrf::circuit
