/**
 * @file
 * Technology parameter sets for the analytic device models.
 *
 * The 7 nm FinFET parameters are calibrated so the model reproduces the
 * paper's published circuit data:
 *   - Table III ON currents (2.372e-3 A/um at STV with back gate enabled,
 *     2.427e-4 A/um at STV with back gate disabled, 7.505e-4 A/um at NTV);
 *   - the ~3x inverter delay ratio between NTV (0.30 V) and STV (0.45 V)
 *     visible in Fig. 1 and quoted for the 16-bit adder (.051 ns -> .153 ns);
 *   - the leakage scaling implied by Table IV (224 KB SRF at NTV leaks
 *     13.4 mW vs a 256 KB MRF at STV leaking 33.8 mW).
 */

#ifndef PILOTRF_CIRCUIT_TECH_HH
#define PILOTRF_CIRCUIT_TECH_HH

namespace pilotrf::circuit
{

/** Supply voltages used throughout the paper. */
constexpr double vddStv = 0.45; ///< super-threshold supply (V)
constexpr double vddNtv = 0.30; ///< near-threshold supply (V)

/**
 * Analytic parameters of one technology flavour.
 *
 * The drive model is a transregional soft-plus (EKV-like) current
 *   I(Vgs, Vds) = i0 * g(Vgs)^betaI * fsat(Vds),
 *   g(Vgs) = a * ln(1 + exp((Vgs - Vth)/a)),
 * which is linear in overdrive above threshold (velocity saturated) and
 * exponential below it. Delay uses the alpha-power form
 *   t = kDelay * fanout * Vdd / g(Vdd)^alphaDelay.
 */
struct TechParams
{
    double vth = 0.23;          ///< threshold voltage (V), Fig. 1 caption
    double aSlope = 0.0312;     ///< transregional slope n*phiT (V)
    double betaI = 1.291;       ///< ON-current overdrive exponent
    double i0 = 1.6202e-2;      ///< drive prefactor (A / um / V^betaI)
    double lambda = 0.06;       ///< channel-length modulation (1/V)
    double diblDrive = 0.08;    ///< DIBL barrier lowering in the drive (V/V)
    double deltaVthBackGate = 0.1954; ///< Vth shift when back gate disabled (V)
    double alphaDelay = 1.507;  ///< alpha-power delay exponent
    double kDelay = 3.920e-12;  ///< delay prefactor (s * V^(alphaDelay-1))
    double cgPerUm = 1.1e-15;   ///< gate capacitance (F/um), both gates on
    double dibl = 0.08;         ///< DIBL coefficient for leakage (V/V)
    double ioffRef = 1.0e-7;    ///< off current at Vds = vth reference (A/um)
    double sigmaVthLer = 0.018; ///< Vth sigma from line-edge roughness (V)
    double sigmaVthWfv = 0.017; ///< Vth sigma from work-function variation (V)
    double finWidthUm = 0.02;   ///< effective width of one fin (um)

    /**
     * Subthreshold-slope degradation of the minimum-size SRAM-cell fins
     * relative to logic fins (cell fins are drawn at the tightest pitch and
     * have worse electrostatic control). Applied inside the VTC solver only.
     */
    double cellSlopeFactor = 1.8;

    /**
     * Additional slope degradation when the back gate is disabled: with a
     * single active gate the channel is controlled from one side only and
     * the swing degrades markedly (independent-gate FinFET operation).
     */
    double cellSlopeBackGateOff = 3.2;

    /**
     * DIBL multiplier for the SRAM-cell fins relative to logic fins, again
     * a consequence of the minimum-size cell device geometry. Applied
     * inside the VTC solver only.
     */
    double cellDiblFactor = 1.5;
};

/** Calibrated 7 nm FinFET (Lg = 7 nm, 1.5 nm underlap, Leff = 10 nm). */
const TechParams &finfet7();

/**
 * Fan-out-of-4 inverter delays for the planar CMOS nodes used only by the
 * swapping-table RTL comparison in Sec. III-B.
 */
struct CmosNode
{
    const char *name;
    double fo4DelaySec; ///< FO4 delay at nominal Vdd
};

const CmosNode &cmos22(); ///< 22 nm planar CMOS
const CmosNode &cmos16(); ///< 16 nm planar CMOS
const CmosNode &finfetNode7(); ///< 7 nm FinFET at nominal Vdd

} // namespace pilotrf::circuit

#endif // PILOTRF_CIRCUIT_TECH_HH
