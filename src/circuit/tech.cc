#include "circuit/tech.hh"

namespace pilotrf::circuit
{

const TechParams &
finfet7()
{
    static const TechParams p{};
    return p;
}

// FO4 delays chosen so a 13-bit-entry, 8-entry CAM swapping table evaluates
// in 105 / 95 / 55 ps (Sec. III-B): the CAM model charges a match line and
// priority-encodes in ~7 FO4.
const CmosNode &
cmos22()
{
    static const CmosNode n{"22nm CMOS", 15.0e-12};
    return n;
}

const CmosNode &
cmos16()
{
    static const CmosNode n{"16nm CMOS", 13.57e-12};
    return n;
}

const CmosNode &
finfetNode7()
{
    static const CmosNode n{"7nm FinFET", 7.86e-12};
    return n;
}

} // namespace pilotrf::circuit
