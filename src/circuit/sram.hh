/**
 * @file
 * FinFET SRAM cell models: 6T/8T/9T/10T voltage-transfer curves, butterfly
 * static-noise-margin extraction (Seevinck method via maximal embedded
 * square), and cell area.
 *
 * Reproduces the Table III SNM data (8T: 0.144 V at STV, 0.092 V at NTV,
 * 0.096 V at STV with the back gate disabled) and the Sec. IV-A observation
 * that a 6T cell, even upsized, only reaches 0.088 V at STV because its read
 * SNM is degraded by the access transistor disturbance.
 */

#ifndef PILOTRF_CIRCUIT_SRAM_HH
#define PILOTRF_CIRCUIT_SRAM_HH

#include <array>
#include <vector>

#include "circuit/finfet.hh"
#include "circuit/tech.hh"

namespace pilotrf::circuit
{

/** SRAM cell topology. */
enum class SramCellType { T6, T8, T9, T10 };

const char *toString(SramCellType t);

/** Per-transistor threshold-voltage perturbations for variation studies.
 *  Order: pd1, pu1, ax1, pd2, pu2, ax2. */
using CellVariation = std::array<double, 6>;

/** Sizing and topology description of one cell flavour. */
struct SramCellParams
{
    SramCellType type;
    unsigned pullDownFins;
    unsigned pullUpFins;
    unsigned accessFins;
    bool readDecoupled;  ///< 8T/9T/10T: read port does not disturb the cell
    double areaUm2;      ///< layout area of one bit cell
    double pmosFactor;   ///< PMOS drive relative to NMOS per fin
};

/** Default (calibrated) parameters for each topology. The 6T cell is the
 *  deliberately upsized variant discussed in Sec. IV-A. */
SramCellParams defaultCellParams(SramCellType type);

/**
 * A piecewise-linear inverter voltage transfer curve sampled on a uniform
 * input grid, solved from the device current balance.
 */
class Vtc
{
  public:
    /**
     * Solve the VTC of one cell inverter.
     *
     * @param cell cell sizing
     * @param tech technology parameters
     * @param vdd supply voltage
     * @param bg back-gate state of every device in the cell
     * @param readDisturb include the access-transistor pull-up from a
     *        precharged bitline (6T read condition)
     * @param dVthPd, dVthPu, dVthAx per-device threshold shifts
     * @param samples grid resolution
     */
    Vtc(const SramCellParams &cell, const TechParams &tech, double vdd,
        BackGate bg, bool readDisturb, double dVthPd = 0.0,
        double dVthPu = 0.0, double dVthAx = 0.0, unsigned samples = 257);

    /** Output voltage for the given input (linear interpolation). */
    double eval(double vin) const;

    double vdd() const { return _vdd; }

  private:
    double _vdd;
    std::vector<double> vout;
};

/** Cell access mode for SNM extraction. */
enum class SnmMode { Hold, Read };

/**
 * Static noise margin of the cell: the side of the largest square embedded
 * in each butterfly lobe, minimized over the two lobes.
 *
 * @param cell cell sizing
 * @param tech technology parameters
 * @param vdd supply voltage
 * @param mode Hold (both cross-coupled inverters undisturbed) or Read
 *        (access disturbance applied unless the cell is read-decoupled)
 * @param bg back-gate state
 * @param var per-transistor Vth perturbations
 */
double snm(const SramCellParams &cell, const TechParams &tech, double vdd,
           SnmMode mode, BackGate bg = BackGate::Enabled,
           const CellVariation &var = {});

/** Largest-square side between VTCs a (y = a(x)) and b (x = b(y)) in the
 *  upper-left butterfly lobe. Exposed for testing. */
double lobeSnm(const Vtc &a, const Vtc &b);

/**
 * Write margin of the cell: with one bitline driven low and the wordline
 * asserted, the access transistor fights the pull-up holding the '1'
 * node; the write succeeds when the node is dragged below the opposite
 * inverter's switching threshold. Returns V_M - V_node (positive means
 * writable, larger is more robust).
 *
 * @param var per-transistor Vth perturbations (same order as snm())
 */
double writeMargin(const SramCellParams &cell, const TechParams &tech,
                   double vdd, BackGate bg = BackGate::Enabled,
                   const CellVariation &var = {});

} // namespace pilotrf::circuit

#endif // PILOTRF_CIRCUIT_SRAM_HH
