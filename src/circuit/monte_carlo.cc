#include "circuit/monte_carlo.hh"

#include <algorithm>
#include <cmath>

#include "common/random.hh"

namespace pilotrf::circuit
{

YieldResult
monteCarloSnm(const SramCellParams &cell, const TechParams &tech, double vdd,
              SnmMode mode, BackGate bg, double snmMargin, unsigned samples,
              std::uint64_t seed)
{
    Rng rng(seed);
    const double sigma = std::hypot(tech.sigmaVthLer, tech.sigmaVthWfv);

    double sum = 0.0, sumSq = 0.0, minSnm = 1e9;
    unsigned pass = 0;
    for (unsigned i = 0; i < samples; ++i) {
        CellVariation var;
        for (auto &d : var)
            d = rng.gaussian(0.0, sigma);
        const double s = snm(cell, tech, vdd, mode, bg, var);
        sum += s;
        sumSq += s * s;
        minSnm = std::min(minSnm, s);
        if (s >= snmMargin)
            ++pass;
    }
    const double mean = sum / samples;
    const double variance = std::max(0.0, sumSq / samples - mean * mean);
    return {mean, std::sqrt(variance), minSnm, double(pass) / samples,
            samples};
}

} // namespace pilotrf::circuit
