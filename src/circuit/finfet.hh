/**
 * @file
 * Analytic dual-gate (DG) FinFET transistor model.
 *
 * Models the binary back-gate control exploited by the adaptive FRF: with
 * the back gate enabled the device drives with both channels and full gate
 * capacitance Cg; with the back gate disabled only the front channel forms,
 * halving Cg, halving the drive prefactor and raising Vth — which is exactly
 * the knob the FRF_low power mode uses.
 */

#ifndef PILOTRF_CIRCUIT_FINFET_HH
#define PILOTRF_CIRCUIT_FINFET_HH

#include "circuit/tech.hh"

namespace pilotrf::circuit
{

/** Back-gate state of a DG FinFET. */
enum class BackGate { Enabled, Disabled };

/**
 * One FinFET device of a given width (in fins).
 */
class FinFet
{
  public:
    /**
     * @param tech technology parameters
     * @param fins number of parallel fins (device width quantum)
     * @param vthDelta additional threshold shift, used for Monte-Carlo
     *        process variation (LER + WFV)
     */
    explicit FinFet(const TechParams &tech, unsigned fins = 1,
                    double vthDelta = 0.0);

    /** Effective threshold voltage for the given back-gate state. */
    double vth(BackGate bg) const;

    /** Soft-plus drive function g(Vgs, Vds) in volts, including DIBL
     *  barrier lowering (see tech.hh). */
    double drive(double vgs, double vds, BackGate bg) const;

    /**
     * Drain current in amperes.
     * @param vgs gate-source voltage
     * @param vds drain-source voltage
     * @param bg back-gate state
     */
    double current(double vgs, double vds, BackGate bg) const;

    /** ON current per micron of width, A/um (Table III convention). */
    double onCurrentPerUm(double vdd, BackGate bg) const;

    /** Subthreshold leakage current (Vgs = 0) in amperes. */
    double leakage(double vdd, BackGate bg) const;

    /** Total gate capacitance in farads. */
    double gateCap(BackGate bg) const;

    /** Device width in microns. */
    double widthUm() const;

    const TechParams &tech() const { return _tech; }
    unsigned fins() const { return _fins; }

  private:
    const TechParams &_tech;
    unsigned _fins;
    double _vthDelta;
};

} // namespace pilotrf::circuit

#endif // PILOTRF_CIRCUIT_FINFET_HH
