/**
 * @file
 * Alpha-power inverter delay model and the Fig. 1 FO4 chain experiment.
 */

#ifndef PILOTRF_CIRCUIT_INVERTER_CHAIN_HH
#define PILOTRF_CIRCUIT_INVERTER_CHAIN_HH

#include <vector>

#include "circuit/finfet.hh"
#include "circuit/tech.hh"

namespace pilotrf::circuit
{

/**
 * Delay of a single inverter driving @p fanout copies of itself, seconds.
 *
 * Uses the alpha-power law t = kDelay * fanout * Vdd / g(Vdd)^alphaDelay
 * with the soft-plus drive g shared with the current model, so the delay
 * explodes smoothly as Vdd approaches and then crosses the threshold —
 * reproducing the shape of Fig. 1. When the back gate is disabled both the
 * load capacitance and the drive strength halve; the residual slowdown
 * comes from the effective Vth increase.
 */
double inverterDelay(const TechParams &tech, double vdd, double fanout = 4.0,
                     BackGate bg = BackGate::Enabled);

/** Delay of an N-stage FO4 inverter chain at the given supply, seconds. */
double chainDelay(const TechParams &tech, double vdd, unsigned stages = 40,
                  double fanout = 4.0, BackGate bg = BackGate::Enabled);

/** One point of the Fig. 1 sweep. */
struct DelayPoint
{
    double vdd;      ///< supply voltage (V)
    double delaySec; ///< 40-stage FO4 chain delay (s)
};

/** Sweep the 40-stage FO4 chain delay over [vLo, vHi] (Fig. 1). */
std::vector<DelayPoint> fig1Sweep(const TechParams &tech, double vLo = 0.20,
                                  double vHi = 0.60, double step = 0.025);

} // namespace pilotrf::circuit

#endif // PILOTRF_CIRCUIT_INVERTER_CHAIN_HH
