/**
 * @file
 * The on-disk checkpoint manifest of a sweep: one JSONL line per
 * completed job, streamed as jobs finish, so an interrupted multi-hour
 * campaign keeps everything it already computed.
 *
 * A line carries exactly what the report layer prints for a job —
 * cycles, instructions, the raw rf/sim stat sets and the per-kernel
 * (name, cycles, instructions) triples — so a `--resume` run that
 * merges checkpointed entries rebuilds a report byte-identical to an
 * uninterrupted run (energy is recomputed from the stats, which is
 * deterministic). Jobs are keyed by the content-addressed `exp::JobKey`
 * ("workload|cfg:<hash>|seed" — see exp/job_key.hh), so a manifest
 * survives axis reordering *and* config relabelling; manifests written
 * before the content-addressed keys existed ("workload|configLabel|seed")
 * still resume — legacy keys are accepted on load, new keys on write.
 * When the same key appears on several lines (a rerun appended after a
 * failed entry) the last line wins.
 */

#ifndef PILOTRF_EXP_CHECKPOINT_HH
#define PILOTRF_EXP_CHECKPOINT_HH

#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "exp/experiment.hh"

namespace pilotrf::exp
{

/** One parsed manifest line. */
struct CheckpointEntry
{
    std::string key;
    std::string sweep; ///< sweep the line was recorded under
    /** Simulator fingerprint (versionString()) that produced the entry;
     *  empty in manifests written before the field existed. `--resume`
     *  tolerates mismatches (the manifest is a same-campaign convenience);
     *  the sweep service's ResultStore does not (it is long-lived). */
    std::string fingerprint;
    JobStatus status = JobStatus::Failed;
    std::string error;
    unsigned attempts = 1;
    double wallSeconds = 0.0;
    /** Engine provenance (see JobResult): absent in manifests written
     *  before the fields existed, so the defaults mirror a serial run. */
    std::string engine = "lockstep";
    unsigned workers = 1;
    std::string schedule = "static";
    double stragglerRatio = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    StatSet rfStats;
    StatSet simStats;

    struct Kernel
    {
        std::string name;
        std::uint64_t cycles = 0;
        std::uint64_t instructions = 0;
    };
    std::vector<Kernel> kernels;
};

/** The manifest key of a job: the content-addressed JobKey string
 *  "workload|cfg:<hash>|seed" (jobKey(job).str(); see exp/job_key.hh). */
std::string checkpointKey(const Job &job);

/** Serialize one finished job as a single manifest line (no newline),
 *  stamped with the current simulator fingerprint (versionString()). */
std::string checkpointLine(const std::string &sweep, const JobResult &r);

/** As above with an explicit fingerprint stamp (the ResultStore's
 *  injectable-fingerprint path; tests simulate version bumps with it). */
std::string checkpointLine(const std::string &sweep, const JobResult &r,
                           const std::string &fingerprint);

/** Parse one manifest line. Returns nullopt (and sets *error when
 *  given) on a malformed line — the shared primitive under
 *  loadCheckpoint() and the sweep service's ResultStore. */
std::optional<CheckpointEntry>
parseCheckpointLine(std::string_view line, std::string *error = nullptr);

/**
 * Rebuild a JobResult from a manifest (or ResultStore) entry for `job`.
 * Energy is recomputed from the entry's stats — account() is
 * deterministic, so the rebuilt result is byte-identical to the one the
 * entry was written from once timing/provenance fields are omitted.
 * Marks the result `resumed`.
 */
JobResult rebuildJobResult(const CheckpointEntry &entry, const Job &job,
                           const power::EnergyAccountant &accountant);

/**
 * Parse a manifest. Malformed lines are skipped with a warning; for
 * duplicate keys the last line wins. A missing file is an error only
 * when mustExist (resume from nothing is a configuration mistake).
 */
std::map<std::string, CheckpointEntry>
loadCheckpoint(const std::string &path, bool mustExist);

/**
 * Thread-safe appender: each append() writes one line and flushes, so
 * a kill between jobs loses at most the in-flight job.
 */
class CheckpointWriter
{
  public:
    /** @param append keep existing lines (resume) or truncate (fresh). */
    CheckpointWriter(const std::string &sweep, const std::string &path,
                     bool append);

    bool ok() const { return static_cast<bool>(os); }

    void append(const JobResult &r);

  private:
    std::string sweepName;
    std::mutex mu;
    std::ofstream os;
};

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_CHECKPOINT_HH
