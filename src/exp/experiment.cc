#include "exp/experiment.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace pilotrf::exp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Clone a kernel with a new seed (code and geometry unchanged). */
isa::Kernel
reseed(const isa::Kernel &k, std::uint64_t seed)
{
    return isa::Kernel(k.name(), k.regsPerThread(), k.threadsPerCta(),
                       k.numCtas(), k.code(), seed);
}

} // namespace

Sweep
Sweep::overSuite(std::string name, std::vector<ConfigVariant> configs)
{
    Sweep s;
    s.name = std::move(name);
    s.configs = std::move(configs);
    for (const auto &w : workloads::allWorkloads())
        s.workloads.push_back(w.name);
    return s;
}

std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = splitmix64(s.size());
    for (const char c : s)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return h;
}

std::uint64_t
deriveJobSeed(std::uint64_t baseSeed, std::string_view workload,
              std::string_view configLabel, std::uint64_t seed)
{
    return hashCoords(baseSeed, hashString(workload),
                      hashString(configLabel), seed);
}

const JobResult &
SweepResult::at(std::size_t w, std::size_t c, std::size_t s) const
{
    if (w >= workloadCount || c >= configCount || s >= seedCount)
        fatal("SweepResult::at(%zu, %zu, %zu) out of range (%zu x %zu x "
              "%zu)",
              w, c, s, workloadCount, configCount, seedCount);
    return jobs.at((w * configCount + c) * seedCount + s);
}

const JobResult *
SweepResult::find(std::string_view workload, std::string_view configLabel,
                  std::uint64_t seed) const
{
    for (const auto &j : jobs)
        if (j.job.workload == workload && j.job.configLabel == configLabel &&
            j.job.seed == seed)
            return &j;
    return nullptr;
}

StatSet
SweepResult::mergedStats() const
{
    StatSet merged;
    for (const auto &j : jobs) {
        merged.merge(j.run.rfStats.withPrefix("rf."));
        merged.merge(j.run.simStats.withPrefix("sim."));
    }
    return merged;
}

ExperimentRunner::ExperimentRunner(unsigned threads) : nThreads(threads)
{
    if (nThreads == 0)
        nThreads = std::max(1u, std::thread::hardware_concurrency());
}

std::vector<Job>
ExperimentRunner::expand(const Sweep &sweep)
{
    if (sweep.workloads.empty() || sweep.configs.empty() ||
        sweep.seeds.empty())
        fatal("sweep '%s' has an empty axis (%zu workloads x %zu configs "
              "x %zu seeds)",
              sweep.name.c_str(), sweep.workloads.size(),
              sweep.configs.size(), sweep.seeds.size());

    std::vector<Job> jobs;
    jobs.reserve(sweep.jobCount());
    for (const auto &wname : sweep.workloads) {
        // Resolves the name now, so a typo fails before any work starts.
        const auto &w = workloads::workload(wname);
        for (const auto &cv : sweep.configs) {
            for (const auto seed : sweep.seeds) {
                Job j;
                j.index = jobs.size();
                j.workload = w.name;
                j.category = w.category;
                j.configLabel = cv.label;
                j.cfg = cv.cfg;
                j.seed = seed;
                j.jobSeed = deriveJobSeed(sweep.baseSeed, w.name, cv.label,
                                          seed);
                jobs.push_back(std::move(j));
            }
        }
    }
    return jobs;
}

JobResult
ExperimentRunner::runJob(const Job &job) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto &w = workloads::workload(job.workload);

    JobResult res;
    res.job = job;
    sim::Gpu gpu(job.cfg);
    if (job.seed == 0) {
        res.run = gpu.run(w.kernels);
    } else {
        // Replicate draws: every kernel gets a fresh deterministic seed
        // derived from its own seed and the job's.
        std::vector<isa::Kernel> kernels;
        kernels.reserve(w.kernels.size());
        for (const auto &k : w.kernels)
            kernels.push_back(reseed(k, hashCombine(k.seed(), job.jobSeed)));
        res.run = gpu.run(kernels);
    }
    res.energy =
        accountant.account(job.cfg, res.run.rfStats, res.run.totalCycles);
    res.wallSeconds = secondsSince(t0);
    return res;
}

SweepResult
ExperimentRunner::run(const Sweep &sweep) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<Job> jobs = expand(sweep);

    SweepResult out;
    out.sweep = sweep.name;
    out.threads = nThreads;
    out.workloadCount = sweep.workloads.size();
    out.configCount = sweep.configs.size();
    out.seedCount = sweep.seeds.size();
    out.jobs.resize(jobs.size());

    const unsigned workers =
        unsigned(std::min<std::size_t>(nThreads, jobs.size()));
    if (workers <= 1) {
        for (const auto &job : jobs)
            out.jobs[job.index] = runJob(job);
    } else {
        // Each worker claims the next unstarted job; each result lands in
        // its own pre-sized slot, so completion order is irrelevant.
        std::atomic<std::size_t> next{0};
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= jobs.size())
                        return;
                    out.jobs[i] = runJob(jobs[i]);
                }
            });
        }
        pool.clear(); // join
    }

    out.wallSeconds = secondsSince(t0);
    return out;
}

} // namespace pilotrf::exp
