#include "exp/experiment.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "exp/checkpoint.hh"
#include "exp/job_key.hh"
#include "obs/trace.hh"
#include "workloads/workloads.hh"

namespace pilotrf::exp
{

/**
 * Shared state of one watchdog-supervised job attempt. Heap-allocated
 * and shared between the worker (waiting) and the attempt thread
 * (running), so an abandoned attempt can finish — or not — without
 * touching anything the worker still owns.
 */
struct AttemptState
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    JobResult result;
    /** Set by the watchdog on timeout; injection hooks poll it so a
     *  "hung" job can unwind once nobody wants its result. */
    std::atomic<bool> abandoned{false};
};

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Clone a kernel with a new seed (code and geometry unchanged). */
isa::Kernel
reseed(const isa::Kernel &k, std::uint64_t seed)
{
    return isa::Kernel(k.name(), k.regsPerThread(), k.threadsPerCta(),
                       k.numCtas(), k.code(), seed);
}

JobHook &
jobHook()
{
    static JobHook hook;
    return hook;
}

const std::atomic<bool> neverAbandoned{false};

} // namespace

std::string
perJobOutputPath(const std::string &path, const Job &job)
{
    std::string key = legacyJobKey(job);
    for (char &c : key)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.')
            c = '-';

    // Insert before the extension of the final path component.
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + key;
    return path.substr(0, dot) + "." + key + path.substr(dot);
}

void
setJobHook(JobHook hook)
{
    jobHook() = std::move(hook);
}

void
clearJobHook()
{
    jobHook() = nullptr;
}

const char *
toString(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Timeout: return "timeout";
    }
    return "?";
}

std::string
JobResult::statusString() const
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed:" + error;
      case JobStatus::Timeout: return "timeout";
    }
    return "?";
}

Sweep
Sweep::overSuite(std::string name, std::vector<ConfigVariant> configs)
{
    Sweep s;
    s.name = std::move(name);
    s.configs = std::move(configs);
    for (const auto &w : workloads::allWorkloads())
        s.workloads.push_back(w.name);
    return s;
}

std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = splitmix64(s.size());
    for (const char c : s)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return h;
}

std::uint64_t
deriveJobSeed(std::uint64_t baseSeed, std::string_view workload,
              std::string_view configLabel, std::uint64_t seed)
{
    return hashCoords(baseSeed, hashString(workload),
                      hashString(configLabel), seed);
}

const JobResult &
SweepResult::at(std::size_t w, std::size_t c, std::size_t s) const
{
    if (w >= workloadCount || c >= configCount || s >= seedCount)
        fatal("SweepResult::at(%zu, %zu, %zu) out of range (%zu x %zu x "
              "%zu)",
              w, c, s, workloadCount, configCount, seedCount);
    return jobs.at((w * configCount + c) * seedCount + s);
}

const JobResult *
SweepResult::find(std::string_view workload, std::string_view configLabel,
                  std::uint64_t seed) const
{
    for (const auto &j : jobs)
        if (j.job.workload == workload && j.job.configLabel == configLabel &&
            j.job.seed == seed)
            return &j;
    return nullptr;
}

StatSet
SweepResult::mergedStats() const
{
    StatSet merged;
    for (const auto &j : jobs) {
        merged.merge(j.run.rfStats.withPrefix("rf."));
        merged.merge(j.run.simStats.withPrefix("sim."));
    }
    return merged;
}

SweepSummary
SweepResult::summary() const
{
    SweepSummary s;
    for (const auto &j : jobs) {
        switch (j.status) {
          case JobStatus::Ok: ++s.ok; break;
          case JobStatus::Failed: ++s.failed; break;
          case JobStatus::Timeout: ++s.timeout; break;
        }
        if (j.resumed)
            ++s.resumed;
    }
    return s;
}

ExperimentRunner::ExperimentRunner(unsigned threads, RunnerOptions options)
    : nThreads(threads), opts(std::move(options))
{
    if (nThreads == 0)
        nThreads = std::max(1u, std::thread::hardware_concurrency());
    if (opts.resume && opts.checkpointPath.empty())
        fatal("RunnerOptions::resume requires a checkpointPath");
}

std::vector<Job>
ExperimentRunner::expand(const Sweep &sweep)
{
    if (sweep.workloads.empty() || sweep.configs.empty() ||
        sweep.seeds.empty())
        fatal("sweep '%s' has an empty axis (%zu workloads x %zu configs "
              "x %zu seeds)",
              sweep.name.c_str(), sweep.workloads.size(),
              sweep.configs.size(), sweep.seeds.size());

    std::vector<Job> jobs;
    jobs.reserve(sweep.jobCount());
    for (const auto &wname : sweep.workloads) {
        // Resolves the name now, so a typo fails before any work starts.
        const auto &w = workloads::workload(wname);
        for (const auto &cv : sweep.configs) {
            for (const auto seed : sweep.seeds) {
                Job j;
                j.index = jobs.size();
                j.workload = w.name;
                j.category = w.category;
                j.configLabel = cv.label;
                j.cfg = cv.cfg;
                j.seed = seed;
                j.jobSeed = deriveJobSeed(sweep.baseSeed, w.name, cv.label,
                                          seed);
                jobs.push_back(std::move(j));
            }
        }
    }
    return jobs;
}

JobResult
ExperimentRunner::execute(const Job &job, unsigned attempt,
                          const std::atomic<bool> &abandoned) const
{
    const auto t0 = std::chrono::steady_clock::now();
    if (const JobHook &hook = jobHook())
        hook(job, attempt, abandoned);
    const auto &w = workloads::workload(job.workload);

    JobResult res;
    res.job = job;
    sim::GpuOptions gpuOpts;
    gpuOpts.timeSeriesPeriod = opts.obs.timeseriesPeriod;
    gpuOpts.timeSeriesCapacity = opts.obs.timeseriesCapacity;
    gpuOpts.enableTraceHub = !opts.obs.chromeTracePath.empty() ||
                             !opts.obs.jsonlTracePath.empty();
    gpuOpts.numWorkers = opts.numWorkers;
    gpuOpts.shardSchedule = opts.schedule;
    sim::Gpu gpu(job.cfg, gpuOpts);

    // Observability: per-job files keyed by (workload, config, seed), so
    // concurrent jobs on the pool never share a sink or a stream.
    if (!opts.obs.chromeTracePath.empty()) {
        std::string err;
        auto sink = obs::ChromeTraceSink::toFile(
            perJobOutputPath(opts.obs.chromeTracePath, job), &err);
        if (!sink)
            throw std::runtime_error("chrome trace: " + err);
        gpu.traceHub().addSink(std::move(sink));
    }
    if (!opts.obs.jsonlTracePath.empty()) {
        std::string err;
        auto sink = obs::JsonlTraceSink::toFile(
            perJobOutputPath(opts.obs.jsonlTracePath, job), &err);
        if (!sink)
            throw std::runtime_error("jsonl trace: " + err);
        gpu.traceHub().addSink(std::move(sink));
        gpu.traceHub().setCategoryMask(opts.obs.traceCategoryMask);
    }

    if (job.seed == 0) {
        res.run = gpu.run(w.view());
    } else {
        // Replicate draws: every kernel gets a fresh deterministic seed
        // derived from its own seed and the job's.
        std::vector<isa::Kernel> kernels;
        kernels.reserve(w.kernels.size());
        for (const auto &k : w.kernels)
            kernels.push_back(reseed(k, hashCombine(k.seed(), job.jobSeed)));
        res.run = gpu.run({w.name, kernels});
    }
    res.energy =
        accountant.account(job.cfg, res.run.rfStats, res.run.totalCycles);

    if (opts.obs.timeseriesPeriod) {
        const std::string path =
            perJobOutputPath(opts.obs.timeseriesPath, job);
        std::ofstream os(path);
        if (!os)
            throw std::runtime_error("cannot open time-series output '" +
                                     path + "'");
        gpu.writeTimeSeries(os);
    }

    res.engine = sim::toString(gpu.engineUsed());
    res.workers = gpu.workersUsed();
    res.schedule = sim::toString(gpu.scheduleUsed());
    res.stragglerRatio = gpu.schedTelemetry().meanStragglerRatio();
    res.wallSeconds = secondsSince(t0);
    return res;
}

JobResult
ExperimentRunner::runJob(const Job &job) const
{
    return execute(job, 1, neverAbandoned);
}

bool
ExperimentRunner::attemptWithWatchdog(const Job &job, unsigned attempt,
                                      JobResult &result,
                                      std::string &error,
                                      bool &timedOut) const
{
    auto state = std::make_shared<AttemptState>();
    std::thread worker([this, state, job, attempt] {
        JobResult r;
        bool failed = false;
        std::string err;
        try {
            r = execute(job, attempt, state->abandoned);
        } catch (const std::exception &e) {
            failed = true;
            err = e.what();
        } catch (...) {
            failed = true;
            err = "unknown exception";
        }
        {
            std::lock_guard<std::mutex> lock(state->mu);
            state->result = std::move(r);
            state->failed = failed;
            state->error = std::move(err);
            state->done = true;
        }
        state->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(state->mu);
    const bool finished = state->cv.wait_for(
        lock, std::chrono::duration<double>(opts.timeoutSeconds),
        [&] { return state->done; });
    if (!finished) {
        state->abandoned.store(true, std::memory_order_relaxed);
        lock.unlock();
        {
            std::lock_guard<std::mutex> slock(strayMu);
            strays.push_back({std::move(worker), state});
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "exceeded %gs wall-clock timeout",
                      opts.timeoutSeconds);
        error = buf;
        timedOut = true;
        return false;
    }
    lock.unlock();
    worker.join();
    if (state->failed) {
        error = std::move(state->error);
        return false;
    }
    result = std::move(state->result);
    return true;
}

JobResult
ExperimentRunner::runJobGuarded(const Job &job) const
{
    for (unsigned attempt = 1;; ++attempt) {
        JobResult res;
        std::string error;
        bool timedOut = false;
        bool ok = false;
        if (opts.timeoutSeconds > 0.0) {
            ok = attemptWithWatchdog(job, attempt, res, error, timedOut);
        } else {
            try {
                res = execute(job, attempt, neverAbandoned);
                ok = true;
            } catch (const std::exception &e) {
                error = e.what();
            } catch (...) {
                error = "unknown exception";
            }
        }
        if (ok) {
            res.attempts = attempt;
            return res;
        }
        if (!timedOut && attempt <= opts.maxRetries) {
            // Transient failure: back off (doubling) and try again.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::uint64_t(opts.retryBackoffMs) << (attempt - 1)));
            continue;
        }
        // Terminal: a timeout would recur (the simulator is
        // deterministic) and failures have exhausted their retries.
        JobResult fail;
        fail.job = job;
        fail.status = timedOut ? JobStatus::Timeout : JobStatus::Failed;
        fail.error = std::move(error);
        fail.attempts = attempt;
        return fail;
    }
}

void
ExperimentRunner::reapStrays() const
{
    std::vector<Stray> local;
    {
        std::lock_guard<std::mutex> lock(strayMu);
        local.swap(strays);
    }
    // Give abandoned attempts a short grace period to unwind (injected
    // hangs poll `abandoned` and exit promptly); truly wedged threads
    // are detached — their shared AttemptState keeps them memory-safe.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (auto &s : local) {
        std::unique_lock<std::mutex> lock(s.state->mu);
        const bool finished =
            s.state->cv.wait_until(lock, deadline,
                                   [&] { return s.state->done; });
        lock.unlock();
        if (finished) {
            s.thread.join();
        } else {
            warn("abandoning a wedged job thread past the grace period");
            s.thread.detach();
        }
    }
}

SweepResult
ExperimentRunner::run(const Sweep &sweep) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<Job> jobs = expand(sweep);

    SweepResult out;
    out.sweep = sweep.name;
    out.threads = nThreads;
    out.workloadCount = sweep.workloads.size();
    out.configCount = sweep.configs.size();
    out.seedCount = sweep.seeds.size();
    out.jobs.resize(jobs.size());

    // Resume: serve every job already `ok` in the manifest from its
    // checkpoint entry; anything else (absent, failed, timed out) runs.
    // Lookup tries the content-addressed JobKey first, then the legacy
    // label-based key, so manifests written before PR 9 still resume.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    if (opts.resume) {
        const auto entries =
            loadCheckpoint(opts.checkpointPath, /*mustExist=*/true);
        for (const auto &job : jobs) {
            auto it = entries.find(checkpointKey(job));
            if (it == entries.end())
                it = entries.find(legacyJobKey(job));
            if (it != entries.end() &&
                it->second.status == JobStatus::Ok &&
                it->second.sweep == sweep.name) {
                out.jobs[job.index] =
                    rebuildJobResult(it->second, job, accountant);
            } else {
                pending.push_back(job.index);
            }
        }
    } else {
        for (const auto &job : jobs)
            pending.push_back(job.index);
    }

    std::unique_ptr<CheckpointWriter> writer;
    if (!opts.checkpointPath.empty()) {
        writer = std::make_unique<CheckpointWriter>(
            sweep.name, opts.checkpointPath, /*append=*/opts.resume);
        if (!writer->ok())
            fatal("cannot open checkpoint manifest '%s' for writing",
                  opts.checkpointPath.c_str());
    }

    // Fresh results stream to the manifest as they finish, so a killed
    // sweep keeps everything completed so far.
    const auto runOne = [&](std::size_t i) {
        out.jobs[i] = runJobGuarded(jobs[i]);
        if (writer)
            writer->append(out.jobs[i]);
    };

    const unsigned workers =
        unsigned(std::min<std::size_t>(nThreads, pending.size()));
    if (workers <= 1) {
        for (const std::size_t i : pending)
            runOne(i);
    } else {
        // Each worker claims the next unstarted job; each result lands in
        // its own pre-sized slot, so completion order is irrelevant.
        std::atomic<std::size_t> next{0};
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t n =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (n >= pending.size())
                        return;
                    runOne(pending[n]);
                }
            });
        }
        pool.clear(); // join
    }
    reapStrays();

    out.wallSeconds = secondsSince(t0);
    return out;
}

} // namespace pilotrf::exp
