/**
 * @file
 * The one sweep-request schema: what a caller may ask the experiment
 * runner to compute, as data.
 *
 * Before PR 9 the CLI flags of `pilotrf_run` were the only way to
 * describe "run sweep X under config Y with N seeds", and the flag
 * parser lowered them straight into an `exp::Sweep` inline. The sweep
 * service needs the same description to arrive over a socket, so the
 * description becomes a struct with strict JSON to/from (mirroring
 * `SimConfig`: unknown keys and mistyped values throw). All three entry
 * points — CLI flags, `--request file.json` batch runs, and server-mode
 * requests — build a `SweepRequest` and lower it through `toSweep()`,
 * so a request means exactly the same jobs everywhere.
 */

#ifndef PILOTRF_EXP_SWEEP_REQUEST_HH
#define PILOTRF_EXP_SWEEP_REQUEST_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hh"
#include "exp/report.hh"

namespace pilotrf::exp
{

/**
 * A validated request for one sweep. Field semantics match the
 * long-standing CLI flags of the same names; every field has the
 * default that flag had, so `{}` is the classic `--sweep smoke` run.
 */
struct SweepRequest
{
    /** Named sweep (exp/sweeps.hh registry) providing the base axes. */
    std::string sweep = "smoke";

    /** Optional workload-axis override (registry names); empty keeps
     *  the named sweep's workloads. */
    std::vector<std::string> workloads;

    /** Optional config-axis override: one SimConfig replacing the named
     *  sweep's config variants (the `--config FILE` behaviour). */
    std::optional<sim::SimConfig> config;

    /** Label of the override config in reports and keys. */
    std::string configLabel = "config";

    /** Replicate every job under this many deterministic seeds (0..N-1
     *  as the seed axis); must be >= 1. */
    unsigned seeds = 1;

    /** Base seed mixed into every derived job seed. */
    std::uint64_t baseSeed = 0;

    /** Per-job Gpu engine workers (0 = the config's numWorkers knob).
     *  Purely a wall-clock knob: results are byte-identical at any
     *  value. */
    unsigned workers = 0;

    /** Per-job shard schedule: "static", "dynamic", or "" to inherit
     *  the config's shardSchedule knob. Like workers, purely a
     *  wall-clock knob. */
    std::string schedule;

    /** Report shape: wall-clock/provenance fields and per-kernel
     *  arrays (the --no-timing / --no-kernels flags, inverted). */
    bool includeTiming = true;
    bool includeKernels = true;

    /**
     * Write the request as a JSON object, fields in declaration order,
     * omitting nothing (a dumped request is a complete, self-describing
     * document). `depth` is the starting indentation level.
     */
    void toJson(std::ostream &os, unsigned depth = 0) const;

    /** toJson() as a string (ends with a newline). */
    std::string jsonText() const;

    /**
     * Build a request from a parsed JSON object. Starts from the
     * defaults, so a partial document overrides only what it names.
     * Throws std::runtime_error on an unknown key, a mistyped value, an
     * invalid field (seeds == 0), or an unknown sweep/workload name —
     * a request typo must never silently run the wrong thing.
     */
    static SweepRequest fromJson(const JsonValue &v);

    /** Parse `text` and delegate to fromJson(). Throws
     *  std::runtime_error on malformed JSON. */
    static SweepRequest fromJsonText(std::string_view text);

    /**
     * Lower the request to the sweep it denotes: the named sweep with
     * the workload/config axes overridden as requested and the seed
     * axis expanded to 0..seeds-1. fatal()s on an unknown sweep name
     * (like exp::namedSweep); fromJson validates names first, so
     * requests that arrived as JSON fail softly instead.
     */
    Sweep toSweep() const;

    /** The report options the request asks for. */
    ReportOptions reportOptions() const;
};

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_SWEEP_REQUEST_HH
