#include "exp/report.hh"

#include <sstream>

#include "common/version.hh"

namespace pilotrf::exp
{

namespace
{

void
field(std::ostream &os, unsigned depth, const char *key, bool &first)
{
    os << (first ? "\n" : ",\n") << std::string(2 * depth, ' ');
    first = false;
    jsonString(os, key);
    os << ": ";
}

void
writeEnergy(std::ostream &os, const power::EnergyReport &e, unsigned depth)
{
    bool first = true;
    os << "{";
    const auto num = [&](const char *k, double v) {
        field(os, depth + 1, k, first);
        jsonNumber(os, v);
    };
    num("dynamicPj", e.dynamicPj);
    num("frfPj", e.frfPj);
    num("srfPj", e.srfPj);
    num("mrfPj", e.mrfPj);
    num("rfcPj", e.rfcPj);
    num("overheadPj", e.overheadPj);
    num("leakagePowerMw", e.leakagePowerMw);
    num("leakageUj", e.leakageUj);
    num("runSeconds", e.runSeconds);
    os << "\n" << std::string(2 * depth, ' ') << "}";
}

void
writeKernel(std::ostream &os, const sim::KernelResult &k, unsigned depth)
{
    bool first = true;
    os << "{";
    field(os, depth + 1, "name", first);
    jsonString(os, k.name);
    field(os, depth + 1, "cycles", first);
    jsonNumber(os, double(k.cycles));
    field(os, depth + 1, "instructions", first);
    jsonNumber(os, double(k.instructions));
    os << "\n" << std::string(2 * depth, ' ') << "}";
}

void
writeJob(std::ostream &os, const JobResult &j, const ReportOptions &opts,
         unsigned depth)
{
    bool first = true;
    os << "{";
    field(os, depth + 1, "workload", first);
    jsonString(os, j.job.workload);
    field(os, depth + 1, "category", first);
    jsonNumber(os, j.job.category);
    field(os, depth + 1, "config", first);
    jsonString(os, j.job.configLabel);
    field(os, depth + 1, "seed", first);
    jsonNumber(os, double(j.job.seed));
    field(os, depth + 1, "jobSeed", first);
    // 64-bit seeds do not always fit a double; emit as a string.
    jsonString(os, std::to_string(j.job.jobSeed));
    field(os, depth + 1, "status", first);
    jsonString(os, j.statusString());
    field(os, depth + 1, "cycles", first);
    jsonNumber(os, double(j.run.totalCycles));
    field(os, depth + 1, "instructions", first);
    jsonNumber(os, double(j.run.totalInstructions));
    field(os, depth + 1, "energy", first);
    writeEnergy(os, j.energy, depth + 1);
    field(os, depth + 1, "stats", first);
    StatSet stats = j.run.rfStats.withPrefix("rf.");
    stats.merge(j.run.simStats.withPrefix("sim."));
    stats.toJson(os, depth + 1);
    if (opts.includeKernels) {
        field(os, depth + 1, "kernels", first);
        os << "[";
        for (std::size_t k = 0; k < j.run.kernels.size(); ++k) {
            os << (k ? "," : "") << "\n"
               << std::string(2 * (depth + 2), ' ');
            writeKernel(os, j.run.kernels[k], depth + 2);
        }
        os << "\n" << std::string(2 * (depth + 1), ' ') << "]";
    }
    if (opts.includeTiming) {
        // Execution provenance: how this run obtained the result, not a
        // property of the sweep — a resumed run stays byte-identical to
        // an uninterrupted one once these fields are omitted.
        field(os, depth + 1, "attempts", first);
        jsonNumber(os, j.attempts);
        field(os, depth + 1, "resumed", first);
        os << (j.resumed ? "true" : "false");
        field(os, depth + 1, "engine", first);
        jsonString(os, j.engine);
        field(os, depth + 1, "workers", first);
        jsonNumber(os, double(j.workers));
        field(os, depth + 1, "schedule", first);
        jsonString(os, j.schedule);
        field(os, depth + 1, "stragglerRatio", first);
        jsonNumber(os, j.stragglerRatio);
        field(os, depth + 1, "wallSeconds", first);
        jsonNumber(os, j.wallSeconds);
    }
    os << "\n" << std::string(2 * depth, ' ') << "}";
}

} // namespace

void
writeJson(const SweepResult &result, std::ostream &os,
          const ReportOptions &opts)
{
    bool first = true;
    os << "{";
    field(os, 1, "sweep", first);
    jsonString(os, result.sweep);
    field(os, 1, "workloads", first);
    jsonNumber(os, double(result.workloadCount));
    field(os, 1, "configs", first);
    jsonNumber(os, double(result.configCount));
    field(os, 1, "seeds", first);
    jsonNumber(os, double(result.seedCount));
    field(os, 1, "jobs", first);
    os << "[";
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        os << (i ? "," : "") << "\n" << std::string(4, ' ');
        writeJob(os, result.jobs[i], opts, 2);
    }
    os << "\n  ]";
    field(os, 1, "merged", first);
    result.mergedStats().toJson(os, 1);
    const SweepSummary sum = result.summary();
    field(os, 1, "summary", first);
    {
        bool sfirst = true;
        os << "{";
        const auto count = [&](const char *k, std::size_t v) {
            field(os, 2, k, sfirst);
            jsonNumber(os, double(v));
        };
        count("ok", sum.ok);
        count("failed", sum.failed);
        count("timeout", sum.timeout);
        if (opts.includeTiming)
            count("resumed", sum.resumed); // provenance, like wallSeconds
        os << "\n  }";
    }
    if (opts.includeTiming) {
        // Provenance, like engine/workers: which simulator produced the
        // numbers. Gated so deterministic-bytes reports stay comparable
        // across releases that do NOT change stats (a stat-affecting
        // change bumps kStatSchemaRev and is *supposed* to diff).
        field(os, 1, "version", first);
        jsonString(os, versionString());
        field(os, 1, "threads", first);
        jsonNumber(os, result.threads);
        field(os, 1, "wallSeconds", first);
        jsonNumber(os, result.wallSeconds);
    }
    os << "\n}\n";
}

std::string
toJsonString(const SweepResult &result, const ReportOptions &opts)
{
    std::ostringstream ss;
    writeJson(result, ss, opts);
    return ss.str();
}

} // namespace pilotrf::exp
