#include "exp/sweeps.hh"

#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "rfmodel/rf_specs.hh"

namespace pilotrf::exp
{

namespace
{

sim::SimConfig
withKind(sim::RfKind kind)
{
    sim::SimConfig c;
    c.rfKind = kind;
    return c;
}

Sweep
smokeSweep()
{
    // The three shortest-running Table-I workloads under the baseline and
    // the proposed design: a seconds-long CI / determinism vehicle.
    Sweep s;
    s.name = "smoke";
    s.workloads = {"WP", "LIB", "CP"};
    s.configs = {{"mrf_stv", withKind(sim::RfKind::MrfStv)},
                 {"partitioned", withKind(sim::RfKind::Partitioned)}};
    return s;
}

Sweep
fig10Sweep()
{
    return Sweep::overSuite(
        "fig10", {{"partitioned", withKind(sim::RfKind::Partitioned)}});
}

Sweep
fig11Sweep()
{
    sim::SimConfig part = withKind(sim::RfKind::Partitioned);
    part.prf.adaptiveFrf = false;
    sim::SimConfig adap = withKind(sim::RfKind::Partitioned);
    adap.prf.adaptiveFrf = true;
    return Sweep::overSuite("fig11",
                            {{"mrf_stv", withKind(sim::RfKind::MrfStv)},
                             {"partitioned", part},
                             {"part_adaptive", adap},
                             {"mrf_ntv", withKind(sim::RfKind::MrfNtv)}});
}

Sweep
fig12Sweep()
{
    const auto mk = [](sim::SchedulerPolicy pol, sim::RfKind kind,
                       regfile::Profiling prof) {
        sim::SimConfig c;
        c.policy = pol;
        c.rfKind = kind;
        c.prf.profiling = prof;
        return c;
    };
    using sim::RfKind;
    using sim::SchedulerPolicy;
    return Sweep::overSuite(
        "fig12",
        {{"gto_mrf_stv", mk(SchedulerPolicy::Gto, RfKind::MrfStv,
                            regfile::Profiling::Hybrid)},
         {"tl_mrf_stv", mk(SchedulerPolicy::TwoLevel, RfKind::MrfStv,
                           regfile::Profiling::Hybrid)},
         {"gto_hybrid", mk(SchedulerPolicy::Gto, RfKind::Partitioned,
                           regfile::Profiling::Hybrid)},
         {"tl_hybrid", mk(SchedulerPolicy::TwoLevel, RfKind::Partitioned,
                          regfile::Profiling::Hybrid)},
         {"gto_compiler", mk(SchedulerPolicy::Gto, RfKind::Partitioned,
                             regfile::Profiling::Compiler)},
         {"mrf_ntv", mk(SchedulerPolicy::Gto, RfKind::MrfNtv,
                        regfile::Profiling::Hybrid)}});
}

Sweep
fig13Sweep()
{
    // Four GPU scale points x {MRF@STV baseline, RFC+TL, partitioned}.
    struct Point
    {
        const char *tag;
        unsigned sched, banks, warps;
        bool stv;
    };
    const Point points[] = {{"1x2x8_ntv", 1, 2, 8, false},
                            {"2x4x16_ntv", 2, 4, 16, false},
                            {"4x8x32_ntv", 4, 8, 32, false},
                            {"4x8x32_stv", 4, 8, 32, true}};
    std::vector<ConfigVariant> configs;
    for (const auto &p : points) {
        sim::SimConfig base = withKind(sim::RfKind::MrfStv);
        base.schedulers = p.sched;
        sim::SimConfig rfc = base;
        rfc.rfKind = sim::RfKind::Rfc;
        rfc.policy = sim::SchedulerPolicy::TwoLevel;
        rfc.tlActiveWarps = p.warps;
        rfc.rfc.rfcBanks = p.banks;
        rfc.rfc.mrfMode = p.stv ? rfmodel::RfMode::MrfStv
                                : rfmodel::RfMode::MrfNtv;
        sim::SimConfig part = base;
        part.rfKind = sim::RfKind::Partitioned;
        const std::string tag = p.tag;
        configs.push_back({tag + ".mrf_stv", base});
        configs.push_back({tag + ".rfc", rfc});
        configs.push_back({tag + ".part", part});
    }
    return Sweep::overSuite("fig13", std::move(configs));
}

Sweep
ablationBaselinesSweep()
{
    sim::SimConfig rfc = withKind(sim::RfKind::Rfc);
    rfc.policy = sim::SchedulerPolicy::TwoLevel;
    rfc.tlActiveWarps = 32; // generous pool: isolate the RFC itself
    return Sweep::overSuite(
        "ablation_baselines",
        {{"mrf_stv", withKind(sim::RfKind::MrfStv)},
         {"mrf_ntv", withKind(sim::RfKind::MrfNtv)},
         {"drowsy", withKind(sim::RfKind::Drowsy)},
         {"rfc_tl32", rfc},
         {"partitioned", withKind(sim::RfKind::Partitioned)}});
}

Sweep
ablationPipelineSweep()
{
    // Write-forwarding and L1 toggles on three RF kinds.
    std::vector<ConfigVariant> configs;
    for (const bool l1 : {false, true}) {
        for (const bool fwd : {true, false}) {
            char tag[32];
            std::snprintf(tag, sizeof(tag), "l1%s_fwd%s", l1 ? "on" : "off",
                          fwd ? "on" : "off");
            const std::pair<const char *, sim::RfKind> kinds[] = {
                {"mrf_stv", sim::RfKind::MrfStv},
                {"partitioned", sim::RfKind::Partitioned},
                {"mrf_ntv", sim::RfKind::MrfNtv}};
            for (const auto &[kname, kind] : kinds) {
                sim::SimConfig c = withKind(kind);
                c.l1Enable = l1;
                c.writeForwarding = fwd;
                configs.push_back({std::string(tag) + "." + kname, c});
            }
        }
    }
    return Sweep::overSuite("ablation_pipeline", std::move(configs));
}

Sweep
l2OccupancySweep()
{
    // Memory-latency-realistic occupancy sweep (the Fig. 12 regime with
    // the full hierarchy live): L1 + shared L2 + DRAM stage on, over
    // four occupancy points. Runs the cache-reuse workloads so the L2
    // hit rate actually moves with occupancy — more resident CTAs widen
    // the footprint racing through the small L1 and deepen the DRAM
    // partition queues. The shared L2 rides the sharded engine's
    // deferred-request barrier replay, so this sweep shards like any
    // other (outputs identical at any --workers N).
    Sweep s;
    s.name = "l2_occupancy";
    s.workloads = {"BFS", "MUM", "stencil", "sad"};
    for (const unsigned ctas : {2u, 4u, 8u, 16u}) {
        sim::SimConfig c = withKind(sim::RfKind::Partitioned);
        c.maxCtasPerSm = ctas;
        c.l1Enable = true;
        c.l1SizeKb = 1;
        c.l2Enable = true;
        c.dramEnable = true;
        char tag[24];
        std::snprintf(tag, sizeof(tag), "occ%u", ctas);
        s.configs.push_back({tag, c});
    }
    return s;
}

struct Entry
{
    Sweep (*make)();
    const char *description;
};

const std::vector<std::pair<std::string, Entry>> &
registry()
{
    static const std::vector<std::pair<std::string, Entry>> r = {
        {"smoke",
         {smokeSweep, "3 fastest workloads x {MRF@STV, partitioned}"}},
        {"fig10",
         {fig10Sweep, "suite x partitioned RF (access distribution)"}},
        {"fig11",
         {fig11Sweep,
          "suite x {MRF@STV, partitioned, +adaptive, MRF@NTV} (energy)"}},
        {"fig12",
         {fig12Sweep, "suite x 6 scheduler/profiling configs (exec time)"}},
        {"fig13",
         {fig13Sweep, "suite x 4 scale points x {MRF, RFC, partitioned}"}},
        {"ablation_baselines",
         {ablationBaselinesSweep,
          "suite x 5 RF organizations (related-work ablation)"}},
        {"ablation_pipeline",
         {ablationPipelineSweep,
          "suite x {L1, forwarding} toggles x 3 RF kinds"}},
        {"l2_occupancy",
         {l2OccupancySweep,
          "cache-reuse workloads x 4 occupancy points, L1+L2+DRAM on"}},
    };
    return r;
}

} // namespace

const std::vector<std::string> &
sweepNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto &[name, entry] : registry())
            n.push_back(name);
        return n;
    }();
    return names;
}

Sweep
namedSweep(const std::string &name)
{
    for (const auto &[n, entry] : registry())
        if (n == name)
            return entry.make();
    std::string known;
    for (const auto &n : sweepNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown sweep '%s' (known: %s)", name.c_str(), known.c_str());
}

std::string
sweepDescription(const std::string &name)
{
    for (const auto &[n, entry] : registry())
        if (n == name)
            return entry.description;
    return "";
}

} // namespace pilotrf::exp
