#include "exp/checkpoint.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "exp/job_key.hh"

namespace pilotrf::exp
{

namespace
{

void
field(std::ostream &os, const char *key, bool &first)
{
    os << (first ? "" : ",");
    first = false;
    jsonString(os, key);
    os << ":";
}

/** StatSet as a compact (single-line) JSON object, keys sorted. */
void
statsJson(std::ostream &os, const StatSet &s)
{
    os << "{";
    bool first = true;
    for (const auto &[k, v] : s.raw()) {
        field(os, k.c_str(), first);
        jsonNumber(os, v);
    }
    os << "}";
}

bool
parseStats(const JsonValue &v, StatSet &out)
{
    if (!v.isObject())
        return false;
    for (const auto &[k, val] : v.object) {
        if (val.kind != JsonValue::Kind::Number)
            return false;
        out.set(k, val.number);
    }
    return true;
}

bool
parseStatus(const std::string &s, JobStatus &out)
{
    if (s == "ok")
        out = JobStatus::Ok;
    else if (s == "failed")
        out = JobStatus::Failed;
    else if (s == "timeout")
        out = JobStatus::Timeout;
    else
        return false;
    return true;
}

} // namespace

std::string
checkpointKey(const Job &job)
{
    return jobKey(job).str();
}

std::string
checkpointLine(const std::string &sweep, const JobResult &r)
{
    return checkpointLine(sweep, r, versionString());
}

std::string
checkpointLine(const std::string &sweep, const JobResult &r,
               const std::string &fingerprint)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, "v", first);
    os << 1;
    field(os, "sweep", first);
    jsonString(os, sweep);
    field(os, "key", first);
    jsonString(os, checkpointKey(r.job));
    field(os, "fingerprint", first);
    jsonString(os, fingerprint);
    field(os, "status", first);
    jsonString(os, toString(r.status));
    if (!r.error.empty()) {
        field(os, "error", first);
        jsonString(os, r.error);
    }
    field(os, "attempts", first);
    os << r.attempts;
    field(os, "wallSeconds", first);
    jsonNumber(os, r.wallSeconds);
    field(os, "engine", first);
    jsonString(os, r.engine);
    field(os, "workers", first);
    os << r.workers;
    field(os, "schedule", first);
    jsonString(os, r.schedule);
    field(os, "stragglerRatio", first);
    jsonNumber(os, r.stragglerRatio);
    if (r.status == JobStatus::Ok) {
        field(os, "cycles", first);
        jsonNumber(os, double(r.run.totalCycles));
        field(os, "instructions", first);
        jsonNumber(os, double(r.run.totalInstructions));
        field(os, "rfStats", first);
        statsJson(os, r.run.rfStats);
        field(os, "simStats", first);
        statsJson(os, r.run.simStats);
        field(os, "kernels", first);
        os << "[";
        for (std::size_t i = 0; i < r.run.kernels.size(); ++i) {
            const auto &k = r.run.kernels[i];
            os << (i ? "," : "") << "{\"name\":";
            jsonString(os, k.name);
            os << ",\"cycles\":" << k.cycles
               << ",\"instructions\":" << k.instructions << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::optional<CheckpointEntry>
parseCheckpointLine(std::string_view line, std::string *error)
{
    const auto malformed =
        [&](const std::string &what) -> std::optional<CheckpointEntry> {
        if (error)
            *error = what;
        return std::nullopt;
    };

    JsonValue v;
    std::string err;
    if (!jsonParse(line, v, &err) || !v.isObject())
        return malformed(err.empty() ? "not a JSON object" : err);

    CheckpointEntry e;
    e.key = v.stringOr("key", "");
    e.sweep = v.stringOr("sweep", "");
    if (e.key.empty() || !parseStatus(v.stringOr("status", ""), e.status))
        return malformed("missing key or status");
    e.fingerprint = v.stringOr("fingerprint", "");
    e.error = v.stringOr("error", "");
    e.attempts = unsigned(v.numberOr("attempts", 1));
    e.wallSeconds = v.numberOr("wallSeconds", 0.0);
    e.engine = v.stringOr("engine", "lockstep");
    e.workers = unsigned(v.numberOr("workers", 1));
    e.schedule = v.stringOr("schedule", "static");
    e.stragglerRatio = v.numberOr("stragglerRatio", 0.0);
    if (e.status == JobStatus::Ok) {
        e.cycles = std::uint64_t(v.numberOr("cycles", 0));
        e.instructions = std::uint64_t(v.numberOr("instructions", 0));
        const JsonValue *rf = v.find("rfStats");
        const JsonValue *sm = v.find("simStats");
        const JsonValue *ks = v.find("kernels");
        if (!rf || !parseStats(*rf, e.rfStats) || !sm ||
            !parseStats(*sm, e.simStats) || !ks || !ks->isArray())
            return malformed("ok entry missing stats/kernels");
        for (const auto &kv : ks->array) {
            if (!kv.isObject())
                return malformed("bad kernel entry");
            CheckpointEntry::Kernel k;
            k.name = kv.stringOr("name", "");
            k.cycles = std::uint64_t(kv.numberOr("cycles", 0));
            k.instructions = std::uint64_t(kv.numberOr("instructions", 0));
            e.kernels.push_back(std::move(k));
        }
    }
    return e;
}

std::map<std::string, CheckpointEntry>
loadCheckpoint(const std::string &path, bool mustExist)
{
    std::map<std::string, CheckpointEntry> entries;
    std::ifstream in(path);
    if (!in) {
        if (mustExist)
            fatal("cannot open checkpoint manifest '%s'", path.c_str());
        return entries;
    }

    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string err;
        if (auto e = parseCheckpointLine(line, &err)) {
            entries[e->key] = std::move(*e); // last line per key wins
        } else {
            warn("checkpoint %s:%zu: skipping malformed line (%s)",
                 path.c_str(), lineNo, err.c_str());
        }
    }
    return entries;
}

JobResult
rebuildJobResult(const CheckpointEntry &entry, const Job &job,
                 const power::EnergyAccountant &accountant)
{
    JobResult res;
    res.job = job;
    res.status = JobStatus::Ok;
    res.attempts = entry.attempts;
    res.resumed = true;
    res.wallSeconds = entry.wallSeconds;
    res.engine = entry.engine;
    res.workers = entry.workers;
    res.schedule = entry.schedule;
    res.stragglerRatio = entry.stragglerRatio;
    res.run.totalCycles = entry.cycles;
    res.run.totalInstructions = entry.instructions;
    res.run.rfStats = entry.rfStats;
    res.run.simStats = entry.simStats;
    for (const auto &k : entry.kernels) {
        sim::KernelResult kr;
        kr.name = k.name;
        kr.cycles = k.cycles;
        kr.instructions = k.instructions;
        res.run.kernels.push_back(std::move(kr));
    }
    res.energy =
        accountant.account(job.cfg, res.run.rfStats, res.run.totalCycles);
    return res;
}

CheckpointWriter::CheckpointWriter(const std::string &sweep,
                                   const std::string &path, bool append)
    : sweepName(sweep),
      os(path, append ? std::ios::app : std::ios::trunc)
{
}

void
CheckpointWriter::append(const JobResult &r)
{
    const std::string line = checkpointLine(sweepName, r);
    std::lock_guard<std::mutex> lock(mu);
    os << line << "\n";
    os.flush();
}

} // namespace pilotrf::exp
