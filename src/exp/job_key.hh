/**
 * @file
 * Content-addressed job identity: the public replacement for the old
 * string-spliced "workload|configLabel|seed" keys.
 *
 * A job's result is a pure function of (workload name, configuration
 * *contents*, seed) — the config *label* is presentation, not identity:
 * two sweeps that call the same `SimConfig` "base" and "baseline" denote
 * the same simulations. `JobKey` captures exactly the function inputs by
 * hashing the canonical `SimConfig::toJson` document, so checkpoint
 * manifests and the sweep service's ResultStore can share results across
 * sweeps, relabelled configs, and concurrent clients.
 *
 * Key strings are `workload|cfg:<32 hex digits>|seed`. The legacy
 * label-based form is still *accepted* when loading old manifests
 * (`legacyJobKey()`), but everything writes the content-addressed form.
 */

#ifndef PILOTRF_EXP_JOB_KEY_HH
#define PILOTRF_EXP_JOB_KEY_HH

#include <cstdint>
#include <string>

#include "exp/experiment.hh"

namespace pilotrf::exp
{

/**
 * A 128-bit hash of a canonical configuration document. Two halves of
 * independent splitmix64 byte-folds: 64 bits would already make
 * accidental collisions across a design-space sweep implausible; 128
 * keeps them implausible across a long-lived shared result store.
 */
struct ConfigHash
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    /** 32 lowercase hex digits, hi half first. */
    std::string hex() const;

    friend bool operator==(const ConfigHash &a, const ConfigHash &b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }
    friend bool operator!=(const ConfigHash &a, const ConfigHash &b)
    {
        return !(a == b);
    }
};

/**
 * Hash of the canonical JSON rendering of `cfg` (`SimConfig::toJson`
 * emits every field in declaration order, so equal configs always render
 * to equal bytes). Stable across processes and platforms — the same
 * guarantee job seeds make.
 */
ConfigHash canonicalConfigHash(const sim::SimConfig &cfg);

/** The identity of one simulation: what its result depends on. */
struct JobKey
{
    std::string workload;
    ConfigHash configHash;
    std::uint64_t seed = 0;

    /** The canonical key string: "workload|cfg:<hex>|seed". */
    std::string str() const;

    friend bool operator==(const JobKey &a, const JobKey &b)
    {
        return a.seed == b.seed && a.configHash == b.configHash &&
               a.workload == b.workload;
    }
};

/** The key of a job (hashes job.cfg; cache the string if used hot). */
JobKey jobKey(const Job &job);

/** The pre-PR-9 label-based key, "workload|configLabel|seed": accepted
 *  when loading old checkpoint manifests, and still the stem of per-job
 *  output *filenames*, where a human-readable label beats a hash. */
std::string legacyJobKey(const Job &job);

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_JOB_KEY_HH
