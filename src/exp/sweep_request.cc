/**
 * @file
 * SweepRequest <-> JSON and lowering to exp::Sweep. The writer emits
 * every field in declaration order; the reader starts from the defaults
 * and strictly rejects unknown keys, mistyped values and unknown
 * sweep/workload names, so a request typo fails loudly — with an
 * exception the sweep service can turn into an error reply instead of a
 * dead daemon.
 */

#include "exp/sweep_request.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/stats.hh"
#include "exp/sweeps.hh"
#include "workloads/workloads.hh"

namespace pilotrf::exp
{

namespace
{

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("SweepRequest JSON: " + what);
}

double
asNumber(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Number)
        bad(std::string("field '") + key + "' must be a number");
    return v.number;
}

unsigned
asUnsigned(const char *key, const JsonValue &v)
{
    const double n = asNumber(key, v);
    if (n < 0 || n != std::floor(n))
        bad(std::string("field '") + key +
            "' must be a non-negative integer");
    return unsigned(n);
}

std::uint64_t
asU64(const char *key, const JsonValue &v)
{
    const double n = asNumber(key, v);
    if (n < 0 || n != std::floor(n))
        bad(std::string("field '") + key +
            "' must be a non-negative integer");
    return std::uint64_t(n);
}

bool
asBool(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Bool)
        bad(std::string("field '") + key + "' must be a boolean");
    return v.boolean;
}

const std::string &
asString(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::String)
        bad(std::string("field '") + key + "' must be a string");
    return v.str;
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (w.name == name)
            return true;
    return false;
}

bool
knownSweep(const std::string &name)
{
    for (const auto &n : sweepNames())
        if (n == name)
            return true;
    return false;
}

} // namespace

void
SweepRequest::toJson(std::ostream &os, unsigned depth) const
{
    const std::string pad(2 * (depth + 1), ' ');
    bool first = true;
    os << "{";
    const auto key = [&](const char *k) {
        os << (first ? "\n" : ",\n") << pad;
        first = false;
        jsonString(os, k);
        os << ": ";
    };
    key("sweep");
    jsonString(os, sweep);
    key("workloads");
    os << "[";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        os << (i ? ", " : "");
        jsonString(os, workloads[i]);
    }
    os << "]";
    key("config");
    if (config)
        config->toJson(os, depth + 1);
    else
        os << "null";
    key("configLabel");
    jsonString(os, configLabel);
    key("seeds");
    jsonNumber(os, double(seeds));
    key("baseSeed");
    jsonNumber(os, double(baseSeed));
    key("workers");
    jsonNumber(os, double(workers));
    key("schedule");
    jsonString(os, schedule);
    key("includeTiming");
    os << (includeTiming ? "true" : "false");
    key("includeKernels");
    os << (includeKernels ? "true" : "false");
    os << "\n" << pad.substr(2) << "}";
}

std::string
SweepRequest::jsonText() const
{
    std::ostringstream os;
    toJson(os);
    os << "\n";
    return os.str();
}

SweepRequest
SweepRequest::fromJson(const JsonValue &v)
{
    SweepRequest r;
    if (!v.isObject())
        bad("document must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "sweep")
            r.sweep = asString("sweep", val);
        else if (key == "workloads") {
            if (!val.isArray())
                bad("field 'workloads' must be an array of strings");
            r.workloads.clear();
            for (const auto &w : val.array)
                r.workloads.push_back(asString("workloads[]", w));
        } else if (key == "config") {
            if (val.kind == JsonValue::Kind::Null)
                r.config.reset();
            else
                r.config = sim::SimConfig::fromJson(val);
        } else if (key == "configLabel")
            r.configLabel = asString("configLabel", val);
        else if (key == "seeds")
            r.seeds = asUnsigned("seeds", val);
        else if (key == "baseSeed")
            r.baseSeed = asU64("baseSeed", val);
        else if (key == "workers")
            r.workers = asUnsigned("workers", val);
        else if (key == "schedule")
            r.schedule = asString("schedule", val);
        else if (key == "includeTiming")
            r.includeTiming = asBool("includeTiming", val);
        else if (key == "includeKernels")
            r.includeKernels = asBool("includeKernels", val);
        else
            bad("unknown key '" + key + "'");
    }
    if (r.seeds == 0)
        bad("field 'seeds' must be >= 1");
    if (r.configLabel.empty())
        bad("field 'configLabel' must not be empty");
    if (!knownSweep(r.sweep))
        bad("unknown sweep '" + r.sweep + "'");
    if (!r.schedule.empty() &&
        !sim::parseShardSchedule(r.schedule).has_value())
        bad("field 'schedule' must be \"static\", \"dynamic\" or \"\"");
    for (const auto &w : r.workloads)
        if (!knownWorkload(w))
            bad("unknown workload '" + w + "'");
    return r;
}

SweepRequest
SweepRequest::fromJsonText(std::string_view text)
{
    JsonValue v;
    std::string error;
    if (!jsonParse(text, v, &error))
        bad("parse error: " + error);
    return fromJson(v);
}

Sweep
SweepRequest::toSweep() const
{
    Sweep s = namedSweep(sweep);
    if (!workloads.empty())
        s.workloads = workloads;
    if (config)
        s.configs = {{configLabel, *config}};
    s.baseSeed = baseSeed;
    s.seeds.clear();
    for (unsigned i = 0; i < seeds; ++i)
        s.seeds.push_back(i);
    return s;
}

ReportOptions
SweepRequest::reportOptions() const
{
    ReportOptions o;
    o.includeTiming = includeTiming;
    o.includeKernels = includeKernels;
    return o;
}

} // namespace pilotrf::exp
