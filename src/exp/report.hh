/**
 * @file
 * Structured (JSON) reporting for sweep results: per-job cycles,
 * instructions, hierarchical stats and energy breakdown, plus the
 * sweep-wide merged stats — the machine-readable replacement for the
 * benches' printf tables.
 */

#ifndef PILOTRF_EXP_REPORT_HH
#define PILOTRF_EXP_REPORT_HH

#include <ostream>
#include <string>

#include "exp/experiment.hh"

namespace pilotrf::exp
{

struct ReportOptions
{
    /**
     * Emit wall-clock fields (per-job and sweep-wide), the thread count
     * and the execution-provenance fields (per-job `attempts`/`resumed`,
     * the summary's `resumed` count). Off, the report is a pure function
     * of the sweep definition and the job outcomes — byte-identical
     * across runs, thread counts, and checkpoint resumption; the
     * determinism tests rely on that.
     */
    bool includeTiming = true;

    /** Emit the per-kernel result array inside each job. */
    bool includeKernels = true;
};

/** Write the full sweep report as a single JSON document. */
void writeJson(const SweepResult &result, std::ostream &os,
               const ReportOptions &opts = {});

/** writeJson() into a string (tests, in-memory comparisons). */
std::string toJsonString(const SweepResult &result,
                         const ReportOptions &opts = {});

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_REPORT_HH
