/**
 * @file
 * The experiment-runner subsystem: declarative sweeps over
 * (workload x configuration x seed), expanded into independent jobs and
 * executed on a worker pool.
 *
 * Every stochastic input of the simulator is a pure function of the
 * kernel seed and structural coordinates, so each job is deterministic in
 * isolation; the runner stores results by job index and merges them in
 * job-submission order, making a parallel run bit-identical to a serial
 * one. This is the one supported way to drive `sim::Gpu` for sweeps —
 * the benches, the examples and the `pilotrf_run` CLI all sit on top of
 * it.
 */

#ifndef PILOTRF_EXP_EXPERIMENT_HH
#define PILOTRF_EXP_EXPERIMENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "power/energy_accountant.hh"
#include "sim/gpu.hh"
#include "sim/sim_config.hh"

namespace pilotrf::exp
{

/** One labelled point on the configuration axis of a sweep. */
struct ConfigVariant
{
    std::string label; ///< short, stable id used in reports and lookups
    sim::SimConfig cfg;
};

/**
 * A declarative sweep: the cross product workloads x configs x seeds.
 *
 * Seed 0 means "run the workload with its kernels' baked-in seeds" — the
 * exact runs the benches always did; any other value reseeds every kernel
 * deterministically (see Job::jobSeed) so replicated sweeps explore
 * independent branch/trip-count draws.
 */
struct Sweep
{
    std::string name;
    std::vector<std::string> workloads; ///< registry names (Table I)
    std::vector<ConfigVariant> configs;
    std::vector<std::uint64_t> seeds{0};
    std::uint64_t baseSeed = 0; ///< mixed into every derived job seed

    /** A sweep over all 17 Table-I workloads with the given configs. */
    static Sweep overSuite(std::string name,
                           std::vector<ConfigVariant> configs);

    std::size_t jobCount() const
    {
        return workloads.size() * configs.size() * seeds.size();
    }
};

/** A fully-specified unit of work: one (workload, config, seed) triple. */
struct Job
{
    std::size_t index = 0; ///< position in submission order
    std::string workload;
    unsigned category = 0; ///< Table-I profiling category (1..3)
    std::string configLabel;
    sim::SimConfig cfg;
    std::uint64_t seed = 0;    ///< the sweep-axis seed value
    std::uint64_t jobSeed = 0; ///< derived; see deriveJobSeed()
};

/** Terminal state of one job after exception capture / watchdog / retry. */
enum class JobStatus
{
    Ok,      ///< produced a result (possibly after retries)
    Failed,  ///< every attempt threw; `error` holds the last what()
    Timeout, ///< exceeded the per-job wall-clock timeout
};

const char *toString(JobStatus s);

/** Everything one job produced. */
struct JobResult
{
    Job job;
    sim::RunResult run;
    power::EnergyReport energy;
    double wallSeconds = 0.0;

    JobStatus status = JobStatus::Ok;
    std::string error;     ///< what() of the last failure (Failed/Timeout)
    unsigned attempts = 1; ///< attempts consumed (1 = first try succeeded)
    /** Result came from the checkpoint manifest, not a fresh run.
     *  Execution provenance: reports emit it only with includeTiming. */
    bool resumed = false;
    /** Stepping engine the Gpu selected ("lockstep"/"sharded"), the
     *  worker count and shard schedule it resolved, and the mean
     *  per-epoch straggler ratio its scheduler measured (0 when nothing
     *  was measured — lockstep runs, or sharded runs too short to
     *  complete a full balanced round). Execution provenance like
     *  `resumed`: reports emit them only with includeTiming, and
     *  resumed jobs restore them from the checkpoint entry. */
    std::string engine = "lockstep";
    unsigned workers = 1;
    std::string schedule = "static";
    double stragglerRatio = 0.0;

    /** The report-facing status string: "ok", "failed:<error>",
     *  "timeout". Deterministic — never mentions resumption. */
    std::string statusString() const;
};

/** Sweep-level outcome counts for the report summary / CLI exit code. */
struct SweepSummary
{
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timeout = 0;
    std::size_t resumed = 0; ///< subset of ok served from the checkpoint

    bool allOk(std::size_t total) const { return ok == total; }
};

/**
 * All results of one sweep, in job-submission order (workload-major,
 * then config, then seed) regardless of which worker finished first.
 */
struct SweepResult
{
    std::string sweep;
    unsigned threads = 1;
    double wallSeconds = 0.0;
    std::size_t workloadCount = 0;
    std::size_t configCount = 0;
    std::size_t seedCount = 0;
    std::vector<JobResult> jobs;

    /** Result of (workload index, config index, seed index). */
    const JobResult &at(std::size_t w, std::size_t c,
                        std::size_t s = 0) const;

    /** Lookup by names; nullptr if absent. */
    const JobResult *find(std::string_view workload,
                          std::string_view configLabel,
                          std::uint64_t seed = 0) const;

    /**
     * Union of every job's stats under hierarchical prefixes:
     * `rf.access.FRF_high`, `sim.issue.total`, ... (summed across jobs).
     * Failed/timed-out jobs contribute nothing.
     */
    StatSet mergedStats() const;

    /** Outcome counts across all jobs. */
    SweepSummary summary() const;
};

/**
 * The per-job seed: a pure function of the sweep base seed and the job's
 * *names* (not its position), so reordering the axes of a sweep never
 * changes the random stream any triple sees, and seeds are stable across
 * processes and platforms.
 */
std::uint64_t deriveJobSeed(std::uint64_t baseSeed,
                            std::string_view workload,
                            std::string_view configLabel,
                            std::uint64_t seed);

/** splitmix64-fold of a string, for deriveJobSeed(). */
std::uint64_t hashString(std::string_view s);

/**
 * Per-job observability outputs.
 *
 * Jobs run concurrently on the worker pool, so every enabled output is a
 * *per-job* file: the job's human-readable legacy key
 * ("workload|configLabel|seed", sanitized to filename-safe characters)
 * is inserted before the path's extension — `trace.json` becomes
 * `trace.vecAdd-base-0.json`. The suffix is applied even for single-job
 * sweeps, so output names are predictable. (Filenames keep the label
 * form on purpose; the content-addressed exp::JobKey is for result
 * identity, not for humans picking a trace file out of a directory.)
 */
struct ObsOptions
{
    /** Cycles between time-series samples; 0 disables sampling. */
    unsigned timeseriesPeriod = 0;

    /** Ring capacity per SM, in samples (oldest dropped past this). */
    std::size_t timeseriesCapacity = std::size_t(1) << 14;

    /** Time-series JSON output path (per-job suffixed). */
    std::string timeseriesPath = "timeseries.json";

    /** Chrome trace-event JSON path (per-job suffixed); empty = off. */
    std::string chromeTracePath;

    /** JSONL event-stream path (per-job suffixed); empty = off. */
    std::string jsonlTracePath;

    /** Text-trace category mask for the per-job hub (bit = TraceCat);
     *  structured events are not masked. */
    std::uint64_t traceCategoryMask = ~std::uint64_t(0);

    bool any() const
    {
        return timeseriesPeriod > 0 || !chromeTracePath.empty() ||
               !jsonlTracePath.empty();
    }
};

/** The per-job output file for `path`: the sanitized job key inserted
 *  before the extension ("out/ts.json" -> "out/ts.vecAdd-base-0.json"). */
std::string perJobOutputPath(const std::string &path, const Job &job);

/**
 * Fault-tolerance and checkpointing knobs of a runner.
 *
 * Failure semantics: a job attempt that throws is retried up to
 * `maxRetries` more times with exponential backoff; a job whose attempt
 * exceeds `timeoutSeconds` of wall clock is classified Timeout and NOT
 * retried (the simulator is deterministic — a timed-out job would time
 * out again). Either way the job's slot records the failure and every
 * sibling job still completes normally.
 */
struct RunnerOptions
{
    /** Per-job-attempt wall-clock timeout in seconds; 0 disables the
     *  watchdog (jobs run inline on the worker, no extra thread). */
    double timeoutSeconds = 0.0;

    /** Extra attempts after a thrown failure (0 = fail on first throw). */
    unsigned maxRetries = 0;

    /** First retry delay; doubles per subsequent retry. */
    unsigned retryBackoffMs = 100;

    /** JSONL checkpoint manifest path; empty disables checkpointing.
     *  Completed jobs stream to it as they finish (append + flush). */
    std::string checkpointPath;

    /** Serve jobs already `ok` in the manifest from their checkpoint
     *  entry instead of re-running them; failed/timed-out entries rerun.
     *  Requires checkpointPath. */
    bool resume = false;

    /** Per-job observability outputs (time series, trace sinks). */
    ObsOptions obs;

    /** Worker threads for each job's sharded Gpu engine; 0 inherits the
     *  config's numWorkers knob. Observability outputs are byte-identical
     *  at any value (per-shard buffered emission), so this is purely a
     *  wall-clock knob. */
    unsigned numWorkers = 0;

    /** Shard schedule for each job's sharded Gpu engine; nullopt
     *  inherits the config's shardSchedule knob. Another pure wall-clock
     *  knob: results are byte-identical under either value. */
    std::optional<sim::ShardSchedule> schedule;
};

/**
 * Test-only failure injection: a hook invoked at the start of every job
 * attempt, before the simulation runs. Throwing makes the attempt fail;
 * spinning until `abandoned` becomes true (then throwing) models a
 * wedged job for the timeout watchdog; returning normally lets the job
 * proceed. Set before run() and clear after — the registry is not
 * synchronized against concurrent mutation.
 */
using JobHook = std::function<void(const Job &job, unsigned attempt,
                                   const std::atomic<bool> &abandoned)>;
void setJobHook(JobHook hook);
void clearJobHook();

/**
 * Expands sweeps into jobs and executes them on a `std::jthread` pool.
 *
 * Results land in a pre-sized slot per job, so no ordering (and no lock)
 * is involved in result collection; merged outputs are bit-identical for
 * any thread count, including 1.
 */
class CheckpointWriter;
struct CheckpointEntry;
struct AttemptState;

class ExperimentRunner
{
  public:
    /** @param threads worker count; 0 = std::thread::hardware_concurrency.
     *  @param options fault-tolerance / checkpoint / resume behaviour. */
    explicit ExperimentRunner(unsigned threads = 0,
                              RunnerOptions options = {});

    unsigned threads() const { return nThreads; }
    const RunnerOptions &options() const { return opts; }

    /** The jobs a sweep denotes, in submission order. fatal()s on an
     *  unknown workload name or an empty axis. */
    static std::vector<Job> expand(const Sweep &sweep);

    /** Run every job of the sweep and collect results in order. */
    SweepResult run(const Sweep &sweep) const;

    /** Run a single job inline (no pool, no capture, no timeout); the
     *  serial reference path. Exceptions propagate. */
    JobResult runJob(const Job &job) const;

    /**
     * Run a single job under the full fault-tolerance machinery:
     * exception capture, watchdog timeout, bounded retries. Never
     * throws; failures land in the returned JobResult's status. This is
     * the per-job entry point the sweep service schedules cache misses
     * on; callers owning long-lived runners should reapStrays()
     * periodically when the watchdog is enabled.
     */
    JobResult runJobGuarded(const Job &job) const;

    /** Join watchdog-abandoned attempt threads that finished in the
     *  grace period; detach (with a warning) any still wedged. run()
     *  calls this at the end of every sweep. */
    void reapStrays() const;

  private:
    /** One attempt, hook included; throws on injected/real failure. */
    JobResult execute(const Job &job, unsigned attempt,
                      const std::atomic<bool> &abandoned) const;

    /** One attempt under the wall-clock watchdog. Returns false on
     *  timeout (the attempt thread is parked for reapStrays()). */
    bool attemptWithWatchdog(const Job &job, unsigned attempt,
                             JobResult &result, std::string &error,
                             bool &timedOut) const;

    /** A watchdog-abandoned attempt thread awaiting reaping. */
    struct Stray
    {
        std::thread thread;
        std::shared_ptr<AttemptState> state;
    };

    unsigned nThreads;
    RunnerOptions opts;
    power::EnergyAccountant accountant;
    mutable std::mutex strayMu;
    mutable std::vector<Stray> strays;
};

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_EXPERIMENT_HH
