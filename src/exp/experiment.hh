/**
 * @file
 * The experiment-runner subsystem: declarative sweeps over
 * (workload x configuration x seed), expanded into independent jobs and
 * executed on a worker pool.
 *
 * Every stochastic input of the simulator is a pure function of the
 * kernel seed and structural coordinates, so each job is deterministic in
 * isolation; the runner stores results by job index and merges them in
 * job-submission order, making a parallel run bit-identical to a serial
 * one. This is the one supported way to drive `sim::Gpu` for sweeps —
 * the benches, the examples and the `pilotrf_run` CLI all sit on top of
 * it.
 */

#ifndef PILOTRF_EXP_EXPERIMENT_HH
#define PILOTRF_EXP_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "power/energy_accountant.hh"
#include "sim/gpu.hh"
#include "sim/sim_config.hh"

namespace pilotrf::exp
{

/** One labelled point on the configuration axis of a sweep. */
struct ConfigVariant
{
    std::string label; ///< short, stable id used in reports and lookups
    sim::SimConfig cfg;
};

/**
 * A declarative sweep: the cross product workloads x configs x seeds.
 *
 * Seed 0 means "run the workload with its kernels' baked-in seeds" — the
 * exact runs the benches always did; any other value reseeds every kernel
 * deterministically (see Job::jobSeed) so replicated sweeps explore
 * independent branch/trip-count draws.
 */
struct Sweep
{
    std::string name;
    std::vector<std::string> workloads; ///< registry names (Table I)
    std::vector<ConfigVariant> configs;
    std::vector<std::uint64_t> seeds{0};
    std::uint64_t baseSeed = 0; ///< mixed into every derived job seed

    /** A sweep over all 17 Table-I workloads with the given configs. */
    static Sweep overSuite(std::string name,
                           std::vector<ConfigVariant> configs);

    std::size_t jobCount() const
    {
        return workloads.size() * configs.size() * seeds.size();
    }
};

/** A fully-specified unit of work: one (workload, config, seed) triple. */
struct Job
{
    std::size_t index = 0; ///< position in submission order
    std::string workload;
    unsigned category = 0; ///< Table-I profiling category (1..3)
    std::string configLabel;
    sim::SimConfig cfg;
    std::uint64_t seed = 0;    ///< the sweep-axis seed value
    std::uint64_t jobSeed = 0; ///< derived; see deriveJobSeed()
};

/** Everything one job produced. */
struct JobResult
{
    Job job;
    sim::RunResult run;
    power::EnergyReport energy;
    double wallSeconds = 0.0;
};

/**
 * All results of one sweep, in job-submission order (workload-major,
 * then config, then seed) regardless of which worker finished first.
 */
struct SweepResult
{
    std::string sweep;
    unsigned threads = 1;
    double wallSeconds = 0.0;
    std::size_t workloadCount = 0;
    std::size_t configCount = 0;
    std::size_t seedCount = 0;
    std::vector<JobResult> jobs;

    /** Result of (workload index, config index, seed index). */
    const JobResult &at(std::size_t w, std::size_t c,
                        std::size_t s = 0) const;

    /** Lookup by names; nullptr if absent. */
    const JobResult *find(std::string_view workload,
                          std::string_view configLabel,
                          std::uint64_t seed = 0) const;

    /**
     * Union of every job's stats under hierarchical prefixes:
     * `rf.access.FRF_high`, `sim.issue.total`, ... (summed across jobs).
     */
    StatSet mergedStats() const;
};

/**
 * The per-job seed: a pure function of the sweep base seed and the job's
 * *names* (not its position), so reordering the axes of a sweep never
 * changes the random stream any triple sees, and seeds are stable across
 * processes and platforms.
 */
std::uint64_t deriveJobSeed(std::uint64_t baseSeed,
                            std::string_view workload,
                            std::string_view configLabel,
                            std::uint64_t seed);

/** splitmix64-fold of a string, for deriveJobSeed(). */
std::uint64_t hashString(std::string_view s);

/**
 * Expands sweeps into jobs and executes them on a `std::jthread` pool.
 *
 * Results land in a pre-sized slot per job, so no ordering (and no lock)
 * is involved in result collection; merged outputs are bit-identical for
 * any thread count, including 1.
 */
class ExperimentRunner
{
  public:
    /** @param threads worker count; 0 = std::thread::hardware_concurrency. */
    explicit ExperimentRunner(unsigned threads = 0);

    unsigned threads() const { return nThreads; }

    /** The jobs a sweep denotes, in submission order. fatal()s on an
     *  unknown workload name or an empty axis. */
    static std::vector<Job> expand(const Sweep &sweep);

    /** Run every job of the sweep and collect results in order. */
    SweepResult run(const Sweep &sweep) const;

    /** Run a single job inline (no pool); the serial reference path. */
    JobResult runJob(const Job &job) const;

  private:
    unsigned nThreads;
    power::EnergyAccountant accountant;
};

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_EXPERIMENT_HH
