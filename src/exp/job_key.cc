#include "exp/job_key.hh"

#include "common/random.hh"

namespace pilotrf::exp
{

namespace
{

/** Fold bytes into a running splitmix64 chain seeded by `salt`. */
std::uint64_t
foldBytes(std::uint64_t salt, const std::string &text)
{
    std::uint64_t h = splitmix64(salt ^ text.size());
    for (const char c : text)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return h;
}

void
hexU64(std::string &out, std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4)
        out += digits[(v >> shift) & 0xf];
}

} // namespace

std::string
ConfigHash::hex() const
{
    std::string out;
    out.reserve(32);
    hexU64(out, hi);
    hexU64(out, lo);
    return out;
}

ConfigHash
canonicalConfigHash(const sim::SimConfig &cfg)
{
    const std::string text = cfg.jsonText();
    // Two independent salts give 128 independent bits from one pass
    // discipline; the constants are arbitrary odd 64-bit numbers.
    return {foldBytes(0x9e3779b97f4a7c15ull, text),
            foldBytes(0xc2b2ae3d27d4eb4full, text)};
}

std::string
JobKey::str() const
{
    return workload + "|cfg:" + configHash.hex() + "|" +
           std::to_string(seed);
}

JobKey
jobKey(const Job &job)
{
    return {job.workload, canonicalConfigHash(job.cfg), job.seed};
}

std::string
legacyJobKey(const Job &job)
{
    return job.workload + "|" + job.configLabel + "|" +
           std::to_string(job.seed);
}

} // namespace pilotrf::exp
