/**
 * @file
 * Named sweep registry: the paper's figure/ablation experiments as
 * declarative `exp::Sweep`s, shared by the bench binaries and the
 * `pilotrf_run` CLI so "fig11" means exactly the same runs everywhere.
 */

#ifndef PILOTRF_EXP_SWEEPS_HH
#define PILOTRF_EXP_SWEEPS_HH

#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace pilotrf::exp
{

/** The registered sweep names, registration order. */
const std::vector<std::string> &sweepNames();

/** Lookup by name; fatal() on unknown names (lists the known ones). */
Sweep namedSweep(const std::string &name);

/** One-line description of a named sweep (for --list). */
std::string sweepDescription(const std::string &name);

} // namespace pilotrf::exp

#endif // PILOTRF_EXP_SWEEPS_HH
