/**
 * @file
 * Deterministic hashing and pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (branch outcomes, per-thread
 * loop trip counts, Monte-Carlo device variation) is derived from splitmix64
 * hashes of structural coordinates so that every run is exactly
 * reproducible, independent of evaluation order.
 */

#ifndef PILOTRF_COMMON_RANDOM_HH
#define PILOTRF_COMMON_RANDOM_HH

#include <cstdint>

namespace pilotrf
{

/** One round of the splitmix64 mixing function. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/** Hash an arbitrary number of coordinates. */
template <typename... Args>
constexpr std::uint64_t
hashCoords(std::uint64_t first, Args... rest)
{
    if constexpr (sizeof...(rest) == 0)
        return splitmix64(first);
    else
        return hashCombine(splitmix64(first), hashCoords(std::uint64_t(rest)...));
}

/** Map a 64-bit hash to a uniform double in [0, 1). */
constexpr double
hashToUnit(std::uint64_t h)
{
    return double(h >> 11) * (1.0 / 9007199254740992.0); // 2^53
}

/**
 * Small xoshiro256** generator for Monte-Carlo loops where a stream (rather
 * than coordinate hashing) is the natural interface.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

  private:
    std::uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace pilotrf

#endif // PILOTRF_COMMON_RANDOM_HH
