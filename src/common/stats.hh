/**
 * @file
 * A minimal named-statistics registry.
 *
 * Components register scalar counters by name; the registry supports
 * formatted dumping and programmatic lookup, which the benches use to
 * regenerate the paper's tables.
 */

#ifndef PILOTRF_COMMON_STATS_HH
#define PILOTRF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace pilotrf
{

/**
 * A flat collection of named double-valued statistics.
 */
class StatSet
{
  public:
    /** Add delta to the named stat, creating it at zero if absent. */
    void add(const std::string &name, double delta);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Read a stat; returns 0 for stats never touched. */
    double get(const std::string &name) const;

    /** True if the stat has ever been written. */
    bool has(const std::string &name) const;

    /** Merge all stats from other into this (summing values). */
    void merge(const StatSet &other);

    /** Remove all stats. */
    void clear();

    /** Write "name = value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    const std::map<std::string, double> &raw() const { return values; }

  private:
    std::map<std::string, double> values;
};

} // namespace pilotrf

#endif // PILOTRF_COMMON_STATS_HH
