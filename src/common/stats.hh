/**
 * @file
 * A minimal named-statistics registry.
 *
 * Components register scalar counters by name; the registry supports
 * formatted dumping and programmatic lookup, which the benches use to
 * regenerate the paper's tables.
 */

#ifndef PILOTRF_COMMON_STATS_HH
#define PILOTRF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace pilotrf
{

/**
 * A flat collection of named double-valued statistics.
 */
class StatSet
{
  public:
    /** Add delta to the named stat, creating it at zero if absent. */
    void add(const std::string &name, double delta);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Read a stat; returns 0 for stats never touched. */
    double get(const std::string &name) const;

    /** True if the stat has ever been written. */
    bool has(const std::string &name) const;

    /** Merge all stats from other into this (summing values). */
    void merge(const StatSet &other);

    /**
     * A copy of this set with every key prefixed, e.g.
     * `merged.merge(rfStats.withPrefix("rf."))` builds the hierarchical
     * `rf.access.read`-style namespace the experiment reports use.
     */
    StatSet withPrefix(const std::string &prefix) const;

    /** Remove all stats. */
    void clear();

    /** Write "name = value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Write the set as one JSON object, keys sorted, at the given
     * indentation depth (2 spaces per level; pass the depth of the
     * surrounding object when embedding).
     */
    void toJson(std::ostream &os, unsigned depth = 0) const;

    const std::map<std::string, double> &raw() const { return values; }

  private:
    std::map<std::string, double> values;
};

/** Write s as a JSON string literal (quoted, escaped). */
void jsonString(std::ostream &os, const std::string &s);

/**
 * Write v as a JSON number: integral values that fit 64 bits print without
 * a fraction, everything else round-trips via max_digits10. Deterministic —
 * report bytes must not depend on locale or stream state.
 */
void jsonNumber(std::ostream &os, double v);

} // namespace pilotrf

#endif // PILOTRF_COMMON_STATS_HH
