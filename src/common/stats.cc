#include "common/stats.hh"

#include <iomanip>

namespace pilotrf
{

void
StatSet::add(const std::string &name, double delta)
{
    values[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.values)
        values[k] += v;
}

void
StatSet::clear()
{
    values.clear();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[k, v] : values)
        os << std::left << std::setw(40) << k << " = " << v << "\n";
}

} // namespace pilotrf
