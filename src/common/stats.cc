#include "common/stats.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pilotrf
{

void
StatSet::add(const std::string &name, double delta)
{
    values[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.values)
        values[k] += v;
}

StatSet
StatSet::withPrefix(const std::string &prefix) const
{
    StatSet out;
    for (const auto &[k, v] : values)
        out.values.emplace(prefix + k, v);
    return out;
}

void
StatSet::clear()
{
    values.clear();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[k, v] : values)
        os << std::left << std::setw(40) << k << " = " << v << "\n";
}

void
StatSet::toJson(std::ostream &os, unsigned depth) const
{
    const std::string pad(2 * depth, ' ');
    if (values.empty()) {
        os << "{}";
        return;
    }
    os << "{";
    bool first = true;
    for (const auto &[k, v] : values) {
        os << (first ? "\n" : ",\n") << pad << "  ";
        first = false;
        jsonString(os, k);
        os << ": ";
        jsonNumber(os, v);
    }
    os << "\n" << pad << "}";
}

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) { // JSON has no inf/nan; emit null
        os << "null";
        return;
    }
    char buf[40];
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.*g",
                      std::numeric_limits<double>::max_digits10, v);
    }
    os << buf;
}

} // namespace pilotrf
