/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PILOTRF_COMMON_LOGGING_HH
#define PILOTRF_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pilotrf
{

/** Print a formatted message and abort(); for conditions that indicate a
 *  bug in the simulator itself. */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted message and exit(1); for conditions caused by bad
 *  user input or configuration. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a warning; simulation continues. */
void warn(const char *fmt, ...);

/** Print an informational message; simulation continues. */
void inform(const char *fmt, ...);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** Assert-like helper that panics with a message when cond is false. */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic("%s", msg);
}

} // namespace pilotrf

#endif // PILOTRF_COMMON_LOGGING_HH
