#include "common/counters.hh"

#include <algorithm>

namespace pilotrf
{

CounterBlock::Handle
CounterBlock::add(const std::string &name)
{
    const auto it = std::find(names.begin(), names.end(), name);
    if (it != names.end())
        return Handle(it - names.begin());
    names.push_back(name);
    vals.push_back(0);
    seen.push_back(0);
    return Handle(names.size() - 1);
}

void
CounterBlock::snapshotInto(StatSet &out) const
{
    for (std::size_t i = 0; i < vals.size(); ++i)
        if (seen[i])
            out.set(names[i], double(vals[i]));
}

void
CounterBlock::reset()
{
    std::fill(vals.begin(), vals.end(), 0);
    std::fill(seen.begin(), seen.end(), 0);
}

} // namespace pilotrf
