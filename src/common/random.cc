#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace pilotrf
{

namespace
{
constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the four state words from splitmix64 per the xoshiro reference.
    std::uint64_t x = seed;
    for (auto &w : s) {
        x += 0x9e3779b97f4a7c15ull;
        w = splitmix64(x);
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return hashToUnit(next());
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    spare = r * std::sin(2.0 * M_PI * u2);
    haveSpare = true;
    return r * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    panicIf(n == 0, "Rng::below(0)");
    return next() % n;
}

} // namespace pilotrf
