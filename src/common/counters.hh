/**
 * @file
 * Typed event counters for the simulator hot path.
 *
 * The seed implementation counted every register access, bank grant and
 * issued instruction by building a `std::string` key and mutating a
 * `std::map<std::string, double>` (StatSet) — a heap allocation plus an
 * O(log n) string-compare walk per simulated event. A CounterBlock keeps
 * the naming but splits registration from counting: a component registers
 * each named counter once (at construction or kernel launch) and receives
 * a small integer Handle; the hot path increments through the handle — a
 * bounds-free indexed add on a contiguous `std::uint64_t` array — and the
 * names are only consulted again when a snapshot renders the counters into
 * a StatSet at kernel/run boundaries.
 *
 * Snapshot semantics mirror the seed byte-for-byte: a counter appears in
 * the StatSet if and only if it was ever incremented or set, even with a
 * zero delta (`add(name, 0)` created the key in the seed), so report JSON
 * and `has()` queries are unchanged.
 */

#ifndef PILOTRF_COMMON_COUNTERS_HH
#define PILOTRF_COMMON_COUNTERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace pilotrf
{

/**
 * A registry of named 64-bit event counters with O(1) handle increments.
 */
class CounterBlock
{
  public:
    /** Index of one registered counter within its block. */
    using Handle = std::uint32_t;

    /**
     * Register a named counter and return its handle. Registering the
     * same name again returns the existing handle (registration is
     * idempotent, so base and derived classes may share names).
     */
    Handle add(const std::string &name);

    /** Hot path: add n to the counter. Marks the counter as touched even
     *  for n == 0, matching the seed's `StatSet::add(name, 0)`. */
    void inc(Handle h, std::uint64_t n = 1)
    {
        vals[h] += n;
        seen[h] = 1;
    }

    /** Hot path: overwrite the counter with an absolute value. */
    void set(Handle h, std::uint64_t v)
    {
        vals[h] = v;
        seen[h] = 1;
    }

    std::uint64_t value(Handle h) const { return vals[h]; }

    /** True once the counter was ever incremented or set. */
    bool touched(Handle h) const { return seen[h] != 0; }

    const std::string &name(Handle h) const { return names[h]; }

    std::size_t size() const { return vals.size(); }

    /**
     * Boundary snapshot: render every touched counter into the StatSet
     * under its registered name (absolute values; untouched counters are
     * skipped so the key set matches the seed's lazily-created keys).
     */
    void snapshotInto(StatSet &out) const;

    /** Zero all values and touched flags; registrations survive. */
    void reset();

  private:
    std::vector<std::string> names;
    std::vector<std::uint64_t> vals;
    std::vector<std::uint8_t> seen;
};

} // namespace pilotrf

#endif // PILOTRF_COMMON_COUNTERS_HH
