/**
 * @file
 * The simulator fingerprint: a version string that changes whenever the
 * statistics a run produces can change.
 *
 * Content-addressed result reuse (the checkpoint manifest, the sweep
 * service's ResultStore) is only sound while the simulator that wrote a
 * cached fragment and the simulator that serves it would have computed
 * the same bytes. The fingerprint makes that explicit: it combines the
 * release version with a hand-bumped *stat-schema revision* that MUST be
 * incremented by any change that alters reported statistics — new or
 * renamed counters, timing-model fixes, energy-model constants, report
 * field changes. Caches keyed on the fingerprint invalidate themselves
 * across such changes instead of serving stale results.
 */

#ifndef PILOTRF_COMMON_VERSION_HH
#define PILOTRF_COMMON_VERSION_HH

#include <string>

namespace pilotrf
{

/** Release version of the simulator. */
inline constexpr unsigned kVersionMajor = 0;
inline constexpr unsigned kVersionMinor = 9;

/**
 * Revision of everything a run's statistics depend on. Bump this by hand
 * in the same change that alters any reported number or report field —
 * the tests cannot catch a forgotten bump, only a code review can.
 */
inline constexpr unsigned kStatSchemaRev = 1;

/**
 * The full fingerprint, e.g. "pilotrf-0.9+stats1". Embedded in reports
 * (timing-gated, like engine/workers provenance), in checkpoint manifest
 * lines, and in every ResultStore entry; `pilotrf_run --version` prints
 * it.
 */
const std::string &versionString();

} // namespace pilotrf

#endif // PILOTRF_COMMON_VERSION_HH
