#include "common/json.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pilotrf
{

namespace
{

/** Cursor over the input with one-shot error reporting. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const char *what)
    {
        if (error.empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "byte %zu: %s", pos, what);
            error = buf;
        }
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    bool consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool literal(const char *word, std::size_t n)
    {
        if (text.size() - pos < n ||
            text.compare(pos, n, std::string_view(word, n)) != 0)
            return fail("invalid literal");
        pos += n;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (!atEnd()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (text.size() - pos < 4)
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP codepoint (surrogate pairs are
                // not produced by our writers; pass them through raw).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(double &out)
    {
        const char *start = text.data() + pos;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos += std::size_t(end - start);
        return true;
    }

    bool parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            out.kind = JsonValue::Kind::Number;
            return parseNumber(out.number);
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::Number ? v->number : dflt;
}

std::string
JsonValue::stringOr(std::string_view key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::String ? v->str : dflt;
}

bool
jsonParse(std::string_view text, JsonValue &out, std::string *error)
{
    Parser p{text};
    out = JsonValue();
    bool ok = p.parseValue(out, 0);
    if (ok) {
        p.skipWs();
        if (!p.atEnd())
            ok = p.fail("trailing garbage after document");
    }
    if (!ok && error)
        *error = p.error;
    return ok;
}

} // namespace pilotrf
