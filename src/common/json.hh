/**
 * @file
 * A minimal JSON value and recursive-descent parser — just enough to read
 * back the documents this repository writes (reports, checkpoint manifest
 * lines): objects, arrays, strings, numbers, booleans, null.
 *
 * Numbers parse via strtod, so anything `jsonNumber()` printed (17
 * significant digits) round-trips bit-exactly; the resumable experiment
 * runner depends on that to rebuild byte-identical reports from
 * checkpoints.
 */

#ifndef PILOTRF_COMMON_JSON_HH
#define PILOTRF_COMMON_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pilotrf
{

/** One parsed JSON value (tagged union; unused members stay empty). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key/value pairs in document order (duplicate keys kept as-is). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr if absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member as number/string/bool, with a default when absent or
     *  mistyped — the tolerant accessors checkpoint loading wants. */
    double numberOr(std::string_view key, double dflt) const;
    std::string stringOr(std::string_view key,
                         const std::string &dflt) const;
};

/**
 * Parse one complete JSON document. Returns false (and sets *error to a
 * "byte N: what" message when given) on malformed input, including
 * trailing garbage after the document.
 */
bool jsonParse(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

} // namespace pilotrf

#endif // PILOTRF_COMMON_JSON_HH
