#include "common/version.hh"

namespace pilotrf
{

const std::string &
versionString()
{
    static const std::string v = "pilotrf-" + std::to_string(kVersionMajor) +
                                 "." + std::to_string(kVersionMinor) +
                                 "+stats" + std::to_string(kStatSchemaRev);
    return v;
}

} // namespace pilotrf
