/**
 * @file
 * Fundamental scalar types shared across the pilotrf libraries.
 */

#ifndef PILOTRF_COMMON_TYPES_HH
#define PILOTRF_COMMON_TYPES_HH

#include <cstdint>

namespace pilotrf
{

/** Simulation time measured in SM core clock cycles. */
using Cycle = std::uint64_t;

/** Sentinel "no event pending" cycle for event-horizon computations:
 *  later than any reachable simulation time. */
constexpr Cycle kNeverCycle = ~Cycle(0);

/** Architected (ISA-visible) register index within a thread, 0..62. */
using RegId = std::uint8_t;

/** Hardware warp slot index within an SM, 0..63. */
using WarpId = std::uint16_t;

/** Cooperative-thread-array (thread block) index within a grid. */
using CtaId = std::uint32_t;

/** Streaming-multiprocessor index within the GPU. */
using SmId = std::uint16_t;

/** Lane (thread-within-warp) index, 0..31. */
using LaneId = std::uint8_t;

/** Program counter: instruction index within a kernel. */
using Pc = std::uint32_t;

/** A 32-wide active mask, one bit per lane. */
using ActiveMask = std::uint32_t;

/** Maximum architected registers per thread (Kepler: 63 + zero reg). */
constexpr unsigned maxRegsPerThread = 63;

/** Threads per warp. */
constexpr unsigned warpSize = 32;

/** Full 32-lane active mask. */
constexpr ActiveMask fullMask = 0xffffffffu;

} // namespace pilotrf

#endif // PILOTRF_COMMON_TYPES_HH
