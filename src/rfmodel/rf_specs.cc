#include "rfmodel/rf_specs.hh"

#include "common/logging.hh"

namespace pilotrf::rfmodel
{

const char *
toString(RfMode m)
{
    switch (m) {
      case RfMode::FrfLow: return "FRF_low";
      case RfMode::FrfHigh: return "FRF_high";
      case RfMode::Srf: return "SRF";
      case RfMode::MrfStv: return "MRF@STV";
      case RfMode::MrfNtv: return "MRF@NTV";
    }
    return "?";
}

std::optional<RfMode>
parseRfMode(std::string_view name)
{
    for (unsigned m = 0; m < numRfModes; ++m)
        if (name == toString(RfMode(m)))
            return RfMode(m);
    return std::nullopt;
}

RfSpecs::RfSpecs()
{
    const double kb = 1024.0;

    ArrayConfig frfCfg{32 * kb};
    frfCfg.backGated = true;
    frfCfg.flavor = CellFlavor::Fast;
    ArrayModel frf(frfCfg);

    ArrayConfig srfCfg{224 * kb};
    srfCfg.vdd = circuit::vddNtv;
    ArrayModel srfArr(srfCfg);

    ArrayConfig mrfCfg{256 * kb};
    ArrayModel mrfStvArr(mrfCfg);

    ArrayConfig mrfNtvCfg{256 * kb};
    mrfNtvCfg.vdd = circuit::vddNtv;
    ArrayModel mrfNtvArr(mrfNtvCfg);

    specs = {
        {RfMode::FrfLow, frf.accessEnergyPj(true), frf.leakagePowerMw(),
         32, frf.accessTimeNs(true), frf.accessCycles(true)},
        {RfMode::FrfHigh, frf.accessEnergyPj(false), frf.leakagePowerMw(),
         32, frf.accessTimeNs(false), frf.accessCycles(false)},
        {RfMode::Srf, srfArr.accessEnergyPj(), srfArr.leakagePowerMw(),
         224, srfArr.accessTimeNs(), srfArr.accessCycles()},
        {RfMode::MrfStv, mrfStvArr.accessEnergyPj(),
         mrfStvArr.leakagePowerMw(), 256, mrfStvArr.accessTimeNs(),
         mrfStvArr.accessCycles()},
        {RfMode::MrfNtv, mrfNtvArr.accessEnergyPj(),
         mrfNtvArr.leakagePowerMw(), 256, mrfNtvArr.accessTimeNs(),
         mrfNtvArr.accessCycles()},
    };

    baseArea = mrfStvArr.areaMm2();
    propArea = frf.areaMm2() + srfArr.areaMm2();
}

const RfSpec &
RfSpecs::spec(RfMode m) const
{
    for (const auto &s : specs)
        if (s.mode == m)
            return s;
    panic("unknown RfMode");
}

std::vector<RfSpec>
RfSpecs::tableIv() const
{
    return {spec(RfMode::FrfLow), spec(RfMode::FrfHigh), spec(RfMode::Srf),
            spec(RfMode::MrfStv)};
}

double
RfSpecs::baselineAreaMm2() const
{
    return baseArea;
}

double
RfSpecs::proposedAreaMm2() const
{
    return propArea;
}

} // namespace pilotrf::rfmodel
