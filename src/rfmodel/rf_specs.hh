/**
 * @file
 * Canonical register-file partition specifications (Table IV).
 *
 * The Kepler-class SM has a 256 KB register file split, in the proposed
 * design, into a 32 KB FRF (4 registers x 64 warps x 128 B) and a 224 KB
 * SRF; both retain the baseline's 24-bank organization.
 */

#ifndef PILOTRF_RFMODEL_RF_SPECS_HH
#define PILOTRF_RFMODEL_RF_SPECS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rfmodel/array_model.hh"

namespace pilotrf::rfmodel
{

/** Which physical array / power mode an access hits. */
enum class RfMode
{
    FrfLow,  ///< FRF with back gate disabled (low-power mode)
    FrfHigh, ///< FRF with back gate enabled
    Srf,     ///< slow partition at NTV
    MrfStv,  ///< monolithic baseline at STV
    MrfNtv,  ///< monolithic baseline at NTV
};

const char *toString(RfMode m);

/** Number of RfMode enumerators (sizes per-mode counter arrays). */
inline constexpr unsigned numRfModes = 5;

/** Inverse of toString(); nullopt for unknown names. */
std::optional<RfMode> parseRfMode(std::string_view name);

/** One row of Table IV. */
struct RfSpec
{
    RfMode mode;
    double accessEnergyPj;
    double leakagePowerMw;
    double sizeKb;
    double accessTimeNs;
    unsigned accessCycles;
};

/**
 * Energy/latency characteristics of every RF partition, derived from the
 * array model. This is the single source the simulator's energy accounting
 * and latency assignments consume.
 */
class RfSpecs
{
  public:
    /** Build the default Kepler-sized specification set. */
    RfSpecs();

    const RfSpec &spec(RfMode m) const;

    /** All rows, Table IV order (FRF_low, FRF_high, SRF, MRF@STV). */
    std::vector<RfSpec> tableIv() const;

    /** Baseline RF area and proposed (partitioned, back-gated FRF) RF
     *  area, mm^2 — the <10% overhead claim of Sec. V-A. */
    double baselineAreaMm2() const;
    double proposedAreaMm2() const;

  private:
    std::vector<RfSpec> specs;
    double baseArea;
    double propArea;
};

} // namespace pilotrf::rfmodel

#endif // PILOTRF_RFMODEL_RF_SPECS_HH
