#include "rfmodel/array_model.hh"

#include <algorithm>
#include <cmath>

#include "circuit/finfet.hh"
#include "circuit/inverter_chain.hh"
#include "common/logging.hh"

namespace pilotrf::rfmodel
{

namespace
{

// Calibration constants (fitted to Table IV; see DESIGN.md).
constexpr double eFixedPjPerV2 = 32.663;  // periphery energy per 1024b word
constexpr double eBitPjPerRowPerV2 = 0.4795; // bitline energy per row
constexpr double ntvPenaltyAtNtv = 0.1409; // slow-edge penalty at 0.30 V
constexpr double gateCapFraction = 0.6275; // switched cap that is gate cap
constexpr double leakPerBitNw = 16.12;    // at 0.45 V, low-leakage cells
constexpr double fastCellLeakFactor = 1.723; // FRF speed-optimized cells
constexpr double arrayEfficiencyFactor = 3.28; // area vs raw cell area
constexpr double portPitchGrowth = 0.348; // cell pitch growth per port
constexpr double backGateAreaFactor = 1.56; // back-gate wiring + buffers
constexpr double tPeriphNs = 0.079767;    // access time periphery part
constexpr double tRowNs = 2.24e-5;        // access time per row
constexpr double bitlineDelayFraction = 0.14; // share slowed in FRF_low

double
ntvPenalty(double vdd)
{
    using namespace circuit;
    const double x = std::max(0.0, (vddStv - vdd) / (vddStv - vddNtv));
    return 1.0 + ntvPenaltyAtNtv * x;
}

} // namespace

ArrayModel::ArrayModel(const ArrayConfig &cfg_,
                       const circuit::TechParams &tech_)
    : cfg(cfg_), tech(tech_)
{
    panicIf(cfg.sizeBytes <= 0.0, "ArrayModel with non-positive size");
    panicIf(cfg.banks == 0, "ArrayModel with zero banks");
    panicIf(cfg.wordBits == 0, "ArrayModel with zero word width");
    if (cfg.vdd < 0.2)
        warn("ArrayModel at %g V is below the supported NTV range", cfg.vdd);
}

double
ArrayModel::totalPorts() const
{
    // writePorts == 0 encodes the GPU register-bank style shared R/W port.
    return std::max(1u, cfg.readPorts + cfg.writePorts);
}

double
ArrayModel::portFactor()  const
{
    const double p = totalPorts();
    const double g = 1.0 + portPitchGrowth * (p - 1.0);
    return g * g;
}

double
ArrayModel::rowsPerBank() const
{
    return cfg.sizeBytes * 8.0 / (cfg.banks * cfg.wordBits);
}

double
ArrayModel::accessEnergyPj(bool lowPowerMode) const
{
    panicIf(lowPowerMode && !cfg.backGated,
            "low-power access on an array without back-gate wiring");
    const double widthScale = cfg.wordBits / 1024.0;
    const double v2 = cfg.vdd * cfg.vdd; // constants are in pJ per volt^2
    double e = (eFixedPjPerV2 * widthScale +
                eBitPjPerRowPerV2 * widthScale * rowsPerBank() *
                    portFactor()) *
               v2 * ntvPenalty(cfg.vdd);
    if (lowPowerMode) {
        // Back gate disabled: the gate-capacitance share of the switched
        // capacitance halves (Sec. IV-C).
        e *= 1.0 - gateCapFraction / 2.0;
    }
    return e;
}

double
ArrayModel::leakagePowerMw() const
{
    using circuit::BackGate;
    circuit::FinFet dev(tech);
    const double refLeak =
        dev.leakage(circuit::vddStv, BackGate::Enabled) * circuit::vddStv;
    const double vLeak = dev.leakage(cfg.vdd, BackGate::Enabled) * cfg.vdd;
    const double bits = cfg.sizeBytes * 8.0;
    const double flavorFactor =
        cfg.flavor == CellFlavor::Fast ? fastCellLeakFactor : 1.0;
    return bits * leakPerBitNw * 1e-6 * (vLeak / refLeak) * flavorFactor;
}

double
ArrayModel::areaMm2() const
{
    const auto cell = circuit::defaultCellParams(cfg.cellType);
    const double bits = cfg.sizeBytes * 8.0;
    double a = bits * cell.areaUm2 * arrayEfficiencyFactor * portFactor();
    if (cfg.backGated)
        a *= backGateAreaFactor;
    return a * 1e-6;
}

double
ArrayModel::accessTimeNs(bool lowPowerMode) const
{
    panicIf(lowPowerMode && !cfg.backGated,
            "low-power access on an array without back-gate wiring");
    using circuit::BackGate;
    const double delayFactor =
        circuit::inverterDelay(tech, cfg.vdd) /
        circuit::inverterDelay(tech, circuit::vddStv);
    double t = (tPeriphNs + tRowNs * rowsPerBank()) * delayFactor *
               std::sqrt(portFactor());
    if (lowPowerMode) {
        // Only the cell read stack slows down; the periphery stays at full
        // drive (the mode signal back-gates the cell array rows).
        const double bgRatio =
            circuit::inverterDelay(tech, cfg.vdd, 4.0, BackGate::Disabled) /
            circuit::inverterDelay(tech, cfg.vdd, 4.0, BackGate::Enabled);
        t *= (1.0 - bitlineDelayFraction) + bitlineDelayFraction * bgRatio;
    }
    return t;
}

unsigned
ArrayModel::accessCycles(bool lowPowerMode) const
{
    // 5% slack absorbs calibration noise right at a cycle boundary.
    const double cycles = accessTimeNs(lowPowerMode) / cycleBudgetNs;
    return std::max(1u, unsigned(std::ceil(cycles - 0.05)));
}

} // namespace pilotrf::rfmodel
