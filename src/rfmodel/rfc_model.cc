#include "rfmodel/rfc_model.hh"

#include "common/logging.hh"

namespace pilotrf::rfmodel
{

namespace
{
// Anchors (see file header). The MRF@STV access energy is 14.9 pJ.
constexpr double mrfAccessPj = 14.9;
constexpr double baseRatio = 0.37;        // 6 KB, (2R,1W), 1 bank
constexpr double baseSizeKb = 6.0;
constexpr double portPitchGrowth = 0.348; // same pitch growth as ArrayModel
constexpr double bankGrowth = 0.0985;     // periphery replication per bank
constexpr double sizeGrowth = 0.2;        // fixed-cost-dominated size slope
constexpr double tagRatio = 0.018;        // tag check vs MRF access
} // namespace

RfcModel::RfcModel(const RfcConfig &cfg_) : cfg(cfg_)
{
    panicIf(cfg.regsPerWarp == 0 || cfg.activeWarps == 0,
            "empty RFC configuration");
    panicIf(cfg.readPorts == 0, "RFC needs at least one read port");
}

double
RfcModel::sizeKb() const
{
    // One entry is a full warp register: 32 threads x 4 B = 128 B.
    return cfg.regsPerWarp * cfg.activeWarps * 128.0 / 1024.0;
}

double
RfcModel::accessEnergyPj() const
{
    const double basePorts = 3.0; // the (2R,1W) anchor
    const double p = cfg.readPorts + cfg.writePorts;
    const double pf = (1.0 + portPitchGrowth * (p - 1.0)) /
                      (1.0 + portPitchGrowth * (basePorts - 1.0));
    const double portFactor = pf * pf;
    const double bankFactor = 1.0 + bankGrowth * (cfg.banks - 1.0);
    const double sizeFactor =
        (1.0 - sizeGrowth) + sizeGrowth * (sizeKb() / baseSizeKb);
    return mrfAccessPj * baseRatio * portFactor * bankFactor * sizeFactor;
}

double
RfcModel::tagEnergyPj() const
{
    return mrfAccessPj * tagRatio;
}

} // namespace pilotrf::rfmodel
