/**
 * @file
 * FinCACTI-style banked SRAM array model for register files.
 *
 * Decomposes the per-access energy into a word-width-proportional periphery
 * term (sense amplifiers, output drivers, wordline) and a bitline term
 * proportional to the rows per bank; leakage is per-bit with
 * device-model-driven voltage scaling; area is cell area times an array
 * efficiency factor with port and back-gate wiring overheads.
 *
 * The calibration constants are fitted so the model reproduces Table IV of
 * the paper exactly (see rf_specs.hh) and the delay budget reproduces the
 * paper's access-cycle assignments (FRF_high 1, FRF_low 2, SRF/MRF@NTV 3).
 */

#ifndef PILOTRF_RFMODEL_ARRAY_MODEL_HH
#define PILOTRF_RFMODEL_ARRAY_MODEL_HH

#include "circuit/sram.hh"
#include "circuit/tech.hh"

namespace pilotrf::rfmodel
{

/** Cell flavour of an array: speed-optimized cells leak more. */
enum class CellFlavor { LowLeakage, Fast };

/** Configuration of one register-file array. */
struct ArrayConfig
{
    double sizeBytes;       ///< total capacity
    unsigned banks = 24;    ///< number of independent banks
    unsigned wordBits = 1024; ///< access width (one warp register = 128 B)
    unsigned readPorts = 1;  ///< read ports per bank
    unsigned writePorts = 0; ///< dedicated write ports (0: shared R/W port)
    double vdd = circuit::vddStv; ///< operating supply voltage
    bool backGated = false; ///< array has back-gate (mode) wiring installed
    circuit::SramCellType cellType = circuit::SramCellType::T8;
    CellFlavor flavor = CellFlavor::LowLeakage;
};

/**
 * Energy / power / area / timing of one array configuration.
 */
class ArrayModel
{
  public:
    ArrayModel(const ArrayConfig &cfg,
               const circuit::TechParams &tech = circuit::finfet7());

    /** Dynamic energy of one full-width access, picojoules.
     *  @param lowPowerMode back gate disabled (FRF_low); requires a
     *  backGated array. */
    double accessEnergyPj(bool lowPowerMode = false) const;

    /** Total array leakage power, milliwatts. */
    double leakagePowerMw() const;

    /** Layout area, square millimetres. */
    double areaMm2() const;

    /** Access time, nanoseconds. */
    double accessTimeNs(bool lowPowerMode = false) const;

    /** Access latency in cycles against the paper's 1-cycle access budget
     *  (the FRF_high access time). */
    unsigned accessCycles(bool lowPowerMode = false) const;

    /** Rows per bank (diagnostic). */
    double rowsPerBank() const;

    const ArrayConfig &config() const { return cfg; }

    /** The 1-cycle RF access-time budget, ns (FRF_high at STV). */
    static constexpr double cycleBudgetNs = 0.08;

  private:
    double portFactor() const;
    double totalPorts() const;

    ArrayConfig cfg;
    const circuit::TechParams &tech;
};

} // namespace pilotrf::rfmodel

#endif // PILOTRF_RFMODEL_ARRAY_MODEL_HH
