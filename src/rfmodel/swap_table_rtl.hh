/**
 * @file
 * RTL-level delay/area/energy model of the register swapping table.
 *
 * The table is a small CAM: 2n entries of 13 bits each (6-bit architected
 * register id, 6-bit mapped id, valid bit); n = 4 gives the 8-entry,
 * 104-bit table of Sec. III-B. The critical path is a match-line evaluate
 * followed by a priority encode and output mux, about 7 FO4; the paper's
 * synthesis results are 105 / 95 / 55 ps at 22 nm CMOS / 16 nm CMOS /
 * 7 nm FinFET, i.e. below 10% of a 900 MHz cycle.
 */

#ifndef PILOTRF_RFMODEL_SWAP_TABLE_RTL_HH
#define PILOTRF_RFMODEL_SWAP_TABLE_RTL_HH

#include "circuit/tech.hh"

namespace pilotrf::rfmodel
{

/** Swapping-table implementation style (results indistinguishable at this
 *  size; the paper uses the CAM for exposition). */
enum class SwapTableStyle { Cam, Indexed };

class SwapTableRtl
{
  public:
    /**
     * @param topN number of highly-accessed registers tracked (table has
     *        2 * topN entries)
     * @param style CAM or direct-indexed lookup structure
     */
    explicit SwapTableRtl(unsigned topN = 4,
                          SwapTableStyle style = SwapTableStyle::Cam);

    /** Total storage bits (104 for topN = 4). */
    unsigned bits() const;

    /** Lookup delay in picoseconds for the given technology node. */
    double delayPs(const circuit::CmosNode &node) const;

    /** Fraction of a 900 MHz cycle consumed by the lookup. */
    double cycleFraction(const circuit::CmosNode &node) const;

    /** Lookup energy, pJ (negligible vs the RF; used in accounting). */
    double lookupEnergyPj() const;

  private:
    unsigned topN;
    SwapTableStyle style;
};

} // namespace pilotrf::rfmodel

#endif // PILOTRF_RFMODEL_SWAP_TABLE_RTL_HH
