#include "rfmodel/swap_table_rtl.hh"

#include <cmath>

#include "common/logging.hh"

namespace pilotrf::rfmodel
{

namespace
{
constexpr double gpuClockHz = 900e6;
constexpr double baseFo4Stages = 7.0; // match + priority encode + mux, n=4
} // namespace

SwapTableRtl::SwapTableRtl(unsigned topN_, SwapTableStyle style_)
    : topN(topN_), style(style_)
{
    panicIf(topN == 0, "swap table with zero tracked registers");
}

unsigned
SwapTableRtl::bits() const
{
    // 2n entries x (6 + 6 + 1) bits.
    return 2 * topN * 13;
}

double
SwapTableRtl::delayPs(const circuit::CmosNode &node) const
{
    // Depth grows logarithmically with the entry count (wider priority
    // encoder / match OR tree); the indexed variant trades the match line
    // for a decode stage of the same depth at this size.
    double stages = baseFo4Stages + std::log2(double(topN) / 4.0);
    if (style == SwapTableStyle::Indexed)
        stages += 0.0;
    return stages * node.fo4DelaySec * 1e12;
}

double
SwapTableRtl::cycleFraction(const circuit::CmosNode &node) const
{
    return delayPs(node) * 1e-12 * gpuClockHz;
}

double
SwapTableRtl::lookupEnergyPj() const
{
    // ~104 bits of match/readout at 7 nm: orders of magnitude below one RF
    // bank access; scaled linearly with the entry count.
    return 0.012 * (bits() / 104.0);
}

} // namespace pilotrf::rfmodel
