/**
 * @file
 * Energy model for the hierarchical register-file cache (RFC) of
 * Gebhart et al. (ISCA 2011), the paper's main comparison point.
 *
 * Anchored to the paper's FinCACTI results (Sec. V-D):
 *   - a 6-registers-per-warp RFC with (2R, 1W) ports costs 0.37x the MRF
 *     access energy;
 *   - growing the ports to (8R, 4W) costs 3x the MRF access energy;
 *   - an 8-banked RFC (at the 32-active-warp, 24 KB size of Fig. 13)
 *     costs about the same as the MRF per access.
 */

#ifndef PILOTRF_RFMODEL_RFC_MODEL_HH
#define PILOTRF_RFMODEL_RFC_MODEL_HH

namespace pilotrf::rfmodel
{

/** RFC sizing/porting configuration. */
struct RfcConfig
{
    unsigned regsPerWarp = 6;  ///< cached registers per active warp
    unsigned activeWarps = 8;  ///< warps with RFC entries (TL active pool)
    unsigned readPorts = 2;
    unsigned writePorts = 1;
    unsigned banks = 1;
};

/**
 * Per-access energies of the RFC structure.
 */
class RfcModel
{
  public:
    explicit RfcModel(const RfcConfig &cfg);

    /** Data-array energy of one RFC read or write hit, pJ. */
    double accessEnergyPj() const;

    /** Tag/bookkeeping check energy paid by every request, pJ. */
    double tagEnergyPj() const;

    /** RFC capacity in kilobytes (shown on top of the Fig. 13 bars). */
    double sizeKb() const;

    const RfcConfig &config() const { return cfg; }

  private:
    RfcConfig cfg;
};

} // namespace pilotrf::rfmodel

#endif // PILOTRF_RFMODEL_RFC_MODEL_HH
