#include "sim/gpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/static_profiler.hh"
#include "regfile/factory.hh"
#include "regfile/partitioned_rf.hh"

namespace pilotrf::sim
{

double
KernelResult::accessFraction(const std::vector<RegId> &regs) const
{
    // Membership bitmap once, not an O(hot-set) find per register.
    std::vector<bool> inSet(regAccess.size(), false);
    for (const RegId r : regs)
        if (r < inSet.size())
            inSet[r] = true;
    double total = 0.0, hit = 0.0;
    for (std::size_t r = 0; r < regAccess.size(); ++r) {
        total += double(regAccess[r]);
        if (inSet[r])
            hit += double(regAccess[r]);
    }
    return total > 0.0 ? hit / total : 0.0;
}

std::vector<RegId>
KernelResult::topRegisters(unsigned n) const
{
    return isa::rankRegisters(regAccess, n);
}

double
KernelResult::topNFraction(unsigned n) const
{
    return accessFraction(topRegisters(n));
}

double
RunResult::rfAccesses() const
{
    return rfStats.get("access.reads") + rfStats.get("access.writes");
}

void
Gpu::Dispenser::reset(unsigned total)
{
    nextId = 0;
    totalCtas = total;
}

bool
Gpu::Dispenser::next(CtaId &id)
{
    if (nextId >= totalCtas)
        return false;
    id = nextId++;
    return true;
}

bool
Gpu::Dispenser::exhausted() const
{
    return nextId >= totalCtas;
}

Gpu::Gpu(const SimConfig &cfg_) : cfg(cfg_)
{
    panicIf(cfg.numSms == 0, "GPU with no SMs");
    panicIf(cfg.l2Enable && !cfg.l1Enable,
            "the shared L2 requires the L1 to be enabled");
    if (cfg.l2Enable)
        l2 = std::make_unique<Cache>(cfg.l2SizeKb * 1024, cfg.l2Assoc);
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        sms.push_back(std::make_unique<Sm>(
            cfg, SmId(i), regfile::makeRegisterFile(cfg), dispenser));
        sms.back()->setL2(l2.get());
    }
}

Gpu::~Gpu() = default;

obs::TraceHub &
Gpu::traceHub()
{
    if (!hubAttached) {
        for (auto &sm : sms)
            sm->setTraceHub(&hub);
        hubAttached = true;
    }
    return hub;
}

void
Gpu::enableTimeSeries(unsigned periodCycles, std::size_t capacity)
{
    panicIf(periodCycles == 0, "time-series period must be nonzero");
    for (auto &sm : sms)
        sm->enableTimeSeries(periodCycles, capacity);
}

bool
Gpu::timeSeriesEnabled() const
{
    return !sms.empty() && sms.front()->timeSeries() != nullptr;
}

std::uint64_t
Gpu::fastForwardedCycles() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms)
        n += sm->fastForwardedCycles();
    return n;
}

void
Gpu::writeTimeSeries(std::ostream &os) const
{
    std::vector<const obs::TimeSeriesSampler *> samplers;
    for (const auto &sm : sms)
        samplers.push_back(sm->timeSeries());
    obs::writeTimeSeriesJson(os, samplers);
}

StatSet
Gpu::mergedRfStats() const
{
    StatSet s;
    for (const auto &sm : sms)
        s.merge(sm->rf().stats());
    return s;
}

StatSet
Gpu::mergedSimStats() const
{
    StatSet s;
    for (const auto &sm : sms)
        s.merge(sm->stats());
    return s;
}

std::vector<std::uint64_t>
Gpu::mergedRegAccess() const
{
    std::vector<std::uint64_t> v(maxRegsPerThread, 0);
    for (const auto &sm : sms) {
        const auto &c = sm->rf().regAccessCounts();
        for (std::size_t i = 0; i < c.size() && i < v.size(); ++i)
            v[i] += c[i];
    }
    return v;
}

namespace
{
StatSet
statDelta(const StatSet &after, const StatSet &before)
{
    StatSet d;
    for (const auto &[k, v] : after.raw()) {
        const double dv = v - before.get(k);
        if (dv != 0.0)
            d.set(k, dv);
    }
    return d;
}
} // namespace

RunResult
Gpu::run(const isa::Kernel &kernel)
{
    return run(std::vector<isa::Kernel>{kernel});
}

RunResult
Gpu::run(const std::vector<isa::Kernel> &kernels)
{
    panicIf(kernels.empty(), "Gpu::run with no kernels");
    RunResult result;

    const StatSet runRf0 = mergedRfStats();
    const StatSet runSim0 = mergedSimStats();

    for (const auto &kernel : kernels) {
        kernel.validate();
        const Cycle kernelStart = now;
        const StatSet rf0 = mergedRfStats();
        const StatSet sim0 = mergedSimStats();
        const auto reg0 = mergedRegAccess();

        dispenser.reset(kernel.numCtas());
        if (l2)
            l2->flush();
        for (auto &sm : sms)
            sm->startKernel(&kernel);

        auto allIdle = [&] {
            if (!dispenser.exhausted())
                return false;
            for (const auto &sm : sms)
                if (!sm->idle())
                    return false;
            return true;
        };

        const auto watchdog = [&] {
            if (now - kernelStart > cfg.maxCycles)
                fatal("kernel %s exceeded the %llu-cycle watchdog",
                      kernel.name().c_str(),
                      (unsigned long long)cfg.maxCycles);
        };

        while (!allIdle()) {
            unsigned activity = 0;
            for (auto &sm : sms)
                if (!sm->idle() || !dispenser.exhausted())
                    activity += sm->cycle(now);
            ++now;
            watchdog();
            if (!cfg.enableCycleSkip || activity)
                continue;

            // Dead cycle: every SM ran and nothing happened anywhere, so
            // nothing can happen before the earliest event horizon. Jump
            // the clock straight there, crediting each running SM for
            // the elided cycles. The horizon is clamped so the watchdog
            // still fires at exactly the cycle single-stepping would
            // reach. (A CTA launch cannot be the first event: on a dead
            // cycle every SM with dispenser capacity already tried and
            // failed to launch, and launch capacity only changes at an
            // SM's own event cycles; the shared dispenser only drains.)
            Cycle horizon = kNeverCycle;
            for (const auto &sm : sms)
                if (!sm->idle() || !dispenser.exhausted())
                    horizon = std::min(horizon, sm->nextEventCycle(now));
            if (horizon == kNeverCycle || horizon <= now)
                continue; // event due immediately — or none: single-step
            horizon = std::min(horizon, kernelStart + cfg.maxCycles + 1);
            if (horizon <= now)
                continue;
            for (auto &sm : sms)
                if (!sm->idle() || !dispenser.exhausted())
                    sm->skipCycles(now, horizon);
            skippedGlobal += horizon - now;
            now = horizon;
            watchdog();
        }

        KernelResult kr;
        kr.name = kernel.name();
        kr.cycles = now - kernelStart;
        kr.rfStats = statDelta(mergedRfStats(), rf0);
        kr.simStats = statDelta(mergedSimStats(), sim0);
        kr.instructions =
            std::uint64_t(kr.simStats.get("instructions.issued"));
        const auto reg1 = mergedRegAccess();
        kr.regAccess.resize(reg1.size());
        for (std::size_t i = 0; i < reg1.size(); ++i)
            kr.regAccess[i] = reg1[i] - reg0[i];

        // Pilot / compiler profiling metadata, merged across SMs: each SM
        // runs its own pilot warp, so the kernel-level finish cycle is
        // the last retirement and the hot set is a rank-by-rank consensus
        // — registers are taken in rank order across the per-SM lists,
        // first seen wins, truncated to the largest per-SM list so
        // disagreeing SMs never inflate the set beyond the FRF size.
        {
            bool anyPilot = false;
            double finish = 0.0;
            std::size_t maxRank = 0;
            std::vector<const std::vector<RegId> *> hotLists;
            for (const auto &sm : sms) {
                auto *prf =
                    dynamic_cast<regfile::PartitionedRf *>(&sm->rf());
                if (!prf)
                    continue;
                const double f = prf->stats().get("pilot.finishCycle");
                finish = anyPilot ? std::max(finish, f) : f;
                anyPilot = true;
                hotLists.push_back(&prf->pilotHotRegisters());
                maxRank = std::max(maxRank, hotLists.back()->size());
            }
            if (anyPilot)
                kr.pilotFinishCycle = finish - double(kernelStart);
            for (std::size_t rank = 0;
                 rank < maxRank && kr.pilotHot.size() < maxRank; ++rank) {
                for (const auto *hl : hotLists) {
                    if (rank >= hl->size() ||
                        kr.pilotHot.size() >= maxRank)
                        continue;
                    const RegId reg = (*hl)[rank];
                    if (std::find(kr.pilotHot.begin(), kr.pilotHot.end(),
                                  reg) == kr.pilotHot.end())
                        kr.pilotHot.push_back(reg);
                }
            }
        }
        isa::StaticProfile sp(kernel);
        kr.staticHot = sp.topRegisters(4);

        result.totalCycles += kr.cycles;
        result.totalInstructions += kr.instructions;
        result.kernels.push_back(std::move(kr));
    }

    result.rfStats = statDelta(mergedRfStats(), runRf0);
    result.simStats = statDelta(mergedSimStats(), runSim0);

    for (auto &sm : sms)
        if (auto *ts = sm->timeSeries())
            ts->finish(now);
    if (hubAttached)
        hub.flush();
    return result;
}

} // namespace pilotrf::sim
