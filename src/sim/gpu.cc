#include "sim/gpu.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/logging.hh"
#include "isa/static_profiler.hh"
#include "regfile/factory.hh"
#include "regfile/partitioned_rf.hh"
#include "sim/trace.hh"

namespace pilotrf::sim
{

double
KernelResult::accessFraction(const std::vector<RegId> &regs) const
{
    // Membership bitmap once, not an O(hot-set) find per register.
    std::vector<bool> inSet(regAccess.size(), false);
    for (const RegId r : regs)
        if (r < inSet.size())
            inSet[r] = true;
    double total = 0.0, hit = 0.0;
    for (std::size_t r = 0; r < regAccess.size(); ++r) {
        total += double(regAccess[r]);
        if (inSet[r])
            hit += double(regAccess[r]);
    }
    return total > 0.0 ? hit / total : 0.0;
}

std::vector<RegId>
KernelResult::topRegisters(unsigned n) const
{
    return isa::rankRegisters(regAccess, n);
}

double
KernelResult::topNFraction(unsigned n) const
{
    return accessFraction(topRegisters(n));
}

double
RunResult::rfAccesses() const
{
    return rfStats.get("access.reads") + rfStats.get("access.writes");
}

const char *
toString(Engine e)
{
    switch (e) {
      case Engine::Lockstep: return "lockstep";
      case Engine::Sharded: return "sharded";
    }
    return "?";
}

void
Gpu::Dispenser::reset(unsigned total)
{
    nextId = 0;
    totalCtas = total;
}

bool
Gpu::Dispenser::next(CtaId &id)
{
    if (nextId >= totalCtas)
        return false;
    id = nextId++;
    return true;
}

bool
Gpu::Dispenser::exhausted() const
{
    return nextId >= totalCtas;
}

Gpu::Gpu(const SimConfig &cfg_, const GpuOptions &opts_)
    : cfg(cfg_), opts(opts_)
{
    panicIf(cfg.numSms == 0, "GPU with no SMs");
    panicIf(cfg.l2Enable && !cfg.l1Enable,
            "the shared L2 requires the L1 to be enabled");
    panicIf(cfg.dramEnable && !cfg.l2Enable,
            "the DRAM stage requires the shared L2 to be enabled");
    if (cfg.l2Enable)
        memSys = std::make_unique<MemSystem>(
            cfg.l2SizeKb * 1024, cfg.l2Assoc, cfg.l2HitLatency,
            cfg.globalLatency, cfg.dramEnable, cfg.dramLatency,
            cfg.dramPartitions, cfg.dramServiceCycles);
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        sms.push_back(std::make_unique<Sm>(cfg, SmId(i),
                                           regfile::makeRegisterFile(cfg)));
        sms.back()->setMemSystem(memSys.get());
        if (opts.timeSeriesPeriod)
            sms.back()->enableTimeSeries(opts.timeSeriesPeriod,
                                         opts.timeSeriesCapacity);
        if (opts.enableTraceHub)
            sms.back()->setTraceHub(&hub);
    }
    hubAttached = opts.enableTraceHub;
    // The engine is a pure function of construction-time state: nothing
    // forces the lockstep engine any more. Observability (trace hubs,
    // PILOTRF_TRACE, the sampler) is shard-safe via per-SM buffered
    // emission, and the shared L2 is shard-safe via per-SM deferred
    // request FIFOs replayed at epoch barriers.
    engine =
        effectiveWorkers() > 1 ? Engine::Sharded : Engine::Lockstep;
}

Gpu::~Gpu() = default;

obs::TraceHub &
Gpu::traceHub()
{
    panicIf(!hubAttached,
            "traceHub() requires GpuOptions::enableTraceHub");
    return hub;
}

unsigned
Gpu::effectiveWorkers() const
{
    unsigned w = opts.numWorkers ? opts.numWorkers : cfg.numWorkers;
    if (w == 0)
        w = 1;
    return std::min(w, cfg.numSms);
}

ShardSchedule
Gpu::effectiveSchedule() const
{
    return opts.shardSchedule ? *opts.shardSchedule : cfg.shardSchedule;
}

bool
Gpu::timeSeriesEnabled() const
{
    return !sms.empty() && sms.front()->timeSeries() != nullptr;
}

std::uint64_t
Gpu::fastForwardedCycles() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms)
        n += sm->fastForwardedCycles();
    return n;
}

void
Gpu::writeTimeSeries(std::ostream &os) const
{
    std::vector<const obs::TimeSeriesSampler *> samplers;
    for (const auto &sm : sms)
        samplers.push_back(sm->timeSeries());
    obs::writeTimeSeriesJson(os, samplers);
}

StatSet
Gpu::mergedRfStats() const
{
    StatSet s;
    for (const auto &sm : sms)
        s.merge(sm->rf().stats());
    return s;
}

StatSet
Gpu::mergedSimStats() const
{
    StatSet s;
    for (const auto &sm : sms)
        s.merge(sm->stats());
    return s;
}

std::vector<std::uint64_t>
Gpu::mergedRegAccess() const
{
    std::vector<std::uint64_t> v(maxRegsPerThread, 0);
    for (const auto &sm : sms) {
        const auto &c = sm->rf().regAccessCounts();
        for (std::size_t i = 0; i < c.size() && i < v.size(); ++i)
            v[i] += c[i];
    }
    return v;
}

namespace
{
StatSet
statDelta(const StatSet &after, const StatSet &before)
{
    StatSet d;
    for (const auto &[k, v] : after.raw()) {
        const double dv = v - before.get(k);
        if (dv != 0.0)
            d.set(k, dv);
    }
    return d;
}
} // namespace

Cycle
Gpu::runKernelLockstep(const isa::Kernel &kernel, Cycle kernelStart)
{
    (void)kernel; // the watchdog (inside Sm) names it
    EpochContext ctx;
    ctx.kernelStart = kernelStart;
    ctx.watchdogLimit = kernelStart + cfg.maxCycles;
    ctx.allowLocalSkip = false; // skip globally below, as the seed did

    // One-cycle epochs, SMs stepped in smId order with launch pauses
    // resolved inline: this is exactly the seed's serial cycle-major
    // loop, including trace emission order.
    std::vector<bool> finished(sms.size(), false);
    Cycle clock = kernelStart;
    Cycle endCycle = kernelStart;
    while (true) {
        bool anyRunning = false;
        unsigned activity = 0;
        ctx.epochEnd = clock + 1;
        for (std::size_t i = 0; i < sms.size(); ++i) {
            if (finished[i])
                continue;
            Sm &sm = *sms[i];
            const StepResult r = sm.step(ctx);
            activity += unsigned(r.activity);
            if (r.stop == StepStop::NeedsCta)
                activity += sm.resolveLaunch(dispenser);
            if (sm.finishedKernel()) {
                // The serial loop would never step this SM again.
                finished[i] = true;
                endCycle = std::max(endCycle, sm.localCycle());
                continue;
            }
            anyRunning = true;
        }
        if (!anyRunning)
            break;
        ++clock;
        if (!cfg.enableCycleSkip || activity)
            continue;

        // Dead cycle: every SM ran and nothing happened anywhere, so
        // nothing can happen before the earliest event horizon. Jump
        // the clock straight there, crediting each running SM for
        // the elided cycles. The horizon is clamped so the watchdog
        // still fires at exactly the cycle single-stepping would
        // reach. (A CTA launch cannot be the first event: on a dead
        // cycle every SM with dispenser capacity already tried and
        // failed to launch, and launch capacity only changes at an
        // SM's own event cycles; the shared dispenser only drains.)
        Cycle horizon = kNeverCycle;
        for (std::size_t i = 0; i < sms.size(); ++i)
            if (!finished[i])
                horizon = std::min(horizon, sms[i]->nextEventCycle(clock));
        if (horizon == kNeverCycle || horizon <= clock)
            continue; // event due immediately — or none: single-step
        horizon = std::min(horizon, kernelStart + cfg.maxCycles + 1);
        if (horizon <= clock)
            continue;
        for (std::size_t i = 0; i < sms.size(); ++i)
            if (!finished[i])
                sms[i]->skipCycles(clock, horizon);
        skippedGlobal += horizon - clock;
        clock = horizon;
    }
    return std::max(clock, endCycle);
}

Cycle
Gpu::runKernelSharded(const isa::Kernel &kernel, Cycle kernelStart)
{
    (void)kernel;
    const unsigned shards = effectiveWorkers();
    if (!pool || pool->size() != shards)
        pool = std::make_unique<WorkerPool>(shards);

    EpochContext ctx;
    ctx.kernelStart = kernelStart;
    ctx.watchdogLimit = kernelStart + cfg.maxCycles;
    ctx.allowLocalSkip = true; // each shard fast-forwards its own SMs
    ctx.grid = &dispenser;     // read-only: exhausted() checks barrier-free
    // With the shared L2 live, an SM may step at most this far past its
    // oldest unreplayed request before the reply could matter; it then
    // pauses with NeedsMem and the round loop below replays and wakes it.
    ctx.memLookahead = memSys ? memSys->minResponseLatency() + 1 : 0;

    // Ownership per stepping round: under the static schedule SM i
    // belongs to worker i % shards; under the dynamic schedule each
    // round's runnable SMs are claimed from a shared ticket queue, so
    // ownership lasts one round. Either way exactly one worker steps a
    // given SM per round and workers write only the phase/res/epochWork
    // entries of SMs they stepped; every transfer to or from the
    // orchestrator goes through the pool's barrier. Which worker stepped
    // which SM is therefore observationally invisible — the schedule is
    // a pure wall-clock knob.
    enum class Phase : std::uint8_t
    { Runnable, Paused, MemWait, AtBarrier, Done };
    std::vector<Phase> phase(sms.size(), Phase::Runnable);
    std::vector<StepResult> res(sms.size());
    // Correctness puts no upper bound on the epoch: every cross-SM
    // interaction pauses through the resolve protocol regardless, so the
    // barrier period only trades shard rebalancing granularity against
    // pool dispatch overhead (each barrier is a full wake/sleep round
    // trip per worker). Keep it long; kernels needing more epochs than
    // this are already watchdog-scale. When trace events can flow,
    // however, they buffer per SM until the next barrier — an epoch is
    // then also the emission memory bound, so use a much shorter one.
    // Epoch length is observationally invisible either way.
    const bool mayEmit = hubAttached || Trace::anyEnabled();
    const Cycle kEpochLen = Cycle(1) << (mayEmit ? 14 : 20);
    Cycle epochStart = kernelStart;
    Cycle endCycle = kernelStart;

    // Shard-safe emission: each SM appends events to its own buffer
    // while its worker steps it; at every epoch barrier the orchestrator
    // merge-replays all buffers into the sinks in the serial
    // (cycle, smId, seq) order (see obs::drainTraceBuffers). Buffering
    // starts here — startKernel()'s launch events were already emitted
    // immediately, in smId order, exactly as the serial loop does.
    std::vector<obs::TraceBuffer *> bufs;
    bufs.reserve(sms.size());
    for (auto &sm : sms) {
        bufs.push_back(&sm->traceBuffer());
        bufs.back()->setBuffered(true);
        sm->setL2Deferred(memSys != nullptr);
    }

    const ShardSchedule schedule = effectiveSchedule();
    if (sched.workers.size() < shards)
        sched.workers.resize(shards);

    // Dynamic-schedule state. `cost[i]` estimates SM i's next-epoch wall
    // cost as its previous-epoch stepping time; the orchestrator sorts
    // each round's runnable SMs by it, longest first (LPT), with
    // ascending smId as the deterministic tiebreak. Workers then claim
    // ranges of that order via the shared ticket at guided-chunk
    // granularity. All of this steers only *which worker* steps an SM —
    // never whether or when it is stepped — so results stay
    // byte-identical to the static schedule.
    std::vector<std::uint64_t> cost(sms.size(), 0);
    std::vector<std::uint64_t> epochWork(sms.size(), 0);
    std::vector<unsigned> claimOrder;
    claimOrder.reserve(sms.size());
    std::atomic<unsigned> ticket{0};
    std::vector<std::uint64_t> roundBusy(shards, 0);

    // Step SM i on worker slot `slot`, timing the call for telemetry.
    // The timing feeds cost[] (dynamic schedule only) and the public
    // counters; the step itself is schedule-independent.
    auto stepSm = [&](std::size_t i, unsigned slot) {
        const auto t0 = std::chrono::steady_clock::now();
        const StepResult r = sms[i]->step(ctx);
        const auto ns = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        res[i] = r;
        phase[i] = r.stop == StepStop::Finished  ? Phase::Done
                   : r.stop == StepStop::NeedsCta ? Phase::Paused
                   : r.stop == StepStop::NeedsMem ? Phase::MemWait
                                                  : Phase::AtBarrier;
        epochWork[i] += ns;
        roundBusy[slot] += ns;
        WorkerTelemetry &wt = sched.workers[slot];
        wt.busyNs += ns;
        ++wt.smsStepped;
        if (unsigned(i % shards) != slot) {
            wt.stealNs += ns;
            ++wt.smsStolen;
        }
    };

    // Step every Runnable SM exactly once, distributed per the schedule.
    // Returns the number of worker slots that participated (0 when the
    // round could not use every slot — the caller skips balance
    // accounting for such rounds).
    auto runRound = [&]() -> unsigned {
        std::fill(roundBusy.begin(), roundBusy.end(), 0);
        if (schedule == ShardSchedule::Static) {
            unsigned runnable = 0;
            for (std::size_t i = 0; i < sms.size(); ++i)
                runnable += unsigned(phase[i] == Phase::Runnable);
            if (!runnable)
                return 0;
            pool->run(shards, [&](unsigned s) {
                for (std::size_t i = s; i < sms.size(); i += shards)
                    if (phase[i] == Phase::Runnable)
                        stepSm(i, s);
            });
            return runnable >= shards ? shards : 0;
        }
        claimOrder.clear();
        for (std::size_t i = 0; i < sms.size(); ++i)
            if (phase[i] == Phase::Runnable)
                claimOrder.push_back(unsigned(i));
        if (claimOrder.empty())
            return 0;
        std::sort(claimOrder.begin(), claimOrder.end(),
                  [&](unsigned a, unsigned b) {
                      return cost[a] != cost[b] ? cost[a] > cost[b]
                                                : a < b;
                  });
        const unsigned total = unsigned(claimOrder.size());
        const unsigned nWake = std::min(shards, total);
        ticket.store(0, std::memory_order_relaxed);
        pool->run(nWake, [&](unsigned slot) {
            while (true) {
                // Guided chunks, sized to the *claimed prefix*: the
                // queue is sorted costliest-first, so the head must be
                // claimed singly (one straggler SM per worker — the
                // point of LPT) and only the cheap tail is worth
                // batching to save ticket round trips. The prefix
                // estimate may race with other claims; only the
                // fetch-add range is authoritative.
                const unsigned seen =
                    ticket.load(std::memory_order_relaxed);
                if (seen >= total)
                    break;
                const unsigned chunk =
                    std::max(1u, seen / (4 * nWake));
                const unsigned begin =
                    ticket.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= total)
                    break;
                const unsigned end = std::min(begin + chunk, total);
                for (unsigned k = begin; k < end; ++k)
                    stepSm(claimOrder[k], slot);
            }
        });
        return nWake;
    };

    // Fold one measured round into the balance telemetry. Only rounds
    // where every worker slot participated are comparable — that is the
    // epoch-opening round while >= shards SMs are live; the resolve
    // rounds after it step min-cycle batches and would read as false
    // imbalance.
    auto accountRound = [&](unsigned participants) {
        if (participants != shards || shards < 2)
            return;
        std::uint64_t maxBusy = 0, sum = 0;
        for (unsigned s = 0; s < shards; ++s) {
            maxBusy = std::max(maxBusy, roundBusy[s]);
            sum += roundBusy[s];
        }
        if (!sum)
            return;
        for (unsigned s = 0; s < shards; ++s)
            sched.workers[s].idleNs += maxBusy - roundBusy[s];
        const double ratio =
            double(maxBusy) * double(shards) / double(sum);
        ++sched.epochs;
        sched.stragglerRatioSum += ratio;
        sched.maxStragglerRatio = std::max(sched.maxStragglerRatio, ratio);
    };

    unsigned live = unsigned(sms.size());
    while (live) {
        ctx.epochEnd = epochStart + kEpochLen;
        for (std::size_t i = 0; i < sms.size(); ++i)
            if (phase[i] != Phase::Done)
                phase[i] = Phase::Runnable;
        bool firstRound = true;
        while (true) {
            const unsigned participants = runRound();
            if (firstRound) {
                accountRound(participants);
                firstRound = false;
            }
            Cycle cmin = kNeverCycle;
            for (std::size_t i = 0; i < sms.size(); ++i)
                if (phase[i] == Phase::Paused || phase[i] == Phase::MemWait)
                    cmin = std::min(cmin, res[i].now);
            if (cmin == kNeverCycle)
                break; // no pending launches or replies: epoch complete
            // Every live SM's clock is >= cmin and the FIFOs fill
            // cycle-monotonically, so every deferred L2 request below
            // cmin is already recorded — replaying them now (strict <,
            // so cycle-cmin requests an SM resumed below may still
            // append keep their smId-minor slot) reproduces the serial
            // loop's inline (cycle, smId) L2 order exactly. Done SMs'
            // FIFOs are complete and merge in as well.
            if (memSys)
                replayDeferredL2(cmin);
            // Resolve only the earliest pending dispenser interactions,
            // in smId order. Anything a resumed SM does next happens at
            // a strictly later cycle, so processing min-cycle batches
            // round by round replays the serial loop's global
            // (cycle, smId) grid-drain order exactly.
            for (std::size_t i = 0; i < sms.size(); ++i) {
                if (phase[i] == Phase::Paused) {
                    if (res[i].now != cmin)
                        continue;
                    sms[i]->resolveLaunch(dispenser);
                    phase[i] = Phase::Runnable;
                } else if (phase[i] == Phase::MemWait) {
                    // Wake iff the replay moved this SM's mem bound past
                    // its stop cycle. The minimum MemWait SM always
                    // qualifies: its old front dispatched before cmin,
                    // and after the replay every front is >= cmin, so
                    // the new bound clears cmin + memLookahead.
                    if (sms[i]->deferredL2Bound(ctx.memLookahead) >
                        res[i].now)
                        phase[i] = Phase::Runnable;
                }
            }
        }
        // Epoch barrier: every live SM sits at epochEnd and the pool's
        // barrier ordered all buffered appends before this point, so the
        // replays below are race-free and complete up to epochEnd.
        // Deferred L2 requests replay first so the Mem trace slots they
        // fill are delivered by the same barrier's merge.
        if (memSys)
            replayDeferredL2();
        obs::drainTraceBuffers(bufs);
        live = 0;
        for (std::size_t i = 0; i < sms.size(); ++i) {
            if (phase[i] == Phase::Done)
                endCycle = std::max(endCycle, res[i].now);
            else
                ++live;
            // The LPT cost estimate for the next epoch is simply this
            // epoch's measured stepping time — SM workloads are phase-
            // stable at epoch granularity, so last epoch predicts the
            // next well enough to sort by.
            cost[i] = epochWork[i];
            epochWork[i] = 0;
        }
        epochStart = ctx.epochEnd;
    }
    // The last epoch's drain already flushed everything through kernel
    // end; drop back to immediate mode for the serial stretches between
    // kernels (startKernel launch traces and inline L2 accesses).
    for (std::size_t i = 0; i < sms.size(); ++i) {
        bufs[i]->setBuffered(false);
        sms[i]->setL2Deferred(false);
    }
    return endCycle;
}

void
Gpu::replayDeferredL2(Cycle bound)
{
    // Scan-min k-way merge: repeatedly replay the globally earliest
    // pending request with cycle < bound. Strict < on the front cycle
    // makes ties resolve to the lowest smId, which is exactly the
    // lockstep engine's cycle-major, smId-minor interleaving of inline
    // L2 accesses. The default bound (kNeverCycle) drains everything —
    // the epoch barrier's exhaustive pass; the round loop passes the
    // global minimum stop cycle for the mid-epoch partial replays.
    while (true) {
        Cycle best = kNeverCycle;
        std::size_t bi = 0;
        for (std::size_t i = 0; i < sms.size(); ++i) {
            const Cycle c = sms[i]->deferredL2FrontCycle();
            if (c < best) {
                best = c;
                bi = i;
            }
        }
        if (best >= bound)
            return;
        sms[bi]->replayL2Front();
    }
}

RunResult
Gpu::run(const Workload &workload)
{
    panicIf(workload.kernels.empty(), "Gpu::run with no kernels");
    RunResult result;
    result.label = std::string(workload.label);

    const StatSet runRf0 = mergedRfStats();
    const StatSet runSim0 = mergedSimStats();

    // Surface the engine decision once per run, but only when workers
    // were actually requested — the default single-worker configuration
    // has nothing to report and would drown every test log otherwise.
    if (std::max(opts.numWorkers, cfg.numWorkers) > 1) {
        if (engine == Engine::Sharded)
            inform("engine=sharded workers=%u schedule=%s",
                   effectiveWorkers(), toString(effectiveSchedule()));
        else
            inform("engine=lockstep reason=single-worker");
    }

    for (const auto &kernel : workload.kernels) {
        kernel.validate();
        const Cycle kernelStart = now;
        const StatSet rf0 = mergedRfStats();
        const StatSet sim0 = mergedSimStats();
        const auto reg0 = mergedRegAccess();

        dispenser.reset(kernel.numCtas());
        if (memSys)
            memSys->flush();
        for (auto &sm : sms)
            sm->startKernel(&kernel, kernelStart, dispenser);

        now = engine == Engine::Sharded
                  ? runKernelSharded(kernel, kernelStart)
                  : runKernelLockstep(kernel, kernelStart);

        KernelResult kr;
        kr.name = kernel.name();
        kr.cycles = now - kernelStart;
        kr.rfStats = statDelta(mergedRfStats(), rf0);
        kr.simStats = statDelta(mergedSimStats(), sim0);
        kr.instructions =
            std::uint64_t(kr.simStats.get("instructions.issued"));
        const auto reg1 = mergedRegAccess();
        kr.regAccess.resize(reg1.size());
        for (std::size_t i = 0; i < reg1.size(); ++i)
            kr.regAccess[i] = reg1[i] - reg0[i];

        // Pilot / compiler profiling metadata, merged across SMs: each SM
        // runs its own pilot warp, so the kernel-level finish cycle is
        // the last retirement and the hot set is a rank-by-rank consensus
        // — registers are taken in rank order across the per-SM lists,
        // first seen wins, truncated to the largest per-SM list so
        // disagreeing SMs never inflate the set beyond the FRF size.
        {
            bool anyPilot = false;
            double finish = 0.0;
            std::size_t maxRank = 0;
            std::vector<const std::vector<RegId> *> hotLists;
            for (const auto &sm : sms) {
                auto *prf =
                    dynamic_cast<regfile::PartitionedRf *>(&sm->rf());
                if (!prf)
                    continue;
                const double f = prf->stats().get("pilot.finishCycle");
                finish = anyPilot ? std::max(finish, f) : f;
                anyPilot = true;
                hotLists.push_back(&prf->pilotHotRegisters());
                maxRank = std::max(maxRank, hotLists.back()->size());
            }
            if (anyPilot)
                kr.pilotFinishCycle = finish - double(kernelStart);
            for (std::size_t rank = 0;
                 rank < maxRank && kr.pilotHot.size() < maxRank; ++rank) {
                for (const auto *hl : hotLists) {
                    if (rank >= hl->size() ||
                        kr.pilotHot.size() >= maxRank)
                        continue;
                    const RegId reg = (*hl)[rank];
                    if (std::find(kr.pilotHot.begin(), kr.pilotHot.end(),
                                  reg) == kr.pilotHot.end())
                        kr.pilotHot.push_back(reg);
                }
            }
        }
        isa::StaticProfile sp(kernel);
        kr.staticHot = sp.topRegisters(4);

        result.totalCycles += kr.cycles;
        result.totalInstructions += kr.instructions;
        result.kernels.push_back(std::move(kr));
    }

    result.rfStats = statDelta(mergedRfStats(), runRf0);
    result.simStats = statDelta(mergedSimStats(), runSim0);

    for (auto &sm : sms)
        if (auto *ts = sm->timeSeries())
            ts->finish(now);
    if (hubAttached)
        hub.flush();
    return result;
}

} // namespace pilotrf::sim
