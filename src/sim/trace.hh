/**
 * @file
 * Lightweight category-gated event tracing for the simulator, in the
 * spirit of gem5's debug flags. Disabled categories cost one branch per
 * trace point; enabled ones print one line per event:
 *
 *   pilotrf::sim::Trace::enable(TraceCat::Issue);
 *   pilotrf::sim::Trace::setStream(myStream);
 *
 * Categories can also be enabled from the PILOTRF_TRACE environment
 * variable (comma-separated: "issue,mem,warp").
 */

#ifndef PILOTRF_SIM_TRACE_HH
#define PILOTRF_SIM_TRACE_HH

#include <cstdarg>
#include <cstdint>
#include <ostream>

#include "common/types.hh"

namespace pilotrf::sim
{

/** Trace event categories. */
enum class TraceCat : unsigned
{
    Issue = 0, ///< instruction issue
    Exec,      ///< execution-unit dispatch/completion
    Mem,       ///< memory transactions
    Bank,      ///< register bank grants/conflicts
    Warp,      ///< warp lifecycle (launch, barrier, retire)
    Cta,       ///< CTA scheduling
    NumCats,
};

const char *toString(TraceCat cat);

class Trace
{
  public:
    /** Enable/disable one category. */
    static void enable(TraceCat cat);
    static void disable(TraceCat cat);
    static void disableAll();

    /** Enable categories from a comma-separated list ("issue,mem").
     *  Unknown names are ignored. Returns the number enabled. */
    static unsigned enableFromList(const char *list);

    /** Read PILOTRF_TRACE once at startup (called lazily). */
    static void initFromEnvironment();

    static bool enabled(TraceCat cat)
    {
        return (mask & (1u << unsigned(cat))) != 0;
    }

    /** Redirect output (default: std::cerr). Not owned. */
    static void setStream(std::ostream &os);

    /** Emit one line: "<cycle>: sm<N> <cat>: <message>". */
    static void log(TraceCat cat, Cycle cycle, SmId sm, const char *fmt,
                    ...) __attribute__((format(printf, 4, 5)));

  private:
    static unsigned mask;
    static std::ostream *stream;
};

/** Trace-point macro: evaluates arguments only when the category is on. */
#define PILOTRF_TRACE(cat, cycle, sm, ...)                                 \
    do {                                                                   \
        if (pilotrf::sim::Trace::enabled(cat))                             \
            pilotrf::sim::Trace::log(cat, cycle, sm, __VA_ARGS__);         \
    } while (0)

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_TRACE_HH
