/**
 * @file
 * Category-gated event tracing for the simulator, in the spirit of gem5's
 * debug flags, layered on the pluggable `obs::TraceSink` API. Disabled
 * categories cost one branch per trace point; enabled ones emit one
 * structured `obs::TraceEvent` that the process-wide hub's default
 * `obs::TextTraceSink` renders as the classic line:
 *
 *   pilotrf::sim::Trace::enable(TraceCat::Issue);
 *   pilotrf::sim::Trace::setStream(myStream);   // redirect the text sink
 *   pilotrf::sim::Trace::hub().addSink(...);    // attach more sinks
 *
 * Categories can also be enabled from the PILOTRF_TRACE environment
 * variable (comma-separated: "issue,mem,warp").
 *
 * Components that belong to one simulated GPU (SMs, RF backends)
 * additionally carry a per-SM `obs::TraceBuffer` wired to the per-GPU
 * hub, so concurrent experiment jobs can stream their events to per-job
 * files; the `PILOTRF_TRACE_AT` macro delivers one formatted event
 * through the buffer to both the global hub (when the category is
 * enabled) and the local hub (when it text-enables the category)
 * without formatting twice. Under the sharded engine the buffer defers
 * delivery to the epoch barrier (see obs::drainTraceBuffers), which is
 * what keeps traced runs shard-safe.
 */

#ifndef PILOTRF_SIM_TRACE_HH
#define PILOTRF_SIM_TRACE_HH

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>

#include "common/types.hh"
#include "obs/trace.hh"

namespace pilotrf::sim
{

/** Trace event categories. */
enum class TraceCat : unsigned
{
    Issue = 0, ///< instruction issue
    Exec,      ///< execution-unit dispatch/completion
    Mem,       ///< memory transactions
    Bank,      ///< register bank grants/conflicts
    Warp,      ///< warp lifecycle (launch, barrier, retire)
    Cta,       ///< CTA scheduling
    Swap,      ///< swap-table programming / remap movement
    Backgate,  ///< FRF back-gate power-mode transitions
    NumCats,
};

const char *toString(TraceCat cat);

/** Inverse of toString(); nullopt for unknown names. */
std::optional<TraceCat> parseTraceCat(std::string_view name);

class Trace
{
  public:
    /** Enable/disable one category. */
    static void enable(TraceCat cat);
    static void disable(TraceCat cat);
    static void disableAll();

    /** Enable categories from a comma-separated list ("issue,mem").
     *  Unknown names warn once each. Returns the number enabled. */
    static unsigned enableFromList(const char *list);

    /** Read PILOTRF_TRACE once at startup (called lazily). */
    static void initFromEnvironment();

    static bool enabled(TraceCat cat)
    {
        return (mask & (1u << unsigned(cat))) != 0;
    }

    /** Any category enabled at all? The Gpu uses this to size epochs
     *  conservatively when trace events can flow (buffered events are
     *  held until the next barrier, so barriers must come often enough
     *  to bound memory). */
    static bool anyEnabled() { return mask != 0; }

    /** The process-wide hub behind the static API. Its first sink is the
     *  legacy text formatter (stderr by default). Not synchronized —
     *  attach sinks before running simulations. */
    static obs::TraceHub &hub();

    /** Redirect the default text sink's output (default: std::cerr).
     *  Not owned. */
    static void setStream(std::ostream &os);

    /** Emit one line: "<cycle>: sm<N> <cat>: <message>". */
    static void log(TraceCat cat, Cycle cycle, SmId sm, const char *fmt,
                    ...) __attribute__((format(printf, 4, 5)));

    /** As log(), but emission goes through the SM's trace buffer: the
     *  event reaches the global hub (category enabled) and/or the
     *  buffer's local hub (category text-enabled there), immediately or
     *  deferred to the next barrier per the buffer's mode. */
    static void logTo(obs::TraceBuffer *buf, TraceCat cat, Cycle cycle,
                      SmId sm, const char *fmt, ...)
        __attribute__((format(printf, 5, 6)));

    /** Build — without delivering — the exact event one logTo() call
     *  would emit, and the destination bits it would resolve for `buf`.
     *  Returns false when no channel wants the category (nothing would
     *  be emitted). Used to fill trace slots reserved for events whose
     *  content is only known at an epoch barrier (the deferred
     *  shared-L2 replies; see obs::TraceBuffer::reserveSlot). */
    static bool makeEvent(const obs::TraceBuffer *buf, TraceCat cat,
                          Cycle cycle, SmId sm, obs::TraceEvent &ev,
                          std::uint8_t &dest, const char *fmt, ...)
        __attribute__((format(printf, 7, 8)));

  private:
    static void vlog(obs::TraceBuffer *buf, TraceCat cat, Cycle cycle,
                     SmId sm, const char *fmt, va_list ap);
    static bool vmake(const obs::TraceBuffer *buf, TraceCat cat,
                      Cycle cycle, SmId sm, obs::TraceEvent &ev,
                      std::uint8_t &dest, const char *fmt, va_list ap);

    static unsigned mask;
};

/** Trace-point macro: evaluates arguments only when the category is on. */
#define PILOTRF_TRACE(cat, cycle, sm, ...)                                 \
    do {                                                                   \
        if (pilotrf::sim::Trace::enabled(cat))                             \
            pilotrf::sim::Trace::log(cat, cycle, sm, __VA_ARGS__);         \
    } while (0)

/** Trace point routed through a per-SM trace buffer (may be null). */
#define PILOTRF_TRACE_AT(bufp, cat, cycle, sm, ...)                        \
    do {                                                                   \
        pilotrf::obs::TraceBuffer *_pilotrf_b = (bufp);                    \
        if (pilotrf::sim::Trace::enabled(cat) ||                           \
            (_pilotrf_b && _pilotrf_b->localTextEnabled(unsigned(cat))))   \
            pilotrf::sim::Trace::logTo(_pilotrf_b, cat, cycle, sm,         \
                                       __VA_ARGS__);                       \
    } while (0)

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_TRACE_HH
