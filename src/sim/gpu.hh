/**
 * @file
 * Whole-GPU model: the SM array, the CTA dispenser, kernel sequencing and
 * result collection.
 */

#ifndef PILOTRF_SIM_GPU_HH
#define PILOTRF_SIM_GPU_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/sm.hh"

namespace pilotrf::sim
{

/** Results for one kernel of a run. */
struct KernelResult
{
    std::string name;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Dynamic access counts per architected register, summed over SMs. */
    std::vector<std::uint64_t> regAccess;
    StatSet rfStats;  ///< RF backend stats (access.* etc.), kernel delta
    StatSet simStats; ///< SM pipeline stats, kernel delta
    /** Last pilot retirement across SMs, relative to kernel start. */
    double pilotFinishCycle = -1.0;
    /** Pilot-identified hot set, merged across SMs by rank (see
     *  Gpu::run): first-seen rank order, truncated to the largest
     *  per-SM set so multi-SM consensus never inflates the set. */
    std::vector<RegId> pilotHot;
    std::vector<RegId> staticHot; ///< compiler-identified registers

    /** Fraction of all accesses going to the given register set. */
    double accessFraction(const std::vector<RegId> &regs) const;

    /** Fraction of accesses to the top-n dynamically accessed registers. */
    double topNFraction(unsigned n) const;

    /** The actual top-n registers by dynamic access count. */
    std::vector<RegId> topRegisters(unsigned n) const;
};

/** Results of running a whole workload (one or more kernels). */
struct RunResult
{
    std::uint64_t totalCycles = 0;
    std::uint64_t totalInstructions = 0;
    std::vector<KernelResult> kernels;
    StatSet rfStats;  ///< whole-run merged backend stats
    StatSet simStats; ///< whole-run merged SM stats

    /** Total RF accesses (reads + writes). */
    double rfAccesses() const;
};

/**
 * The GPU: cfg-sized SM array sharing a CTA dispenser.
 */
class Gpu
{
  public:
    explicit Gpu(const SimConfig &cfg);
    ~Gpu();

    /** Execute the kernels in order (one workload) and collect results. */
    RunResult run(const std::vector<isa::Kernel> &kernels);
    RunResult run(const isa::Kernel &kernel);

    Sm &sm(unsigned i) { return *sms.at(i); }
    unsigned numSms() const { return unsigned(sms.size()); }
    const SimConfig &config() const { return cfg; }

    /**
     * This GPU's private trace hub: sinks attached here receive only this
     * GPU's events, so concurrent experiment jobs can stream to per-job
     * files. The first call wires the hub into every SM and RF backend;
     * an untouched hub costs nothing on the simulated path.
     */
    obs::TraceHub &traceHub();

    /** Delta-sample every SM's pipeline + RF counters (and an active-warp
     *  gauge) every `periodCycles` cycles. Call before run(). */
    void enableTimeSeries(unsigned periodCycles,
                          std::size_t capacity = std::size_t(1) << 14);
    bool timeSeriesEnabled() const;

    /** Write the collected per-SM time series as one JSON document
     *  ({"sms": [...]}); call after run(). */
    void writeTimeSeries(std::ostream &os) const;

    /** Cycles the event-horizon fast-forward elided so far, summed over
     *  SMs (telemetry only; zero when enableCycleSkip is off). */
    std::uint64_t fastForwardedCycles() const;

    /** Global-clock cycles the fast-forward jumped over so far: each
     *  skip advances `now` by horizon - now and adds that span here, so
     *  skippedCycles() / cyclesElapsed() is the fraction of simulated
     *  time that was never single-stepped (telemetry only). */
    std::uint64_t skippedCycles() const { return skippedGlobal; }

    /** Total simulated GPU cycles so far (the global clock). */
    Cycle cyclesElapsed() const { return now; }

  private:
    class Dispenser : public CtaSource
    {
      public:
        void reset(unsigned total);
        bool next(CtaId &id) override;
        bool exhausted() const override;

      private:
        CtaId nextId = 0;
        unsigned totalCtas = 0;
    };

    StatSet mergedRfStats() const;
    StatSet mergedSimStats() const;
    std::vector<std::uint64_t> mergedRegAccess() const;

    SimConfig cfg;
    Dispenser dispenser;
    std::unique_ptr<Cache> l2; ///< GPU-wide shared L2 (optional)
    std::vector<std::unique_ptr<Sm>> sms;
    Cycle now = 0;
    std::uint64_t skippedGlobal = 0; ///< see skippedCycles()
    obs::TraceHub hub;        ///< per-GPU sink fan-out (see traceHub())
    bool hubAttached = false; ///< hub wired into the SMs yet?
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_GPU_HH
