/**
 * @file
 * Whole-GPU model: the SM array, the CTA dispenser, kernel sequencing and
 * result collection.
 */

#ifndef PILOTRF_SIM_GPU_HH
#define PILOTRF_SIM_GPU_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/sm.hh"
#include "sim/worker_pool.hh"
#include "sim/workload.hh"

namespace pilotrf::sim
{

/** Results for one kernel of a run. */
struct KernelResult
{
    std::string name;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Dynamic access counts per architected register, summed over SMs. */
    std::vector<std::uint64_t> regAccess;
    StatSet rfStats;  ///< RF backend stats (access.* etc.), kernel delta
    StatSet simStats; ///< SM pipeline stats, kernel delta
    /** Last pilot retirement across SMs, relative to kernel start. */
    double pilotFinishCycle = -1.0;
    /** Pilot-identified hot set, merged across SMs by rank (see
     *  Gpu::run): first-seen rank order, truncated to the largest
     *  per-SM set so multi-SM consensus never inflates the set. */
    std::vector<RegId> pilotHot;
    std::vector<RegId> staticHot; ///< compiler-identified registers

    /** Fraction of all accesses going to the given register set. */
    double accessFraction(const std::vector<RegId> &regs) const;

    /** Fraction of accesses to the top-n dynamically accessed registers. */
    double topNFraction(unsigned n) const;

    /** The actual top-n registers by dynamic access count. */
    std::vector<RegId> topRegisters(unsigned n) const;
};

/** Results of running a whole workload (one or more kernels). */
struct RunResult
{
    std::string label; ///< the workload view's label
    std::uint64_t totalCycles = 0;
    std::uint64_t totalInstructions = 0;
    std::vector<KernelResult> kernels;
    StatSet rfStats;  ///< whole-run merged backend stats
    StatSet simStats; ///< whole-run merged SM stats

    /** Total RF accesses (reads + writes). */
    double rfAccesses() const;
};

/**
 * Construction-time Gpu setup: the observability taps and the worker
 * pool size, fixed before the first cycle so nothing can rewire an SM
 * mid-run (required for sharding safety).
 */
struct GpuOptions
{
    /** Delta-sample every SM's pipeline + RF counters (and an
     *  active-warp gauge) every this many cycles; 0 disables. */
    unsigned timeSeriesPeriod = 0;
    std::size_t timeSeriesCapacity = std::size_t(1) << 14;

    /** Wire the GPU's private trace hub into every SM and RF backend so
     *  sinks attached via traceHub() receive this GPU's events. Works
     *  under either engine: the sharded engine buffers per-SM and
     *  merge-replays at epoch barriers, so sinks see the serial
     *  emission order byte-for-byte at any worker count. */
    bool enableTraceHub = false;

    /** Worker threads for sharded stepping; 0 inherits
     *  SimConfig::numWorkers. Clamped to the SM count. */
    unsigned numWorkers = 0;

    /** Shard scheduling override for the sharded engine; nullopt
     *  inherits SimConfig::shardSchedule. Observationally invisible
     *  (see the config knob) — a wall-clock knob like numWorkers. */
    std::optional<ShardSchedule> shardSchedule = std::nullopt;
};

/**
 * Wall-clock telemetry for one worker slot of the sharded engine
 * (telemetry only — never feeds back into scheduling inputs that could
 * perturb simulation results, which stay byte-identical). "Steal"
 * counts work on SMs the static i % workers assignment would have
 * given a different slot, so a static-schedule run always shows zero.
 */
struct WorkerTelemetry
{
    std::uint64_t busyNs = 0;  ///< wall ns inside Sm::step calls
    std::uint64_t idleNs = 0;  ///< ns idle while the epoch round's
                               ///< straggler was still stepping
    std::uint64_t stealNs = 0; ///< busy ns spent on stolen SMs
    std::uint64_t smsStepped = 0; ///< step calls executed by this slot
    std::uint64_t smsStolen = 0;  ///< subset on stolen SMs
};

/** Run-wide scheduling telemetry of the sharded engine (empty under
 *  lockstep). The straggler ratio of an epoch is max/mean per-worker
 *  busy time over the epoch's full stepping round — 1.0 is a perfectly
 *  balanced epoch; W (the worker count) means one worker did all the
 *  work while the rest idled at the barrier. */
struct SchedTelemetry
{
    std::vector<WorkerTelemetry> workers; ///< one entry per worker slot
    std::uint64_t epochs = 0;      ///< epoch rounds measured
    double stragglerRatioSum = 0;  ///< sum of per-epoch ratios
    double maxStragglerRatio = 0;  ///< worst epoch seen

    /** Mean per-epoch straggler ratio; 0 when nothing was measured. */
    double meanStragglerRatio() const
    {
        return epochs ? stragglerRatioSum / double(epochs) : 0.0;
    }
};

/** Which stepping engine Gpu::run() drives (see engineUsed()). */
enum class Engine : std::uint8_t
{
    Lockstep, ///< serial cycle-major loop (seed-exact)
    Sharded,  ///< SM shards on a worker pool with epoch barriers
};

const char *toString(Engine e);

/**
 * The GPU: cfg-sized SM array sharing a CTA dispenser and (optionally)
 * a shared L2 + DRAM memory system.
 *
 * Kernels execute as epochs (see sim/epoch.hh). With one effective
 * worker the engine runs *lockstep*: one-cycle epochs, SMs stepped in
 * smId order, a global all-idle event-horizon skip; this is exactly the
 * seed's serial loop. With multiple workers it runs *sharded*: the SM
 * array is distributed over a persistent worker pool — statically
 * (SM i -> worker i % workers) or, by default, dynamically, with each
 * round's runnable SMs sorted longest-first by their previous-epoch
 * stepping time and claimed by workers from a shared ticket queue
 * (SimConfig::shardSchedule) — each SM fast-forwards its own dead spans
 * locally, and CTA launches are resolved at deterministic barriers in
 * global (cycle, smId) order.
 * Observers ride along under either engine — trace events buffer per SM
 * and merge-replay into the sinks at epoch barriers in serial order,
 * and the time-series sampler is shard-local — so merged statistics,
 * trace bytes and time-series output are byte-identical to lockstep for
 * any worker count. The shared L2 shards too: its hit/miss stream
 * depends on the cycle-interleaved cross-SM access order, so SMs record
 * requests into per-SM FIFOs while shards step and the barrier replays
 * them against the single MemSystem in (cycle, smId) order, with epochs
 * bounded to the minimum L2 response latency so every reply lands at or
 * after the barrier that computes it (docs/performance.md). The engine
 * choice is fixed at construction (engineUsed()) and logged once per
 * run() when workers were requested, so a forced downgrade is never
 * silent.
 */
class Gpu
{
  public:
    explicit Gpu(const SimConfig &cfg, const GpuOptions &opts = {});
    ~Gpu();

    /** Execute the workload's kernels in order and collect results. */
    RunResult run(const Workload &workload);

    /** Read-only per-SM inspection (stats, counters, time series). No
     *  mutable SM access exists: a caller mutating an SM mid-run would
     *  break both golden parity and shard safety. */
    const Sm &smStats(unsigned i) const { return *sms.at(i); }
    unsigned numSms() const { return unsigned(sms.size()); }
    const SimConfig &config() const { return cfg; }
    const GpuOptions &options() const { return opts; }

    /**
     * This GPU's private trace hub: sinks attached here receive only
     * this GPU's events, so concurrent experiment jobs can stream to
     * per-job files. Requires GpuOptions::enableTraceHub — the hub is
     * wired into the SMs at construction, never mid-run.
     */
    obs::TraceHub &traceHub();

    /** The stepping engine run() drives, decided at construction:
     *  Sharded iff more than one effective worker. No feature forces a
     *  downgrade — observability and the shared L2 both ride the
     *  sharded engine (buffered, barrier-merged). */
    Engine engineUsed() const { return engine; }

    /** Resolved worker count run() uses: the options override, else the
     *  config knob, clamped to [1, numSms]. Provenance for reports. */
    unsigned workersUsed() const { return effectiveWorkers(); }

    /** Resolved shard schedule: the options override, else the config
     *  knob. Provenance for reports (moot under lockstep). */
    ShardSchedule scheduleUsed() const { return effectiveSchedule(); }

    /** Per-worker busy/steal/idle counters and per-epoch straggler
     *  ratios accumulated by the sharded engine across run() calls;
     *  empty workers vector under the lockstep engine. Wall-clock
     *  telemetry only — results are independent of it. */
    const SchedTelemetry &schedTelemetry() const { return sched; }

    bool timeSeriesEnabled() const;

    /** Write the collected per-SM time series as one JSON document
     *  ({"sms": [...]}); call after run(). */
    void writeTimeSeries(std::ostream &os) const;

    /** Cycles the event-horizon fast-forward elided so far, summed over
     *  SMs (telemetry only; zero when enableCycleSkip is off). */
    std::uint64_t fastForwardedCycles() const;

    /** Global-clock cycles the fast-forward jumped over so far: each
     *  skip advances `now` by horizon - now and adds that span here, so
     *  skippedCycles() / cyclesElapsed() is the fraction of simulated
     *  time that was never single-stepped (telemetry only). */
    std::uint64_t skippedCycles() const { return skippedGlobal; }

    /** Total simulated GPU cycles so far (the global clock). */
    Cycle cyclesElapsed() const { return now; }

  private:
    class Dispenser : public CtaSource
    {
      public:
        void reset(unsigned total);
        bool next(CtaId &id) override;
        bool exhausted() const override;

      private:
        CtaId nextId = 0;
        unsigned totalCtas = 0;
    };

    StatSet mergedRfStats() const;
    StatSet mergedSimStats() const;
    std::vector<std::uint64_t> mergedRegAccess() const;

    /** Resolved worker count: the options override, else the config
     *  knob, clamped to [1, numSms]. */
    unsigned effectiveWorkers() const;

    /** Resolved shard schedule: the options override, else the config
     *  knob. */
    ShardSchedule effectiveSchedule() const;

    /** Run one kernel to completion; returns the kernel's end cycle
     *  (the first cycle with every SM finished). */
    Cycle runKernelLockstep(const isa::Kernel &kernel, Cycle kernelStart);
    Cycle runKernelSharded(const isa::Kernel &kernel, Cycle kernelStart);

    /** Replay every SM's deferred shared-L2 requests with cycle < bound
     *  against the MemSystem in ascending (request cycle, smId) order —
     *  the exact order the lockstep engine's inline accesses interleave
     *  in. Called only with all shards parked at the pool barrier: the
     *  round loop passes the global minimum stop cycle (all FIFOs are
     *  complete below it), and the epoch barrier drains exhaustively
     *  with the default bound. */
    void replayDeferredL2(Cycle bound = kNeverCycle);

    SimConfig cfg;
    GpuOptions opts;
    Dispenser dispenser;
    std::unique_ptr<MemSystem> memSys; ///< shared L2 + DRAM (optional)
    std::vector<std::unique_ptr<Sm>> sms;
    std::unique_ptr<WorkerPool> pool; ///< lazy; sharded runs only
    Cycle now = 0;
    std::uint64_t skippedGlobal = 0; ///< see skippedCycles()
    SchedTelemetry sched;            ///< see schedTelemetry()
    obs::TraceHub hub;        ///< per-GPU sink fan-out (see traceHub())
    bool hubAttached = false; ///< hub wired into the SMs (ctor-time)
    Engine engine = Engine::Lockstep; ///< fixed at construction
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_GPU_HH
