/**
 * @file
 * Warp schedulers: greedy-then-oldest (GTO), loose round-robin (LRR), and
 * the two-level (TL) active/pending-pool scheduler of Gebhart et al. used
 * by the RFC design. The two-level scheduler reports pool transitions so
 * the RFC backend can flush entries of demoted warps.
 */

#ifndef PILOTRF_SIM_SCHEDULER_HH
#define PILOTRF_SIM_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/sim_config.hh"

namespace pilotrf::sim
{

class Scheduler
{
  public:
    /** Callback fired on two-level pool transitions: (warp, nowActive). */
    using ActiveChangeFn = std::function<void(WarpId, bool)>;

    Scheduler(const SimConfig &cfg, ActiveChangeFn onActiveChange);

    /** Reset all state at kernel boundaries. */
    void reset();

    // Lifecycle notifications from the SM.
    void onWarpLaunched(WarpId w, std::uint64_t age);
    void onWarpFinished(WarpId w);
    /** Warp hit a long-latency instruction or barrier: TL demotes it. */
    void onWarpBlocked(WarpId w, bool requeue);
    /** A blocked (barrier) warp became runnable again. */
    void onWarpWakeup(WarpId w);
    /** Record an issue (updates GTO greedy / LRR pointer / TL rotation). */
    void noteIssue(unsigned sched, WarpId w);

    /** TL: only warps in the active pool may issue. */
    bool eligible(WarpId w) const;

    /**
     * Candidate warps of scheduler @p sched in priority order. Only warp
     * slots assigned to the scheduler (w % schedulers == sched) appear;
     * readiness is the SM's business.
     */
    void candidates(unsigned sched, std::vector<WarpId> &out) const;

    SchedulerPolicy policy() const { return cfg.policy; }

  private:
    bool inActive(WarpId w) const;
    void fillActive();
    void removeFrom(std::vector<WarpId> &v, WarpId w);

    const SimConfig &cfg;
    ActiveChangeFn onActiveChange;

    std::vector<std::uint64_t> ages;      // per warp slot
    std::vector<bool> live;               // warp slot occupied & running
    std::vector<WarpId> greedy;           // per scheduler (GTO)
    std::vector<WarpId> rrPtr;            // per scheduler (LRR)
    std::vector<WarpId> active;           // TL active pool (rotation order)
    std::deque<WarpId> pending;           // TL pending queue
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SCHEDULER_HH
