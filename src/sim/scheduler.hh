/**
 * @file
 * Warp schedulers: greedy-then-oldest (GTO), loose round-robin (LRR), and
 * the two-level (TL) active/pending-pool scheduler of Gebhart et al. used
 * by the RFC design. The two-level scheduler reports pool transitions so
 * the RFC backend can flush entries of demoted warps.
 *
 * Membership questions are answered from per-warp side arrays instead of
 * linear scans: `posInActive` gives a warp's slot in the TL active pool
 * (or -1), pending-queue entries carry a per-warp generation tag so a
 * finished warp's queued entry is dropped lazily on pop instead of erased
 * with an O(n) scan, and GTO keeps a per-scheduler age-ordered live list
 * (launch order *is* age order) so candidates() never sorts.
 */

#ifndef PILOTRF_SIM_SCHEDULER_HH
#define PILOTRF_SIM_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/sim_config.hh"

namespace pilotrf::sim
{

class Scheduler
{
  public:
    /** Callback fired on two-level pool transitions: (warp, nowActive). */
    using ActiveChangeFn = std::function<void(WarpId, bool)>;

    Scheduler(const SimConfig &cfg, ActiveChangeFn onActiveChange);

    /** Reset all state at kernel boundaries. */
    void reset();

    // Lifecycle notifications from the SM.
    void onWarpLaunched(WarpId w, std::uint64_t age);
    void onWarpFinished(WarpId w);
    /** Warp hit a long-latency instruction or barrier: TL demotes it. */
    void onWarpBlocked(WarpId w, bool requeue);
    /** A blocked (barrier) warp became runnable again. */
    void onWarpWakeup(WarpId w);
    /** Record an issue (updates GTO greedy / LRR pointer / TL rotation). */
    void noteIssue(unsigned sched, WarpId w);

    /** TL: only warps in the active pool may issue. */
    bool eligible(WarpId w) const;

    /**
     * Candidate warps of scheduler @p sched in priority order. Only warp
     * slots assigned to the scheduler (w % schedulers == sched) appear;
     * readiness is the SM's business.
     */
    void candidates(unsigned sched, std::vector<WarpId> &out) const;

    SchedulerPolicy policy() const { return cfg.policy; }

  private:
    /** A TL pending entry; stale once the warp's generation moves on. */
    struct PendingEntry
    {
        WarpId warp;
        std::uint64_t gen;
    };

    bool inActive(WarpId w) const { return posInActive[w] >= 0; }
    void fillActive();
    void removeActive(WarpId w);
    void pushPending(WarpId w);
    void removeGto(WarpId w);

    const SimConfig &cfg;
    ActiveChangeFn onActiveChange;

    std::vector<std::uint64_t> ages; // per warp slot
    std::vector<bool> live;          // warp slot occupied & running
    std::vector<WarpId> greedy;      // per scheduler (GTO)
    std::vector<WarpId> rrPtr;       // per scheduler (LRR)

    // TL pools. `active` keeps rotation order; a warp's position in it is
    // mirrored in posInActive (-1 when absent). Finished warps leave
    // `pending` lazily: onWarpFinished bumps the warp's generation, and
    // fillActive() drops entries whose tag no longer matches.
    std::vector<WarpId> active;        // TL active pool (rotation order)
    std::deque<PendingEntry> pending;  // TL pending queue
    std::vector<std::int32_t> posInActive; // per warp; -1 = not active
    std::vector<std::uint64_t> pendingGen; // per warp generation
    std::vector<bool> inPending;           // has a live pending entry

    // GTO: per-scheduler live warps in launch order. Ages are handed out
    // from a monotonic counter, so launch order is exactly oldest-first.
    std::vector<std::vector<WarpId>> gtoList; // per scheduler
    std::vector<std::int32_t> gtoPos;         // per warp; -1 = absent

    // LRR: the static warp-slot list of each scheduler, precomputed once
    // per kernel so candidates() does no slot arithmetic loop setup.
    std::vector<std::vector<WarpId>> lrrSlots; // per scheduler
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SCHEDULER_HH
