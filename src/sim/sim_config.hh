/**
 * @file
 * Simulation configuration: the Kepler GTX-780-class SM of Table II.
 */

#ifndef PILOTRF_SIM_SIM_CONFIG_HH
#define PILOTRF_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "regfile/drowsy_rf.hh"
#include "regfile/partitioned_rf.hh"
#include "regfile/rfc.hh"

namespace pilotrf
{
struct JsonValue;
}

namespace pilotrf::sim
{

/** Warp scheduling policy. */
enum class SchedulerPolicy
{
    Gto,      ///< greedy-then-oldest
    Lrr,      ///< loose round-robin (the "fetch group" style scheduler)
    TwoLevel, ///< two-level active/pending pools (Gebhart et al.)
};

const char *toString(SchedulerPolicy p);

/** Number of SchedulerPolicy enumerators (bounds the parse scan). */
inline constexpr unsigned numSchedulerPolicies = 3;

/** Inverse of toString(); nullopt for unknown names. */
std::optional<SchedulerPolicy> parseSchedulerPolicy(std::string_view name);

/**
 * How the sharded engine assigns SMs to worker threads between epoch
 * barriers. Pure mechanism: results are byte-identical either way — an
 * SM is stepped by exactly one worker per round regardless of which
 * worker claims it, and every cross-SM interaction resolves in serial
 * (cycle, smId) order at the barrier.
 */
enum class ShardSchedule
{
    Static,  ///< fixed SM i -> worker i % workers assignment
    Dynamic, ///< per-round ticket-queue claiming, LPT-sorted by cost
};

const char *toString(ShardSchedule s);

/** Number of ShardSchedule enumerators (bounds the parse scan). */
inline constexpr unsigned numShardSchedules = 2;

/** Inverse of toString(); nullopt for unknown names. */
std::optional<ShardSchedule> parseShardSchedule(std::string_view name);

/** Register-file organization under test. */
enum class RfKind
{
    MrfStv,      ///< power-aggressive baseline: monolithic RF at STV
    MrfNtv,      ///< monolithic RF always at NTV
    Partitioned, ///< the proposed FRF+SRF design
    Rfc,         ///< hierarchical register-file cache baseline
    Drowsy,      ///< drowsy (data-retentive) RF baseline (related work)
};

const char *toString(RfKind k);

/** Number of RfKind enumerators (bounds the parse scan). */
inline constexpr unsigned numRfKinds = 5;

/** Inverse of toString(); nullopt for unknown names. */
std::optional<RfKind> parseRfKind(std::string_view name);

struct SimConfig
{
    // GPU architecture (Table II).
    unsigned numSms = 15;
    unsigned warpsPerSm = 64;
    unsigned schedulers = 4;
    unsigned issuePerScheduler = 2;
    unsigned rfBanks = 24;
    unsigned collectors = 24;
    unsigned maxCtasPerSm = 16;
    unsigned threadRegsPerSm = 65536; ///< 256 KB / 4 B

    // Scheduling.
    SchedulerPolicy policy = SchedulerPolicy::Gto;
    unsigned tlActiveWarps = 8; ///< two-level active pool size per SM

    // Execution pipelines.
    unsigned spLatency = 10;
    unsigned sfuLatency = 20;
    unsigned spWidth = 6;  ///< SP dispatches per cycle (6 SIMT clusters)
    unsigned sfuWidth = 2;
    unsigned memWidth = 1;
    unsigned maxInflightPerWarp = 2;
    /** Results forward from the write queue (dependents unblock one cycle
     *  after the write is accepted). Off: dependents wait the full array
     *  write latency — the ablation the bench quantifies. */
    bool writeForwarding = true;

    // Memory system.
    unsigned sharedLatency = 24;
    unsigned globalLatency = 230;
    unsigned maxOutstandingMem = 48;
    /** Optional per-SM L1 data cache for global accesses (off by default
     *  to keep the paper's fixed-latency memory model). */
    bool l1Enable = false;
    unsigned l1SizeKb = 16;
    unsigned l1Assoc = 4;
    unsigned l1HitLatency = 28;
    /** Optional GPU-wide shared L2 behind the L1s (requires l1Enable). */
    bool l2Enable = false;
    unsigned l2SizeKb = 1024;
    unsigned l2Assoc = 8;
    unsigned l2HitLatency = 120;
    /** Optional DRAM stage behind the shared L2 (requires l2Enable): an
     *  L2-missed line pays dramLatency on top of the L2 lookup plus
     *  queueing at its address-interleaved memory partition (each
     *  service holds the partition for dramServiceCycles), replacing
     *  the flat globalLatency miss model. Topology follows the
     *  GPGPU-Sim QuadroFX5600 blueprint: 6 memory partitions. */
    bool dramEnable = false;
    unsigned dramLatency = 110;     ///< fixed round trip beyond the L2
    unsigned dramPartitions = 6;    ///< address-interleaved partitions
    unsigned dramServiceCycles = 8; ///< per-partition service interval

    // Register file under test.
    RfKind rfKind = RfKind::Partitioned;
    regfile::PartitionedRfConfig prf;
    regfile::RfcRfConfig rfc;
    regfile::DrowsyRfConfig drowsy;
    unsigned mrfLatencyOverride = 0; ///< force MRF latency (0: model)

    /** Event-horizon fast-forwarding: when a cycle passes with no
     *  architectural activity on any SM, jump the clock straight to the
     *  earliest cycle at which anything can change (memory completions,
     *  writeback clears, operand latches, bank frees, epoch boundaries,
     *  sampler ticks), crediting all cycle-proportional counters for the
     *  skipped span. Architecturally invisible: merged statistics are
     *  byte-identical with the knob on or off (docs/performance.md). */
    bool enableCycleSkip = true;

    /** Worker threads for sharded SM stepping (1: the serial lockstep
     *  engine). Clamped to numSms. Results are byte-identical for any
     *  value — shards synchronize at deterministic epoch barriers where
     *  CTA launches, buffered trace events and deferred shared-L2
     *  requests all resolve in the serial (cycle, smId) order. */
    unsigned numWorkers = 1;

    /** Shard scheduling for the sharded engine (numWorkers > 1):
     *  `Dynamic` (the default) lets each worker claim SMs from a shared
     *  ticket queue sorted longest-processing-time-first by the SM's
     *  previous-epoch activity, so one slow shard no longer idles every
     *  other worker; `Static` keeps the fixed i % workers assignment.
     *  Observationally invisible either way (byte-identical stats,
     *  goldens and trace streams) — a wall-clock knob like numWorkers. */
    ShardSchedule shardSchedule = ShardSchedule::Dynamic;

    // Watchdog: abort runaway simulations.
    std::uint64_t maxCycles = 100'000'000;

    /** Concurrent CTAs an SM can host for the given kernel geometry. */
    unsigned ctasPerSm(unsigned regsPerThread, unsigned threadsPerCta,
                       unsigned warpsPerCta) const;

    /** Short human-readable description for bench output. */
    std::string describe() const;

    /**
     * Write the full configuration as a JSON object, fields in
     * declaration order, enums as their toString() names, the nested
     * prf/rfc/drowsy configs as nested objects. `depth` is the starting
     * indentation level (2 spaces per level).
     */
    void toJson(std::ostream &os, unsigned depth = 0) const;

    /** toJson() as a string (the --dump-config document). */
    std::string jsonText() const;

    /**
     * Build a SimConfig from a parsed JSON object. Starts from the
     * defaults, so a partial document overrides only what it names.
     * Throws std::runtime_error on an unknown key, a mistyped value or an
     * unknown enum name — a config file typo must never silently fall
     * back to a default.
     */
    static SimConfig fromJson(const JsonValue &v);

    /** Parse `text` and delegate to fromJson(). Throws std::runtime_error
     *  on malformed JSON. */
    static SimConfig fromJsonText(std::string_view text);
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SIM_CONFIG_HH
