/**
 * @file
 * Cycle-level streaming multiprocessor model.
 *
 * Per cycle: writeback completions clear the scoreboard; finished
 * executions enter writeback; ready operands latch; full collectors
 * dispatch to the SP/SFU/MEM pipelines; the bank arbiter grants one
 * request per register bank (writeback over reads); the schedulers issue
 * up to issuePerScheduler instructions each from their warps; the RF
 * backend sees every access and the per-cycle issue count (adaptive FRF).
 */

#ifndef PILOTRF_SIM_SM_HH
#define PILOTRF_SIM_SM_HH

#include <memory>
#include <queue>
#include <vector>

#include "common/counters.hh"
#include "common/stats.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "regfile/register_file.hh"
#include "sim/epoch.hh"
#include "sim/scheduler.hh"
#include "sim/sim_config.hh"
#include "sim/cache.hh"
#include "sim/slot_set.hh"
#include "sim/warp_context.hh"

namespace pilotrf::sim
{

/** Source of CTA ids for the current kernel (the GPU's dispenser). */
class CtaSource
{
  public:
    virtual ~CtaSource() = default;
    /** Take the next CTA id; false when the grid is exhausted. */
    virtual bool next(CtaId &id) = 0;
    virtual bool exhausted() const = 0;
};

class Sm
{
  public:
    Sm(const SimConfig &cfg, SmId id,
       std::unique_ptr<regfile::RegisterFile> rf);

    /**
     * Begin executing a kernel at `startCycle` (resets warp, scheduler
     * and collector state, sets the local clock) and launch the initial
     * CTA load from `ctas`. Serial: the orchestrator starts SMs in smId
     * order, so the initial grid drain keeps the seed's order.
     */
    void startKernel(const isa::Kernel *kernel, Cycle startCycle,
                     CtaSource &ctas);

    /**
     * Advance the local clock toward ctx.epochEnd, one stage-pipeline
     * cycle at a time (fast-forwarding dead spans against the local
     * event horizon when ctx.allowLocalSkip permits). Touches nothing
     * outside this SM, so disjoint SMs may step concurrently.
     *
     * Returns when the epoch ends, the kernel is finished on this SM,
     * or a CTA-dispenser interaction is required (StepStop::NeedsCta):
     * either this SM is idle and must consult grid exhaustion before
     * the cycle runs, or the cycle's stages completed and a launch
     * attempt is due. The orchestrator answers with resolveLaunch();
     * until then the SM must not be stepped again.
     */
    StepResult step(const EpochContext &ctx);

    /**
     * Resolve a NeedsCta pause against the (shared) dispenser and finish
     * the paused cycle, advancing the local clock past it. Called by the
     * orchestrator only, in global (cycle, smId) order — that ordering
     * is what makes the shared grid drain byte-identical to the seed's
     * serial cycle-major loop. Returns the activity completed (the
     * paused cycle's stages and/or CTA launches).
     */
    unsigned resolveLaunch(CtaSource &ctas);

    /** Kernel complete on this SM: idle with the grid known exhausted.
     *  Such an SM would never be stepped again by the serial loop. */
    bool finishedKernel() const { return idle() && sawExhausted; }

    /** The SM's local clock: the next cycle step() would simulate. */
    Cycle localCycle() const { return clk; }

    /** No running warps and no in-flight work. */
    bool idle() const;

    /**
     * Event horizon: the earliest cycle >= now at which this SM's state
     * can change. Returns `now` whenever any warp could issue or any
     * pending operand/writeback could be granted a bank immediately;
     * otherwise the min over in-flight completion times, pending
     * writeback clears, bank-free times, the RF backend's own horizon
     * (epoch boundaries under structured tracing) and the next
     * time-series sample point. kNeverCycle when nothing is pending (a
     * deadlocked or idle SM). Monotonic: across cycles with no activity
     * the horizon never moves backwards.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Fast-forward over the dead cycles [from, to): credit every
     * cycle-proportional counter (issue slots, active cycles, the RF
     * backend's leakage/epoch accounting, sampler tick counts) exactly as
     * if each cycle had been single-stepped with zero activity, and move
     * the local clock to `to`. Only legal when nextEventCycle(from) >=
     * to; `from` must be the current local clock.
     */
    void skipCycles(Cycle from, Cycle to);

    /** Cycles elided by skipCycles() so far (whole-run telemetry; not a
     *  stat counter, so golden stat sets stay byte-identical). */
    std::uint64_t fastForwardedCycles() const { return ffCycles; }

    /** Attach the GPU-wide shared memory system (may be null). */
    void setMemSystem(MemSystem *ms);

    /**
     * Switch the shared-L2 access mode. Immediate (default; the
     * lockstep engine): every L1-missed request calls the shared
     * MemSystem inline, in the serial cycle-major order. Deferred (the
     * sharded engine): requests are recorded into a per-SM FIFO with a
     * kNeverCycle placeholder in the exec list, and the orchestrator
     * replays them against the MemSystem between worker rounds and at
     * each epoch barrier in (cycle, smId) order via replayL2Front().
     * Deferral is invisible because step() never simulates past the
     * oldest unreplayed request plus EpochContext::memLookahead
     * (MemSystem::minResponseLatency() + 1 cycles), so every reply
     * lands at or after the pause that lets the orchestrator compute
     * it. Turning deferral off requires an empty queue (all requests
     * replayed).
     */
    void setL2Deferred(bool on);

    /** Dispatch cycle of the oldest unreplayed deferred L2 request;
     *  kNeverCycle when none. Read by step() for its NeedsMem bound and
     *  by the orchestrator with all shards parked. */
    Cycle deferredL2FrontCycle() const
    {
        return l2QHead < l2Q.size() ? l2Q[l2QHead].cycle : kNeverCycle;
    }

    /**
     * First cycle at which the oldest unreplayed request's reply could
     * become visible; kNeverCycle when the FIFO is empty. The replay
     * computes `finishAt = start + latency + nLines` with
     * `latency >= minResponseLatency`, so the reply cannot matter
     * before `start + (memLookahead - 1) + nLines` — a strictly
     * tighter bound than dispatch cycle + memLookahead whenever the
     * memory port was backed up (start > cycle) or the request bursts
     * more than one line. step() pauses with NeedsMem on reaching it;
     * the orchestrator wakes the SM once the bound moves past its stop
     * cycle.
     */
    Cycle deferredL2Bound(Cycle memLookahead) const
    {
        if (l2QHead >= l2Q.size())
            return kNeverCycle;
        const L2Txn &t = l2Q[l2QHead];
        return t.start + (memLookahead - 1) + t.nLines;
    }

    /**
     * Replay the oldest deferred request against the shared MemSystem:
     * charge the L2 hit/miss counters (retro-credited into any time
     * series samples taken since the request cycle), patch the
     * placeholder exec entry's finishAt, and fill — or void — the trace
     * slot reserved at dispatch. Orchestrator-only, called across SMs
     * in ascending (deferredL2FrontCycle, smId) order.
     */
    void replayL2Front();

    regfile::RegisterFile &rf() { return *backend; }
    const regfile::RegisterFile &rf() const { return *backend; }

    /**
     * Reporting view of the pipeline statistics. Reading synchronizes
     * the typed counters into the StatSet — boundary use only (the Gpu
     * snapshots at kernel/run edges), never per cycle.
     */
    StatSet &stats()
    {
        ctrs.snapshotInto(_stats);
        return _stats;
    }
    const StatSet &stats() const
    {
        ctrs.snapshotInto(_stats);
        return _stats;
    }

    /** The typed counters behind stats(). */
    const CounterBlock &counters() const { return ctrs; }

    const SimConfig &config() const { return cfg; }

    /**
     * Attach a per-GPU trace hub (null detaches) as this SM's trace
     * buffer's local destination. The RF backend shares the buffer, so
     * swap/back-gate telemetry rides the same shard-safe emission path;
     * warp lifecycle Begin/End events are emitted by the SM itself.
     */
    void setTraceHub(obs::TraceHub *hub_) { traceBuf.setLocal(hub_); }

    /**
     * This SM's emission front end: the engine flips it between
     * immediate and buffered mode and drains it at epoch barriers
     * (obs::drainTraceBuffers). Mutable access is engine-only by
     * convention — the buffer carries no architectural state.
     */
    obs::TraceBuffer &traceBuffer() { return traceBuf; }
    const obs::TraceBuffer &traceBuffer() const { return traceBuf; }

    /**
     * Start delta-sampling this SM's pipeline and RF counters (plus an
     * active-warp gauge) every `periodCycles` cycles into a ring of
     * `capacity` samples. Call before the first cycle.
     */
    void enableTimeSeries(unsigned periodCycles, std::size_t capacity);

    /** The sampler, or null when time series are disabled. */
    obs::TimeSeriesSampler *timeSeries() { return sampler.get(); }
    const obs::TimeSeriesSampler *timeSeries() const
    {
        return sampler.get();
    }

  private:
    // --- sub-structures ---------------------------------------------------
    enum class OpState : std::uint8_t { NeedBank, InFlight, Ready };

    struct Operand
    {
        RegId reg;
        OpState state;
        Cycle readyAt;
        std::uint16_t bank;
    };

    struct Collector
    {
        bool busy = false;
        WarpId warp = 0;
        const isa::Instruction *in = nullptr;
        std::array<Operand, 4> ops;
        std::uint8_t nOps = 0;
    };

    struct ExecEntry
    {
        Cycle finishAt;
        WarpId warp;
        const isa::Instruction *in;
        /** Nonzero: a deferred shared-L2 request whose finishAt is a
         *  kNeverCycle placeholder until the epoch-barrier replay
         *  patches it (the tag pairs the entry with its L2Txn record;
         *  indices don't survive the exec vector's swap-erase). */
        std::uint32_t memTag = 0;
    };

    struct WbTracker
    {
        WarpId warp;
        std::uint8_t left;
    };

    struct WbReq
    {
        std::uint32_t tracker;
        RegId reg;
        std::uint16_t bank;
    };

    struct PendingClear
    {
        Cycle at;
        std::uint32_t tracker;
        RegId reg;
    };

    /** Min-heap order for the pending-clear queue (earliest `at` on
     *  top). Same-cycle clears commute — they touch disjoint tracker
     *  entries and per-warp scoreboard bits that are only read after the
     *  whole batch drains — so heap pop order within a cycle is free. */
    struct ClearLater
    {
        bool operator()(const PendingClear &a, const PendingClear &b) const
        {
            return a.at > b.at;
        }
    };

    struct CtaSlot
    {
        bool valid = false;
        CtaId cta = 0;
        unsigned liveWarps = 0;
        unsigned barrierArrived = 0;
        std::vector<WarpId> warps;
    };

    // --- pipeline stages (each returns its activity count) -----------------
    unsigned processWritebackClears(Cycle now);
    unsigned processExecCompletions(Cycle now);
    unsigned latchReadyOperands(Cycle now);
    unsigned dispatchCollectors(Cycle now);
    unsigned arbitrateBanks(Cycle now);
    unsigned issueStage(Cycle now);
    unsigned tryLaunchCtas(CtaSource &ctas);

    /** All stages of one cycle except the trailing CTA-launch attempt
     *  (which needs the dispenser and so belongs to resolveLaunch). */
    unsigned cyclePreLaunch(Cycle now);

    /** Would tryLaunchCtas() take a CTA from the dispenser right now?
     *  Mirrors its gate exactly: a kernel is running, the grid was not
     *  yet observed exhausted, a CTA slot is free under the occupancy
     *  limit and enough warp slots are free for one CTA. */
    bool launchEligible() const;

    /** ++clk plus the watchdog check the serial loop did per advance. */
    void advanceClock();
    void checkWatchdog() const;

    bool warpReady(const WarpContext &w) const;
    bool issueOne(WarpId wid, Cycle now);
    void finishWarp(WarpId wid);
    void arriveBarrier(WarpId wid);
    std::uint32_t allocTracker(WarpId warp, std::uint8_t writes);
    void pushExec(const ExecEntry &e);

    // --- members ------------------------------------------------------------
    const SimConfig &cfg;
    SmId smId;
    std::unique_ptr<regfile::RegisterFile> backend;
    Scheduler scheduler;

    const isa::Kernel *kernel = nullptr;
    unsigned ctaLimit = 0;
    std::uint64_t launchCounter = 0;

    Cycle clk = 0;         ///< local clock: next cycle step() simulates
    Cycle kernelStart = 0; ///< for the per-SM watchdog bound
    /** A dispenser next() call came back empty: the grid is exhausted
     *  for good (it only drains within a kernel), so this SM never needs
     *  the dispenser again. The serial loop's per-(cycle, smId)
     *  exhausted() checks are reproduced by pausing while this is
     *  false. */
    bool sawExhausted = false;
    /** Paused mid-cycle (stages ran, the launch attempt is pending)
     *  rather than pre-cycle (idle, exhaustion check pending). */
    bool midCycle = false;

    std::vector<WarpContext> warps;
    std::vector<CtaSlot> ctaSlots;
    unsigned liveWarpCount = 0;

    std::vector<Collector> collectors;
    unsigned freeCollectors = 0;
    /** Busy-collector index set: iterated instead of scanning the whole
     *  collector array, with firstClear() as the allocation free list. */
    SlotSet busyCols;
    std::vector<std::size_t> colScratch; // snapshot of busy indices
    std::vector<ExecEntry> exec;
    /** Cached min over exec[].finishAt (kNeverCycle when empty): lets
     *  processExecCompletions() early-out and nextEventCycle() answer in
     *  O(1). The exec vector itself stays order-preserving swap-erase —
     *  completion order feeds writeback-queue order, which is the bank
     *  arbiter's priority order, so it is architecturally observable. */
    Cycle execNextDue = kNeverCycle;
    std::vector<WbTracker> trackers;
    std::vector<std::uint32_t> freeTrackers;
    std::vector<WbReq> wbQueue;
    std::priority_queue<PendingClear, std::vector<PendingClear>, ClearLater>
        clears;

    // bank occupancy: next cycle each register bank is free
    std::vector<Cycle> bankFree;

    // memory unit
    Cycle memNextFree = 0;
    unsigned outstandingMem = 0;
    std::unique_ptr<Cache> l1;    ///< optional L1 data cache (global)
    MemSystem *memSys = nullptr;  ///< GPU-wide shared L2+DRAM (not owned)
    bool l2Defer = false;         ///< record requests instead of calling

    /** One deferred shared-L2 request (an L1-missed coalesced access),
     *  recorded at dispatch and replayed by the orchestrator's next
     *  (cycle, smId) merge pass. */
    struct L2Txn
    {
        Cycle cycle;            ///< dispatch cycle (merge order key)
        Cycle start;            ///< issue cycle after mem-unit queueing
        std::uint32_t lineOff;  ///< offset into l2Lines
        std::uint32_t nLines;   ///< L1-missed lines (== `missing`)
        std::uint32_t memTag;   ///< pairs with the placeholder ExecEntry
        std::size_t traceSlot;  ///< reserved trace slot, or SIZE_MAX
        WarpId warp;
        const isa::Instruction *in;
    };
    std::vector<L2Txn> l2Q;     ///< FIFO, drained from l2QHead
    std::size_t l2QHead = 0;
    std::vector<std::uint64_t> l2Lines; ///< flat missed-line addresses
    std::uint32_t nextMemTag = 1;
    std::vector<std::uint64_t> lineScratch; ///< immediate-mode scratch

    Cycle lastCycleSeen = 0; // for trace points outside cycle stages
    std::uint64_t ffCycles = 0; // cycles elided by skipCycles()

    /** Shard-safe emission front end for every trace point of this SM
     *  and its RF backend (see obs::TraceBuffer). Wired to the global
     *  hub at construction; setTraceHub() adds the per-GPU hub. */
    obs::TraceBuffer traceBuf;
    std::unique_ptr<obs::TimeSeriesSampler> sampler; ///< null = off

    std::vector<WarpId> candBuf; // scratch

    /** Typed pipeline-event counters; see stats() for the reporting
     *  snapshot. Handles are registered once in the constructor. */
    struct Handles
    {
        CounterBlock::Handle ctasLaunched, ctasCompleted;
        CounterBlock::Handle barriersReleased;
        CounterBlock::Handle l1Hits, l1Misses, l2Hits, l2Misses;
        CounterBlock::Handle memTransactions;
        CounterBlock::Handle banksWriteGrants, banksReadGrants;
        CounterBlock::Handle banksReadConflicts;
        CounterBlock::Handle instrCtrl, instrMem, instrAlu, instrIssued;
        CounterBlock::Handle issueSlotsTotal, cyclesActive;
    };

    CounterBlock ctrs;
    Handles h;
    mutable StatSet _stats; ///< reporting snapshot, rebuilt by stats()
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SM_HH
