/**
 * @file
 * Per-warp execution context: SIMT stack, scoreboard, loop/branch state,
 * and the deterministic evaluation of declarative branch behaviours.
 */

#ifndef PILOTRF_SIM_WARP_CONTEXT_HH
#define PILOTRF_SIM_WARP_CONTEXT_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "isa/kernel.hh"
#include "sim/simt_stack.hh"

namespace pilotrf::sim
{

/**
 * State of one hardware warp slot.
 */
class WarpContext
{
  public:
    /** (Re)initialize for a launching warp. */
    void launch(const isa::Kernel *kernel, CtaId cta, unsigned warpInCta,
                unsigned ctaSlot, std::uint64_t age, unsigned threads);

    bool valid() const { return kernel != nullptr; }
    bool done() const { return finished; }
    bool atBarrier() const { return barrierWait; }

    const isa::Kernel *kernelPtr() const { return kernel; }
    CtaId cta() const { return ctaId; }
    unsigned warpIndexInCta() const { return warpInCta; }
    unsigned ctaSlotIndex() const { return ctaSlot; }
    std::uint64_t launchAge() const { return age; }

    /** Next instruction's PC / the instruction itself. */
    Pc pc() const { return stack.pc(); }
    const isa::Instruction &nextInstr() const { return kernel->at(pc()); }
    ActiveMask activeMask() const { return stack.mask(); }

    // --- scoreboard -----------------------------------------------------
    /** True if the instruction has no RAW/WAW/WAR hazard. */
    bool scoreboardReady(const isa::Instruction &in) const;
    /** Reserve destinations / reference sources at issue. */
    void scoreboardIssue(const isa::Instruction &in);
    /** A source operand value was latched. */
    void releaseRead(RegId r);
    /** A destination write completed. */
    void releaseWrite(RegId r);

    unsigned inflight() const { return nInflight; }
    void addInflight() { ++nInflight; }
    void removeInflight();

    // --- control flow ---------------------------------------------------
    /** Execute the control effect of the instruction at issue: advances
     *  the PC, updates the SIMT stack, handles exit. Returns true when the
     *  warp finished (Exit). Barriers are handled by the SM. */
    bool executeControl(const isa::Instruction &in);

    void setBarrier(bool b) { barrierWait = b; }

    SimtStack &simtStack() { return stack; }

  private:
    /** Lanes (within the current mask) taking the branch. */
    ActiveMask evalBranch(const isa::Instruction &in, Pc pc);

    /** Per-lane trip count for a loop backedge at pc. */
    unsigned tripsFor(const isa::Instruction &in, Pc pc,
                      unsigned lane) const;

    const isa::Kernel *kernel = nullptr;
    CtaId ctaId = 0;
    unsigned warpInCta = 0;
    unsigned ctaSlot = 0;
    std::uint64_t age = 0;
    ActiveMask launchMask = 0;
    bool finished = true;
    bool barrierWait = false;
    unsigned nInflight = 0;

    SimtStack stack;

    std::uint64_t pendingWrites = 0; ///< bit per architected register
    std::array<std::uint8_t, maxRegsPerThread> readRefs{};

    struct LoopState
    {
        std::array<std::uint16_t, warpSize> iter{};
    };
    std::unordered_map<Pc, LoopState> loops;
    std::unordered_map<Pc, std::uint32_t> branchVisits;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_WARP_CONTEXT_HH
