/**
 * @file
 * SimConfig <-> JSON. The writer emits every field in declaration order
 * (enums as their toString() names, nested configs as nested objects); the
 * reader starts from the defaults and strictly rejects unknown keys and
 * mistyped values, so a config-file typo fails loudly instead of silently
 * running the default.
 */

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/stats.hh"
#include "sim/sim_config.hh"

namespace pilotrf::sim
{

namespace
{

/** Writer state: one "key": value per line at a fixed depth. */
class Obj
{
  public:
    Obj(std::ostream &os, unsigned depth) : os(os), pad(2 * (depth + 1), ' ')
    {
        os << "{";
    }

    void field(const char *key, double v)
    {
        sep();
        jsonString(os, key);
        os << ": ";
        jsonNumber(os, v);
    }

    void field(const char *key, bool v)
    {
        sep();
        jsonString(os, key);
        os << ": " << (v ? "true" : "false");
    }

    void field(const char *key, const char *v)
    {
        sep();
        jsonString(os, key);
        os << ": ";
        jsonString(os, v);
    }

    /** Open a nested object field; returns the inner writer. */
    void nested(const char *key)
    {
        sep();
        jsonString(os, key);
        os << ": ";
    }

    void close()
    {
        os << "\n" << pad.substr(2) << "}";
    }

  private:
    void sep()
    {
        os << (first ? "\n" : ",\n") << pad;
        first = false;
    }

    std::ostream &os;
    std::string pad;
    bool first = true;
};

// --- strict readers --------------------------------------------------------

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("SimConfig JSON: " + what);
}

double
asNumber(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Number)
        bad(std::string("field '") + key + "' must be a number");
    return v.number;
}

unsigned
asUnsigned(const char *key, const JsonValue &v)
{
    const double n = asNumber(key, v);
    if (n < 0 || n != std::floor(n))
        bad(std::string("field '") + key +
            "' must be a non-negative integer");
    return unsigned(n);
}

std::uint64_t
asU64(const char *key, const JsonValue &v)
{
    const double n = asNumber(key, v);
    if (n < 0 || n != std::floor(n))
        bad(std::string("field '") + key +
            "' must be a non-negative integer");
    return std::uint64_t(n);
}

bool
asBool(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Bool)
        bad(std::string("field '") + key + "' must be a boolean");
    return v.boolean;
}

const std::string &
asString(const char *key, const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::String)
        bad(std::string("field '") + key + "' must be a string");
    return v.str;
}

template <typename Enum, typename Parse>
Enum
asEnum(const char *key, const JsonValue &v, Parse parse)
{
    const std::string &name = asString(key, v);
    if (const auto e = parse(name))
        return *e;
    bad(std::string("field '") + key + "': unknown name '" + name + "'");
}

regfile::PartitionedRfConfig
prfFromJson(const JsonValue &v)
{
    regfile::PartitionedRfConfig c;
    if (!v.isObject())
        bad("field 'prf' must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "frfRegs")
            c.frfRegs = asUnsigned("prf.frfRegs", val);
        else if (key == "profiling")
            c.profiling =
                asEnum<regfile::Profiling>("prf.profiling", val,
                                           regfile::parseProfiling);
        else if (key == "adaptiveFrf")
            c.adaptiveFrf = asBool("prf.adaptiveFrf", val);
        else if (key == "epochLength")
            c.epochLength = asUnsigned("prf.epochLength", val);
        else if (key == "issueThreshold")
            c.issueThreshold = asUnsigned("prf.issueThreshold", val);
        else if (key == "frfHighLatency")
            c.frfHighLatency = asUnsigned("prf.frfHighLatency", val);
        else if (key == "frfLowLatency")
            c.frfLowLatency = asUnsigned("prf.frfLowLatency", val);
        else if (key == "srfLatency")
            c.srfLatency = asUnsigned("prf.srfLatency", val);
        else if (key == "countRemapTraffic")
            c.countRemapTraffic = asBool("prf.countRemapTraffic", val);
        else if (key == "swapTableExtraCycle")
            c.swapTableExtraCycle = asBool("prf.swapTableExtraCycle", val);
        else
            bad("unknown key 'prf." + key + "'");
    }
    return c;
}

regfile::RfcRfConfig
rfcFromJson(const JsonValue &v)
{
    regfile::RfcRfConfig c;
    if (!v.isObject())
        bad("field 'rfc' must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "regsPerWarp")
            c.regsPerWarp = asUnsigned("rfc.regsPerWarp", val);
        else if (key == "mrfMode")
            c.mrfMode = asEnum<rfmodel::RfMode>("rfc.mrfMode", val,
                                                rfmodel::parseRfMode);
        else if (key == "mrfLatency")
            c.mrfLatency = asUnsigned("rfc.mrfLatency", val);
        else if (key == "rfcLatency")
            c.rfcLatency = asUnsigned("rfc.rfcLatency", val);
        else if (key == "readPorts")
            c.readPorts = asUnsigned("rfc.readPorts", val);
        else if (key == "writePorts")
            c.writePorts = asUnsigned("rfc.writePorts", val);
        else if (key == "rfcBanks")
            c.rfcBanks = asUnsigned("rfc.rfcBanks", val);
        else if (key == "allocOnReadMiss")
            c.allocOnReadMiss = asBool("rfc.allocOnReadMiss", val);
        else
            bad("unknown key 'rfc." + key + "'");
    }
    return c;
}

regfile::DrowsyRfConfig
drowsyFromJson(const JsonValue &v)
{
    regfile::DrowsyRfConfig c;
    if (!v.isObject())
        bad("field 'drowsy' must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "drowsyAfter")
            c.drowsyAfter = asUnsigned("drowsy.drowsyAfter", val);
        else if (key == "wakeLatency")
            c.wakeLatency = asUnsigned("drowsy.wakeLatency", val);
        else if (key == "drowsyLeakFactor")
            c.drowsyLeakFactor = asNumber("drowsy.drowsyLeakFactor", val);
        else
            bad("unknown key 'drowsy." + key + "'");
    }
    return c;
}

} // namespace

void
SimConfig::toJson(std::ostream &os, unsigned depth) const
{
    Obj o(os, depth);
    o.field("numSms", double(numSms));
    o.field("warpsPerSm", double(warpsPerSm));
    o.field("schedulers", double(schedulers));
    o.field("issuePerScheduler", double(issuePerScheduler));
    o.field("rfBanks", double(rfBanks));
    o.field("collectors", double(collectors));
    o.field("maxCtasPerSm", double(maxCtasPerSm));
    o.field("threadRegsPerSm", double(threadRegsPerSm));
    o.field("policy", toString(policy));
    o.field("tlActiveWarps", double(tlActiveWarps));
    o.field("spLatency", double(spLatency));
    o.field("sfuLatency", double(sfuLatency));
    o.field("spWidth", double(spWidth));
    o.field("sfuWidth", double(sfuWidth));
    o.field("memWidth", double(memWidth));
    o.field("maxInflightPerWarp", double(maxInflightPerWarp));
    o.field("writeForwarding", writeForwarding);
    o.field("sharedLatency", double(sharedLatency));
    o.field("globalLatency", double(globalLatency));
    o.field("maxOutstandingMem", double(maxOutstandingMem));
    o.field("l1Enable", l1Enable);
    o.field("l1SizeKb", double(l1SizeKb));
    o.field("l1Assoc", double(l1Assoc));
    o.field("l1HitLatency", double(l1HitLatency));
    o.field("l2Enable", l2Enable);
    o.field("l2SizeKb", double(l2SizeKb));
    o.field("l2Assoc", double(l2Assoc));
    o.field("l2HitLatency", double(l2HitLatency));
    o.field("dramEnable", dramEnable);
    o.field("dramLatency", double(dramLatency));
    o.field("dramPartitions", double(dramPartitions));
    o.field("dramServiceCycles", double(dramServiceCycles));
    o.field("rfKind", toString(rfKind));

    o.nested("prf");
    {
        Obj p(os, depth + 1);
        p.field("frfRegs", double(prf.frfRegs));
        p.field("profiling", regfile::toString(prf.profiling));
        p.field("adaptiveFrf", prf.adaptiveFrf);
        p.field("epochLength", double(prf.epochLength));
        p.field("issueThreshold", double(prf.issueThreshold));
        p.field("frfHighLatency", double(prf.frfHighLatency));
        p.field("frfLowLatency", double(prf.frfLowLatency));
        p.field("srfLatency", double(prf.srfLatency));
        p.field("countRemapTraffic", prf.countRemapTraffic);
        p.field("swapTableExtraCycle", prf.swapTableExtraCycle);
        p.close();
    }

    o.nested("rfc");
    {
        Obj r(os, depth + 1);
        r.field("regsPerWarp", double(rfc.regsPerWarp));
        r.field("mrfMode", rfmodel::toString(rfc.mrfMode));
        r.field("mrfLatency", double(rfc.mrfLatency));
        r.field("rfcLatency", double(rfc.rfcLatency));
        r.field("readPorts", double(rfc.readPorts));
        r.field("writePorts", double(rfc.writePorts));
        r.field("rfcBanks", double(rfc.rfcBanks));
        r.field("allocOnReadMiss", rfc.allocOnReadMiss);
        r.close();
    }

    o.nested("drowsy");
    {
        Obj d(os, depth + 1);
        d.field("drowsyAfter", double(drowsy.drowsyAfter));
        d.field("wakeLatency", double(drowsy.wakeLatency));
        d.field("drowsyLeakFactor", drowsy.drowsyLeakFactor);
        d.close();
    }

    o.field("mrfLatencyOverride", double(mrfLatencyOverride));
    o.field("enableCycleSkip", enableCycleSkip);
    o.field("numWorkers", double(numWorkers));
    o.field("shardSchedule", toString(shardSchedule));
    o.field("maxCycles", double(maxCycles));
    o.close();
}

std::string
SimConfig::jsonText() const
{
    std::ostringstream os;
    toJson(os);
    os << "\n";
    return os.str();
}

SimConfig
SimConfig::fromJson(const JsonValue &v)
{
    SimConfig c;
    if (!v.isObject())
        bad("document must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "numSms")
            c.numSms = asUnsigned("numSms", val);
        else if (key == "warpsPerSm")
            c.warpsPerSm = asUnsigned("warpsPerSm", val);
        else if (key == "schedulers")
            c.schedulers = asUnsigned("schedulers", val);
        else if (key == "issuePerScheduler")
            c.issuePerScheduler = asUnsigned("issuePerScheduler", val);
        else if (key == "rfBanks")
            c.rfBanks = asUnsigned("rfBanks", val);
        else if (key == "collectors")
            c.collectors = asUnsigned("collectors", val);
        else if (key == "maxCtasPerSm")
            c.maxCtasPerSm = asUnsigned("maxCtasPerSm", val);
        else if (key == "threadRegsPerSm")
            c.threadRegsPerSm = asUnsigned("threadRegsPerSm", val);
        else if (key == "policy")
            c.policy = asEnum<SchedulerPolicy>("policy", val,
                                               parseSchedulerPolicy);
        else if (key == "tlActiveWarps")
            c.tlActiveWarps = asUnsigned("tlActiveWarps", val);
        else if (key == "spLatency")
            c.spLatency = asUnsigned("spLatency", val);
        else if (key == "sfuLatency")
            c.sfuLatency = asUnsigned("sfuLatency", val);
        else if (key == "spWidth")
            c.spWidth = asUnsigned("spWidth", val);
        else if (key == "sfuWidth")
            c.sfuWidth = asUnsigned("sfuWidth", val);
        else if (key == "memWidth")
            c.memWidth = asUnsigned("memWidth", val);
        else if (key == "maxInflightPerWarp")
            c.maxInflightPerWarp = asUnsigned("maxInflightPerWarp", val);
        else if (key == "writeForwarding")
            c.writeForwarding = asBool("writeForwarding", val);
        else if (key == "sharedLatency")
            c.sharedLatency = asUnsigned("sharedLatency", val);
        else if (key == "globalLatency")
            c.globalLatency = asUnsigned("globalLatency", val);
        else if (key == "maxOutstandingMem")
            c.maxOutstandingMem = asUnsigned("maxOutstandingMem", val);
        else if (key == "l1Enable")
            c.l1Enable = asBool("l1Enable", val);
        else if (key == "l1SizeKb")
            c.l1SizeKb = asUnsigned("l1SizeKb", val);
        else if (key == "l1Assoc")
            c.l1Assoc = asUnsigned("l1Assoc", val);
        else if (key == "l1HitLatency")
            c.l1HitLatency = asUnsigned("l1HitLatency", val);
        else if (key == "l2Enable")
            c.l2Enable = asBool("l2Enable", val);
        else if (key == "l2SizeKb")
            c.l2SizeKb = asUnsigned("l2SizeKb", val);
        else if (key == "l2Assoc")
            c.l2Assoc = asUnsigned("l2Assoc", val);
        else if (key == "l2HitLatency")
            c.l2HitLatency = asUnsigned("l2HitLatency", val);
        else if (key == "dramEnable")
            c.dramEnable = asBool("dramEnable", val);
        else if (key == "dramLatency")
            c.dramLatency = asUnsigned("dramLatency", val);
        else if (key == "dramPartitions")
            c.dramPartitions = asUnsigned("dramPartitions", val);
        else if (key == "dramServiceCycles")
            c.dramServiceCycles = asUnsigned("dramServiceCycles", val);
        else if (key == "rfKind")
            c.rfKind = asEnum<RfKind>("rfKind", val, parseRfKind);
        else if (key == "prf")
            c.prf = prfFromJson(val);
        else if (key == "rfc")
            c.rfc = rfcFromJson(val);
        else if (key == "drowsy")
            c.drowsy = drowsyFromJson(val);
        else if (key == "mrfLatencyOverride")
            c.mrfLatencyOverride = asUnsigned("mrfLatencyOverride", val);
        else if (key == "enableCycleSkip")
            c.enableCycleSkip = asBool("enableCycleSkip", val);
        else if (key == "numWorkers")
            c.numWorkers = asUnsigned("numWorkers", val);
        else if (key == "shardSchedule")
            c.shardSchedule = asEnum<ShardSchedule>("shardSchedule", val,
                                                    parseShardSchedule);
        else if (key == "maxCycles")
            c.maxCycles = asU64("maxCycles", val);
        else
            bad("unknown key '" + key + "'");
    }
    return c;
}

SimConfig
SimConfig::fromJsonText(std::string_view text)
{
    JsonValue v;
    std::string error;
    if (!jsonParse(text, v, &error))
        bad("parse error: " + error);
    return fromJson(v);
}

} // namespace pilotrf::sim
