#include "sim/simt_stack.hh"

#include "common/logging.hh"

namespace pilotrf::sim
{

void
SimtStack::init(ActiveMask mask)
{
    entries.clear();
    entries.push_back({0, noRpc, mask});
}

Pc
SimtStack::pc() const
{
    panicIf(entries.empty(), "SimtStack::pc on empty stack");
    return entries.back().pc;
}

ActiveMask
SimtStack::mask() const
{
    panicIf(entries.empty(), "SimtStack::mask on empty stack");
    return entries.back().mask;
}

void
SimtStack::advance()
{
    panicIf(entries.empty(), "SimtStack::advance on empty stack");
    ++entries.back().pc;
    popReconverged();
}

void
SimtStack::setPc(Pc pc)
{
    panicIf(entries.empty(), "SimtStack::setPc on empty stack");
    entries.back().pc = pc;
    popReconverged();
}

void
SimtStack::branch(ActiveMask takenMask, Pc target, Pc rpc)
{
    panicIf(entries.empty(), "SimtStack::branch on empty stack");
    Entry &tos = entries.back();
    const Pc fallthrough = tos.pc + 1;
    const ActiveMask cur = tos.mask;
    panicIf((takenMask & ~cur) != 0, "taken mask outside active mask");
    const ActiveMask ntMask = cur & ~takenMask;

    // Uniform outcomes keep the TOS entry; divergence converts the TOS to
    // the reconvergence continuation and pushes the two paths.
    if (ntMask == 0) {
        tos.pc = target;
    } else if (takenMask == 0) {
        tos.pc = fallthrough;
    } else {
        tos.pc = rpc;
        if (fallthrough != rpc)
            entries.push_back({fallthrough, rpc, ntMask});
        if (target != rpc)
            entries.push_back({target, rpc, takenMask});
    }
    popReconverged();
}

void
SimtStack::popReconverged()
{
    while (entries.size() > 1 && entries.back().pc == entries.back().rpc)
        entries.pop_back();
}

} // namespace pilotrf::sim
