#include "sim/sm.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "common/random.hh"
#include "sim/trace.hh"

namespace pilotrf::sim
{

Sm::Sm(const SimConfig &cfg_, SmId id,
       std::unique_ptr<regfile::RegisterFile> rf)
    : cfg(cfg_), smId(id), backend(std::move(rf)),
      scheduler(cfg_,
                [this](WarpId w, bool nowActive) {
                    if (nowActive)
                        backend->warpActivated(w);
                    else
                        backend->warpDeactivated(w);
                })
{
    h.ctasLaunched = ctrs.add("ctas.launched");
    h.ctasCompleted = ctrs.add("ctas.completed");
    h.barriersReleased = ctrs.add("barriers.released");
    h.l1Hits = ctrs.add("l1.hits");
    h.l1Misses = ctrs.add("l1.misses");
    h.l2Hits = ctrs.add("l2.hits");
    h.l2Misses = ctrs.add("l2.misses");
    h.memTransactions = ctrs.add("mem.transactions");
    h.banksWriteGrants = ctrs.add("banks.writeGrants");
    h.banksReadGrants = ctrs.add("banks.readGrants");
    h.banksReadConflicts = ctrs.add("banks.readConflicts");
    h.instrCtrl = ctrs.add("instructions.ctrl");
    h.instrMem = ctrs.add("instructions.mem");
    h.instrAlu = ctrs.add("instructions.alu");
    h.instrIssued = ctrs.add("instructions.issued");
    h.issueSlotsTotal = ctrs.add("issueSlots.total");
    h.cyclesActive = ctrs.add("cycles.active");
    // Every trace point talks to the buffer; wire its global destination
    // now and let the backend share it, so PILOTRF_TRACE-only runs and
    // per-GPU-hub runs use one emission path (the local destination is
    // added by setTraceHub()).
    traceBuf.wire(nullptr, &Trace::hub());
    backend->attachTrace(&traceBuf, smId);
    warps.resize(cfg.warpsPerSm);
    ctaSlots.resize(cfg.maxCtasPerSm);
    collectors.resize(cfg.collectors);
    busyCols.resize(cfg.collectors);
    if (cfg.l1Enable)
        l1 = std::make_unique<Cache>(cfg.l1SizeKb * 1024, cfg.l1Assoc);
}

void
Sm::setMemSystem(MemSystem *ms)
{
    memSys = ms;
}

void
Sm::setL2Deferred(bool on)
{
    panicIf(!on && l2QHead != l2Q.size(),
            "leaving deferred-L2 mode with unreplayed requests");
    l2Defer = on;
}

void
Sm::replayL2Front()
{
    panicIf(l2QHead >= l2Q.size(), "replayL2Front on an empty queue");
    const L2Txn t = l2Q[l2QHead++];
    const MemSystem::Result res =
        memSys->access(t.start, l2Lines.data() + t.lineOff, t.nLines);
    // Zero increments must not mark the counter seen — the seed only
    // touched l2.hits/l2.misses per event, so an all-miss run's dump has
    // no l2.hits key at all (golden key-set parity).
    if (res.hits)
        ctrs.inc(h.l2Hits, res.hits);
    if (res.misses)
        ctrs.inc(h.l2Misses, res.misses);
    if (sampler) {
        // The increments belong at the request cycle; samples taken
        // since then must carry them exactly as the serial engine's do.
        sampler->retroCredit(t.cycle, &ctrs, h.l2Hits, res.hits);
        sampler->retroCredit(t.cycle, &ctrs, h.l2Misses, res.misses);
    }
    const Cycle finishAt = t.start + res.latency + t.nLines;
    if (t.traceSlot != SIZE_MAX) {
        // The serial engine emits the Mem trace line only on the miss
        // path (an all-L2-hit refill is silent); reproduce that by
        // leaving the reserved slot void on an all-hit reply.
        obs::TraceEvent ev;
        std::uint8_t dest;
        if (res.misses > 0 &&
            Trace::makeEvent(&traceBuf, TraceCat::Mem, t.cycle, smId, ev,
                             dest, "w%u %s txn=%u finish@%llu",
                             unsigned(t.warp), isa::toString(t.in->op),
                             unsigned(t.in->transactions),
                             (unsigned long long)finishAt))
            traceBuf.fillSlot(t.traceSlot, std::move(ev), dest);
    }
    for (auto &e : exec)
        if (e.memTag == t.memTag) {
            e.finishAt = finishAt;
            break;
        }
    execNextDue = std::min(execNextDue, finishAt);
    if (l2QHead == l2Q.size()) {
        l2Q.clear();
        l2QHead = 0;
        l2Lines.clear();
    }
}

void
Sm::enableTimeSeries(unsigned periodCycles, std::size_t capacity)
{
    sampler =
        std::make_unique<obs::TimeSeriesSampler>(periodCycles, capacity);
    sampler->addBlock("sim.", &ctrs);
    sampler->addBlock("rf.", &backend->counters());
    sampler->addGauge("warps.active",
                      [this] { return std::uint64_t(liveWarpCount); });
}

void
Sm::startKernel(const isa::Kernel *k, Cycle startCycle, CtaSource &ctas)
{
    panicIf(!idle(), "startKernel on a busy SM");
    kernel = k;
    clk = startCycle;
    kernelStart = startCycle;
    sawExhausted = false;
    midCycle = false;
    ctaLimit =
        cfg.ctasPerSm(k->regsPerThread(), k->threadsPerCta(), k->warpsPerCta());
    scheduler.reset();
    backend->kernelLaunch(*k);
    for (auto &c : collectors)
        c = Collector{};
    busyCols.clearAll();
    freeCollectors = cfg.collectors;
    exec.clear();
    execNextDue = kNeverCycle;
    trackers.clear();
    freeTrackers.clear();
    wbQueue.clear();
    clears = {};
    memNextFree = 0;
    outstandingMem = 0;
    panicIf(l2QHead != l2Q.size(), "kernel start with unreplayed L2 "
                                   "requests");
    l2Q.clear();
    l2QHead = 0;
    l2Lines.clear();
    if (l1)
        l1->flush();
    bankFree.assign(cfg.rfBanks, 0);
    for (auto &slot : ctaSlots)
        slot = CtaSlot{};
    tryLaunchCtas(ctas);
}

bool
Sm::idle() const
{
    return liveWarpCount == 0 && exec.empty() && wbQueue.empty() &&
           clears.empty();
}

bool
Sm::launchEligible() const
{
    // Mirrors tryLaunchCtas()'s gate exactly: true iff it would consult
    // the dispenser. Kept in sync so a NeedsCta pause happens precisely
    // when the serial loop would have drawn from the shared grid.
    if (!kernel || sawExhausted)
        return false;
    unsigned liveCtas = 0;
    for (const auto &s : ctaSlots)
        liveCtas += s.valid;
    if (liveCtas >= ctaLimit)
        return false;
    const unsigned need = kernel->warpsPerCta();
    unsigned freeSlots = 0;
    for (WarpId w = 0; w < cfg.warpsPerSm && freeSlots < need; ++w)
        if (!warps[w].valid() || warps[w].done())
            ++freeSlots;
    return freeSlots >= need;
}

unsigned
Sm::tryLaunchCtas(CtaSource &ctas)
{
    if (!kernel)
        return 0;
    unsigned launched = 0;
    unsigned liveCtas = 0;
    for (const auto &s : ctaSlots)
        liveCtas += s.valid;

    while (liveCtas < ctaLimit) {
        // Find free warp slots for one CTA.
        const unsigned need = kernel->warpsPerCta();
        std::vector<WarpId> slots;
        for (WarpId w = 0; w < cfg.warpsPerSm && slots.size() < need; ++w)
            if (!warps[w].valid() || warps[w].done())
                slots.push_back(w);
        if (slots.size() < need)
            return launched;

        CtaId cta;
        if (!ctas.next(cta)) {
            // Monotonic within a kernel: the grid only drains, so this
            // SM never needs to ask again.
            sawExhausted = true;
            return launched;
        }

        unsigned slotIdx = 0;
        while (ctaSlots[slotIdx].valid)
            ++slotIdx;
        PILOTRF_TRACE_AT(&traceBuf, TraceCat::Cta, lastCycleSeen, smId,
                         "launch cta %u into slot %u", unsigned(cta),
                         slotIdx);
        CtaSlot &slot = ctaSlots[slotIdx];
        slot.valid = true;
        slot.cta = cta;
        slot.liveWarps = need;
        slot.barrierArrived = 0;
        slot.warps = slots;

        unsigned threadsLeft = kernel->threadsPerCta();
        for (unsigned i = 0; i < need; ++i) {
            const WarpId w = slots[i];
            const unsigned threads = std::min(threadsLeft, warpSize);
            threadsLeft -= threads;
            warps[w].launch(kernel, cta, i, slotIdx, launchCounter++,
                            threads);
            PILOTRF_TRACE_AT(&traceBuf, TraceCat::Warp, lastCycleSeen, smId,
                             "launch warp %u (cta %u.%u)", unsigned(w),
                             unsigned(cta), i);
            if (traceBuf.wantsStructured()) {
                obs::TraceEvent ev;
                ev.cycle = lastCycleSeen;
                ev.sm = smId;
                ev.warp = std::int32_t(w);
                ev.categoryName = "warp";
                ev.kind = obs::EventKind::Begin;
                ev.name = "warp " + std::to_string(unsigned(w));
                ev.args = {{"cta", double(cta)}, {"lane", double(i)}};
                traceBuf.emitStructured(ev);
            }
            ++liveWarpCount;
            scheduler.onWarpLaunched(w, warps[w].launchAge());
            backend->warpStarted(w, cta);
        }
        ++liveCtas;
        ++launched;
        ctrs.inc(h.ctasLaunched);
    }
    return launched;
}

std::uint32_t
Sm::allocTracker(WarpId warp, std::uint8_t writes)
{
    if (!freeTrackers.empty()) {
        const std::uint32_t t = freeTrackers.back();
        freeTrackers.pop_back();
        trackers[t] = {warp, writes};
        return t;
    }
    trackers.push_back({warp, writes});
    return std::uint32_t(trackers.size() - 1);
}

void
Sm::pushExec(const ExecEntry &e)
{
    exec.push_back(e);
    execNextDue = std::min(execNextDue, e.finishAt);
}

unsigned
Sm::processWritebackClears(Cycle now)
{
    unsigned cleared = 0;
    while (!clears.empty() && clears.top().at <= now) {
        const PendingClear pc = clears.top();
        clears.pop();
        ++cleared;

        WbTracker &t = trackers[pc.tracker];
        warps[t.warp].releaseWrite(pc.reg);
        panicIf(t.left == 0, "writeback tracker underflow");
        if (--t.left == 0) {
            warps[t.warp].removeInflight();
            freeTrackers.push_back(pc.tracker);
        }
    }
    return cleared;
}

unsigned
Sm::processExecCompletions(Cycle now)
{
    if (execNextDue > now)
        return 0;
    unsigned completed = 0;
    Cycle nextDue = kNeverCycle;
    for (std::size_t i = 0; i < exec.size();) {
        if (exec[i].finishAt > now) {
            nextDue = std::min(nextDue, exec[i].finishAt);
            ++i;
            continue;
        }
        const ExecEntry e = exec[i];
        exec[i] = exec.back();
        exec.pop_back();
        ++completed;

        if (e.in->isMem()) {
            panicIf(outstandingMem == 0, "memory completion underflow");
            --outstandingMem;
        }

        if (e.in->numDsts == 0) {
            warps[e.warp].removeInflight();
            continue;
        }
        const std::uint32_t t = allocTracker(e.warp, e.in->numDsts);
        for (unsigned d = 0; d < e.in->numDsts; ++d) {
            const RegId r = e.in->dsts[d];
            if (backend->needsBank(e.warp, r, true)) {
                wbQueue.push_back(
                    {t, r, std::uint16_t(backend->bank(e.warp, r))});
            } else {
                // e.g. RFC write: no main-RF bank port needed. Results
                // forward from the write queue, so dependents unblock one
                // cycle after the write is accepted; the array completes
                // the write in the background (energy still accounted).
                const regfile::RfAccess acc =
                    backend->access(e.warp, r, true);
                clears.push(
                    {now + (cfg.writeForwarding ? 1 : acc.latency), t, r});
            }
        }
    }
    execNextDue = nextDue;
    return completed;
}

unsigned
Sm::latchReadyOperands(Cycle now)
{
    unsigned latched = 0;
    busyCols.collectFrom(0, colScratch);
    for (const std::size_t idx : colScratch) {
        Collector &c = collectors[idx];
        for (unsigned i = 0; i < c.nOps; ++i) {
            Operand &op = c.ops[i];
            if (op.state == OpState::InFlight && op.readyAt <= now) {
                op.state = OpState::Ready;
                warps[c.warp].releaseRead(op.reg);
                ++latched;
            }
        }
    }
    return latched;
}

unsigned
Sm::dispatchCollectors(Cycle now)
{
    unsigned spLeft = cfg.spWidth;
    unsigned sfuLeft = cfg.sfuWidth;
    unsigned memLeft = cfg.memWidth;
    unsigned dispatched = 0;

    // Same rotation as the seed full-array scan — (k + now) % nCol for
    // k = 0.. — but only over the busy indices. Freeing the collector
    // under iteration is safe: the snapshot was taken before the loop and
    // no collector becomes busy during dispatch.
    const std::size_t nCol = collectors.size();
    busyCols.collectFrom(now % nCol, colScratch);
    for (const std::size_t idx : colScratch) {
        Collector &c = collectors[idx];
        bool allReady = true;
        for (unsigned i = 0; i < c.nOps; ++i)
            allReady &= c.ops[i].state == OpState::Ready;
        if (!allReady)
            continue;

        const auto cls = c.in->execClass();
        Cycle finishAt = 0;
        switch (cls) {
          case isa::ExecClass::Sp:
            if (!spLeft)
                continue;
            --spLeft;
            finishAt = now + cfg.spLatency;
            break;
          case isa::ExecClass::Sfu:
            if (!sfuLeft)
                continue;
            --sfuLeft;
            finishAt = now + cfg.sfuLatency;
            break;
          case isa::ExecClass::Mem: {
            if (!memLeft || outstandingMem >= cfg.maxOutstandingMem)
                continue;
            --memLeft;
            unsigned missing = c.in->transactions;
            if (l1 && c.in->space == isa::MemSpace::Global) {
                // One line per transaction: region keyed by the static
                // instruction, lines laid out across warps so the access
                // stream has spatial and (across loop iterations)
                // temporal locality.
                const WarpContext &wc = warps[c.warp];
                const isa::Kernel *k = wc.kernelPtr();
                const Pc pc = Pc(c.in - k->code().data());
                const std::uint64_t region =
                    hashCoords(k->seed(), pc) << 24;
                const std::uint64_t warpIdx =
                    std::uint64_t(wc.cta()) * k->warpsPerCta() +
                    wc.warpIndexInCta();
                missing = 0;
                lineScratch.clear();
                for (unsigned t = 0; t < c.in->transactions; ++t) {
                    const std::uint64_t line =
                        warpIdx * c.in->transactions + t;
                    const std::uint64_t addr = region + line * 128;
                    if (l1->access(addr)) {
                        ctrs.inc(h.l1Hits);
                        continue;
                    }
                    ctrs.inc(h.l1Misses);
                    ++missing;
                    if (memSys)
                        lineScratch.push_back(addr);
                }
                if (missing && memSys) {
                    // Refills go to the shared memory system. The SM-side
                    // effects of the reply are confined to finishAt, the
                    // l2 hit/miss counters and the (miss-only) Mem trace
                    // line, so under the sharded engine the request can
                    // be recorded now and replayed at the epoch barrier
                    // in the global (cycle, smId) order — everything
                    // below here is reply-independent.
                    const Cycle start = std::max(now, memNextFree);
                    memNextFree = start + missing;
                    ++outstandingMem;
                    ctrs.inc(h.memTransactions, c.in->transactions);
                    if (l2Defer) {
                        std::size_t slot = SIZE_MAX;
                        if (Trace::enabled(TraceCat::Mem) ||
                            traceBuf.localTextEnabled(
                                unsigned(TraceCat::Mem)))
                            slot = traceBuf.reserveSlot(now);
                        const std::uint32_t off =
                            std::uint32_t(l2Lines.size());
                        l2Lines.insert(l2Lines.end(), lineScratch.begin(),
                                       lineScratch.end());
                        const std::uint32_t tag = nextMemTag++;
                        l2Q.push_back({now, start, off, missing, tag, slot,
                                       c.warp, c.in});
                        pushExec({kNeverCycle, c.warp, c.in, tag});
                    } else {
                        const MemSystem::Result res = memSys->access(
                            start, lineScratch.data(), missing);
                        // Guarded like replayL2Front: a zero increment
                        // would add an l2.* = 0 key the seed never had.
                        if (res.hits)
                            ctrs.inc(h.l2Hits, res.hits);
                        if (res.misses)
                            ctrs.inc(h.l2Misses, res.misses);
                        finishAt = start + res.latency + missing;
                        if (res.misses > 0)
                            PILOTRF_TRACE_AT(
                                &traceBuf, TraceCat::Mem, now, smId,
                                "w%u %s txn=%u finish@%llu",
                                unsigned(c.warp), isa::toString(c.in->op),
                                unsigned(c.in->transactions),
                                (unsigned long long)finishAt);
                        pushExec({finishAt, c.warp, c.in});
                    }
                    c.busy = false;
                    busyCols.clear(idx);
                    ++freeCollectors;
                    ++dispatched;
                    continue;
                }
            }
            if (c.in->space == isa::MemSpace::Shared) {
                const Cycle start = std::max(now, memNextFree);
                memNextFree = start + c.in->transactions;
                finishAt = start + cfg.sharedLatency + c.in->transactions;
            } else if (missing == 0 && l1) {
                finishAt = now + cfg.l1HitLatency;
            } else {
                const Cycle start = std::max(now, memNextFree);
                memNextFree = start + missing;
                finishAt = start + cfg.globalLatency + missing;
            }
            ++outstandingMem;
            PILOTRF_TRACE_AT(&traceBuf, TraceCat::Mem, now, smId,
                             "w%u %s txn=%u finish@%llu", unsigned(c.warp),
                             isa::toString(c.in->op),
                             unsigned(c.in->transactions),
                             (unsigned long long)finishAt);
            ctrs.inc(h.memTransactions, c.in->transactions);
            break;
          }
          case isa::ExecClass::Ctrl:
            panic("control instruction in a collector");
        }

        pushExec({finishAt, c.warp, c.in});
        c.busy = false;
        busyCols.clear(idx);
        ++freeCollectors;
        ++dispatched;
    }
    return dispatched;
}

unsigned
Sm::arbitrateBanks(Cycle now)
{
    // A bank accepts at most one request per cycle and, for NTV-operated
    // arrays, stays occupied for the whole multi-cycle access.
    auto bankAvailable = [&](unsigned b) { return bankFree[b] <= now; };
    auto occupy = [&](unsigned b, unsigned busyCycles) {
        bankFree[b] = now + std::max(1u, busyCycles);
    };

    unsigned activity = 0;

    // Writebacks have priority.
    for (std::size_t i = 0; i < wbQueue.size();) {
        const WbReq &req = wbQueue[i];
        if (!bankAvailable(req.bank)) {
            ++i;
            continue;
        }
        const WbTracker &t = trackers[req.tracker];
        // The write drains into the array in the background; dependents
        // unblock at grant + 1 thanks to write-queue forwarding. Reads
        // keep the partition-dependent latency (the critical path).
        const regfile::RfAccess acc =
            backend->access(t.warp, req.reg, true);
        occupy(req.bank, acc.busy);
        clears.push(
            {now + (cfg.writeForwarding ? 1 : acc.latency), req.tracker,
             req.reg});
        wbQueue[i] = wbQueue.back();
        wbQueue.pop_back();
        ctrs.inc(h.banksWriteGrants);
        ++activity;
    }

    // Operand reads: rotate the scan start each cycle so no collector is
    // systematically favoured (fixed-order scans beat against the warp
    // schedulers and starve late collectors). Conflicts count as activity
    // too — a conflicted cycle increments a counter, so it is never a
    // skippable dead cycle.
    const std::size_t nCol = collectors.size();
    busyCols.collectFrom(now % nCol, colScratch);
    for (const std::size_t idx : colScratch) {
        Collector &c = collectors[idx];
        for (unsigned i = 0; i < c.nOps; ++i) {
            Operand &op = c.ops[i];
            if (op.state != OpState::NeedBank)
                continue;
            if (!bankAvailable(op.bank)) {
                ctrs.inc(h.banksReadConflicts);
                ++activity;
                continue;
            }
            const regfile::RfAccess acc =
                backend->access(c.warp, op.reg, false);
            occupy(op.bank, acc.busy);
            op.state = OpState::InFlight;
            op.readyAt = now + acc.latency;
            ctrs.inc(h.banksReadGrants);
            ++activity;
        }
    }
    return activity;
}

bool
Sm::warpReady(const WarpContext &w) const
{
    if (!w.valid() || w.done() || w.atBarrier())
        return false;
    if (w.inflight() >= cfg.maxInflightPerWarp)
        return false;
    const auto &in = w.nextInstr();
    if (in.isExit() || in.isBarrier())
        return w.inflight() == 0;
    if (!w.scoreboardReady(in))
        return false;
    if (in.execClass() != isa::ExecClass::Ctrl && freeCollectors == 0)
        return false;
    return true;
}

void
Sm::finishWarp(WarpId wid)
{
    WarpContext &w = warps[wid];
    PILOTRF_TRACE_AT(&traceBuf, TraceCat::Warp, lastCycleSeen, smId,
                     "retire warp %u", unsigned(wid));
    if (traceBuf.wantsStructured()) {
        obs::TraceEvent ev;
        ev.cycle = lastCycleSeen;
        ev.sm = smId;
        ev.warp = std::int32_t(wid);
        ev.categoryName = "warp";
        ev.kind = obs::EventKind::End;
        ev.name = "warp " + std::to_string(unsigned(wid));
        traceBuf.emitStructured(ev);
    }
    --liveWarpCount;
    scheduler.onWarpFinished(wid);
    backend->warpFinished(wid);

    CtaSlot &slot = ctaSlots[w.ctaSlotIndex()];
    panicIf(slot.liveWarps == 0, "CTA live warp underflow");
    if (--slot.liveWarps == 0) {
        slot.valid = false;
        ctrs.inc(h.ctasCompleted);
        return;
    }
    // If the retiring warp was the last one the barrier was waiting for,
    // release the others now.
    if (slot.barrierArrived > 0 && slot.barrierArrived >= slot.liveWarps) {
        slot.barrierArrived = 0;
        for (WarpId other : slot.warps) {
            WarpContext &o = warps[other];
            if (o.valid() && !o.done() && o.cta() == slot.cta &&
                o.atBarrier()) {
                o.setBarrier(false);
                scheduler.onWarpWakeup(other);
            }
        }
        ctrs.inc(h.barriersReleased);
    }
}

void
Sm::arriveBarrier(WarpId wid)
{
    WarpContext &w = warps[wid];
    CtaSlot &slot = ctaSlots[w.ctaSlotIndex()];
    w.setBarrier(true);
    scheduler.onWarpBlocked(wid, false);
    if (++slot.barrierArrived < slot.liveWarps)
        return;
    // Release the whole CTA.
    slot.barrierArrived = 0;
    for (WarpId other : slot.warps) {
        WarpContext &o = warps[other];
        if (o.valid() && !o.done() && o.cta() == slot.cta &&
            o.atBarrier()) {
            o.setBarrier(false);
            scheduler.onWarpWakeup(other);
        }
    }
    ctrs.inc(h.barriersReleased);
}

bool
Sm::issueOne(WarpId wid, Cycle now)
{
    WarpContext &w = warps[wid];
    const isa::Instruction &in = w.nextInstr();

    PILOTRF_TRACE_AT(&traceBuf, TraceCat::Issue, now, smId, "w%u pc %u: %s",
                     unsigned(wid), w.pc(), in.toString().c_str());
    if (in.execClass() == isa::ExecClass::Ctrl) {
        if (in.isBarrier()) {
            w.executeControl(in);
            arriveBarrier(wid);
        } else if (in.isExit()) {
            w.executeControl(in);
            finishWarp(wid);
        } else {
            w.executeControl(in); // branch: SIMT stack update
        }
        ctrs.inc(h.instrCtrl);
        return true;
    }

    // Allocate the lowest-index free collector (same choice as the seed
    // first-free scan, found from the busy set instead).
    panicIf(freeCollectors == 0, "issue without a free collector");
    const std::size_t ci = busyCols.firstClear();
    panicIf(ci >= collectors.size(), "free-collector set out of sync");
    Collector *col = &collectors[ci];
    col->busy = true;
    busyCols.set(ci);
    --freeCollectors;
    col->warp = wid;
    col->in = &in;
    col->nOps = 0;

    w.scoreboardIssue(in);
    w.addInflight();

    // Unique source registers: one bank read per distinct register.
    for (unsigned i = 0; i < in.numSrcs; ++i) {
        const RegId r = in.srcs[i];
        bool dup = false;
        for (unsigned j = 0; j < col->nOps; ++j)
            dup |= col->ops[j].reg == r;
        if (dup) {
            // The collector latches one read for both uses.
            w.releaseRead(r);
            continue;
        }
        Operand &op = col->ops[col->nOps++];
        op.reg = r;
        if (backend->needsBank(wid, r, false)) {
            op.state = OpState::NeedBank;
            op.bank = std::uint16_t(backend->bank(wid, r));
        } else {
            const regfile::RfAccess acc = backend->access(wid, r, false);
            op.state = OpState::InFlight;
            op.readyAt = now + acc.latency;
        }
    }

    w.executeControl(in); // advances the PC

    if (in.isGlobal() && in.isMem())
        scheduler.onWarpBlocked(wid, true); // TL long-latency demotion

    ctrs.inc(in.isMem() ? h.instrMem : h.instrAlu);
    return true;
}

unsigned
Sm::issueStage(Cycle now)
{
    (void)now;
    unsigned issuedTotal = 0;
    for (unsigned s = 0; s < cfg.schedulers; ++s) {
        scheduler.candidates(s, candBuf);
        // Pick the first ready warp and dual-issue from it.
        for (WarpId w : candBuf) {
            if (!scheduler.eligible(w) || !warpReady(warps[w]))
                continue;
            unsigned issued = 0;
            while (issued < cfg.issuePerScheduler && warpReady(warps[w]) &&
                   scheduler.eligible(w)) {
                issueOne(w, now);
                ++issued;
                if (warps[w].done())
                    break;
            }
            if (issued) {
                scheduler.noteIssue(s, w);
                issuedTotal += issued;
            }
            break;
        }
    }
    return issuedTotal;
}

unsigned
Sm::cyclePreLaunch(Cycle now)
{
    lastCycleSeen = now;
    backend->noteCycle(now);
    unsigned activity = 0;
    activity += processWritebackClears(now);
    activity += processExecCompletions(now);
    activity += latchReadyOperands(now);
    activity += dispatchCollectors(now);
    activity += arbitrateBanks(now);
    const unsigned issued = issueStage(now);
    activity += issued;
    backend->cycleHook(now, issued);

    ctrs.inc(h.instrIssued, issued);
    ctrs.inc(h.issueSlotsTotal,
              std::uint64_t(cfg.schedulers) * cfg.issuePerScheduler);
    if (liveWarpCount)
        ctrs.inc(h.cyclesActive);

    if (sampler)
        sampler->tick(now);
    return activity;
}

void
Sm::checkWatchdog() const
{
    if (clk - kernelStart > cfg.maxCycles)
        fatal("kernel %s exceeded the %llu-cycle watchdog",
              kernel->name().c_str(), (unsigned long long)cfg.maxCycles);
}

void
Sm::advanceClock()
{
    ++clk;
    checkWatchdog();
}

StepResult
Sm::step(const EpochContext &ctx)
{
    panicIf(midCycle, "step on an SM with an unresolved launch pause");
    StepResult r;
    while (true) {
        if (idle() && sawExhausted) {
            // Checked before the epoch bound: the serial loop stops
            // stepping such an SM the moment the condition holds, so it
            // must not collect issue-slot credit for later cycles.
            r.stop = StepStop::Finished;
            break;
        }
        // Effective stepping bound: the epoch barrier, tightened while
        // an unreplayed shared-L2 request is in flight. The oldest
        // request's reply cannot become visible before
        // deferredL2Bound(), so cycles below that bound step
        // byte-exactly on the placeholder finish; at the bound, pause
        // so the orchestrator can merge-replay the FIFOs.
        Cycle effEnd = ctx.epochEnd;
        if (ctx.memLookahead)
            effEnd = std::min(effEnd, deferredL2Bound(ctx.memLookahead));
        if (clk >= effEnd) {
            r.stop = effEnd < ctx.epochEnd ? StepStop::NeedsMem
                                           : StepStop::EpochEnd;
            break;
        }
        if (idle()) {
            // The serial loop consults grid exhaustion before stepping
            // an idle SM. An already-exhausted grid can be recorded
            // locally (see EpochContext::grid); otherwise pause so the
            // orchestrator can consult the dispenser at this cycle's
            // place in the global (cycle, smId) order.
            if (ctx.grid && ctx.grid->exhausted()) {
                sawExhausted = true;
                continue; // Finished, next iteration
            }
            r.stop = StepStop::NeedsCta;
            break;
        }
        const unsigned a = cyclePreLaunch(clk);
        r.activity += a;
        if (launchEligible()) {
            if (ctx.grid && ctx.grid->exhausted()) {
                // The serial loop's end-of-cycle launch attempt would
                // find the grid drained: record that without a pause.
                sawExhausted = true;
            } else {
                midCycle = true;
                r.stop = StepStop::NeedsCta;
                break;
            }
        }
        advanceClock();
        if (a || !ctx.allowLocalSkip || !cfg.enableCycleSkip)
            continue;
        // Dead cycle: fast-forward to this SM's own event horizon,
        // clamped to the epoch barrier and the watchdog bound. This is
        // the per-SM harvest a global all-idle skip cannot reach — a
        // neighbour's activity no longer pins this SM to single-
        // stepping. (A CTA launch cannot be the skipped-over event:
        // launchEligible() was false this cycle, the grid only drains,
        // and warp slots free only at this SM's own event cycles.)
        Cycle horizon = nextEventCycle(clk);
        horizon = std::min(horizon, effEnd);
        horizon = std::min(horizon, ctx.watchdogLimit + 1);
        if (horizon > clk) {
            r.skipped += horizon - clk;
            skipCycles(clk, horizon);
        }
    }
    r.now = clk;
    return r;
}

unsigned
Sm::resolveLaunch(CtaSource &ctas)
{
    if (midCycle) {
        // The cycle's stages already ran; finish it with the launch
        // attempt the serial loop puts last in the cycle.
        midCycle = false;
        const unsigned launched = tryLaunchCtas(ctas);
        advanceClock();
        return launched;
    }
    // Pre-cycle pause: an idle SM. The serial loop steps it only while
    // the grid still has CTAs; an exhausted grid parks it for good.
    if (ctas.exhausted()) {
        sawExhausted = true;
        return 0;
    }
    unsigned activity = cyclePreLaunch(clk);
    if (launchEligible())
        activity += tryLaunchCtas(ctas);
    advanceClock();
    return activity;
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    // Anything issue-eligible issues at `now`: no skipping.
    for (WarpId w = 0; w < warps.size(); ++w)
        if (scheduler.eligible(w) && warpReady(warps[w]))
            return now;

    Cycle horizon = execNextDue; // min over in-flight completions

    if (!clears.empty())
        horizon = std::min(horizon, clears.top().at);

    // Collectors: in-flight operands latch at readyAt; a NeedBank operand
    // contends for (or is granted) a bank port every cycle, so its mere
    // existence pins the horizon at `now` (banksReadConflicts counts
    // per-wait-cycle). An all-ready collector dispatches at `now` unless
    // it is a memory op held by the outstanding-transaction cap — that
    // unblocks at a memory completion, which execNextDue already covers.
    for (const auto &c : collectors) {
        if (!c.busy)
            continue;
        bool allReady = true;
        for (unsigned i = 0; i < c.nOps; ++i) {
            const Operand &op = c.ops[i];
            if (op.state == OpState::NeedBank)
                return now;
            if (op.state == OpState::InFlight) {
                horizon = std::min(horizon, op.readyAt);
                allReady = false;
            }
        }
        if (allReady &&
            !(c.in->execClass() == isa::ExecClass::Mem &&
              outstandingMem >= cfg.maxOutstandingMem))
            return now;
    }

    // Pending writebacks are granted the moment their bank frees.
    for (const auto &req : wbQueue)
        horizon = std::min(horizon, std::max(now, bankFree[req.bank]));

    // The RF backend's own horizon (epoch boundaries under tracing).
    horizon = std::min(horizon, backend->nextEventCycle(now));

    // Never skip across a time-series sample point.
    if (sampler)
        horizon = std::min(horizon,
                           lastCycleSeen + sampler->ticksUntilSample());

    return horizon;
}

void
Sm::skipCycles(Cycle from, Cycle to)
{
    panicIf(from != clk, "skipCycles not anchored at the local clock");
    const std::uint64_t n = to - from;
    if (!n)
        return;
    // Per-cycle side effects of n dead cycles, in closed form. Dead
    // cycles issue nothing and touch no warp, so only the unconditional
    // counters move: the issue-slot denominator, the active-cycle count
    // (live warps were parked, not absent), the backend's idle accounting
    // and the sampler's tick count.
    ctrs.inc(h.issueSlotsTotal,
             n * std::uint64_t(cfg.schedulers) * cfg.issuePerScheduler);
    if (liveWarpCount)
        ctrs.inc(h.cyclesActive, n);
    backend->advanceIdle(from, n);
    if (sampler)
        sampler->skipTicks(n);
    lastCycleSeen = to - 1;
    ffCycles += n;
    clk = to;
    checkWatchdog();
}

} // namespace pilotrf::sim
