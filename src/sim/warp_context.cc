#include "sim/warp_context.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace pilotrf::sim
{

void
WarpContext::launch(const isa::Kernel *k, CtaId cta, unsigned wInCta,
                    unsigned slot, std::uint64_t age_, unsigned threads)
{
    kernel = k;
    ctaId = cta;
    warpInCta = wInCta;
    ctaSlot = slot;
    age = age_;
    finished = false;
    barrierWait = false;
    nInflight = 0;
    pendingWrites = 0;
    readRefs.fill(0);
    loops.clear();
    branchVisits.clear();
    launchMask = threads >= warpSize ? fullMask
                                     : ((ActiveMask(1) << threads) - 1);
    stack.init(launchMask);
}

namespace
{
std::uint64_t
regMask(const isa::Instruction &in)
{
    std::uint64_t m = 0;
    for (unsigned i = 0; i < in.numDsts; ++i)
        m |= std::uint64_t(1) << in.dsts[i];
    for (unsigned i = 0; i < in.numSrcs; ++i)
        m |= std::uint64_t(1) << in.srcs[i];
    return m;
}
} // namespace

bool
WarpContext::scoreboardReady(const isa::Instruction &in) const
{
    // RAW and WAW: no touched register may have a pending write.
    if (regMask(in) & pendingWrites)
        return false;
    // WAR: a destination may not be an in-flight read of an older
    // instruction.
    for (unsigned i = 0; i < in.numDsts; ++i)
        if (readRefs[in.dsts[i]])
            return false;
    return true;
}

void
WarpContext::scoreboardIssue(const isa::Instruction &in)
{
    for (unsigned i = 0; i < in.numDsts; ++i)
        pendingWrites |= std::uint64_t(1) << in.dsts[i];
    for (unsigned i = 0; i < in.numSrcs; ++i)
        ++readRefs[in.srcs[i]];
}

void
WarpContext::releaseRead(RegId r)
{
    panicIf(readRefs[r] == 0, "releaseRead underflow");
    --readRefs[r];
}

void
WarpContext::releaseWrite(RegId r)
{
    pendingWrites &= ~(std::uint64_t(1) << r);
}

void
WarpContext::removeInflight()
{
    panicIf(nInflight == 0, "inflight underflow");
    --nInflight;
}

unsigned
WarpContext::tripsFor(const isa::Instruction &in, Pc pc,
                      unsigned lane) const
{
    unsigned trips = in.tripBase;
    if (in.tripSpread) {
        const bool perLane = in.branch == isa::BranchKind::LoopDivergent;
        const std::uint64_t h =
            hashCoords(kernel->seed(), ctaId, warpInCta,
                       perLane ? lane : 1000u, pc);
        trips += unsigned(h % in.tripSpread);
    }
    return trips;
}

ActiveMask
WarpContext::evalBranch(const isa::Instruction &in, Pc pc)
{
    const ActiveMask active = stack.mask();
    using isa::BranchKind;

    switch (in.branch) {
      case BranchKind::Uniform: {
        const std::uint32_t visit = branchVisits[pc]++;
        const double u = hashToUnit(
            hashCoords(kernel->seed(), ctaId, warpInCta, pc, visit));
        return u < in.takenFrac ? active : 0;
      }
      case BranchKind::Divergent: {
        const std::uint32_t visit = branchVisits[pc]++;
        ActiveMask taken = 0;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(active & (ActiveMask(1) << lane)))
                continue;
            const double u = hashToUnit(hashCoords(
                kernel->seed(), ctaId, warpInCta, lane, pc, visit));
            if (u < in.takenFrac)
                taken |= ActiveMask(1) << lane;
        }
        return taken;
      }
      case BranchKind::LoopUniform:
      case BranchKind::LoopDivergent: {
        LoopState &ls = loops[pc];
        ActiveMask taken = 0;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(active & (ActiveMask(1) << lane)))
                continue;
            const unsigned trips = tripsFor(in, pc, lane);
            ++ls.iter[lane];
            if (ls.iter[lane] < trips) {
                taken |= ActiveMask(1) << lane;
            } else {
                ls.iter[lane] = 0; // allow outer-loop re-entry
            }
        }
        return taken;
      }
      case BranchKind::None:
        break;
    }
    panic("branch without behaviour");
}

bool
WarpContext::executeControl(const isa::Instruction &in)
{
    panicIf(finished, "executeControl on a finished warp");
    if (in.isExit()) {
        finished = true;
        return true;
    }
    if (in.isBarrier()) {
        // The SM tracks arrival; the warp just advances past the barrier
        // and is held by the barrierWait flag.
        stack.advance();
        return false;
    }
    if (in.isBranch()) {
        const Pc pc = stack.pc();
        const ActiveMask taken = evalBranch(in, pc);
        stack.branch(taken, in.target, in.reconverge);
        return false;
    }
    stack.advance();
    return false;
}

} // namespace pilotrf::sim
