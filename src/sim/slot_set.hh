/**
 * @file
 * A fixed-size bitset over hardware slot indices (operand collectors,
 * warp slots) sized at runtime, with the two iteration orders the SM's
 * arbitration loops need: ascending and rotated-from-a-start-index. Not
 * capped at 64 slots — collector counts are JSON-configurable — so the
 * storage is a word vector, not a single mask.
 */

#ifndef PILOTRF_SIM_SLOT_SET_HH
#define PILOTRF_SIM_SLOT_SET_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pilotrf::sim
{

class SlotSet
{
  public:
    /** Size the set to n slots, all clear. */
    void resize(std::size_t n)
    {
        nBits = n;
        words.assign((n + 63) / 64, 0);
    }

    void clearAll()
    {
        std::fill(words.begin(), words.end(), std::uint64_t(0));
    }

    void set(std::size_t i) { words[i >> 6] |= std::uint64_t(1) << (i & 63); }
    void clear(std::size_t i)
    {
        words[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }
    bool test(std::size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    std::size_t size() const { return nBits; }

    /** Lowest clear slot index, or size() when every slot is set. */
    std::size_t firstClear() const
    {
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            const std::uint64_t inv = ~words[wi];
            if (!inv)
                continue;
            const std::size_t i =
                (wi << 6) + std::size_t(std::countr_zero(inv));
            return i < nBits ? i : nBits;
        }
        return nBits;
    }

    /**
     * Append the set slot indices to @p out in rotated order: start,
     * start+1, ..., size()-1, 0, ..., start-1. @p out is cleared first.
     * Pass start = 0 for plain ascending order.
     */
    void collectFrom(std::size_t start, std::vector<std::size_t> &out) const
    {
        out.clear();
        appendRange(start, nBits, out);
        appendRange(0, start, out);
    }

  private:
    /** Append set bits in [lo, hi) in ascending order. */
    void appendRange(std::size_t lo, std::size_t hi,
                     std::vector<std::size_t> &out) const
    {
        if (lo >= hi)
            return;
        const std::size_t wEnd = (hi + 63) >> 6;
        for (std::size_t wi = lo >> 6; wi < wEnd; ++wi) {
            std::uint64_t w = words[wi];
            const std::size_t base = wi << 6;
            if (base < lo)
                w &= ~std::uint64_t(0) << (lo - base);
            if (base + 64 > hi) {
                const unsigned keep = unsigned(hi - base);
                if (keep < 64)
                    w &= ~std::uint64_t(0) >> (64 - keep);
            }
            while (w) {
                out.push_back(base +
                              std::size_t(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

    std::size_t nBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SLOT_SET_HH
