/**
 * @file
 * Per-warp SIMT reconvergence stack (immediate-post-dominator scheme, as
 * in GPGPU-Sim). Branch divergence pushes taken/not-taken entries that
 * share a reconvergence PC; entries pop when execution reaches it.
 */

#ifndef PILOTRF_SIM_SIMT_STACK_HH
#define PILOTRF_SIM_SIMT_STACK_HH

#include <vector>

#include "common/types.hh"

namespace pilotrf::sim
{

class SimtStack
{
  public:
    /** Sentinel reconvergence PC of the outermost entry. */
    static constexpr Pc noRpc = 0xffffffff;

    /** Reset to a single entry at pc 0 with the given mask. */
    void init(ActiveMask mask);

    Pc pc() const;
    ActiveMask mask() const;
    bool empty() const { return entries.empty(); }
    std::size_t depth() const { return entries.size(); }

    /** Sequential instruction: advance TOS pc by one. */
    void advance();

    /**
     * Apply a branch executed at the current pc.
     *
     * @param takenMask lanes (subset of mask()) taking the branch
     * @param target branch target pc
     * @param rpc immediate post-dominator of the branch
     */
    void branch(ActiveMask takenMask, Pc target, Pc rpc);

    /** Force the TOS pc (used by tests). */
    void setPc(Pc pc);

  private:
    struct Entry
    {
        Pc pc;
        Pc rpc;
        ActiveMask mask;
    };

    void popReconverged();

    std::vector<Entry> entries;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_SIMT_STACK_HH
