/**
 * @file
 * A small set-associative cache model used as the optional per-SM L1 data
 * cache for global memory accesses. Lines are 128 B (one coalesced warp
 * transaction); replacement is LRU. The default memory model is the
 * paper's fixed-latency one; the L1 is an extension toggled by
 * SimConfig::l1Enable, and the ablation bench quantifies how the
 * partitioned-RF conclusions hold with caches present.
 */

#ifndef PILOTRF_SIM_CACHE_HH
#define PILOTRF_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pilotrf::sim
{

class Cache
{
  public:
    /**
     * @param sizeBytes total capacity
     * @param assoc ways per set
     * @param lineBytes line size (default: one warp transaction)
     */
    Cache(unsigned sizeBytes, unsigned assoc, unsigned lineBytes = 128);

    /** Access a byte address; true on hit. Misses allocate (LRU). */
    bool access(std::uint64_t addr);

    /** Drop all lines. */
    void flush();

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    double hitRate() const;

    unsigned sets() const { return unsigned(tags.size() / assoc); }
    unsigned ways() const { return assoc; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned assoc;
    unsigned lineShift;
    std::vector<Line> tags; // sets x ways, row-major
    std::uint64_t useClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_CACHE_HH
