/**
 * @file
 * A small set-associative cache model used as the optional per-SM L1 data
 * cache for global memory accesses. Lines are 128 B (one coalesced warp
 * transaction); replacement is LRU. The default memory model is the
 * paper's fixed-latency one; the L1 is an extension toggled by
 * SimConfig::l1Enable, and the ablation bench quantifies how the
 * partitioned-RF conclusions hold with caches present.
 *
 * `MemSystem` wraps the GPU-wide shared L2 built from the same cache
 * model plus an optional DRAM stage behind it: a missed line pays a
 * fixed DRAM round trip on top of the L2 lookup plus queueing at its
 * address-interleaved memory partition, instead of the flat
 * `globalLatency`. The partition topology follows the GPGPU-Sim
 * QuadroFX5600 blueprint (6 memory partitions, FR-FCFS-style service
 * approximated by a per-partition service interval).
 */

#ifndef PILOTRF_SIM_CACHE_HH
#define PILOTRF_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pilotrf::sim
{

class Cache
{
  public:
    /**
     * @param sizeBytes total capacity
     * @param assoc ways per set
     * @param lineBytes line size (default: one warp transaction)
     */
    Cache(unsigned sizeBytes, unsigned assoc, unsigned lineBytes = 128);

    /** Access a byte address; true on hit. Misses allocate (LRU). */
    bool access(std::uint64_t addr);

    /** Drop all lines. */
    void flush();

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    double hitRate() const;

    unsigned sets() const { return unsigned(tags.size() / assoc); }
    unsigned ways() const { return assoc; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned assoc;
    unsigned lineShift;
    std::vector<Line> tags; // sets x ways, row-major
    std::uint64_t useClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

/**
 * The GPU-wide shared memory system behind the per-SM L1s: one L2
 * `Cache` plus an optional DRAM stage. A single `access()` serves all
 * L1-missed lines of one coalesced request and returns the hit/miss
 * split plus the latency the requesting SM should charge on top of its
 * transaction serialization.
 *
 * With the DRAM stage off, the latency is the flat model the Sm always
 * used: `l2HitLatency` when every line hits, `missLatency` (the
 * config's `globalLatency`) when any line misses. With it on, each
 * missed line is issued to its address-interleaved partition
 * (`lineAddr % partitions`) after the L2 lookup, waits for the
 * partition to come free (each service occupies it for
 * `serviceCycles`), then pays the fixed `dramLatency` round trip; the
 * request completes when its slowest line returns.
 *
 * Because the L2 and the partition free-times are shared mutable state,
 * every access must happen in the serial cycle-major order — the
 * lockstep engine calls `access()` inline, the sharded engine defers
 * per-SM request records and replays them through this class at epoch
 * barriers in (cycle, smId) order (see docs/performance.md).
 */
class MemSystem
{
  public:
    struct Result
    {
        unsigned hits = 0;   ///< lines that hit in the L2
        unsigned misses = 0; ///< lines that missed (went to DRAM)
        Cycle latency = 0;   ///< request latency before serialization
    };

    MemSystem(unsigned l2SizeBytes, unsigned l2Assoc, unsigned l2HitLatency,
              unsigned missLatency, bool dramEnable, unsigned dramLatency,
              unsigned dramPartitions, unsigned dramServiceCycles);

    /**
     * Serve one request's L1-missed lines, in order, at cycle `start`
     * (the SM-side issue cycle, after its mem-unit serialization
     * queue). Updates L2 contents and DRAM partition queues.
     */
    Result access(Cycle start, const std::uint64_t *lineAddrs, unsigned n);

    /** Drop all L2 lines and idle the DRAM partitions (kernel reset). */
    void flush();

    /**
     * The smallest latency any request can return. The sharded engine
     * sets `EpochContext::memLookahead` to `minResponseLatency() + 1`:
     * an SM may simulate up to (but not at) its oldest unreplayed
     * request's issue cycle plus this latency plus its line burst
     * before the reply could become visible — deferring requests below
     * that bound is then architecturally invisible.
     */
    Cycle minResponseLatency() const;

    const Cache &l2() const { return cache; }

    /// DRAM telemetry (not part of the architectural stats).
    std::uint64_t dramRequests() const { return nDramReqs; }
    std::uint64_t dramQueueCycles() const { return queueCycles; }

  private:
    Cache cache;
    unsigned hitLatency;
    unsigned missLatency;
    bool dram;
    unsigned dramLat;
    unsigned serviceCycles;
    std::vector<Cycle> partFree; // per-partition next-free cycle
    std::uint64_t nDramReqs = 0;
    std::uint64_t queueCycles = 0;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_CACHE_HH
