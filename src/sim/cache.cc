#include "sim/cache.hh"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "common/logging.hh"

namespace pilotrf::sim
{

Cache::Cache(unsigned sizeBytes, unsigned assoc_, unsigned lineBytes)
    : assoc(assoc_)
{
    panicIf(assoc == 0, "cache with zero ways");
    panicIf(lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0,
            "cache line size must be a power of two");
    const unsigned lines = sizeBytes / lineBytes;
    panicIf(lines == 0 || lines % assoc != 0,
            "cache size/assoc/line combination invalid");
    const unsigned nSets = lines / assoc;
    panicIf((nSets & (nSets - 1)) != 0, "cache set count must be a power "
                                        "of two");
    lineShift = unsigned(std::countr_zero(lineBytes));
    tags.assign(std::size_t(nSets) * assoc, Line{});
}

bool
Cache::access(std::uint64_t addr)
{
    const std::uint64_t lineAddr = addr >> lineShift;
    const unsigned nSets = sets();
    const std::uint64_t set = lineAddr & (nSets - 1);
    const std::uint64_t tag = lineAddr >> unsigned(std::countr_zero(nSets));

    Line *base = &tags[set * assoc];
    Line *victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock;
            ++nHits;
            return true;
        }
        if (!l.valid || l.lastUse < victim->lastUse)
            victim = &l;
    }
    *victim = Line{tag, ++useClock, true};
    ++nMisses;
    return false;
}

void
Cache::flush()
{
    for (auto &l : tags)
        l = Line{};
}

double
Cache::hitRate() const
{
    const std::uint64_t total = nHits + nMisses;
    return total ? double(nHits) / double(total) : 0.0;
}

MemSystem::MemSystem(unsigned l2SizeBytes, unsigned l2Assoc,
                     unsigned l2HitLatency, unsigned missLatency_,
                     bool dramEnable, unsigned dramLatency,
                     unsigned dramPartitions, unsigned dramServiceCycles)
    : cache(l2SizeBytes, l2Assoc), hitLatency(l2HitLatency),
      missLatency(missLatency_), dram(dramEnable), dramLat(dramLatency),
      serviceCycles(dramServiceCycles)
{
    panicIf(dram && dramPartitions == 0, "DRAM stage with zero partitions");
    if (dram)
        partFree.assign(dramPartitions, Cycle(0));
}

MemSystem::Result
MemSystem::access(Cycle start, const std::uint64_t *lineAddrs, unsigned n)
{
    Result r;
    Cycle worstReady = 0;
    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t addr = lineAddrs[i];
        if (cache.access(addr)) {
            ++r.hits;
            continue;
        }
        ++r.misses;
        if (!dram)
            continue;
        // Address-interleave 128 B lines across the memory partitions
        // and serialize on the owning partition's service queue.
        const std::size_t p = std::size_t(addr >> 7) % partFree.size();
        const Cycle issue = start + hitLatency;
        const Cycle svc = std::max(issue, partFree[p]);
        queueCycles += svc - issue;
        partFree[p] = svc + serviceCycles;
        worstReady = std::max(worstReady, svc + dramLat);
        ++nDramReqs;
    }
    if (r.misses == 0)
        r.latency = hitLatency;
    else if (!dram)
        r.latency = missLatency;
    else
        r.latency = std::max<Cycle>(hitLatency, worstReady - start);
    return r;
}

void
MemSystem::flush()
{
    cache.flush();
    for (auto &f : partFree)
        f = 0;
}

Cycle
MemSystem::minResponseLatency() const
{
    // All-hit requests cost hitLatency; with the flat miss model a
    // pathological config could make missLatency even cheaper.
    return dram ? Cycle(hitLatency)
                : Cycle(std::min(hitLatency, missLatency));
}

} // namespace pilotrf::sim
