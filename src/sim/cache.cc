#include "sim/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace pilotrf::sim
{

Cache::Cache(unsigned sizeBytes, unsigned assoc_, unsigned lineBytes)
    : assoc(assoc_)
{
    panicIf(assoc == 0, "cache with zero ways");
    panicIf(lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0,
            "cache line size must be a power of two");
    const unsigned lines = sizeBytes / lineBytes;
    panicIf(lines == 0 || lines % assoc != 0,
            "cache size/assoc/line combination invalid");
    const unsigned nSets = lines / assoc;
    panicIf((nSets & (nSets - 1)) != 0, "cache set count must be a power "
                                        "of two");
    lineShift = unsigned(std::countr_zero(lineBytes));
    tags.assign(std::size_t(nSets) * assoc, Line{});
}

bool
Cache::access(std::uint64_t addr)
{
    const std::uint64_t lineAddr = addr >> lineShift;
    const unsigned nSets = sets();
    const std::uint64_t set = lineAddr & (nSets - 1);
    const std::uint64_t tag = lineAddr >> unsigned(std::countr_zero(nSets));

    Line *base = &tags[set * assoc];
    Line *victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock;
            ++nHits;
            return true;
        }
        if (!l.valid || l.lastUse < victim->lastUse)
            victim = &l;
    }
    *victim = Line{tag, ++useClock, true};
    ++nMisses;
    return false;
}

void
Cache::flush()
{
    for (auto &l : tags)
        l = Line{};
}

double
Cache::hitRate() const
{
    const std::uint64_t total = nHits + nMisses;
    return total ? double(nHits) / double(total) : 0.0;
}

} // namespace pilotrf::sim
