#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "common/logging.hh"

namespace pilotrf::sim
{

unsigned Trace::mask = 0;

namespace
{

/** The global hub's default text sink (so setStream can re-point it). */
obs::TextTraceSink *globalTextSink = nullptr;

} // namespace

obs::TraceHub &
Trace::hub()
{
    static obs::TraceHub theHub = [] {
        obs::TraceHub h;
        globalTextSink = static_cast<obs::TextTraceSink *>(
            &h.addSink(std::make_unique<obs::TextTraceSink>(std::cerr)));
        return h;
    }();
    return theHub;
}

const char *
toString(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Issue: return "issue";
      case TraceCat::Exec: return "exec";
      case TraceCat::Mem: return "mem";
      case TraceCat::Bank: return "bank";
      case TraceCat::Warp: return "warp";
      case TraceCat::Cta: return "cta";
      case TraceCat::Swap: return "swap";
      case TraceCat::Backgate: return "backgate";
      case TraceCat::NumCats: break;
    }
    return "?";
}

std::optional<TraceCat>
parseTraceCat(std::string_view name)
{
    for (unsigned c = 0; c < unsigned(TraceCat::NumCats); ++c)
        if (name == toString(TraceCat(c)))
            return TraceCat(c);
    return std::nullopt;
}

void
Trace::enable(TraceCat cat)
{
    mask |= 1u << unsigned(cat);
}

void
Trace::disable(TraceCat cat)
{
    mask &= ~(1u << unsigned(cat));
}

void
Trace::disableAll()
{
    mask = 0;
}

unsigned
Trace::enableFromList(const char *list)
{
    unsigned count = 0;
    std::string item;
    const char *p = list;
    auto flush = [&] {
        bool matched = item.empty();
        if (const auto cat = parseTraceCat(item)) {
            enable(*cat);
            matched = true;
            ++count;
        }
        if (!matched) {
            // A misspelled PILOTRF_TRACE category used to be silently
            // ignored; warn, but only once per distinct name.
            static std::set<std::string> warned;
            if (warned.insert(item).second) {
                std::string known;
                for (unsigned c = 0; c < unsigned(TraceCat::NumCats); ++c)
                    known += std::string(c ? ", " : "") +
                             toString(TraceCat(c));
                warn("unknown trace category '%s' (known: %s)",
                     item.c_str(), known.c_str());
            }
        }
        item.clear();
    };
    for (; *p; ++p) {
        if (*p == ',')
            flush();
        else if (!std::isspace(static_cast<unsigned char>(*p)))
            item += char(std::tolower(static_cast<unsigned char>(*p)));
    }
    flush();
    return count;
}

void
Trace::initFromEnvironment()
{
    if (const char *env = std::getenv("PILOTRF_TRACE"))
        enableFromList(env);
}

void
Trace::setStream(std::ostream &os)
{
    hub(); // ensure the default text sink exists
    globalTextSink->setStream(os);
}

bool
Trace::vmake(const obs::TraceBuffer *buf, TraceCat cat, Cycle cycle,
             SmId sm, obs::TraceEvent &ev, std::uint8_t &dest,
             const char *fmt, va_list ap)
{
    char msg[512];
    std::vsnprintf(msg, sizeof(msg), fmt, ap);

    ev.cycle = cycle;
    ev.sm = sm;
    ev.category = unsigned(cat);
    ev.categoryName = toString(cat);
    ev.kind = obs::EventKind::Instant;
    ev.text = msg;

    // Destination channels are resolved here, at the emission site, from
    // run-constant gates; the buffer then delivers now or at the next
    // barrier without re-deciding.
    dest = 0;
    if (enabled(cat))
        dest |= obs::TraceBuffer::GlobalText;
    if (buf && buf->localTextEnabled(unsigned(cat)))
        dest |= obs::TraceBuffer::LocalText;
    return dest != 0;
}

void
Trace::vlog(obs::TraceBuffer *buf, TraceCat cat, Cycle cycle, SmId sm,
            const char *fmt, va_list ap)
{
    obs::TraceEvent ev;
    std::uint8_t dest;
    if (!vmake(buf, cat, cycle, sm, ev, dest, fmt, ap))
        return;
    if (buf)
        buf->emit(ev, dest);
    else
        hub().dispatch(ev); // dest can only be GlobalText here
}

bool
Trace::makeEvent(const obs::TraceBuffer *buf, TraceCat cat, Cycle cycle,
                 SmId sm, obs::TraceEvent &ev, std::uint8_t &dest,
                 const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const bool any = vmake(buf, cat, cycle, sm, ev, dest, fmt, ap);
    va_end(ap);
    return any;
}

void
Trace::log(TraceCat cat, Cycle cycle, SmId sm, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog(nullptr, cat, cycle, sm, fmt, ap);
    va_end(ap);
}

void
Trace::logTo(obs::TraceBuffer *buf, TraceCat cat, Cycle cycle, SmId sm,
             const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog(buf, cat, cycle, sm, fmt, ap);
    va_end(ap);
}

} // namespace pilotrf::sim
