#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "common/logging.hh"

namespace pilotrf::sim
{

unsigned Trace::mask = 0;
std::ostream *Trace::stream = &std::cerr;

const char *
toString(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Issue: return "issue";
      case TraceCat::Exec: return "exec";
      case TraceCat::Mem: return "mem";
      case TraceCat::Bank: return "bank";
      case TraceCat::Warp: return "warp";
      case TraceCat::Cta: return "cta";
      case TraceCat::NumCats: break;
    }
    return "?";
}

void
Trace::enable(TraceCat cat)
{
    mask |= 1u << unsigned(cat);
}

void
Trace::disable(TraceCat cat)
{
    mask &= ~(1u << unsigned(cat));
}

void
Trace::disableAll()
{
    mask = 0;
}

unsigned
Trace::enableFromList(const char *list)
{
    unsigned count = 0;
    std::string item;
    const char *p = list;
    auto flush = [&] {
        bool matched = item.empty();
        for (unsigned c = 0; c < unsigned(TraceCat::NumCats); ++c) {
            if (item == toString(TraceCat(c))) {
                enable(TraceCat(c));
                matched = true;
                ++count;
            }
        }
        if (!matched) {
            // A misspelled PILOTRF_TRACE category used to be silently
            // ignored; warn, but only once per distinct name.
            static std::set<std::string> warned;
            if (warned.insert(item).second) {
                std::string known;
                for (unsigned c = 0; c < unsigned(TraceCat::NumCats); ++c)
                    known += std::string(c ? ", " : "") +
                             toString(TraceCat(c));
                warn("unknown trace category '%s' (known: %s)",
                     item.c_str(), known.c_str());
            }
        }
        item.clear();
    };
    for (; *p; ++p) {
        if (*p == ',')
            flush();
        else if (!std::isspace(static_cast<unsigned char>(*p)))
            item += char(std::tolower(static_cast<unsigned char>(*p)));
    }
    flush();
    return count;
}

void
Trace::initFromEnvironment()
{
    if (const char *env = std::getenv("PILOTRF_TRACE"))
        enableFromList(env);
}

void
Trace::setStream(std::ostream &os)
{
    stream = &os;
}

void
Trace::log(TraceCat cat, Cycle cycle, SmId sm, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    (*stream) << cycle << ": sm" << sm << " " << toString(cat) << ": "
              << buf << "\n";
}

} // namespace pilotrf::sim
