#include "sim/sim_config.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace pilotrf::sim
{

const char *
toString(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::Gto: return "GTO";
      case SchedulerPolicy::Lrr: return "LRR";
      case SchedulerPolicy::TwoLevel: return "TL";
    }
    return "?";
}

std::optional<SchedulerPolicy>
parseSchedulerPolicy(std::string_view name)
{
    for (unsigned p = 0; p < numSchedulerPolicies; ++p)
        if (name == toString(SchedulerPolicy(p)))
            return SchedulerPolicy(p);
    return std::nullopt;
}

const char *
toString(ShardSchedule s)
{
    switch (s) {
      case ShardSchedule::Static: return "static";
      case ShardSchedule::Dynamic: return "dynamic";
    }
    return "?";
}

std::optional<ShardSchedule>
parseShardSchedule(std::string_view name)
{
    for (unsigned s = 0; s < numShardSchedules; ++s)
        if (name == toString(ShardSchedule(s)))
            return ShardSchedule(s);
    return std::nullopt;
}

const char *
toString(RfKind k)
{
    switch (k) {
      case RfKind::MrfStv: return "MRF@STV";
      case RfKind::MrfNtv: return "MRF@NTV";
      case RfKind::Partitioned: return "Partitioned";
      case RfKind::Rfc: return "RFC";
      case RfKind::Drowsy: return "Drowsy";
    }
    return "?";
}

std::optional<RfKind>
parseRfKind(std::string_view name)
{
    for (unsigned k = 0; k < numRfKinds; ++k)
        if (name == toString(RfKind(k)))
            return RfKind(k);
    return std::nullopt;
}

unsigned
SimConfig::ctasPerSm(unsigned regsPerThread, unsigned threadsPerCta,
                     unsigned warpsPerCta) const
{
    panicIf(warpsPerCta == 0, "CTA with no warps");
    const unsigned byWarps = warpsPerSm / warpsPerCta;
    const unsigned regsPerCta = regsPerThread * threadsPerCta;
    const unsigned byRegs = regsPerCta ? threadRegsPerSm / regsPerCta
                                       : maxCtasPerSm;
    return std::max(1u, std::min({maxCtasPerSm, byWarps, byRegs}));
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << toString(rfKind) << "/" << toString(policy) << " sms=" << numSms
       << " sched=" << schedulers << "x" << issuePerScheduler
       << " banks=" << rfBanks;
    if (rfKind == RfKind::Partitioned)
        os << " prof=" << regfile::toString(prf.profiling)
           << (prf.adaptiveFrf ? "+adaptive" : "");
    if (policy == SchedulerPolicy::TwoLevel)
        os << " active=" << tlActiveWarps;
    return os.str();
}

} // namespace pilotrf::sim
