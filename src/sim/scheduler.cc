#include "sim/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pilotrf::sim
{

Scheduler::Scheduler(const SimConfig &cfg_, ActiveChangeFn fn)
    : cfg(cfg_), onActiveChange(std::move(fn))
{
    reset();
}

void
Scheduler::reset()
{
    ages.assign(cfg.warpsPerSm, 0);
    live.assign(cfg.warpsPerSm, false);
    greedy.assign(cfg.schedulers, WarpId(-1));
    rrPtr.assign(cfg.schedulers, 0);
    active.clear();
    pending.clear();
}

void
Scheduler::removeFrom(std::vector<WarpId> &v, WarpId w)
{
    v.erase(std::remove(v.begin(), v.end(), w), v.end());
}

void
Scheduler::onWarpLaunched(WarpId w, std::uint64_t age)
{
    ages[w] = age;
    live[w] = true;
    if (cfg.policy == SchedulerPolicy::TwoLevel) {
        pending.push_back(w);
        fillActive();
    }
}

void
Scheduler::onWarpFinished(WarpId w)
{
    live[w] = false;
    for (auto &g : greedy)
        if (g == w)
            g = WarpId(-1);
    if (cfg.policy == SchedulerPolicy::TwoLevel) {
        if (inActive(w)) {
            removeFrom(active, w);
            onActiveChange(w, false);
        }
        pending.erase(std::remove(pending.begin(), pending.end(), w),
                      pending.end());
        fillActive();
    }
}

void
Scheduler::onWarpBlocked(WarpId w, bool requeue)
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return;
    if (inActive(w)) {
        removeFrom(active, w);
        onActiveChange(w, false);
    }
    if (requeue &&
        std::find(pending.begin(), pending.end(), w) == pending.end())
        pending.push_back(w);
    fillActive();
}

void
Scheduler::onWarpWakeup(WarpId w)
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return;
    if (!live[w] || inActive(w))
        return;
    if (std::find(pending.begin(), pending.end(), w) == pending.end())
        pending.push_back(w);
    fillActive();
}

void
Scheduler::fillActive()
{
    while (active.size() < cfg.tlActiveWarps && !pending.empty()) {
        WarpId w = pending.front();
        pending.pop_front();
        if (!live[w])
            continue;
        active.push_back(w);
        onActiveChange(w, true);
    }
}

bool
Scheduler::inActive(WarpId w) const
{
    return std::find(active.begin(), active.end(), w) != active.end();
}

bool
Scheduler::eligible(WarpId w) const
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return true;
    return inActive(w);
}

void
Scheduler::noteIssue(unsigned sched, WarpId w)
{
    greedy[sched] = w;
    rrPtr[sched] = w;
    if (cfg.policy == SchedulerPolicy::TwoLevel && inActive(w)) {
        // Rotate the issued warp to the back of the pool (round-robin
        // within the active set).
        removeFrom(active, w);
        active.push_back(w);
    }
}

void
Scheduler::candidates(unsigned sched, std::vector<WarpId> &out) const
{
    out.clear();
    switch (cfg.policy) {
      case SchedulerPolicy::TwoLevel:
        for (WarpId w : active)
            if (w % cfg.schedulers == sched && live[w])
                out.push_back(w);
        return;
      case SchedulerPolicy::Gto: {
        for (WarpId w = sched; w < cfg.warpsPerSm;
             w += WarpId(cfg.schedulers))
            if (live[w])
                out.push_back(w);
        const WarpId g = greedy[sched];
        std::stable_sort(out.begin(), out.end(), [&](WarpId a, WarpId b) {
            if ((a == g) != (b == g))
                return a == g;
            return ages[a] < ages[b];
        });
        return;
      }
      case SchedulerPolicy::Lrr: {
        std::vector<WarpId> slot;
        for (WarpId w = sched; w < cfg.warpsPerSm;
             w += WarpId(cfg.schedulers))
            slot.push_back(w);
        // Rotate to start just after the last issued warp.
        auto it = std::find(slot.begin(), slot.end(), rrPtr[sched]);
        std::size_t start =
            it == slot.end() ? 0 : (it - slot.begin() + 1) % slot.size();
        for (std::size_t i = 0; i < slot.size(); ++i) {
            WarpId w = slot[(start + i) % slot.size()];
            if (live[w])
                out.push_back(w);
        }
        return;
      }
    }
}

} // namespace pilotrf::sim
