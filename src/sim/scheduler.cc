#include "sim/scheduler.hh"

#include "common/logging.hh"

namespace pilotrf::sim
{

Scheduler::Scheduler(const SimConfig &cfg_, ActiveChangeFn fn)
    : cfg(cfg_), onActiveChange(std::move(fn))
{
    reset();
}

void
Scheduler::reset()
{
    ages.assign(cfg.warpsPerSm, 0);
    live.assign(cfg.warpsPerSm, false);
    greedy.assign(cfg.schedulers, WarpId(-1));
    rrPtr.assign(cfg.schedulers, 0);
    active.clear();
    pending.clear();
    posInActive.assign(cfg.warpsPerSm, -1);
    pendingGen.assign(cfg.warpsPerSm, 0);
    inPending.assign(cfg.warpsPerSm, false);
    gtoList.assign(cfg.schedulers, {});
    gtoPos.assign(cfg.warpsPerSm, -1);
    lrrSlots.assign(cfg.schedulers, {});
    for (WarpId w = 0; w < cfg.warpsPerSm; ++w)
        lrrSlots[w % cfg.schedulers].push_back(w);
}

void
Scheduler::removeActive(WarpId w)
{
    const std::int32_t p = posInActive[w];
    panicIf(p < 0, "removeActive on a non-active warp");
    active.erase(active.begin() + p);
    posInActive[w] = -1;
    for (std::size_t i = std::size_t(p); i < active.size(); ++i)
        posInActive[active[i]] = std::int32_t(i);
}

void
Scheduler::pushPending(WarpId w)
{
    if (inPending[w])
        return;
    pending.push_back({w, pendingGen[w]});
    inPending[w] = true;
}

void
Scheduler::removeGto(WarpId w)
{
    const std::int32_t p = gtoPos[w];
    if (p < 0)
        return;
    auto &list = gtoList[w % cfg.schedulers];
    list.erase(list.begin() + p);
    gtoPos[w] = -1;
    for (std::size_t i = std::size_t(p); i < list.size(); ++i)
        gtoPos[list[i]] = std::int32_t(i);
}

void
Scheduler::onWarpLaunched(WarpId w, std::uint64_t age)
{
    ages[w] = age;
    live[w] = true;
    if (cfg.policy == SchedulerPolicy::Gto) {
        auto &list = gtoList[w % cfg.schedulers];
        gtoPos[w] = std::int32_t(list.size());
        list.push_back(w);
    }
    if (cfg.policy == SchedulerPolicy::TwoLevel) {
        pushPending(w);
        fillActive();
    }
}

void
Scheduler::onWarpFinished(WarpId w)
{
    live[w] = false;
    for (auto &g : greedy)
        if (g == w)
            g = WarpId(-1);
    if (cfg.policy == SchedulerPolicy::Gto)
        removeGto(w);
    if (cfg.policy == SchedulerPolicy::TwoLevel) {
        if (inActive(w)) {
            removeActive(w);
            onActiveChange(w, false);
        }
        if (inPending[w]) {
            // Orphan the queued entry instead of scanning the deque; the
            // bumped generation makes fillActive() drop it on pop.
            ++pendingGen[w];
            inPending[w] = false;
        }
        fillActive();
    }
}

void
Scheduler::onWarpBlocked(WarpId w, bool requeue)
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return;
    if (inActive(w)) {
        removeActive(w);
        onActiveChange(w, false);
    }
    if (requeue)
        pushPending(w);
    fillActive();
}

void
Scheduler::onWarpWakeup(WarpId w)
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return;
    if (!live[w] || inActive(w))
        return;
    pushPending(w);
    fillActive();
}

void
Scheduler::fillActive()
{
    while (active.size() < cfg.tlActiveWarps && !pending.empty()) {
        const PendingEntry e = pending.front();
        pending.pop_front();
        if (e.gen != pendingGen[e.warp])
            continue; // orphaned by onWarpFinished
        inPending[e.warp] = false;
        if (!live[e.warp])
            continue;
        posInActive[e.warp] = std::int32_t(active.size());
        active.push_back(e.warp);
        onActiveChange(e.warp, true);
    }
}

bool
Scheduler::eligible(WarpId w) const
{
    if (cfg.policy != SchedulerPolicy::TwoLevel)
        return true;
    return inActive(w);
}

void
Scheduler::noteIssue(unsigned sched, WarpId w)
{
    greedy[sched] = w;
    rrPtr[sched] = w;
    if (cfg.policy == SchedulerPolicy::TwoLevel && inActive(w)) {
        // Rotate the issued warp to the back of the pool (round-robin
        // within the active set).
        removeActive(w);
        posInActive[w] = std::int32_t(active.size());
        active.push_back(w);
    }
}

void
Scheduler::candidates(unsigned sched, std::vector<WarpId> &out) const
{
    out.clear();
    switch (cfg.policy) {
      case SchedulerPolicy::TwoLevel:
        for (WarpId w : active)
            if (w % cfg.schedulers == sched && live[w])
                out.push_back(w);
        return;
      case SchedulerPolicy::Gto: {
        // gtoList holds the scheduler's live warps oldest-first (launch
        // order == age order); hoist the greedy warp to the front.
        const WarpId g = greedy[sched];
        const bool gLive = g < live.size() && live[g];
        if (gLive)
            out.push_back(g);
        for (WarpId w : gtoList[sched])
            if (!gLive || w != g)
                out.push_back(w);
        return;
      }
      case SchedulerPolicy::Lrr: {
        const auto &slot = lrrSlots[sched];
        if (slot.empty())
            return;
        // Rotate to start just after the last issued warp. A warp's slot
        // index within its scheduler's list is w / schedulers.
        const WarpId p = rrPtr[sched];
        const std::size_t start =
            p % cfg.schedulers == sched
                ? (std::size_t(p) / cfg.schedulers + 1) % slot.size()
                : 0;
        for (std::size_t i = 0; i < slot.size(); ++i) {
            const WarpId w = slot[(start + i) % slot.size()];
            if (live[w])
                out.push_back(w);
        }
        return;
      }
    }
}

} // namespace pilotrf::sim
