/**
 * @file
 * Persistent worker pool for sharded SM stepping: N std::jthread workers
 * parked on a condition variable between passes. One pass runs a task
 * function over a task index range; runTasks() blocks until every index
 * completed, so the pool's mutex doubles as the epoch barrier — all
 * worker writes to shard state happen-before the orchestrator's reads,
 * and the orchestrator's resolution writes happen-before the next pass.
 */

#ifndef PILOTRF_SIM_WORKER_POOL_HH
#define PILOTRF_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pilotrf::sim
{

class WorkerPool
{
  public:
    /** Spawn `numWorkers` (>= 1) parked worker threads. */
    explicit WorkerPool(unsigned numWorkers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run fn(i) for every i in [0, numTasks), distributed over the
     * workers (an idle claim counter, so uneven tasks load-balance).
     * Blocks until all indices completed. Not reentrant.
     */
    void runTasks(unsigned numTasks,
                  const std::function<void(unsigned)> &fn);

    unsigned size() const { return unsigned(workers.size()); }

  private:
    void workerMain(std::stop_token st);

    std::mutex mu;
    std::condition_variable_any cv; ///< workers wait for a new pass
    std::condition_variable doneCv; ///< runTasks waits for completion
    const std::function<void(unsigned)> *task = nullptr; // guarded by mu
    unsigned numTasks = 0;                               // guarded by mu
    std::uint64_t generation = 0;                        // guarded by mu
    unsigned busyWorkers = 0;                            // guarded by mu
    std::atomic<unsigned> nextTask{0};
    std::vector<std::jthread> workers;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_WORKER_POOL_HH
