/**
 * @file
 * Persistent worker pool for sharded SM stepping: N std::jthread workers
 * parked on a condition variable between passes. One pass runs a task
 * function over a task index range; runTasks() blocks until every index
 * completed, so the pass doubles as the epoch barrier — all worker
 * writes to shard state happen-before the orchestrator's reads (via the
 * completion counter's release/acquire pair), and the orchestrator's
 * resolution writes happen-before the next pass (via the pool mutex).
 *
 * The fast path is allocation- and herd-free: the task travels as a raw
 * function pointer + context (no std::function), completion is tracked
 * per participating worker instead of an every-worker handshake, and
 * runTasks() wakes only as many workers as there are tasks — a
 * one-task resolution round on an 8-worker pool wakes one thread, not
 * eight. Workers that sleep through a pass never touch its state; a
 * late waker finds the claim counter exhausted (or the task already
 * cleared) and goes straight back to sleep.
 *
 * Completion requires quiescence, not just a done-task count: a worker
 * discovers exhaustion by one final fetch-add on the claim counter, so
 * if runTasks() returned the moment the last task finished, the next
 * pass could reset that counter underneath a previous participant and
 * lose a ticket to its stale claim. Each participant therefore
 * registers (under the pool mutex, when it picks up the task) and
 * deregisters (after leaving its claim loop), and runTasks() waits for
 * all tasks done AND zero registered participants — only then can no
 * stale claim ever touch the next pass's state.
 */

#ifndef PILOTRF_SIM_WORKER_POOL_HH
#define PILOTRF_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pilotrf::sim
{

class WorkerPool
{
  public:
    /** Raw per-index task: fn(ctx, i). Raw so a pass never allocates. */
    using TaskFn = void (*)(void *ctx, unsigned index);

    /** Spawn `numWorkers` (>= 1) parked worker threads. */
    explicit WorkerPool(unsigned numWorkers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run fn(ctx, i) for every i in [0, numTasks), distributed over the
     * workers (an atomic claim counter, so uneven tasks load-balance).
     * Wakes at most numTasks workers. Blocks until all indices
     * completed. Not reentrant.
     */
    void runTasks(unsigned numTasks, TaskFn fn, void *ctx);

    /** Convenience wrapper: run a callable f(i) over [0, numTasks).
     *  The callable is passed by reference — zero allocations. */
    template <typename F>
    void run(unsigned numTasks, F &&f)
    {
        using Fn = std::remove_reference_t<F>;
        runTasks(
            numTasks,
            [](void *ctx, unsigned i) { (*static_cast<Fn *>(ctx))(i); },
            const_cast<std::remove_const_t<Fn> *>(&f));
    }

    unsigned size() const { return unsigned(workers.size()); }

  private:
    void workerMain(std::stop_token st);

    std::mutex mu;
    std::condition_variable_any cv; ///< workers wait for a new pass
    std::condition_variable doneCv; ///< runTasks waits for completion
    TaskFn task = nullptr;          // guarded by mu
    void *taskCtx = nullptr;        // guarded by mu
    unsigned numTasks = 0;          // guarded by mu
    std::uint64_t generation = 0;   // guarded by mu
    /** Workers currently inside the pass: registered when a woken
     *  worker picks up a non-null task, deregistered when it leaves its
     *  claim loop. Late wakers that find no task never register, so a
     *  pass does not require every worker to participate (the condvar
     *  thundering-herd fix). Guarded by mu. */
    unsigned activeWorkers = 0;
    std::atomic<unsigned> nextTask{0};
    /** Completed-task count for the current pass. */
    std::atomic<unsigned> tasksDone{0};
    std::vector<std::jthread> workers;
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_WORKER_POOL_HH
