/**
 * @file
 * The named workload view Gpu::run executes: a label plus a borrowed
 * span of kernels. Non-owning by design — benches and tests hand in
 * kernels they already hold, and the 17-suite registry exposes
 * `workloads::Workload::view()` returning one of these.
 */

#ifndef PILOTRF_SIM_WORKLOAD_HH
#define PILOTRF_SIM_WORKLOAD_HH

#include <span>
#include <string_view>

#include "isa/kernel.hh"

namespace pilotrf::sim
{

/** What one Gpu::run call executes. Both members borrow: the kernels
 *  (and the label's backing storage) must outlive the run call. */
struct Workload
{
    std::string_view label;
    std::span<const isa::Kernel> kernels;

    Workload(std::string_view label_, std::span<const isa::Kernel> ks)
        : label(label_), kernels(ks)
    {
    }

    /** A single kernel runs as a workload labelled with its own name. */
    Workload(const isa::Kernel &k) : label(k.name()), kernels(&k, 1) {}
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_WORKLOAD_HH
