#include "sim/worker_pool.hh"

#include "common/logging.hh"

namespace pilotrf::sim
{

WorkerPool::WorkerPool(unsigned numWorkers)
{
    panicIf(numWorkers == 0, "worker pool with no workers");
    workers.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        workers.emplace_back(
            [this](std::stop_token st) { workerMain(st); });
}

WorkerPool::~WorkerPool()
{
    for (auto &w : workers)
        w.request_stop();
    cv.notify_all();
    // ~jthread joins.
}

void
WorkerPool::workerMain(std::stop_token st)
{
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(unsigned)> *fn;
        unsigned total;
        {
            std::unique_lock lock(mu);
            cv.wait(lock, st, [&] { return generation != seen; });
            if (st.stop_requested())
                return;
            seen = generation;
            fn = task;
            total = numTasks;
        }
        while (true) {
            const unsigned i =
                nextTask.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                break;
            (*fn)(i);
        }
        {
            std::lock_guard lock(mu);
            if (--busyWorkers == 0)
                doneCv.notify_one();
        }
    }
}

void
WorkerPool::runTasks(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (n == 0)
        return;
    {
        std::lock_guard lock(mu);
        task = &fn;
        numTasks = n;
        nextTask.store(0, std::memory_order_relaxed);
        busyWorkers = unsigned(workers.size());
        ++generation;
    }
    cv.notify_all();
    std::unique_lock lock(mu);
    doneCv.wait(lock, [&] { return busyWorkers == 0; });
    task = nullptr;
}

} // namespace pilotrf::sim
