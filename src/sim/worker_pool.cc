#include "sim/worker_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pilotrf::sim
{

WorkerPool::WorkerPool(unsigned numWorkers)
{
    panicIf(numWorkers == 0, "worker pool with no workers");
    workers.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        workers.emplace_back(
            [this](std::stop_token st) { workerMain(st); });
}

WorkerPool::~WorkerPool()
{
    for (auto &w : workers)
        w.request_stop();
    cv.notify_all();
    // ~jthread joins.
}

void
WorkerPool::workerMain(std::stop_token st)
{
    std::uint64_t seen = 0;
    while (true) {
        TaskFn fn = nullptr;
        void *ctx = nullptr;
        unsigned total = 0;
        {
            std::unique_lock lock(mu);
            cv.wait(lock, st, [&] { return generation != seen; });
            if (st.stop_requested())
                return;
            seen = generation;
            fn = task;
            ctx = taskCtx;
            total = numTasks;
            if (fn)
                ++activeWorkers; // registered: see quiescence note (hh)
        }
        // A null task means the pass this generation announced already
        // completed without us (we were never woken, or woke late):
        // nothing to run, and nothing to report — completion is counted
        // per participant, and we never became one.
        if (!fn)
            continue;
        while (true) {
            const unsigned i =
                nextTask.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                break;
            fn(ctx, i);
            tasksDone.fetch_add(1, std::memory_order_relaxed);
        }
        {
            // Deregister; the last participant out signals completion.
            // The mutex orders every fn() effect (shard writes included)
            // before the orchestrator's wakeup, and guarantees no claim
            // counter touch from this pass can land after runTasks
            // returns.
            std::lock_guard lock(mu);
            if (--activeWorkers == 0)
                doneCv.notify_one();
        }
    }
}

void
WorkerPool::runTasks(unsigned n, TaskFn fn, void *ctx)
{
    if (n == 0)
        return;
    {
        std::lock_guard lock(mu);
        task = fn;
        taskCtx = ctx;
        numTasks = n;
        nextTask.store(0, std::memory_order_relaxed);
        tasksDone.store(0, std::memory_order_relaxed);
        ++generation;
    }
    // Wake only as many workers as there are tasks. A notify that lands
    // while a worker is mid-transition (not yet waiting) is absorbed by
    // the generation predicate: the worker re-checks on its next wait
    // and joins the pass anyway, so progress never depends on a wakeup
    // landing.
    const unsigned wake = std::min(n, unsigned(workers.size()));
    if (wake == workers.size())
        cv.notify_all();
    else
        for (unsigned i = 0; i < wake; ++i)
            cv.notify_one();
    {
        std::unique_lock lock(mu);
        // Both conditions matter: all tasks done AND every participant
        // out of its claim loop (quiescent), so the next pass can reset
        // the counters without a stale claim racing it. Participants
        // only exit on an exhausted claim counter and each claimed task
        // completes before the claimer exits, so active == 0 found
        // after at least one worker participated implies done == n.
        doneCv.wait(lock, [&] {
            return activeWorkers == 0 &&
                   tasksDone.load(std::memory_order_relaxed) == numTasks;
        });
        task = nullptr;
        taskCtx = nullptr;
    }
}

} // namespace pilotrf::sim
