/**
 * @file
 * The epoch stepping contract between the Gpu orchestrator and its SMs.
 *
 * A kernel executes as a sequence of epochs. Within one epoch every SM
 * advances independently — `Sm::step` runs the per-cycle stage pipeline
 * (and, when permitted, fast-forwards dead spans against its own event
 * horizon) with no access to any cross-SM state. Everything shared flows
 * through the `EpochContext` the orchestrator hands in: the kernel's
 * start cycle, the epoch's exclusive end cycle and the watchdog bound.
 *
 * Because a step call touches only the stepped SM plus this read-only
 * context, *which worker thread* makes the call is irrelevant to the
 * result. The orchestrator exploits that freedom with two schedules
 * (SimConfig::shardSchedule): a fixed SM i -> worker i % workers map,
 * or per-round claiming where workers take SMs off a shared
 * longest-first ticket queue. Ownership is exclusive per round either
 * way — exactly one worker steps a given SM between two barriers — so
 * stats, traces and end cycles are byte-identical across schedules and
 * worker counts.
 *
 * Two cross-SM interactions cannot happen from inside a shard. Taking
 * CTAs from the shared dispenser is observable in serial (cycle, smId)
 * order, so `step` *pauses* with `StepStop::NeedsCta` and the
 * orchestrator resolves pending pauses in exactly that order via
 * `Sm::resolveLaunch`. Accessing the shared L2 is also order-sensitive:
 * the SM records the request in its per-SM FIFO (`Sm::setL2Deferred`)
 * and keeps stepping — a reply cannot matter before the request cycle
 * plus `EpochContext::memLookahead`, so the SM only pauses with
 * `StepStop::NeedsMem` once its clock reaches that bound with the
 * request still unreplayed. The orchestrator merge-replays all FIFOs
 * against the single MemSystem in the same (cycle, smId) order, both
 * between worker rounds (everything below the global minimum stop
 * cycle) and exhaustively at the epoch barrier (see
 * docs/performance.md).
 */

#ifndef PILOTRF_SIM_EPOCH_HH
#define PILOTRF_SIM_EPOCH_HH

#include <cstdint>

#include "common/types.hh"

namespace pilotrf::sim
{

class CtaSource;

/** Why Sm::step returned. */
enum class StepStop : std::uint8_t
{
    EpochEnd, ///< local clock reached EpochContext::epochEnd
    NeedsCta, ///< paused: a CTA-dispenser interaction must be resolved
    NeedsMem, ///< paused: an unreplayed shared-L2 request bounds progress
    Finished, ///< idle with the dispenser known exhausted (kernel done)
};

/**
 * Cross-SM state for one epoch, owned by the orchestrator. An SM must
 * not consult anything global beyond this snapshot while stepping — that
 * is what makes a shard safe to run on a worker thread.
 */
struct EpochContext
{
    Cycle kernelStart = 0; ///< global cycle the current kernel began
    Cycle epochEnd = 0;    ///< exclusive: step() never simulates this cycle
    /** Last legal cycle (kernelStart + maxCycles); advancing past it
     *  trips the watchdog exactly as serial single-stepping would. */
    Cycle watchdogLimit = 0;
    /** Permit per-SM event-horizon fast-forward inside the epoch. The
     *  lockstep engine keeps this off and skips globally instead, so the
     *  seed's cycle-major trace emission order is preserved. */
    bool allowLocalSkip = false;
    /**
     * Minimum cycles between a shared-L2 request's dispatch and the
     * first cycle its reply could become architecturally visible:
     * `MemSystem::minResponseLatency() + 1` (the +1 is the per-request
     * line-burst floor), or 0 when no shared L2 is live. While a
     * deferred request sits unreplayed, step() treats
     * `Sm::deferredL2Bound(memLookahead)` — the request's port-issue
     * cycle plus the minimum response latency plus its line burst — as
     * an extra exclusive bound and pauses with `StepStop::NeedsMem` on
     * reaching it; below the bound the placeholder finish (kNeverCycle)
     * is indistinguishable from the real one, so stepping and local
     * skip stay byte-exact.
     */
    Cycle memLookahead = 0;
    /**
     * Read-only view of the shared CTA dispenser, for the one query a
     * worker may answer without a barrier: `exhausted()`. Exhaustion is
     * monotone and the dispenser mutates only between worker rounds, so
     * an observed-exhausted grid was already exhausted at every cycle
     * the observing SM could legally be at — the SM can mark its own
     * `sawExhausted` locally instead of pausing, exactly as the serial
     * loop's failed launch attempt would. Launching (mutation) still
     * always pauses. May be null: step() then pauses for every
     * dispenser interaction.
     */
    const CtaSource *grid = nullptr;
};

/** Activity/horizon summary one Sm::step call returns. */
struct StepResult
{
    StepStop stop = StepStop::EpochEnd;
    Cycle now = 0; ///< the SM's local clock when step returned
    std::uint64_t activity = 0; ///< pipeline events inside this step call
    std::uint64_t skipped = 0;  ///< cycles locally fast-forwarded
};

} // namespace pilotrf::sim

#endif // PILOTRF_SIM_EPOCH_HH
